#!/usr/bin/env python
"""Deprecated shim: the check lives in ``repro.lint`` now.

This tool predates the :mod:`repro.lint` engine and survives only so
existing invocations (CI, editor tasks, muscle memory) keep working.
It delegates to the engine's ``no-print`` rule; prefer::

    python -m repro.lint src --rules no-print

which honors inline suppressions, baselines and JSON output.

Usage (unchanged)::

    python tools/check_no_print.py [SRC_DIR]

Exits non-zero listing every offending ``path:line``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

_REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # pragma: no cover - exercised when PYTHONPATH already has src
    import repro.lint  # noqa: F401
except ImportError:  # direct invocation without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.lint import lint_paths
from repro.lint.rules.no_print import ALLOWED, find_prints  # noqa: F401

__all__ = ["ALLOWED", "find_prints", "main"]


def main(argv: List[str]) -> int:
    root = Path(argv[0]) if argv else _REPO_ROOT / "src"
    result = lint_paths([root], rules=["no-print"])
    if result.findings:
        sys.stderr.write(
            "bare print() outside the CLI/report renderer -- route it "
            "through repro.obs sinks instead:\n"
        )
        for finding in result.findings:
            sys.stderr.write(
                f"  {finding.path}:{finding.line}: {finding.context}\n"
            )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
