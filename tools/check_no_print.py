#!/usr/bin/env python
"""Lint: no bare ``print()`` calls outside the CLI and report renderer.

Everything else must go through :mod:`repro.obs` sinks, so that ``-q``
silences it, ``-v`` reveals it, and ``--log-json`` captures it.  The
check is AST-based: strings mentioning ``print`` (docstrings, examples)
do not trip it.

Usage::

    python tools/check_no_print.py [SRC_DIR]

Exits non-zero listing every offending ``path:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

#: Files (relative to the source root) allowed to print: the CLI owns
#: stdout, and the report renderer produces user-facing text.
ALLOWED = frozenset(
    {
        "repro/analysis/cli.py",
        "repro/analysis/report.py",
    }
)


def find_prints(source: str, filename: str) -> List[Tuple[int, str]]:
    """``(line, context)`` of every bare ``print(...)`` call."""
    tree = ast.parse(source, filename=filename)
    hits = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            hits.append((node.lineno, ast.unparse(node)[:80]))
    return hits


def main(argv: List[str]) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent / "src"
    offenders = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative in ALLOWED:
            continue
        for line, context in find_prints(
            path.read_text(encoding="utf-8"), str(path)
        ):
            offenders.append(f"{path}:{line}: {context}")
    if offenders:
        sys.stderr.write(
            "bare print() outside the CLI/report renderer -- route it "
            "through repro.obs sinks instead:\n"
        )
        for offender in offenders:
            sys.stderr.write(f"  {offender}\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
