"""CI regression gate over the committed bench trajectory.

Compares a fresh ``bench_runtime.py`` run (typically ``--quick``, on
whatever machine CI happens to give us) against the committed
``benchmarks/BENCH_<version>.json`` baseline.  Absolute seconds are not
portable across machines, so the gate compares *speedup ratios* --
scalar/vectorized and JSONL/columnar-load -- at matching population
sizes: a ratio is machine-relative (both sides ran on the same box), so
a >25% drop means the optimized path itself regressed, not that CI got
a slower runner.

The scheduling rows are gated the same way: the day-batched engine's
speedup over the per-event reference is compared at matching
``(jobs, policy)`` rows, and a row recording
``outcomes_identical: false`` -- the two engines disagreeing on a
whole :class:`ScheduleOutcome` -- fails outright.

Also enforces the correctness bits recorded by the bench: the warm
suite must be byte-identical and both trace load paths must produce
identical statistics.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py --quick -o current.json
    python tools/bench_gate.py --baseline benchmarks/BENCH_1.6.0.json \
        --current current.json

Exit status 1 on any regression beyond the threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Ratio keys compared at matching population sizes.
GATED_RATIOS = ("vectorized_speedup", "columnar_load_speedup")

DEFAULT_THRESHOLD = 0.25


def _load(path: str) -> dict:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _rows_by_jobs(payload: dict) -> dict:
    return {row["jobs"]: row for row in payload.get("populations", ())}


def _sched_rows(payload: dict) -> dict:
    return {
        (row["jobs"], row["policy"]): row
        for row in payload.get("sched", ())
    }


def _check_sched(baseline: dict, current: dict, threshold: float) -> list:
    """Gate failures from the scheduling-engine rows."""
    failures = []
    base_rows = _sched_rows(baseline)
    current_rows = _sched_rows(current)
    compared = 0
    for key, row in sorted(current_rows.items()):
        jobs, policy = key
        if row.get("outcomes_identical") is False:
            failures.append(
                f"sched {jobs} jobs ({policy}): day and event engines "
                "produced different outcomes"
            )
        base = base_rows.get(key)
        if base is None:
            continue
        speedup = row.get("day_speedup")
        base_speedup = base.get("day_speedup")
        if speedup is None or base_speedup is None:
            continue
        compared += 1
        floor = base_speedup * (1.0 - threshold)
        if speedup < floor:
            failures.append(
                f"sched {jobs} jobs ({policy}): day_speedup regressed "
                f"to {speedup}x (baseline {base_speedup}x, "
                f"floor {floor:.2f}x)"
            )
    if base_rows and current_rows and not compared:
        failures.append(
            "no sched row is shared between baseline "
            f"({sorted(base_rows)}) and current ({sorted(current_rows)}); "
            "no sched speedup was gated"
        )
    return failures


def check(baseline: dict, current: dict, threshold: float) -> list:
    """All gate failures, as human-readable strings (empty = green)."""
    failures = []
    if not current["suite"].get("byte_identical", False):
        failures.append("warm suite run was not byte-identical")
    base_rows = _rows_by_jobs(baseline)
    current_rows = _rows_by_jobs(current)
    compared = 0
    for jobs, row in sorted(current_rows.items()):
        if not row.get("stats_identical", False):
            failures.append(
                f"{jobs} jobs: JSONL and columnar statistics differ"
            )
        base = base_rows.get(jobs)
        if base is None:
            continue
        compared += 1
        for key in GATED_RATIOS:
            floor = base[key] * (1.0 - threshold)
            if row[key] < floor:
                failures.append(
                    f"{jobs} jobs: {key} regressed to {row[key]}x "
                    f"(baseline {base[key]}x, floor {floor:.1f}x)"
                )
    if not compared:
        failures.append(
            "no population size is shared between baseline "
            f"({sorted(base_rows)}) and current ({sorted(current_rows)}); "
            "nothing was gated"
        )
    failures.extend(_check_sched(baseline, current, threshold))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        required=True,
        help="committed BENCH_<version>.json trajectory entry",
    )
    parser.add_argument(
        "--current", required=True, help="fresh bench_runtime.py output"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional speedup regression (default 0.25)",
    )
    args = parser.parse_args(argv)
    baseline = _load(args.baseline)
    current = _load(args.current)
    failures = check(baseline, current, args.threshold)
    for failure in failures:
        print(f"BENCH GATE: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"bench gate green: current speedups within {args.threshold:.0%} "
        f"of baseline {baseline.get('version')}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
