"""End-to-end smoke of the resident service, as CI runs it.

Starts ``pai-repro serve`` as a real subprocess (empty population,
JSON-lines telemetry on), streams a small synthetic trace in through
``POST /ingest``, queries every endpoint, checks the served numbers
against the one-shot batch path leaf by leaf, then sends SIGTERM and
requires a clean drain (exit code 0) and a non-empty event log.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--jobs N] [--events PATH]
"""

from __future__ import annotations

import argparse
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))


def start_service(events_path: str) -> "tuple[subprocess.Popen, str]":
    """Launch the CLI subprocess; returns (process, base URL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.analysis.cli",
            "serve",
            "--port",
            "0",
            "--shards",
            "3",
            "--no-cache",
            "--log-json",
            events_path,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = process.stdout.readline().strip()
    if not line.startswith("serving on "):
        process.kill()
        stderr = process.stderr.read()
        raise RuntimeError(f"unexpected banner {line!r}; stderr: {stderr}")
    return process, line.removeprefix("serving on ")


def check_endpoints(url: str, jobs) -> None:
    """Every endpoint answers, and the numbers match the batch path."""
    from repro.serve import (
        CDF_METRICS,
        ServeClient,
        ServiceError,
        batch_reference,
    )

    client = ServeClient(url)
    health = client.healthz()
    assert health["status"] == "ok", health
    assert health["jobs"] == 0, health

    ingested = client.ingest(jobs)
    assert ingested["ingested"] == len(jobs), ingested

    reference = batch_reference(jobs)
    stats = client.stats()
    assert stats["jobs"] == reference["jobs"], stats
    assert stats["architectures"] == reference["architectures"], stats
    for level in ("job", "cnode"):
        for table in ("fractions", "hardware_shares"):
            for key, want in reference[table][level].items():
                got = stats[table][level][key]
                assert math.isclose(got, want, rel_tol=1e-9), (
                    table, level, key, got, want,
                )
    census = client.census()
    for level in ("job", "cnode"):
        for label, want in reference["census"][level].items():
            got = census["census"][level][label]
            assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-12), (
                level, label, got, want,
            )
    for metric in CDF_METRICS:
        payload = client.cdf(metric, points=20)
        assert len(payload["series"]) > 0, payload
        for quantile, want in reference["quantiles"][metric].items():
            got = payload["quantiles"][quantile]
            assert math.isclose(got, want, rel_tol=1e-6, abs_tol=1e-9), (
                metric, quantile, got, want,
            )
    try:
        client.cdf("bogus")
    except ServiceError as error:
        assert error.status == 400, error
    else:
        raise AssertionError("bogus metric should be a 400")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=600)
    parser.add_argument("--events", default="serve-events.jsonl")
    args = parser.parse_args(argv)

    from repro.trace.generator import generate_trace

    jobs = generate_trace(num_jobs=args.jobs, seed=7)
    process, url = start_service(args.events)
    try:
        check_endpoints(url, jobs)
    except BaseException:
        process.kill()
        process.wait()
        raise
    process.send_signal(signal.SIGTERM)
    deadline = time.monotonic() + 30
    while process.poll() is None and time.monotonic() < deadline:
        time.sleep(0.05)
    if process.poll() is None:
        process.kill()
        raise RuntimeError("service did not drain within 30s of SIGTERM")
    stdout, stderr = process.communicate()
    if process.returncode != 0:
        raise RuntimeError(
            f"service exited {process.returncode}; stderr: {stderr}"
        )
    assert "shut down cleanly" in stdout, stdout
    events = Path(args.events)
    assert events.is_file() and events.stat().st_size > 0, (
        f"missing or empty event log {events}"
    )
    print(
        f"serve smoke OK: {len(jobs)} jobs ingested, all endpoints match "
        f"the batch path, clean SIGTERM drain, events in {events}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
