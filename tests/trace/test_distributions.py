"""Parametric samplers."""

import numpy as np
import pytest

from repro.trace.distributions import (
    beta_with_mean,
    clipped_lognormal_int,
    lognormal,
    loguniform,
    power_of_two,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestLognormal:
    def test_median(self, rng):
        samples = [lognormal(rng, 8.0, 1.0) for _ in range(4000)]
        assert np.median(samples) == pytest.approx(8.0, rel=0.1)

    def test_zero_sigma_is_deterministic(self, rng):
        assert lognormal(rng, 5.0, 0.0) == pytest.approx(5.0)

    def test_rejects_nonpositive_median(self, rng):
        with pytest.raises(ValueError):
            lognormal(rng, 0.0, 1.0)

    def test_rejects_negative_sigma(self, rng):
        with pytest.raises(ValueError):
            lognormal(rng, 1.0, -0.5)


class TestLoguniform:
    def test_range(self, rng):
        samples = [loguniform(rng, 10.0, 1000.0) for _ in range(500)]
        assert all(10.0 <= s <= 1000.0 for s in samples)

    def test_log_median(self, rng):
        samples = [loguniform(rng, 1.0, 10000.0) for _ in range(4000)]
        assert np.median(samples) == pytest.approx(100.0, rel=0.3)

    def test_rejects_bad_bounds(self, rng):
        with pytest.raises(ValueError):
            loguniform(rng, 0.0, 1.0)
        with pytest.raises(ValueError):
            loguniform(rng, 2.0, 1.0)


class TestBetaWithMean:
    def test_mean(self, rng):
        samples = [beta_with_mean(rng, 0.62, 7.0) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(0.62, abs=0.02)

    def test_range(self, rng):
        samples = [beta_with_mean(rng, 0.3) for _ in range(100)]
        assert all(0.0 < s < 1.0 for s in samples)

    def test_rejects_bad_mean(self, rng):
        with pytest.raises(ValueError):
            beta_with_mean(rng, 0.0)
        with pytest.raises(ValueError):
            beta_with_mean(rng, 1.0)

    def test_rejects_bad_concentration(self, rng):
        with pytest.raises(ValueError):
            beta_with_mean(rng, 0.5, 0.0)


class TestClippedLognormalInt:
    def test_clipping(self, rng):
        samples = [
            clipped_lognormal_int(rng, 8.0, 2.0, low=1, high=100)
            for _ in range(1000)
        ]
        assert all(1 <= s <= 100 for s in samples)
        assert all(isinstance(s, int) for s in samples)

    def test_rejects_inverted_bounds(self, rng):
        with pytest.raises(ValueError):
            clipped_lognormal_int(rng, 8.0, 1.0, low=10, high=1)


class TestPowerOfTwo:
    def test_values(self, rng):
        samples = {power_of_two(rng, 4, 10) for _ in range(500)}
        assert samples <= {16, 32, 64, 128, 256, 512, 1024}
        assert len(samples) > 3

    def test_rejects_inverted(self, rng):
        with pytest.raises(ValueError):
            power_of_two(rng, 5, 4)
