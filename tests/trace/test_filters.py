"""Trace query helpers."""

import pytest

from repro.core.architectures import Architecture
from repro.trace.filters import (
    by_cnode_band,
    by_day_window,
    by_tenant,
    by_type,
    by_weight_band,
    filter_jobs,
    split_by,
)


class TestByType:
    def test_single_type(self, small_trace):
        ps = filter_jobs(small_trace, by_type(Architecture.PS_WORKER))
        assert ps
        assert all(j.workload_type is Architecture.PS_WORKER for j in ps)

    def test_multiple_types(self, small_trace):
        local = filter_jobs(
            small_trace,
            by_type(Architecture.SINGLE, Architecture.LOCAL_CENTRALIZED),
        )
        assert {j.workload_type for j in local} <= {
            Architecture.SINGLE,
            Architecture.LOCAL_CENTRALIZED,
        }

    def test_requires_a_type(self):
        with pytest.raises(ValueError):
            by_type()


class TestByWeightBand:
    def test_band(self, small_trace):
        medium = filter_jobs(small_trace, by_weight_band(10e6, 1e9))
        assert medium
        assert all(
            10e6 <= j.features.weight_bytes < 1e9 for j in medium
        )

    def test_open_upper_bound(self, small_trace):
        big = filter_jobs(small_trace, by_weight_band(min_bytes=10e9))
        assert all(j.features.weight_bytes >= 10e9 for j in big)

    def test_validation(self):
        with pytest.raises(ValueError):
            by_weight_band(-1.0)
        with pytest.raises(ValueError):
            by_weight_band(10.0, 5.0)


class TestByCnodeBand:
    def test_band_inclusive(self, small_trace):
        mid = filter_jobs(small_trace, by_cnode_band(2, 8))
        assert all(2 <= j.num_cnodes <= 8 for j in mid)

    def test_validation(self):
        with pytest.raises(ValueError):
            by_cnode_band(0)
        with pytest.raises(ValueError):
            by_cnode_band(8, 2)


class TestByDayAndTenant:
    def test_day_window(self, small_trace):
        early = filter_jobs(small_trace, by_day_window(0, 6))
        assert all(j.submit_day <= 6 for j in early)

    def test_day_validation(self):
        with pytest.raises(ValueError):
            by_day_window(5, 3)

    def test_tenant(self, small_trace):
        group = small_trace[0].user_group
        jobs = filter_jobs(small_trace, by_tenant(group))
        assert jobs
        assert all(j.user_group == group for j in jobs)

    def test_tenant_validation(self):
        with pytest.raises(ValueError):
            by_tenant()


class TestComposition:
    def test_and_composition(self, small_trace):
        result = filter_jobs(
            small_trace,
            by_type(Architecture.PS_WORKER),
            by_cnode_band(9),
        )
        assert all(
            j.workload_type is Architecture.PS_WORKER and j.num_cnodes >= 9
            for j in result
        )

    def test_no_predicates_keeps_everything(self, small_trace):
        assert filter_jobs(small_trace) == list(small_trace)

    def test_split_partitions(self, small_trace):
        matching, rest = split_by(
            small_trace, by_type(Architecture.SINGLE)
        )
        assert len(matching) + len(rest) == len(small_trace)
        assert not set(j.job_id for j in matching) & set(
            j.job_id for j in rest
        )
