"""Crash-durability regressions for trace persistence.

These pin the two bugfixes: ``save_trace`` must be atomic (a crash or a
poisoned iterator mid-write leaves any pre-existing trace intact), and
``iter_trace(tolerate_torn_tail=True)`` must recover a trace whose
writer was killed mid-append -- and only that case; corruption anywhere
before the final line still raises.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.trace.serialization import (
    append_trace,
    iter_trace,
    job_to_dict,
    load_trace,
    save_trace,
)

SRC = Path(__file__).resolve().parents[2] / "src"


class TestAtomicSave:
    def test_failed_save_preserves_existing_trace(
        self, tmp_path, small_trace
    ):
        path = tmp_path / "trace.jsonl"
        save_trace(small_trace[:5], path)
        before = path.read_bytes()

        def poisoned():
            yield small_trace[5]
            raise RuntimeError("generator died mid-save")

        with pytest.raises(RuntimeError, match="mid-save"):
            save_trace(poisoned(), path)
        assert path.read_bytes() == before
        assert load_trace(path) == list(small_trace[:5])

    def test_failed_save_cleans_up_tmp_sibling(self, tmp_path, small_trace):
        path = tmp_path / "trace.jsonl"

        def poisoned():
            yield small_trace[0]
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            save_trace(poisoned(), path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_successful_save_leaves_no_tmp_sibling(
        self, tmp_path, small_trace
    ):
        path = tmp_path / "trace.jsonl"
        save_trace(small_trace[:3], path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["trace.jsonl"]


class TestTornTail:
    def torn_trace(self, tmp_path, small_trace):
        """A trace whose final line is truncated mid-record."""
        path = tmp_path / "torn.jsonl"
        save_trace(small_trace[:4], path)
        torn = json.dumps(job_to_dict(small_trace[4]))[:37]
        with path.open("a", encoding="utf-8") as handle:
            handle.write(torn)
        return path

    def test_torn_tail_raises_by_default(self, tmp_path, small_trace):
        path = self.torn_trace(tmp_path, small_trace)
        with pytest.raises(ValueError, match=":5:.*invalid JSON"):
            load_trace(path)

    def test_torn_tail_skipped_when_tolerated(self, tmp_path, small_trace):
        path = self.torn_trace(tmp_path, small_trace)
        recovered = load_trace(path, tolerate_torn_tail=True)
        assert recovered == list(small_trace[:4])

    def test_mid_file_corruption_still_raises(self, tmp_path, small_trace):
        path = self.torn_trace(tmp_path, small_trace)
        append_trace(small_trace[5:7], path)  # tear is no longer the tail
        with pytest.raises(ValueError, match=":5:"):
            load_trace(path, tolerate_torn_tail=True)

    def test_recovered_trace_accepts_new_appends(self, tmp_path, small_trace):
        # The documented crash-recovery flow: tolerate the tail once,
        # rewrite atomically, resume appending.
        path = self.torn_trace(tmp_path, small_trace)
        recovered = load_trace(path, tolerate_torn_tail=True)
        save_trace(recovered, path)
        append_trace(small_trace[4:8], path)
        assert load_trace(path) == list(small_trace[:8])

    def test_writer_killed_mid_append_recovers(self, tmp_path, small_trace):
        """Kill a real writer subprocess mid-line, then reload."""
        path = tmp_path / "killed.jsonl"
        save_trace(small_trace[:6], path)
        script = textwrap.dedent(
            """
            import json, sys
            from repro.trace.serialization import (
                iter_trace, job_to_dict,
            )
            record = next(iter_trace(sys.argv[1]))
            line = json.dumps(job_to_dict(record), sort_keys=True)
            with open(sys.argv[1], "a", encoding="utf-8") as handle:
                # Half a record, flushed to disk: exactly the bytes a
                # crash inside append_trace leaves behind.
                handle.write(line[: len(line) // 2])
                handle.flush()
                print("torn", flush=True)
                while True:
                    pass
            """
        )
        env = dict(os.environ, PYTHONPATH=str(SRC))
        writer = subprocess.Popen(
            [sys.executable, "-c", script, str(path)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert writer.stdout.readline().strip() == "torn"
            writer.send_signal(signal.SIGKILL)
            writer.wait(timeout=30)
        finally:
            if writer.poll() is None:
                writer.kill()
                writer.wait(timeout=30)
        assert writer.returncode == -signal.SIGKILL
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(path)
        recovered = load_trace(path, tolerate_torn_tail=True)
        assert recovered == list(small_trace[:6])
        # And a restarted writer resumes cleanly after rewriting.
        save_trace(recovered, path)
        append_trace(small_trace[6:9], path)
        assert load_trace(path) == list(small_trace[:9])

    def test_torn_tail_emits_observability_warning(
        self, tmp_path, small_trace
    ):
        from repro.obs import MemorySink, get_obs, reset_obs

        path = self.torn_trace(tmp_path, small_trace)
        reset_obs()
        sink = get_obs().add_sink(MemorySink())
        try:
            list(iter_trace(path, tolerate_torn_tail=True))
        finally:
            reset_obs()
        (event,) = sink.of_kind("trace.torn_tail")
        assert event["line"] == 5
        assert event["level"] == "warning"
