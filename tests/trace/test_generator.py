"""The synthetic trace generator: determinism, structure, consistency."""

import pytest

from repro.core.architectures import Architecture
from repro.core.efficiency import PAPER_DEFAULT_EFFICIENCY
from repro.core.hardware import pai_default_hardware
from repro.core.timemodel import estimate_breakdown
from repro.trace.generator import ClusterTraceGenerator, TraceConfig, generate_trace
from repro.trace.schema import jobs_of_type


class TestDeterminism:
    def test_same_seed_same_trace(self):
        first = generate_trace(num_jobs=200, seed=3)
        second = generate_trace(num_jobs=200, seed=3)
        assert [j.features for j in first] == [j.features for j in second]

    def test_different_seed_differs(self):
        first = generate_trace(num_jobs=200, seed=3)
        second = generate_trace(num_jobs=200, seed=4)
        assert [j.features for j in first] != [j.features for j in second]


class TestStructure:
    def test_job_count(self, small_trace):
        assert len(small_trace) == 400

    def test_job_ids_unique(self, small_trace):
        assert len({j.job_id for j in small_trace}) == len(small_trace)

    def test_all_types_present(self, trace):
        for arch in (
            Architecture.SINGLE,
            Architecture.LOCAL_CENTRALIZED,
            Architecture.PS_WORKER,
            Architecture.ALLREDUCE_LOCAL,
        ):
            assert jobs_of_type(list(trace), arch)

    def test_submit_days_in_window(self, small_trace):
        assert all(0 <= j.submit_day < 51 for j in small_trace)

    def test_user_groups_assigned(self, small_trace):
        groups = {j.user_group for j in small_trace}
        assert len(groups) > 1

    def test_1w1g_jobs_have_one_cnode(self, trace):
        for job in jobs_of_type(list(trace), Architecture.SINGLE):
            assert job.num_cnodes == 1

    def test_local_jobs_capped_at_8(self, trace):
        for arch in (Architecture.LOCAL_CENTRALIZED, Architecture.ALLREDUCE_LOCAL):
            for job in jobs_of_type(list(trace), arch):
                assert 2 <= job.num_cnodes <= 8

    def test_ps_cnodes_capped(self, trace):
        for job in jobs_of_type(list(trace), Architecture.PS_WORKER):
            assert 1 <= job.num_cnodes <= 400

    def test_large_ps_models_are_mostly_embeddings(self, trace):
        # The 10-300 GB cohort is embedding-table-dominated (Sec. III-A:
        # commodity embedding / search / recommendation); a minority of
        # dense giants from the small-model tail is acceptable.
        large = [
            j
            for j in jobs_of_type(list(trace), Architecture.PS_WORKER)
            if j.features.weight_bytes > 10e9
        ]
        assert large
        with_embeddings = [
            j for j in large if j.features.embedding_weight_bytes > 0
        ]
        assert len(with_embeddings) / len(large) > 0.75
        for job in with_embeddings:
            assert (
                job.features.embedding_weight_bytes
                > job.features.dense_weight_bytes
            )


class TestTimeDomainConsistency:
    """The generator back-derives features from sampled times; applying
    the analytical model must reproduce valid, finite breakdowns."""

    def test_breakdowns_are_finite_and_positive(self, small_trace):
        hardware = pai_default_hardware()
        for job in small_trace:
            breakdown = estimate_breakdown(
                job.features, hardware, PAPER_DEFAULT_EFFICIENCY
            )
            assert breakdown.total > 0
            assert breakdown.computation > 0

    def test_ps_jobs_have_weight_time(self, small_trace):
        hardware = pai_default_hardware()
        for job in jobs_of_type(list(small_trace), Architecture.PS_WORKER):
            breakdown = estimate_breakdown(job.features, hardware)
            assert breakdown.weight_total > 0
            assert set(breakdown.weight_comm) == {"Ethernet", "PCIe"}


class TestConfigValidation:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TraceConfig(share_1w1g=0.9, share_1wng=0.9)

    def test_positive_job_count(self):
        with pytest.raises(ValueError):
            TraceConfig(num_jobs=0)

    def test_custom_mix(self):
        config = TraceConfig(
            num_jobs=300,
            seed=5,
            share_1w1g=0.0,
            share_1wng=0.0,
            share_ps_worker=1.0,
            share_allreduce=0.0,
        )
        jobs = ClusterTraceGenerator(config).generate()
        assert all(
            j.workload_type is Architecture.PS_WORKER for j in jobs
        )
