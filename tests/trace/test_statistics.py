"""Empirical CDFs and weighted aggregates."""

import pytest

from repro.trace.statistics import (
    EmpiricalCDF,
    StreamingCDF,
    fraction_above,
    fraction_below,
    weighted_fraction,
    weighted_mean,
)


class TestEmpiricalCDF:
    def test_basic_probabilities(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_at(0.5) == 0.0
        assert cdf.probability_at(2.0) == pytest.approx(0.5)
        assert cdf.probability_at(10.0) == pytest.approx(1.0)

    def test_median(self):
        cdf = EmpiricalCDF.from_samples([5.0, 1.0, 3.0])
        assert cdf.median == 3.0

    def test_quantiles(self):
        cdf = EmpiricalCDF.from_samples(list(range(1, 101)))
        assert cdf.quantile(0.9) == 90
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 100

    def test_quantile_out_of_range(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_weighted(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0], weights=[1.0, 9.0])
        assert cdf.probability_at(1.0) == pytest.approx(0.1)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([1.0, 2.0], weights=[1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([1.0], weights=[-1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([])

    def test_series_downsamples(self):
        cdf = EmpiricalCDF.from_samples(list(range(1000)))
        series = cdf.series(points=10)
        assert len(series) == 10
        assert series[0][0] == 0
        assert series[-1][1] == pytest.approx(1.0)

    def test_series_small_population(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0])
        assert len(cdf.series(points=10)) == 2

    def test_series_rejects_one_point(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.series(points=1)

    def test_cumulative_is_monotone(self):
        cdf = EmpiricalCDF.from_samples([3.0, 1.0, 4.0, 1.0, 5.0])
        assert list(cdf.cumulative) == sorted(cdf.cumulative)
        assert cdf.cumulative[-1] == pytest.approx(1.0)


class TestFinalCumulativeExactlyOne:
    """Regressions for the quantile(1.0) edge case.

    The running weight sum can land a few ulps below 1.0, in which case
    ``searchsorted(cumulative, 1.0)`` runs past the end and only the
    defensive index clamp saved ``quantile(1.0)``.  The constructor now
    pins the final cumulative entry to exactly 1.0.
    """

    def test_final_cumulative_is_exactly_one_with_awkward_weights(self):
        # 10 x 0.1 sums to 0.9999999999999999 under float addition.
        cdf = EmpiricalCDF.from_samples(
            list(range(10)), weights=[0.1] * 10
        )
        assert cdf.cumulative[-1] == 1.0
        assert cdf.quantile(1.0) == 9

    def test_quantile_one_returns_maximum_without_clamp(self):
        import numpy as np

        samples = [1.0, 2.0, 7.0]
        weights = [1 / 3, 1 / 3, 1 / 3]
        cdf = EmpiricalCDF.from_samples(samples, weights=weights)
        # searchsorted must find the final entry directly.
        index = int(np.searchsorted(cdf.cumulative, 1.0, side="left"))
        assert index == len(cdf.values) - 1
        assert cdf.quantile(1.0) == 7.0

    def test_duplicate_samples(self):
        cdf = EmpiricalCDF.from_samples([2.0, 2.0, 2.0, 5.0])
        assert cdf.cumulative[-1] == 1.0
        assert cdf.probability_at(2.0) == pytest.approx(0.75)
        assert cdf.quantile(1.0) == 5.0
        assert cdf.quantile(0.5) == 2.0

    def test_weighted_duplicates(self):
        cdf = EmpiricalCDF.from_samples(
            [3.0, 3.0, 9.0], weights=[0.2, 0.3, 0.5]
        )
        assert cdf.probability_at(3.0) == pytest.approx(0.5)
        assert cdf.cumulative[-1] == 1.0

    def test_probability_at_below_minimum_is_zero(self):
        cdf = EmpiricalCDF.from_samples([4.0, 5.0], weights=[0.7, 0.3])
        assert cdf.probability_at(3.999) == 0.0

    def test_probability_at_minimum_includes_its_weight(self):
        cdf = EmpiricalCDF.from_samples([4.0, 5.0], weights=[0.7, 0.3])
        assert cdf.probability_at(4.0) == pytest.approx(0.7)

    def test_accepts_numpy_arrays(self):
        import numpy as np

        cdf = EmpiricalCDF.from_samples(
            np.array([1.0, 2.0]), weights=np.array([1.0, 3.0])
        )
        assert cdf.probability_at(1.0) == pytest.approx(0.25)
        assert cdf.cumulative[-1] == 1.0


class TestStreamingCDF:
    def test_exact_under_capacity(self):
        data = [5.0, 1.0, 3.0, 3.0, 2.0]
        sketch = StreamingCDF(capacity=8)
        sketch.update_many(data)
        exact = EmpiricalCDF.from_samples(data)
        assert sketch.count == len(data)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert sketch.quantile(q) == exact.quantile(q)

    def test_compaction_bounds_retained_points(self):
        sketch = StreamingCDF(capacity=16)
        for value in range(1000):
            sketch.update(float(value))
        assert sketch.count == 1000
        values, _ = sketch._points()
        assert len(values) <= 2 * 16

    def test_compaction_preserves_extremes_and_mass(self):
        sketch = StreamingCDF(capacity=16)
        sketch.update_many([float(v) for v in range(1000)])
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 999.0
        assert sketch.total_weight == pytest.approx(1000.0)
        assert abs(sketch.to_cdf().cumulative[-1] - 1.0) < 1e-12

    def test_merge_preserves_count_and_weight(self):
        left, right = StreamingCDF(capacity=32), StreamingCDF(capacity=32)
        left.update_many([1.0, 2.0])
        right.update_many([3.0], [5.0])
        merged = left.merge(right)
        assert merged.count == 3
        assert merged.total_weight == pytest.approx(7.0)

    def test_weighted_updates_shift_quantiles(self):
        sketch = StreamingCDF(capacity=32)
        sketch.update_many([1.0, 10.0], [99.0, 1.0])
        assert sketch.quantile(0.5) == 1.0

    def test_copy_is_independent(self):
        sketch = StreamingCDF(capacity=32)
        sketch.update_many([1.0, 2.0])
        duplicate = sketch.copy()
        sketch.update(100.0)
        assert duplicate.count == 2
        assert duplicate.quantile(1.0) == 2.0

    def test_empty_sketch_rejects_reads(self):
        sketch = StreamingCDF()
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        with pytest.raises(ValueError):
            sketch.to_cdf()

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            StreamingCDF(capacity=4)


class TestFractions:
    def test_below_and_above(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert fraction_below(samples, 3.0) == pytest.approx(0.5)
        assert fraction_above(samples, 3.0) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_below([], 1.0)
        with pytest.raises(ValueError):
            fraction_above([], 1.0)


class TestWeighted:
    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_weighted_fraction(self):
        result = weighted_fraction(
            [1.0, 2.0, 3.0], [1.0, 1.0, 8.0], lambda s: s > 1.5
        )
        assert result == pytest.approx(0.9)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])
