"""Empirical CDFs and weighted aggregates."""

import pytest

from repro.trace.statistics import (
    EmpiricalCDF,
    fraction_above,
    fraction_below,
    weighted_fraction,
    weighted_mean,
)


class TestEmpiricalCDF:
    def test_basic_probabilities(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_at(0.5) == 0.0
        assert cdf.probability_at(2.0) == pytest.approx(0.5)
        assert cdf.probability_at(10.0) == pytest.approx(1.0)

    def test_median(self):
        cdf = EmpiricalCDF.from_samples([5.0, 1.0, 3.0])
        assert cdf.median == 3.0

    def test_quantiles(self):
        cdf = EmpiricalCDF.from_samples(list(range(1, 101)))
        assert cdf.quantile(0.9) == 90
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 100

    def test_quantile_out_of_range(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_weighted(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0], weights=[1.0, 9.0])
        assert cdf.probability_at(1.0) == pytest.approx(0.1)

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([1.0, 2.0], weights=[1.0])

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([1.0], weights=[-1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([])

    def test_series_downsamples(self):
        cdf = EmpiricalCDF.from_samples(list(range(1000)))
        series = cdf.series(points=10)
        assert len(series) == 10
        assert series[0][0] == 0
        assert series[-1][1] == pytest.approx(1.0)

    def test_series_small_population(self):
        cdf = EmpiricalCDF.from_samples([1.0, 2.0])
        assert len(cdf.series(points=10)) == 2

    def test_series_rejects_one_point(self):
        cdf = EmpiricalCDF.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.series(points=1)

    def test_cumulative_is_monotone(self):
        cdf = EmpiricalCDF.from_samples([3.0, 1.0, 4.0, 1.0, 5.0])
        assert list(cdf.cumulative) == sorted(cdf.cumulative)
        assert cdf.cumulative[-1] == pytest.approx(1.0)


class TestFractions:
    def test_below_and_above(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert fraction_below(samples, 3.0) == pytest.approx(0.5)
        assert fraction_above(samples, 3.0) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fraction_below([], 1.0)
        with pytest.raises(ValueError):
            fraction_above([], 1.0)


class TestWeighted:
    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_weighted_fraction(self):
        result = weighted_fraction(
            [1.0, 2.0, 3.0], [1.0, 1.0, 8.0], lambda s: s > 1.5
        )
        assert result == pytest.approx(0.9)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])
