"""JSONL trace persistence."""

import json

import pytest

from repro.trace import generate_trace
from repro.trace.serialization import (
    SCHEMA_VERSION,
    job_from_dict,
    job_to_dict,
    load_trace,
    save_trace,
)


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path, small_trace):
        path = tmp_path / "trace.jsonl"
        count = save_trace(small_trace, path)
        assert count == len(small_trace)
        loaded = load_trace(path)
        assert loaded == list(small_trace)

    def test_dict_round_trip(self, small_trace):
        job = small_trace[0]
        assert job_from_dict(job_to_dict(job)) == job

    def test_json_serializable(self, small_trace):
        # Every payload must survive a real JSON encode/decode.
        payload = json.loads(json.dumps(job_to_dict(small_trace[0])))
        assert job_from_dict(payload) == small_trace[0]

    def test_schema_version_stamped(self, small_trace):
        assert job_to_dict(small_trace[0])["schema_version"] == SCHEMA_VERSION


class TestRobustness:
    def test_rejects_wrong_schema_version(self, small_trace):
        payload = job_to_dict(small_trace[0])
        payload["schema_version"] = 999
        with pytest.raises(ValueError):
            job_from_dict(payload)

    def test_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(path)

    def test_rejects_invalid_record(self, tmp_path, small_trace):
        payload = job_to_dict(small_trace[0])
        payload["features"]["num_cnodes"] = -1
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="invalid job record"):
            load_trace(path)

    def test_reports_line_numbers(self, tmp_path, small_trace):
        good = json.dumps(job_to_dict(small_trace[0]))
        path = tmp_path / "mixed.jsonl"
        path.write_text(good + "\n" + "oops\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)

    def test_skips_blank_lines(self, tmp_path, small_trace):
        good = json.dumps(job_to_dict(small_trace[0]))
        path = tmp_path / "gaps.jsonl"
        path.write_text("\n" + good + "\n\n")
        assert len(load_trace(path)) == 1

    def test_large_trace_round_trip_preserves_statistics(self, tmp_path):
        from repro.trace.calibration import evaluate_targets

        jobs = generate_trace(num_jobs=3000)
        path = tmp_path / "big.jsonl"
        save_trace(jobs, path)
        loaded = load_trace(path)
        # Identical population => identical calibration measurements.
        original = {r["name"]: r["measured"] for r in evaluate_targets(jobs)}
        reloaded = {r["name"]: r["measured"] for r in evaluate_targets(loaded)}
        assert original == reloaded
