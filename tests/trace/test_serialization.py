"""JSONL trace persistence."""

import json

import pytest

from repro.trace import generate_trace
from repro.trace.serialization import (
    SCHEMA_VERSION,
    append_trace,
    iter_trace,
    job_from_dict,
    job_to_dict,
    load_trace,
    save_trace,
)


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path, small_trace):
        path = tmp_path / "trace.jsonl"
        count = save_trace(small_trace, path)
        assert count == len(small_trace)
        loaded = load_trace(path)
        assert loaded == list(small_trace)

    def test_dict_round_trip(self, small_trace):
        job = small_trace[0]
        assert job_from_dict(job_to_dict(job)) == job

    def test_json_serializable(self, small_trace):
        # Every payload must survive a real JSON encode/decode.
        payload = json.loads(json.dumps(job_to_dict(small_trace[0])))
        assert job_from_dict(payload) == small_trace[0]

    def test_schema_version_stamped(self, small_trace):
        assert job_to_dict(small_trace[0])["schema_version"] == SCHEMA_VERSION


class TestStreaming:
    def test_iter_trace_round_trip(self, tmp_path, small_trace):
        path = tmp_path / "trace.jsonl"
        save_trace(small_trace, path)
        assert list(iter_trace(path)) == list(small_trace)

    def test_iter_trace_is_lazy(self, tmp_path, small_trace):
        path = tmp_path / "trace.jsonl"
        save_trace(small_trace, path)
        stream = iter_trace(path)
        first = next(stream)
        assert first == small_trace[0]
        # A generator, not a list: the rest is still unread.
        assert list(stream) == list(small_trace[1:])

    def test_append_then_iterate(self, tmp_path, small_trace):
        path = tmp_path / "trace.jsonl"
        half = len(small_trace) // 2
        assert save_trace(small_trace[:half], path) == half
        assert append_trace(small_trace[half:], path) == len(
            small_trace
        ) - half
        assert list(iter_trace(path)) == list(small_trace)

    def test_append_creates_missing_file(self, tmp_path, small_trace):
        path = tmp_path / "fresh.jsonl"
        append_trace(small_trace[:3], path)
        assert load_trace(path) == list(small_trace[:3])

    def test_iter_trace_reports_line_numbers(self, tmp_path, small_trace):
        good = json.dumps(job_to_dict(small_trace[0]))
        path = tmp_path / "mixed.jsonl"
        path.write_text(good + "\n" + "oops\n")
        stream = iter_trace(path)
        next(stream)
        with pytest.raises(ValueError, match=":2:"):
            next(stream)


class TestRobustness:
    def test_rejects_wrong_schema_version(self, small_trace):
        payload = job_to_dict(small_trace[0])
        payload["schema_version"] = 999
        with pytest.raises(ValueError):
            job_from_dict(payload)

    def test_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_trace(path)

    def test_rejects_invalid_record(self, tmp_path, small_trace):
        payload = job_to_dict(small_trace[0])
        payload["features"]["num_cnodes"] = -1
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ValueError, match="invalid job record"):
            load_trace(path)

    def test_reports_line_numbers(self, tmp_path, small_trace):
        good = json.dumps(job_to_dict(small_trace[0]))
        path = tmp_path / "mixed.jsonl"
        path.write_text(good + "\n" + "oops\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)

    def test_skips_blank_lines(self, tmp_path, small_trace):
        good = json.dumps(job_to_dict(small_trace[0]))
        path = tmp_path / "gaps.jsonl"
        path.write_text("\n" + good + "\n\n")
        assert len(load_trace(path)) == 1

    def test_large_trace_round_trip_preserves_statistics(self, tmp_path):
        from repro.trace.calibration import evaluate_targets

        jobs = generate_trace(num_jobs=3000)
        path = tmp_path / "big.jsonl"
        save_trace(jobs, path)
        loaded = load_trace(path)
        # Identical population => identical calibration measurements.
        original = {r["name"]: r["measured"] for r in evaluate_targets(jobs)}
        reloaded = {r["name"]: r["measured"] for r in evaluate_targets(loaded)}
        assert original == reloaded
