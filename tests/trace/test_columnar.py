"""The sharded columnar trace store and its JSONL interop."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.architectures import Architecture
from repro.core.population import FeatureArrays
from repro.trace import generate_trace
from repro.trace.columnar import (
    COLUMNAR_FORMAT,
    MANIFEST_NAME,
    ColumnarTrace,
    columnar_to_jsonl,
    is_columnar_store,
    jsonl_to_columnar,
    write_columnar,
)
from repro.trace.serialization import save_trace


@pytest.fixture(scope="module")
def store(tmp_path_factory, small_trace):
    path = tmp_path_factory.mktemp("columnar") / "trace.columnar"
    write_columnar(small_trace, path, shard_rows=128)
    return path


class TestStoreLayout:
    def test_is_columnar_store(self, store, tmp_path):
        assert is_columnar_store(store)
        assert not is_columnar_store(tmp_path)

    def test_manifest_contents(self, store, small_trace):
        manifest = json.loads(
            (store / MANIFEST_NAME).read_text(encoding="utf-8")
        )
        assert manifest["format"] == COLUMNAR_FORMAT
        assert manifest["jobs"] == len(small_trace)
        assert sum(s["rows"] for s in manifest["shards"]) == len(small_trace)
        assert len(manifest["shards"]) == -(-len(small_trace) // 128)
        for shard in manifest["shards"]:
            assert len(shard["sha256"]) == 64

    def test_open_verifies_digests(self, store):
        ColumnarTrace.open(store, verify=True)

    def test_corruption_is_detected(self, store, tmp_path, small_trace):
        import shutil

        broken = tmp_path / "broken.columnar"
        shutil.copytree(store, broken)
        shard = sorted(broken.glob("shard-*.npz"))[0]
        raw = shard.read_bytes()
        shard.write_bytes(raw[:-1] + bytes([raw[-1] ^ 0xFF]))
        with pytest.raises(ValueError, match="digest mismatch"):
            ColumnarTrace.open(broken, verify=True)

    def test_open_rejects_non_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ColumnarTrace.open(tmp_path / "nope")

    def test_digest_identifies_contents(self, store, tmp_path, small_trace):
        other = tmp_path / "copy.columnar"
        write_columnar(small_trace, other, shard_rows=128)
        assert ColumnarTrace.open(store).digest() == (
            ColumnarTrace.open(other).digest()
        )
        shuffled = tmp_path / "different.columnar"
        write_columnar(list(small_trace)[::-1], shuffled, shard_rows=128)
        assert ColumnarTrace.open(store).digest() != (
            ColumnarTrace.open(shuffled).digest()
        )


class TestRoundTrip:
    def test_records_round_trip_exactly(self, store, small_trace):
        assert list(ColumnarTrace.open(store).iter_records()) == list(
            small_trace
        )

    def test_jsonl_conversion_is_lossless(self, tmp_path, small_trace):
        jsonl = tmp_path / "trace.jsonl"
        save_trace(small_trace, jsonl)
        columnar = tmp_path / "trace.columnar"
        assert jsonl_to_columnar(jsonl, columnar, shard_rows=100) == len(
            small_trace
        )
        back = tmp_path / "back.jsonl"
        assert columnar_to_jsonl(columnar, back) == len(small_trace)
        assert back.read_bytes() == jsonl.read_bytes()

    def test_mmap_and_eager_loads_agree(self, store):
        mapped = ColumnarTrace.open(store, mmap=True)
        eager = ColumnarTrace.open(store, mmap=False)
        for name in ("flop_count", "num_cnodes", "architecture"):
            assert np.array_equal(mapped.column(name), eager.column(name))

    def test_single_shard_column_is_memory_mapped(
        self, tmp_path, small_trace
    ):
        path = tmp_path / "one.columnar"
        write_columnar(small_trace, path)
        column = ColumnarTrace.open(path).column("flop_count")
        assert isinstance(column, np.memmap)


class TestFeatureArrays:
    def test_byte_identical_to_from_workloads(self, store, small_trace):
        from_store = ColumnarTrace.open(store).feature_arrays()
        from_objects = FeatureArrays.from_workloads(
            job.features for job in small_trace
        )
        for field in dataclasses.fields(FeatureArrays):
            ours = np.asarray(getattr(from_store, field.name))
            theirs = np.asarray(getattr(from_objects, field.name))
            assert ours.dtype == theirs.dtype, field.name
            assert ours.tobytes() == theirs.tobytes(), field.name

    def test_architecture_filter(self, store, small_trace):
        arch = Architecture.PS_WORKER
        filtered = ColumnarTrace.open(store).feature_arrays(arch)
        expected = FeatureArrays.from_workloads(
            job.features
            for job in small_trace
            if job.features.architecture is arch
        )
        assert np.array_equal(filtered.num_cnodes, expected.num_cnodes)
        assert np.array_equal(filtered.flop_count, expected.flop_count)

    def test_from_columnar_validates(self):
        columns = {
            "architecture": np.array([0]),
            "num_cnodes": np.array([0]),  # invalid
            "batch_size": np.array([1]),
            "flop_count": np.array([1.0]),
            "memory_access_bytes": np.array([1.0]),
            "input_bytes": np.array([1.0]),
            "weight_traffic_bytes": np.array([0.0]),
            "embedding_traffic_bytes": np.array([0.0]),
        }
        with pytest.raises(ValueError, match="num_cnodes"):
            FeatureArrays.from_columnar(columns)
        columns["num_cnodes"] = np.array([2])  # 1w1g with 2 cNodes
        with pytest.raises(ValueError, match="one cNode"):
            FeatureArrays.from_columnar(columns)
        with pytest.raises(KeyError, match="missing columns"):
            FeatureArrays.from_columnar({"architecture": np.array([0])})

    def test_empty_population_rejected(self, tmp_path):
        path = tmp_path / "empty.columnar"
        write_columnar([], path)
        store = ColumnarTrace.open(path)
        assert len(store) == 0
        assert list(store.iter_records()) == []
        with pytest.raises(ValueError, match="empty"):
            store.feature_arrays()


class TestExperimentRouting:
    def test_figs_identical_across_trace_sources(self, tmp_path, monkeypatch):
        """Figure experiments are byte-identical on columnar vs JSONL."""
        import repro.analysis.context as ctx
        from repro.analysis import (
            fig07_breakdown,
            fig08_cdf,
            fig09_allreduce,
            fig10_shift,
            fig11_hardware,
        )

        jobs = generate_trace(num_jobs=1500, seed=3)
        jsonl = tmp_path / "t.jsonl"
        columnar = tmp_path / "t.columnar"
        save_trace(jobs, jsonl)
        write_columnar(jobs, columnar, shard_rows=512)
        modules = (
            fig07_breakdown,
            fig08_cdf,
            fig09_allreduce,
            fig10_shift,
            fig11_hardware,
        )

        def result_bytes(result):
            return json.dumps(
                dataclasses.asdict(result), sort_keys=True, default=repr
            )

        def run_all():
            ctx.clear_caches()
            return [result_bytes(module.run()) for module in modules]

        try:
            monkeypatch.setenv(ctx.TRACE_PATH_ENV_VAR, str(columnar))
            via_columnar = run_all()
            monkeypatch.setenv(ctx.TRACE_PATH_ENV_VAR, str(jsonl))
            via_jsonl = run_all()
            monkeypatch.delenv(ctx.TRACE_PATH_ENV_VAR)
            explicit = [
                result_bytes(module.run(jobs=tuple(jobs)))
                for module in modules
            ]
        finally:
            ctx.clear_caches()
        assert via_columnar == via_jsonl == explicit

    def test_fingerprint_covers_trace_source(self, tmp_path, monkeypatch):
        import repro.analysis.context as ctx
        from repro.runtime.fingerprint import experiment_fingerprint

        jobs = generate_trace(num_jobs=50, seed=5)
        columnar = tmp_path / "t.columnar"
        write_columnar(jobs, columnar)
        try:
            baseline = experiment_fingerprint("fig7")
            monkeypatch.setenv(ctx.TRACE_PATH_ENV_VAR, str(columnar))
            ctx.clear_caches()
            external = experiment_fingerprint("fig7")
        finally:
            ctx.clear_caches()
        assert baseline != external
