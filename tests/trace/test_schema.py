"""JobRecord schema and type filters."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.trace.schema import JobRecord, features_of_type, jobs_of_type


def record(job_id=0, architecture=Architecture.SINGLE, num_cnodes=1):
    features = WorkloadFeatures(
        name=f"job-{job_id}",
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=32,
        flop_count=1e9,
        memory_access_bytes=1e6,
        input_bytes=1e3,
        weight_traffic_bytes=0.0 if architecture is Architecture.SINGLE else 1e6,
        dense_weight_bytes=1e6,
    )
    return JobRecord(job_id=job_id, features=features)


class TestJobRecord:
    def test_workload_type_delegates(self):
        job = record(architecture=Architecture.PS_WORKER, num_cnodes=4)
        assert job.workload_type is Architecture.PS_WORKER
        assert job.num_cnodes == 4

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            JobRecord(job_id=-1, features=record().features)

    def test_rejects_negative_day(self):
        with pytest.raises(ValueError):
            JobRecord(job_id=0, features=record().features, submit_day=-1)


class TestFilters:
    def test_jobs_of_type(self):
        jobs = [
            record(0),
            record(1, Architecture.PS_WORKER, 4),
            record(2, Architecture.PS_WORKER, 8),
        ]
        ps = jobs_of_type(jobs, Architecture.PS_WORKER)
        assert [j.job_id for j in ps] == [1, 2]

    def test_features_of_type(self):
        jobs = [record(0), record(1, Architecture.PS_WORKER, 4)]
        features = features_of_type(jobs, Architecture.SINGLE)
        assert len(features) == 1
        assert features[0].architecture is Architecture.SINGLE

    def test_empty_result(self):
        assert jobs_of_type([], Architecture.PS_WORKER) == []
