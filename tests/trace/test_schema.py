"""JobRecord schema and type filters."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.trace.schema import (
    JobRecord,
    features_of_type,
    iter_day_groups,
    jobs_of_type,
)


def record(job_id=0, architecture=Architecture.SINGLE, num_cnodes=1):
    features = WorkloadFeatures(
        name=f"job-{job_id}",
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=32,
        flop_count=1e9,
        memory_access_bytes=1e6,
        input_bytes=1e3,
        weight_traffic_bytes=0.0 if architecture is Architecture.SINGLE else 1e6,
        dense_weight_bytes=1e6,
    )
    return JobRecord(job_id=job_id, features=features)


class TestJobRecord:
    def test_workload_type_delegates(self):
        job = record(architecture=Architecture.PS_WORKER, num_cnodes=4)
        assert job.workload_type is Architecture.PS_WORKER
        assert job.num_cnodes == 4

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            JobRecord(job_id=-1, features=record().features)

    def test_rejects_negative_day(self):
        with pytest.raises(ValueError):
            JobRecord(job_id=0, features=record().features, submit_day=-1)


class TestFilters:
    def test_jobs_of_type(self):
        jobs = [
            record(0),
            record(1, Architecture.PS_WORKER, 4),
            record(2, Architecture.PS_WORKER, 8),
        ]
        ps = jobs_of_type(jobs, Architecture.PS_WORKER)
        assert [j.job_id for j in ps] == [1, 2]

    def test_features_of_type(self):
        jobs = [record(0), record(1, Architecture.PS_WORKER, 4)]
        features = features_of_type(jobs, Architecture.SINGLE)
        assert len(features) == 1
        assert features[0].architecture is Architecture.SINGLE

    def test_empty_result(self):
        assert jobs_of_type([], Architecture.PS_WORKER) == []


def record_on_day(job_id, day, architecture=Architecture.SINGLE):
    base = record(job_id=job_id, architecture=architecture)
    return JobRecord(
        job_id=job_id, features=base.features, submit_day=day
    )


class TestIterDayGroups:
    def test_contiguous_runs(self):
        jobs = [
            record_on_day(0, 0),
            record_on_day(1, 0),
            record_on_day(2, 3),
            record_on_day(3, 5),
            record_on_day(4, 5),
        ]
        groups = list(iter_day_groups(jobs))
        assert [day for day, _ in groups] == [0, 3, 5]
        assert [[j.job_id for j in g] for _, g in groups] == [
            [0, 1],
            [2],
            [3, 4],
        ]

    def test_empty_stream(self):
        assert list(iter_day_groups([])) == []

    def test_unsorted_stream_yields_one_run_per_change(self):
        # The grouping is over *contiguous* runs: an unsorted stream
        # simply produces a group per day change, order preserved.
        jobs = [record_on_day(0, 2), record_on_day(1, 0), record_on_day(2, 2)]
        groups = list(iter_day_groups(jobs))
        assert [day for day, _ in groups] == [2, 0, 2]

    def test_streams_lazily(self):
        def infinite():
            day = 0
            while True:
                yield record_on_day(day, day)
                day += 1

        iterator = iter_day_groups(infinite())
        day, group = next(iterator)
        assert day == 0 and [j.job_id for j in group] == [0]


class TestJobView:
    @pytest.fixture()
    def store(self, tmp_path):
        from repro.trace.columnar import ColumnarTrace, write_columnar

        jobs = [
            record_on_day(0, 1),
            record_on_day(1, 1, architecture=Architecture.PS_WORKER),
            record_on_day(2, 4),
        ]
        path = tmp_path / "schema.columnar"
        write_columnar(jobs, path, shard_rows=2)
        return jobs, ColumnarTrace.open(path)

    def test_views_equal_records_both_ways(self, store):
        jobs, trace = store
        views = list(trace.iter_views())
        assert views == jobs
        assert jobs == views
        for view, job in zip(views, jobs):
            assert hash(view) == hash(job)
            assert view.workload_type is job.workload_type
            assert view.num_cnodes == job.num_cnodes
            assert view.user_group == job.user_group

    def test_views_interchange_as_dict_keys(self, store):
        jobs, trace = store
        by_record = {job: job.job_id for job in jobs}
        for view in trace.iter_views():
            assert by_record[view] == view.job_id

    def test_inequality_against_other_types(self, store):
        jobs, trace = store
        view = next(trace.iter_views())
        assert view != object()
        assert (view == object()) is False


class TestFeaturesOfTypeDispatch:
    def test_feature_arrays_input_yields_views(self):
        from repro.core.population import FeatureArrays, FeatureView

        jobs = [
            record(0),
            record(1, architecture=Architecture.PS_WORKER, num_cnodes=4),
            record(2, architecture=Architecture.PS_WORKER, num_cnodes=2),
        ]
        arrays = FeatureArrays.from_workloads([j.features for j in jobs])
        selected = features_of_type(arrays, Architecture.PS_WORKER)
        assert all(isinstance(f, FeatureView) for f in selected)
        assert selected == features_of_type(jobs, Architecture.PS_WORKER)

    def test_empty_selection(self):
        from repro.core.population import FeatureArrays

        arrays = FeatureArrays.from_workloads(
            [record(0).features, record(1).features]
        )
        assert features_of_type(arrays, Architecture.PEARL) == []
