"""Every Sec. III statistic must emerge from the synthetic trace."""

import pytest

from repro.trace.calibration import CALIBRATION_TARGETS, evaluate_targets


@pytest.fixture(scope="module")
def checks(trace):
    return {check["name"]: check for check in evaluate_targets(list(trace))}


class TestTargetList:
    def test_target_count(self):
        assert len(CALIBRATION_TARGETS) == 20

    def test_names_unique(self):
        names = [t.name for t in CALIBRATION_TARGETS]
        assert len(set(names)) == len(names)

    def test_descriptions_cite_the_paper(self):
        for target in CALIBRATION_TARGETS:
            assert "Sec." in target.description or "Fig." in target.description


@pytest.mark.parametrize("target", CALIBRATION_TARGETS, ids=lambda t: t.name)
def test_target_within_tolerance(target, checks):
    check = checks[target.name]
    assert check["ok"], (
        f"{target.name}: measured {check['measured']:.4g} vs paper "
        f"{check['paper']:.4g} (tolerance {check['tolerance']})\n"
        f"  source: {target.description}"
    )


class TestKeyHeadlines:
    """The abstract's three headline numbers, asserted directly."""

    def test_weight_communication_dominates(self, checks):
        # "weight/gradient communication ... takes almost 62% of the
        # total execution time ... on average" (cNode level).
        assert checks["weight_share_cnode_level"]["measured"] > 0.5

    def test_60_percent_of_ps_jobs_gain_from_allreduce_local(self, checks):
        sped_up = 1.0 - checks["local_throughput_not_sped_up"]["measured"]
        assert 0.55 <= sped_up <= 0.70

    def test_ethernet_upgrade_gives_about_1_7x(self, checks):
        assert checks["ethernet_100g_speedup"]["measured"] == pytest.approx(
            1.7, abs=0.2
        )
