"""Tenant-group analytics."""

import pytest

from repro.core.architectures import Architecture
from repro.trace.groups import group_profiles, resource_concentration


class TestGroupProfiles:
    def test_covers_all_groups(self, small_trace):
        profiles = group_profiles(small_trace)
        groups = {p.group for p in profiles}
        assert groups == {j.user_group for j in small_trace}

    def test_sorted_by_resources(self, small_trace):
        profiles = group_profiles(small_trace)
        totals = [p.cnode_total for p in profiles]
        assert totals == sorted(totals, reverse=True)

    def test_job_counts_sum(self, small_trace):
        profiles = group_profiles(small_trace)
        assert sum(p.job_count for p in profiles) == len(small_trace)

    def test_dominant_type_is_a_member_type(self, small_trace):
        for profile in group_profiles(small_trace):
            members = [
                j for j in small_trace if j.user_group == profile.group
            ]
            assert profile.dominant_type in {j.workload_type for j in members}

    def test_median_weight_positive(self, small_trace):
        assert all(
            p.median_weight_bytes > 0 for p in group_profiles(small_trace)
        )


class TestResourceConcentration:
    def test_bounds(self, trace):
        share = resource_concentration(list(trace), top_fraction=0.2)
        assert 0.2 <= share <= 1.0

    def test_full_fraction_is_everything(self, small_trace):
        assert resource_concentration(small_trace, top_fraction=1.0) == (
            pytest.approx(1.0)
        )

    def test_monotone_in_fraction(self, trace):
        jobs = list(trace)
        shares = [
            resource_concentration(jobs, f) for f in (0.1, 0.3, 0.6, 1.0)
        ]
        assert shares == sorted(shares)

    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            resource_concentration(small_trace, top_fraction=0.0)
        with pytest.raises(ValueError):
            resource_concentration([], top_fraction=0.5)
