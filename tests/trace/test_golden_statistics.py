"""Golden statistics of the default trace.

Guards the calibrated generator against silent drift: if a change moves
these aggregate statistics, the calibration (and hence every Sec. III
reproduction) likely moved too.  Bounds are deliberately wider than the
calibration tolerances -- this test flags *accidental* changes, the
calibration suite judges correctness.
"""

import numpy as np
import pytest

from repro.core.architectures import Architecture
from repro.trace import generate_trace, jobs_of_type


@pytest.fixture(scope="module")
def golden_trace():
    return generate_trace(num_jobs=4000, seed=20190501)


class TestGoldenAggregates:
    def test_type_mix(self, golden_trace):
        counts = {
            arch: len(jobs_of_type(golden_trace, arch))
            for arch in Architecture
        }
        total = len(golden_trace)
        assert counts[Architecture.SINGLE] / total == pytest.approx(0.60, abs=0.03)
        assert counts[Architecture.PS_WORKER] / total == pytest.approx(0.29, abs=0.03)

    def test_ps_cnode_distribution(self, golden_trace):
        cnodes = np.array(
            [j.num_cnodes for j in jobs_of_type(golden_trace, Architecture.PS_WORKER)]
        )
        assert 6 <= np.median(cnodes) <= 10
        assert 15 <= cnodes.mean() <= 30
        assert cnodes.max() <= 320

    def test_weight_scale(self, golden_trace):
        weights = np.array([j.features.weight_bytes for j in golden_trace])
        assert 1e6 < np.median(weights) < 1e8
        assert weights.max() > 50e9

    def test_feature_magnitudes(self, golden_trace):
        flops = np.array([j.features.flop_count for j in golden_trace])
        memory = np.array(
            [j.features.memory_access_bytes for j in golden_trace]
        )
        # Step-scale workloads: GFLOPs-to-TFLOPs compute, GB-scale access.
        assert 1e9 < np.median(flops) < 1e13
        assert 1e8 < np.median(memory) < 1e12

    def test_determinism_of_golden_seed(self, golden_trace):
        again = generate_trace(num_jobs=4000, seed=20190501)
        assert [j.features for j in again] == [
            j.features for j in golden_trace
        ]
