"""The census experiment module."""

import pytest

from repro.analysis.census import run
from repro.analysis.context import default_trace


@pytest.fixture(scope="module")
def result():
    return run(default_trace(6000))


class TestCensus:
    def test_three_populations(self, result):
        assert len(result.rows) == 3

    def test_rows_sum_to_one(self, result):
        for row in result.rows:
            total = sum(v for k, v in row.items() if k != "population")
            assert total == pytest.approx(1.0)

    def test_projection_shift_visible(self, result):
        rows = {row["population"]: row for row in result.rows}
        assert (
            rows["PS/Worker"]["communication"]
            > rows["PS/Worker -> AllReduce-Local"]["communication"]
        )

    def test_registered(self):
        from repro.analysis.registry import experiment_ids

        assert "census" in experiment_ids()
