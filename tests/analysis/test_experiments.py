"""Every experiment module regenerates its table/figure with the right
shape: who wins, by roughly what factor, where the shifts land."""

import pytest

from repro.analysis import registry
from repro.analysis.context import default_trace
from repro.analysis.paper_constants import FIG9, FIG13


@pytest.fixture(scope="module")
def jobs():
    # Shared across the experiment tests; matches the analysis default.
    return default_trace(8000)


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        ids = set(registry.experiment_ids())
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig15", "fig16",
        }
        assert expected <= ids

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            registry.run_experiment("fig99")

    def test_every_experiment_runs_and_renders(self):
        for experiment_id in registry.experiment_ids():
            result = registry.run_experiment(experiment_id)
            assert result.rows, experiment_id
            assert result.render()


class TestFig5:
    def test_shares(self, jobs):
        from repro.analysis import fig05_composition

        result = fig05_composition.run(jobs)
        by_type = {row["type"]: row for row in result.rows}
        assert by_type["PS/Worker"]["job_share"] == pytest.approx(0.29, abs=0.02)
        assert by_type["PS/Worker"]["cnode_share"] == pytest.approx(0.81, abs=0.06)
        assert by_type["1w1g"]["job_share"] > 0.5


class TestFig6:
    def test_scale_shape(self, jobs):
        from repro.analysis import fig06_scale

        result = fig06_scale.run(jobs)
        ps = next(r for r in result.rows if r["type"] == "PS/Worker")
        assert ps["cnodes_p50"] <= 12
        assert ps["cnodes_max"] > 128
        assert ps["weight_p99"] > 10e9


class TestFig7:
    def test_weight_dominates_at_cnode_level(self, jobs):
        from repro.analysis import fig07_breakdown

        result = fig07_breakdown.run(jobs)
        all_cnode = next(
            r for r in result.rows
            if r["population"] == "all" and r["level"] == "cNode"
        )
        assert all_cnode["weight"] > 0.5
        assert all_cnode["memory_bound"] > all_cnode["compute_bound"]

    def test_fractions_sum_to_one(self, jobs):
        from repro.analysis import fig07_breakdown

        for row in fig07_breakdown.run(jobs).rows:
            total = (
                row["data_io"] + row["weight"]
                + row["compute_bound"] + row["memory_bound"]
            )
            assert total == pytest.approx(1.0)


class TestFig8:
    def test_cdfs_cover_types_and_levels(self, jobs):
        from repro.analysis import fig08_cdf

        result = fig08_cdf.run(jobs)
        assert len(result.rows) == 3 * 2 * 4  # types x levels x components

    def test_hardware_cdfs(self, jobs):
        from repro.analysis.fig08_cdf import hardware_cdfs

        cdfs = hardware_cdfs(jobs)
        assert {"GPU_FLOPs", "GPU_memory", "PCIe", "Ethernet"} <= set(cdfs)


class TestFig9:
    def test_not_sped_up_markers(self, jobs):
        from repro.analysis import fig09_allreduce

        result = fig09_allreduce.run(jobs)
        by_curve = {row["curve"]: row for row in result.rows}
        local = by_curve["AllReduce-Local single-cNode"]
        assert local["not_sped_up"] == pytest.approx(
            FIG9["local_single_not_sped_up"], abs=0.06
        )
        throughput = by_curve["AllReduce-Local throughput"]
        assert throughput["not_sped_up"] == pytest.approx(
            FIG9["local_throughput_not_sped_up"], abs=0.07
        )

    def test_cluster_speedups_capped(self, jobs):
        from repro.analysis import fig09_allreduce

        result = fig09_allreduce.run(jobs)
        cluster = next(
            r for r in result.rows
            if r["curve"] == "AllReduce-Cluster all workloads"
        )
        assert cluster["p90_speedup"] <= 1.25


class TestFig10:
    def test_data_io_rises_most(self, jobs):
        from repro.analysis import fig10_shift

        result = fig10_shift.run(jobs)
        by_component = {row["component"]: row for row in result.rows}
        weight = by_component["weight"]
        data = by_component["data_io"]
        assert weight["delta"] < 0  # weight share collapses
        biggest = max(result.rows, key=lambda r: r["delta"])
        assert biggest["component"] == "data_io"
        assert data["allreduce_local_share"] > data["ps_worker_share"]


class TestFig11:
    def test_panel_sensitivities(self, jobs):
        from repro.analysis import fig11_hardware

        result = fig11_hardware.run(jobs)
        note = result.notes[0]
        assert "PS/Worker: ethernet" in note
        assert "AllReduce-Local: gpu_memory" in note

    def test_ethernet_100g_speedup(self, jobs):
        from repro.analysis import fig11_hardware

        result = fig11_hardware.run(jobs)
        point = next(
            r for r in result.rows
            if r["panel"] == "PS/Worker"
            and r["resource"] == "ethernet"
            and r["normalized"] == pytest.approx(4.0)
        )
        assert point["avg_speedup"] == pytest.approx(1.7, abs=0.2)


class TestCaseStudies:
    def test_fig12_shape(self):
        from repro.analysis.case_studies import run_fig12

        result = run_fig12()
        by_model = {row["model"]: row for row in result.rows}
        speech = abs(by_model["Speech"]["difference"])
        others = [
            abs(row["difference"])
            for name, row in by_model.items()
            if name != "Speech"
        ]
        assert speech > 0.35
        assert max(others) < 0.17
        assert speech > 2 * max(others)

    def test_table4_table5_render(self):
        from repro.analysis.case_studies import run_table4, run_table5

        assert len(run_table4().rows) == 6
        assert len(run_table5().rows) == 6

    def test_table6_matches_constants(self):
        from repro.analysis.case_studies import run_table6

        rows = {row["model"]: row for row in run_table6().rows}
        assert rows["Speech"]["gddr"] == pytest.approx(0.031)


class TestFig13:
    def test_panel_a_speedups(self):
        from repro.analysis.fig13_optimizations import run_panel_a

        result = run_panel_a()
        by_config = {row["configuration"]: row for row in result.rows}
        assert by_config["MP"]["speedup"] == pytest.approx(
            FIG13["bert_mp_end_to_end"], abs=0.15
        )
        assert by_config["XLA"]["speedup"] > 1.3
        assert by_config["MP+XLA"]["speedup"] > by_config["MP"]["speedup"]
        assert by_config["MP+XLA"]["speedup"] > by_config["XLA"]["speedup"]

    def test_panel_b_elementwise(self):
        from repro.analysis.fig13_optimizations import run_panel_b

        result = run_panel_b()
        default, xla = result.rows
        assert default["elementwise_s"] / xla["elementwise_s"] == pytest.approx(
            FIG13["speech_xla_elementwise"], abs=0.5
        )

    def test_panel_c_bottleneck_varies(self):
        from repro.analysis.fig13_optimizations import run_panel_c

        rows = run_panel_c().rows
        elementwise = [row["elementwise_share"] for row in rows]
        compute = [row["compute_share"] for row in rows]
        # The composition changes materially across configurations.
        assert max(compute) > 1.5 * min(compute)
        assert max(elementwise) > 0.4

    def test_panel_d_pearl_wins(self):
        from repro.analysis.fig13_optimizations import run_panel_d

        rows = {row["deployment"]: row for row in run_panel_d().rows}
        pearl = rows["PEARL (measured)"]
        ps = rows["PS/Worker (estimated)"]
        assert ps["comm_share"] > 0.9
        assert pearl["comm_share"] < 0.45
        assert pearl["step_s"] < ps["step_s"] / 5


class TestFig15:
    def test_scenario_ordering(self, jobs):
        from repro.analysis import fig15_efficiency

        result = fig15_efficiency.run(jobs)
        medians = {row["scenario"]: row["p50"] for row in result.rows}
        assert medians["Communication eff. 50%"] > medians["All eff. 70%"]
        assert medians["Computation eff. 25%"] < medians["Computation eff. 50%"]
        assert medians["Computation eff. 50%"] < medians["All eff. 70%"]


class TestFig16:
    def test_eq3_and_overlap(self, jobs):
        from repro.analysis import fig16_overlap

        result = fig16_overlap.run(jobs)
        assert any("21" in note for note in result.notes)
        by_mode = {row["composition"]: row for row in result.rows}
        non = by_mode["non-overlap"]["not_sped_up"]
        ideal = by_mode["ideal overlap"]["not_sped_up"]
        # Sec. V-B: the fraction barely changes between compositions.
        assert abs(non - ideal) < 0.08


class TestCalibrationReport:
    def test_all_targets_pass(self, jobs):
        from repro.analysis.calibration_report import run

        result = run(jobs)
        assert all(row["ok"] for row in result.rows), result.notes
