"""Markdown report generation and the extended CLI."""

import pytest

from repro.analysis.cli import main
from repro.analysis.report import render_markdown
from repro.analysis.result import ExperimentResult


def toy_results():
    return [
        ExperimentResult(
            experiment="figX",
            title="Toy experiment",
            rows=[{"a": 1, "b": 0.5}],
            notes=["a note"],
        ),
        ExperimentResult(
            experiment="tableY",
            title="Another",
            rows=[],
        ),
    ]


class TestRenderMarkdown:
    def test_structure(self):
        text = render_markdown(toy_results())
        assert text.startswith("# Reproduction report")
        assert "## figX" in text
        assert "| a | b |" in text
        assert "> a note" in text
        assert "*(no rows)*" in text

    def test_contents_links(self):
        text = render_markdown(toy_results())
        assert "- [figX](#figX): Toy experiment" in text


def _patch_suite(monkeypatch, experiments):
    """Shrink the registry so the CLI suite commands run fast."""
    import repro.analysis.registry as registry_module

    monkeypatch.setattr(registry_module, "EXPERIMENTS", experiments)


class TestCliReport:
    def test_report_command_writes_file(self, tmp_path, capsys, monkeypatch):
        results = toy_results()
        _patch_suite(
            monkeypatch,
            {r.experiment: (lambda r=r: r) for r in results},
        )
        out = tmp_path / "report.md"
        code = main(
            ["report", "-o", str(out), "--jobs", "1", "--no-cache"]
        )
        assert code == 0
        assert out.exists()
        assert "figX" in out.read_text()

    def test_report_records_failures_and_exits_nonzero(
        self, tmp_path, capsys, monkeypatch
    ):
        ok = toy_results()[0]

        def broken():
            raise RuntimeError("injected failure")

        _patch_suite(
            monkeypatch, {"figX": lambda: ok, "broken": broken}
        )
        out = tmp_path / "report.md"
        code = main(
            ["report", "-o", str(out), "--jobs", "1", "--no-cache"]
        )
        assert code == 1
        text = out.read_text()
        # The healthy experiment still rendered...
        assert "## figX" in text
        # ...and the failure is documented instead of aborting the run.
        assert "## Failed experiments" in text
        assert "injected failure" in text
        err = capsys.readouterr().err
        assert "1 of 2 experiments failed: broken" in err


class TestRenderMarkdownFailures:
    def test_failure_section(self):
        text = render_markdown(
            toy_results(), failures=[("figZ", "Traceback: boom")]
        )
        assert "- [figZ](#failed-experiments): **FAILED**" in text
        assert "### figZ" in text
        assert "Traceback: boom" in text


class TestCliTrace:
    def test_trace_command_round_trips(self, tmp_path, capsys):
        from repro.trace import load_trace

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "-o", str(out), "-n", "150", "--seed", "5"]) == 0
        jobs = load_trace(out)
        assert len(jobs) == 150
        assert "wrote 150 jobs" in capsys.readouterr().out

    def test_trace_check_passes_on_default_seed(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["trace", "-o", str(out), "-n", "8000", "--check"])
        output = capsys.readouterr().out
        assert code == 0, output
        assert "all calibration targets within tolerance" in output
