"""Markdown report generation and the extended CLI."""

import pytest

from repro.analysis.cli import main
from repro.analysis.report import render_markdown
from repro.analysis.result import ExperimentResult


def toy_results():
    return [
        ExperimentResult(
            experiment="figX",
            title="Toy experiment",
            rows=[{"a": 1, "b": 0.5}],
            notes=["a note"],
        ),
        ExperimentResult(
            experiment="tableY",
            title="Another",
            rows=[],
        ),
    ]


class TestRenderMarkdown:
    def test_structure(self):
        text = render_markdown(toy_results())
        assert text.startswith("# Reproduction report")
        assert "## figX" in text
        assert "| a | b |" in text
        assert "> a note" in text
        assert "*(no rows)*" in text

    def test_contents_links(self):
        text = render_markdown(toy_results())
        assert "- [figX](#figX): Toy experiment" in text


class TestCliReport:
    def test_report_command_writes_file(self, tmp_path, capsys, monkeypatch):
        # Patch the suite down to something fast.
        import repro.analysis.report as report_module

        monkeypatch.setattr(report_module, "run_all", toy_results)
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out)]) == 0
        assert out.exists()
        assert "figX" in out.read_text()


class TestCliTrace:
    def test_trace_command_round_trips(self, tmp_path, capsys):
        from repro.trace import load_trace

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "-o", str(out), "-n", "150", "--seed", "5"]) == 0
        jobs = load_trace(out)
        assert len(jobs) == 150
        assert "wrote 150 jobs" in capsys.readouterr().out

    def test_trace_check_passes_on_default_seed(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["trace", "-o", str(out), "-n", "8000", "--check"])
        output = capsys.readouterr().out
        assert code == 0, output
        assert "all calibration targets within tolerance" in output
