"""Internal consistency of the recorded paper constants."""

import pytest

from repro.analysis.paper_constants import (
    FIG5,
    FIG9,
    FIG13,
    FIG16,
    SEC3_OBSERVATIONS,
    TABLE_I,
    TABLE_IV,
    TABLE_V,
)
from repro.core import pai_default_hardware


class TestTableI:
    def test_matches_default_hardware(self):
        hardware = pai_default_hardware()
        assert TABLE_I["gpu_flops"] == hardware.gpu.peak_flops
        assert TABLE_I["ethernet"] == hardware.ethernet.bandwidth
        assert TABLE_I["pcie"] == hardware.pcie.bandwidth
        assert TABLE_I["nvlink"] == hardware.nvlink.bandwidth

    def test_ethernet_in_bytes(self):
        # 25 Gbps == 3.125 GB/s; recording bits here would break Eq. 3.
        assert TABLE_I["ethernet"] == pytest.approx(3.125e9)


class TestTables4And5:
    def test_same_model_set(self):
        assert set(TABLE_IV) == set(TABLE_V)
        assert len(TABLE_IV) == 6

    def test_values_positive(self):
        for row in TABLE_V.values():
            assert row["flop_count"] > 0
            assert row["memory_access"] > 0
            assert row["batch_size"] >= 1

    def test_known_anchors(self):
        assert TABLE_V["ResNet50"]["network_traffic"] == pytest.approx(357e6)
        assert TABLE_IV["Multi-Interests"]["embedding"] == pytest.approx(
            239.45e9
        )


class TestFigureMarkers:
    def test_fractions_in_unit_interval(self):
        for group in (FIG5, FIG9, FIG16):
            for key, value in group.items():
                if key == "weight_bound_speedup":
                    continue
                assert 0.0 <= value <= 1.0, key

    def test_eq3_marker(self):
        assert FIG16["weight_bound_speedup"] == 21.0

    def test_fig9_consistency(self):
        # Throughput failures include single-cNode failures.
        assert (
            FIG9["local_throughput_not_sped_up"]
            >= FIG9["local_single_not_sped_up"]
        )

    def test_fig13_speedups_above_one(self):
        for key, value in FIG13.items():
            if key.endswith("share"):
                assert 0 < value < 1
            else:
                assert value >= 1.0

    def test_sec3_observations(self):
        assert SEC3_OBSERVATIONS["ethernet_100g_speedup"] == pytest.approx(1.7)
        assert SEC3_OBSERVATIONS["ps_resource_share"] == pytest.approx(0.81)
