"""Regression: rewriting the external trace mid-process must be seen.

The external-trace caches used to key on the *path* alone, so a
process that re-generated the trace at :data:`PAI_REPRO_TRACE_PATH`
kept serving the old records -- while
:func:`~repro.analysis.context.trace_source_identity` (re-probed every
call) reported the new digest.  A result-cache fingerprint could then
pair a fresh digest with stale data.  The caches now key on content
identity -- ``(size, mtime_ns)`` for JSONL, the manifest digest for
columnar stores -- probed fresh on every lookup, with **no**
``clear_caches()`` call required in between.
"""

import os

import pytest

from repro.analysis import context
from repro.trace.columnar import write_columnar
from repro.trace.generator import TraceConfig, generate_trace
from repro.trace.serialization import save_trace


@pytest.fixture(autouse=True)
def fresh_caches():
    context.clear_caches()
    yield
    context.clear_caches()


def _distinct_traces():
    """Two traces with different contents and record counts."""
    first = generate_trace(config=TraceConfig(num_jobs=60, seed=1))
    second = generate_trace(config=TraceConfig(num_jobs=45, seed=2))
    assert first != second
    return first, second


def _backdate(path):
    """Force a distinct mtime_ns even on coarse filesystem clocks."""
    stat = os.stat(path)
    os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns - 1_000_000))


class TestJsonlRewrite:
    def test_default_trace_sees_the_rewrite(self, tmp_path, monkeypatch):
        first, second = _distinct_traces()
        path = tmp_path / "trace.jsonl"
        save_trace(first, path)
        monkeypatch.setenv(context.TRACE_PATH_ENV_VAR, str(path))

        assert list(context.default_trace()) == first
        # Rewrite in place -- same path, new contents, no cache reset.
        save_trace(second, path)
        _backdate(path)
        assert list(context.default_trace()) == second

    def test_identity_and_records_stay_paired(self, tmp_path, monkeypatch):
        """The fingerprint digest and the served records must always
        describe the same bytes."""
        first, second = _distinct_traces()
        path = tmp_path / "trace.jsonl"
        save_trace(first, path)
        monkeypatch.setenv(context.TRACE_PATH_ENV_VAR, str(path))

        before = context.trace_source_identity()
        assert list(context.default_trace()) == first
        save_trace(second, path)
        _backdate(path)
        after = context.trace_source_identity()
        assert after != before
        assert list(context.default_trace()) == second


class TestColumnarRewrite:
    def test_default_trace_sees_the_rewrite(self, tmp_path, monkeypatch):
        first, second = _distinct_traces()
        store = tmp_path / "trace.columnar"
        write_columnar(first, store)
        monkeypatch.setenv(context.TRACE_PATH_ENV_VAR, str(store))

        assert list(context.default_trace()) == first
        write_columnar(second, store)
        assert list(context.default_trace()) == second

    def test_feature_arrays_see_the_rewrite(self, tmp_path, monkeypatch):
        first, second = _distinct_traces()
        store = tmp_path / "trace.columnar"
        write_columnar(first, store)
        monkeypatch.setenv(context.TRACE_PATH_ENV_VAR, str(store))

        arrays = context.trace_feature_arrays()
        assert len(arrays) == len(first)
        write_columnar(second, store)
        arrays = context.trace_feature_arrays()
        assert len(arrays) == len(second)
        # The lazy views decode the *new* store's rows.
        assert [v.materialize() for v in arrays.iter_views()] == [
            job.features for job in second
        ]

    def test_identity_tracks_the_manifest(self, tmp_path, monkeypatch):
        first, second = _distinct_traces()
        store = tmp_path / "trace.columnar"
        write_columnar(first, store)
        monkeypatch.setenv(context.TRACE_PATH_ENV_VAR, str(store))

        before = context.trace_source_identity()
        write_columnar(second, store)
        after = context.trace_source_identity()
        assert before["format"] == after["format"] == "columnar"
        assert before["digest"] != after["digest"]


class TestColumnsFirstTraceFeatures:
    def test_columnar_trace_features_are_lazy_views(
        self, tmp_path, monkeypatch
    ):
        from repro.core.architectures import Architecture
        from repro.core.population import FeatureView

        trace, _ = _distinct_traces()
        store = tmp_path / "trace.columnar"
        write_columnar(trace, store)
        monkeypatch.setenv(context.TRACE_PATH_ENV_VAR, str(store))

        features = context.trace_features()
        assert all(isinstance(f, FeatureView) for f in features)
        assert features == [job.features for job in trace]
        ps = context.trace_features(architecture=Architecture.PS_WORKER)
        assert ps == [
            job.features
            for job in trace
            if job.workload_type is Architecture.PS_WORKER
        ]
