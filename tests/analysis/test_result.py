"""Experiment-result container and rendering."""

import pytest

from repro.analysis.result import ExperimentResult, format_value, render_table


class TestFormatValue:
    def test_floats(self):
        assert format_value(0.2263) == "0.2263"
        assert format_value(1.7) == "1.7"

    def test_extreme_floats_use_scientific(self):
        assert "e" in format_value(3.5e9)
        assert "e" in format_value(1e-6)

    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_strings_pass_through(self):
        assert format_value("PS/Worker") == "PS/Worker"


class TestRenderTable:
    def test_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = render_table(rows, ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert lines[0].startswith("a")

    def test_missing_cells_are_blank(self):
        rows = [{"a": 1}, {"b": 2}]
        text = render_table(rows, ["a", "b"])
        assert "2" in text

    def test_empty(self):
        assert render_table([], ["a"]) == "(no rows)"


class TestExperimentResult:
    def test_columns_in_first_seen_order(self):
        result = ExperimentResult(
            experiment="x",
            title="t",
            rows=[{"b": 1, "a": 2}, {"c": 3}],
        )
        assert result.columns() == ["b", "a", "c"]

    def test_render_contains_title_and_notes(self):
        result = ExperimentResult(
            experiment="fig9",
            title="Projection speedups",
            rows=[{"curve": "local", "value": 0.226}],
            notes=["matches the paper"],
        )
        text = result.render()
        assert "fig9" in text
        assert "Projection speedups" in text
        assert "note: matches the paper" in text

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError):
            ExperimentResult(experiment="", title="t", rows=[])
