"""The pipeline self-consistency experiment."""

import pytest

from repro.analysis.pipeline_check import run


@pytest.fixture(scope="module")
def result():
    return run()


class TestPipelineCheck:
    def test_six_models(self, result):
        assert len(result.rows) == 6

    def test_closure_is_tight(self, result):
        for row in result.rows:
            assert row["closure_error"] < 0.10, row["model"]

    def test_profiled_op_counts_positive(self, result):
        assert all(row["profiled_ops"] > 10 for row in result.rows)

    def test_registered(self):
        from repro.analysis.registry import experiment_ids

        assert "pipeline" in experiment_ids()
