"""Tenants and batch-scaling experiment modules."""

import pytest

from repro.analysis.batch_scaling import BATCH_FACTORS, run as run_batch
from repro.analysis.context import default_trace
from repro.analysis.tenants import run as run_tenants


class TestTenants:
    def test_rows_and_concentration_note(self):
        result = run_tenants(default_trace(6000), top=5)
        assert len(result.rows) == 5
        shares = [row["cnode_share"] for row in result.rows]
        assert shares == sorted(shares, reverse=True)
        assert "top 20%" in result.notes[0]

    def test_production_groups_dominate(self):
        result = run_tenants(default_trace(6000), top=5)
        # The Zipf head groups hold far more than uniform share (1/24).
        assert result.rows[0]["cnode_share"] > 0.15


class TestBatchScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_batch(models=["ResNet50", "Multi-Interests"])

    def test_row_count(self, result):
        assert len(result.rows) == 2 * len(BATCH_FACTORS)

    def test_dense_model_amortizes_communication(self, result):
        resnet = [r for r in result.rows if r["model"] == "ResNet50"]
        comm = [r["comm_share"] for r in resnet]
        assert comm == sorted(comm, reverse=True)

    def test_throughput_monotone_for_dense(self, result):
        resnet = [r for r in result.rows if r["model"] == "ResNet50"]
        throughput = [r["samples_per_s"] for r in resnet]
        assert throughput == sorted(throughput)

    def test_embedding_model_comm_share_flat(self, result):
        multi = [r for r in result.rows if r["model"] == "Multi-Interests"]
        comm = [r["comm_share"] for r in multi]
        assert max(comm) - min(comm) < 0.05
