"""Shared experiment inputs: trace caching keyed on the full config."""

import dataclasses

import pytest

from repro.analysis import context
from repro.core.architectures import Architecture
from repro.trace.generator import TraceConfig


@pytest.fixture(autouse=True)
def fresh_caches():
    context.clear_caches()
    yield
    context.clear_caches()


class TestDefaultTraceConfig:
    def test_defaults(self):
        config = context.default_trace_config()
        assert config.num_jobs == context.DEFAULT_TRACE_JOBS
        assert config.seed == context.DEFAULT_TRACE_SEED

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(context.TRACE_JOBS_ENV_VAR, "321")
        assert context.default_trace_config().num_jobs == 321

    def test_explicit_num_jobs_beats_env(self, monkeypatch):
        monkeypatch.setenv(context.TRACE_JOBS_ENV_VAR, "321")
        assert context.default_trace_config(100).num_jobs == 100


class TestDefaultTraceCacheKey:
    def test_same_config_is_cached(self):
        assert context.default_trace(400) is context.default_trace(400)

    def test_different_job_counts_are_distinct(self):
        assert context.default_trace(400) is not context.default_trace(500)

    def test_seed_participates_in_the_key(self):
        """Regression: the cache used to key on num_jobs alone, so a
        different seed (or any calibration change) silently served the
        previously generated trace."""
        base = context.default_trace_config(400)
        reseeded = dataclasses.replace(base, seed=base.seed + 1)
        first = context.default_trace(config=base)
        second = context.default_trace(config=reseeded)
        assert first is not second
        assert [j.job_id for j in first] != [j.job_id for j in second] or (
            first[0].features != second[0].features
        )

    def test_conflicting_arguments_rejected(self):
        config = context.default_trace_config(400)
        with pytest.raises(ValueError):
            context.default_trace(num_jobs=500, config=config)

    def test_matching_arguments_accepted(self):
        config = context.default_trace_config(400)
        assert context.default_trace(400, config=config) is (
            context.default_trace(config=config)
        )

    def test_clear_caches_drops_the_trace(self):
        before = context.default_trace(400)
        context.clear_caches()
        after = context.default_trace(400)
        assert before is not after


class TestTraceFeatureArrays:
    def test_extraction_is_cached_per_trace_identity(self):
        jobs = context.default_trace(400)
        first = context.trace_feature_arrays(jobs)
        assert context.trace_feature_arrays(jobs) is first

    def test_architecture_slices_are_distinct_entries(self):
        jobs = context.default_trace(400)
        full = context.trace_feature_arrays(jobs)
        ps = context.trace_feature_arrays(jobs, Architecture.PS_WORKER)
        assert len(ps) < len(full)

    def test_a_different_trace_misses(self):
        first = context.trace_feature_arrays(context.default_trace(400))
        second = context.trace_feature_arrays(context.default_trace(500))
        assert len(first) != len(second)

    def test_clear_caches_drops_extractions(self):
        jobs = context.default_trace(400)
        before = context.trace_feature_arrays(jobs)
        context.clear_caches()
        assert context.trace_feature_arrays(jobs) is not before
