"""The pai-repro command-line interface."""

import pytest

from repro.analysis.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "fig9"])
        assert args.experiment == "fig9"

    def test_run_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("table1", "fig9", "fig13", "calibration"):
            assert experiment_id in output

    def test_run_prints_a_table(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "System settings" in output
        assert "11 TFLOPs" in output

    def test_run_table6(self, capsys):
        assert main(["run", "table6"]) == 0
        assert "0.031" in capsys.readouterr().out


class TestAdvise:
    ARGS = [
        "advise",
        "--flops", "1.56T",
        "--memory", "31.9GB",
        "--input", "38MB",
        "--traffic", "357MB",
        "--weights", "204MB",
        "--cnodes", "16",
    ]

    def test_ranks_deployments(self, capsys):
        assert main(self.ARGS) == 0
        output = capsys.readouterr().out
        assert "best first" in output
        assert "PS/Worker" in output
        assert "AllReduce-Local" in output

    def test_no_nvlink_removes_allreduce(self, capsys):
        assert main(self.ARGS + ["--no-nvlink"]) == 0
        output = capsys.readouterr().out
        assert "AllReduce-Local" not in output
        assert "PS/Worker" in output

    def test_huge_embedding_model(self, capsys):
        args = list(self.ARGS)
        args[args.index("--weights") + 1] = "300MB"
        assert main(args + ["--embedding", "150GB"]) == 0
        output = capsys.readouterr().out
        assert "PEARL" in output
        assert "AllReduce-Local" not in output

    def test_requires_flops(self):
        with pytest.raises(SystemExit):
            main(["advise", "--memory", "1GB"])
