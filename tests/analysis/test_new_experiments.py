"""The observation and inference experiment modules."""

import pytest

from repro.analysis.context import default_trace
from repro.analysis.inference_report import run as run_inference
from repro.analysis.observations import run as run_observations


@pytest.fixture(scope="module")
def jobs():
    return default_trace(8000)


class TestObservations:
    def test_all_bullets_present(self, jobs):
        result = run_observations(jobs)
        assert len(result.rows) == 9
        observations = [row["observation"] for row in result.rows]
        assert any("distributed training" in o for o in observations)
        assert any("Ethernet" in o for o in observations)

    def test_distributed_share_above_85(self, jobs):
        result = run_observations(jobs)
        row = next(
            r for r in result.rows if "distributed training" in r["observation"]
        )
        assert float(row["measured"].rstrip("%")) > 85.0

    def test_every_row_has_paper_reference(self, jobs):
        result = run_observations(jobs)
        assert all(row["paper"] for row in result.rows)


class TestInferenceReport:
    def test_six_models(self):
        result = run_inference()
        assert len(result.rows) == 6

    def test_fit_flags(self):
        result = run_inference()
        by_model = {row["model"]: row for row in result.rows}
        assert not by_model["Multi-Interests"]["fits_one_gpu"]
        assert by_model["ResNet50"]["fits_one_gpu"]

    def test_latency_columns_when_fitting(self):
        result = run_inference()
        for row in result.rows:
            if row["fits_one_gpu"]:
                assert row["latency_ms_b1"] > 0
                assert row["throughput_b128"] > 0

    def test_registered_in_cli(self):
        from repro.analysis.registry import experiment_ids

        assert "observations" in experiment_ids()
        assert "inference" in experiment_ids()
