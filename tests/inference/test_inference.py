"""Inference characterization (the paper's Sec. VIII future work)."""

import pytest

from repro.inference import (
    InferenceFeatures,
    batch_sweep,
    estimate_latency,
    inference_features_for,
    max_batch_within_slo,
    serving_throughput,
)


@pytest.fixture(scope="module")
def resnet_serving(case_studies):
    return inference_features_for(case_studies["ResNet50"], batch_size=1)


class TestDerivation:
    def test_forward_only(self, case_studies):
        graph = case_studies["ResNet50"]
        serving = inference_features_for(graph, batch_size=graph.batch_size)
        # Training FLOPs are ~3x forward (fwd + 2x bwd).
        assert serving.flop_count == pytest.approx(graph.flop_count / 3)

    def test_batch_one_scaling(self, case_studies):
        graph = case_studies["ResNet50"]
        serving = inference_features_for(graph, batch_size=1)
        assert serving.input_bytes == pytest.approx(
            graph.input_bytes / graph.batch_size
        )

    def test_no_optimizer_slots_at_serving_time(self, case_studies):
        graph = case_studies["ResNet50"]
        serving = inference_features_for(graph)
        # Training at-rest includes the momentum slot; serving does not.
        assert serving.resident_weight_bytes == pytest.approx(
            graph.dense_weight_bytes / 2
        )

    def test_with_batch_size_rescales(self, resnet_serving):
        batched = resnet_serving.with_batch_size(32)
        assert batched.flop_count == pytest.approx(32 * resnet_serving.flop_count)
        assert batched.resident_weight_bytes == (
            resnet_serving.resident_weight_bytes
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            InferenceFeatures("x", 0, 1.0, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            InferenceFeatures("x", 1, -1.0, 1.0, 1.0, 1.0, 1.0)


class TestLatency:
    def test_components_positive(self, resnet_serving, testbed):
        breakdown = estimate_latency(resnet_serving, testbed)
        assert breakdown.input_io > 0
        assert breakdown.compute_flops > 0
        assert breakdown.total > 0

    def test_fractions_sum_to_one(self, resnet_serving, testbed):
        fractions = estimate_latency(resnet_serving, testbed).fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_resnet_batch1_latency_order_of_magnitude(self, resnet_serving, testbed):
        # ~8.1 GFLOPs forward on a 15 TFLOPs V100 at 70%: few ms.
        latency = estimate_latency(resnet_serving, testbed).total
        assert 0.5e-3 < latency < 10e-3

    def test_model_must_fit_gpu(self, case_studies, testbed):
        serving = inference_features_for(case_studies["GCN"])
        # 27 GB of embeddings alone... plus table: exceeds the 32 GB V100.
        if serving.resident_weight_bytes > testbed.gpu.memory_capacity:
            with pytest.raises(ValueError):
                estimate_latency(serving, testbed)

    def test_bottleneck_label(self, resnet_serving, testbed):
        assert estimate_latency(resnet_serving, testbed).bottleneck in (
            "input_io",
            "compute_bound",
            "memory_bound",
            "output_io",
        )


class TestThroughputAndBatching:
    def test_throughput_grows_with_batch(self, resnet_serving, testbed):
        # Per-request work is linear here, so throughput is flat-to-equal;
        # with fixed per-execution I/O it would grow. Check monotone
        # non-decreasing of batch/latency.
        small = serving_throughput(resnet_serving, testbed)
        large = serving_throughput(
            resnet_serving.with_batch_size(64), testbed
        )
        assert large >= small * 0.99

    def test_slo_search(self, resnet_serving, testbed):
        tight = max_batch_within_slo(resnet_serving, testbed, latency_slo=5e-3)
        loose = max_batch_within_slo(resnet_serving, testbed, latency_slo=0.5)
        assert tight is not None
        assert loose >= tight

    def test_slo_impossible(self, resnet_serving, testbed):
        assert max_batch_within_slo(
            resnet_serving, testbed, latency_slo=1e-9
        ) is None

    def test_slo_validation(self, resnet_serving, testbed):
        with pytest.raises(ValueError):
            max_batch_within_slo(resnet_serving, testbed, latency_slo=0.0)

    def test_batch_sweep_rows(self, resnet_serving, testbed):
        rows = batch_sweep(resnet_serving, testbed, batches=[1, 8, 64])
        assert [row["batch"] for row in rows] == [1, 8, 64]
        assert all(row["latency_s"] > 0 for row in rows)
        latencies = [row["latency_s"] for row in rows]
        assert latencies == sorted(latencies)


class TestCharacterizationShape:
    def test_giant_embedding_models_cannot_serve_on_one_gpu(
        self, case_studies, testbed
    ):
        # Multi-Interests carries ~120 GB of trainable embeddings: single-
        # GPU serving is impossible, mirroring the training-side story.
        serving = inference_features_for(
            case_studies["Multi-Interests"], batch_size=64
        )
        with pytest.raises(ValueError):
            estimate_latency(serving, testbed)

    def test_transformers_more_memory_heavy_than_cv(self, case_studies, testbed):
        bert = estimate_latency(
            inference_features_for(case_studies["BERT"], batch_size=8), testbed
        )
        resnet = estimate_latency(
            inference_features_for(case_studies["ResNet50"], batch_size=8),
            testbed,
        )
        assert (
            bert.fractions()["memory_bound"]
            > resnet.fractions()["memory_bound"]
        )

    def test_cv_models_are_compute_bound_at_serving(self, case_studies, testbed):
        serving = inference_features_for(case_studies["ResNet50"], batch_size=64)
        breakdown = estimate_latency(serving, testbed)
        assert breakdown.bottleneck == "compute_bound"
