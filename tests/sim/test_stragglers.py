"""Straggler modeling for synchronous training."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.timemodel import estimate_breakdown
from repro.sim.stragglers import (
    JitterModel,
    _expected_max_lognormal,
    _expected_max_lognormal_curve,
    expected_straggler_factor,
    straggled_step_time,
    synchronization_penalty_curve,
)


def ps_job(num_cnodes=16):
    return WorkloadFeatures(
        name="job",
        architecture=Architecture.PS_WORKER,
        num_cnodes=num_cnodes,
        batch_size=128,
        flop_count=2e12,
        memory_access_bytes=20e9,
        input_bytes=10e6,
        weight_traffic_bytes=500e6,
        dense_weight_bytes=500e6,
    )


class TestStragglerFactor:
    def test_single_replica_is_one(self):
        assert expected_straggler_factor(1) == 1.0

    def test_zero_jitter_is_one(self):
        assert expected_straggler_factor(64, JitterModel(sigma=0.0)) == 1.0

    def test_grows_with_cluster_size(self):
        factors = [
            expected_straggler_factor(n, JitterModel(sigma=0.1))
            for n in (2, 8, 32, 128)
        ]
        assert factors == sorted(factors)
        assert factors[0] > 1.0

    def test_grows_with_jitter(self):
        calm = expected_straggler_factor(32, JitterModel(sigma=0.05))
        noisy = expected_straggler_factor(32, JitterModel(sigma=0.2))
        assert noisy > calm

    def test_reproducible(self):
        jitter = JitterModel(sigma=0.1, seed=42)
        assert expected_straggler_factor(16, jitter) == (
            expected_straggler_factor(16, jitter)
        )

    def test_magnitude_sane(self):
        # 10% jitter over 128 replicas: tens of percent, not multiples.
        factor = expected_straggler_factor(128, JitterModel(sigma=0.1))
        assert 1.2 < factor < 1.6

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_straggler_factor(0)
        with pytest.raises(ValueError):
            JitterModel(sigma=-0.1)
        with pytest.raises(ValueError):
            JitterModel(samples=0)


class TestStraggledStepTime:
    def test_never_faster_than_baseline(self, hardware):
        features = ps_job()
        baseline = estimate_breakdown(features, hardware).total
        assert straggled_step_time(features, hardware) >= baseline

    def test_only_compute_stretches(self, hardware):
        features = ps_job()
        breakdown = estimate_breakdown(features, hardware)
        straggled = straggled_step_time(
            features, hardware, JitterModel(sigma=0.15)
        )
        factor = expected_straggler_factor(16, JitterModel(sigma=0.15))
        expected = (
            breakdown.data_io
            + breakdown.computation * factor
            + breakdown.weight_total
        )
        assert straggled == pytest.approx(expected)


class TestPenaltyCurve:
    def test_inflation_monotone_in_cnodes(self, hardware):
        rows = synchronization_penalty_curve(
            ps_job(), hardware, cnode_counts=[1, 4, 16, 64]
        )
        inflations = [row["step_inflation"] for row in rows]
        assert inflations == sorted(inflations)
        assert inflations[0] == pytest.approx(1.0)

    def test_inflation_bounded_by_factor(self, hardware):
        # The step inflates less than the compute factor because the
        # communication part does not jitter.
        rows = synchronization_penalty_curve(
            ps_job(), hardware, cnode_counts=[64]
        )
        row = rows[0]
        assert 1.0 < row["step_inflation"] < row["straggler_factor"]

    def test_options_reach_the_breakdown(self, hardware):
        """Regression: the curve used to drop ``options`` on the floor,
        silently evaluating non-default model options at the paper
        defaults."""
        from repro.core.timemodel import ModelOptions

        job = WorkloadFeatures(
            name="ring",
            architecture=Architecture.ALLREDUCE_LOCAL,
            num_cnodes=4,
            batch_size=128,
            flop_count=2e12,
            memory_access_bytes=20e9,
            input_bytes=10e6,
            weight_traffic_bytes=500e6,
            dense_weight_bytes=500e6,
        )
        options = ModelOptions(allreduce_ring_factor=True)
        defaults = synchronization_penalty_curve(
            job, hardware, cnode_counts=[4]
        )
        ringed = synchronization_penalty_curve(
            job, hardware, cnode_counts=[4], options=options
        )
        assert defaults[0]["step_inflation"] != ringed[0]["step_inflation"]
        # Same factor (jitter does not depend on the options), so the
        # difference comes entirely from the breakdown evaluation.
        assert defaults[0]["straggler_factor"] == (
            ringed[0]["straggler_factor"]
        )


class TestMemoization:
    """The 4000-sample Monte Carlo must run once per distinct
    ``(sigma, samples, seed, n)``, not once per query."""

    def test_penalty_curve_hits_the_memo(self, hardware):
        _expected_max_lognormal_curve.cache_clear()
        counts = [2, 4, 8, 16]
        rows = synchronization_penalty_curve(
            ps_job(), hardware, cnode_counts=counts
        )
        info = _expected_max_lognormal_curve.cache_info()
        # One batched Monte Carlo for the whole curve, not one draw
        # per cNode count.
        assert info.misses == 1
        # A second curve over the same counts is a memo hit.
        rows_again = synchronization_penalty_curve(
            ps_job(), hardware, cnode_counts=counts
        )
        info = _expected_max_lognormal_curve.cache_info()
        assert info.misses == 1
        assert info.hits >= 1
        assert rows_again == rows

    def test_memoized_factor_matches_direct_monte_carlo(self):
        import numpy as np

        jitter = JitterModel(sigma=0.12, samples=2500, seed=77)
        rng = np.random.default_rng(jitter.seed)
        draws = rng.lognormal(
            mean=0.0, sigma=jitter.sigma, size=(jitter.samples, 24)
        )
        expected = float(draws.max(axis=1).mean())
        assert expected_straggler_factor(24, jitter) == expected

    def test_curve_rows_match_batched_monte_carlo_exactly(self, hardware):
        # The curve factors come from ONE (samples, max_count) draw:
        # E[max of the first n columns] for each n, via the running
        # maximum.  Verify against a direct numpy recomputation.
        import numpy as np

        features = ps_job()
        jitter = JitterModel()
        counts = [1, 8, 32]
        rng = np.random.default_rng(jitter.seed)
        draws = rng.lognormal(
            mean=0.0, sigma=jitter.sigma, size=(jitter.samples, max(counts))
        )
        curve = np.maximum.accumulate(draws, axis=1).mean(axis=0)
        expected_factors = {
            count: 1.0 if count == 1 else float(curve[count - 1])
            for count in counts
        }
        for row in synchronization_penalty_curve(
            features, hardware, cnode_counts=counts
        ):
            count = row["num_cnodes"]
            factor = expected_factors[count]
            assert row["straggler_factor"] == factor
            deployed = features.with_architecture(
                features.architecture, num_cnodes=count
            )
            breakdown = estimate_breakdown(deployed, hardware)
            straggled = (
                breakdown.data_io
                + breakdown.computation * factor
                + breakdown.weight_total
            )
            assert row["step_inflation"] == straggled / breakdown.total

    def test_single_replica_and_zero_jitter_bypass_the_memo(self):
        _expected_max_lognormal.cache_clear()
        assert expected_straggler_factor(1) == 1.0
        assert expected_straggler_factor(64, JitterModel(sigma=0.0)) == 1.0
        assert _expected_max_lognormal.cache_info().misses == 0
