"""StepMeasurement aggregation."""

import pytest

from repro.sim.events import TimelineRecord
from repro.sim.measurement import StepMeasurement, medium_of_resource


def measurement(records, num_cnodes=1, step_time=None):
    if step_time is None:
        step_time = max((r.end for r in records), default=0.0)
    return StepMeasurement(
        workload="toy",
        records=tuple(records),
        step_time=step_time,
        num_cnodes=num_cnodes,
    )


class TestMediumMapping:
    def test_known_resources(self):
        assert medium_of_resource("server0/nic") == "Ethernet"
        assert medium_of_resource("server1/nvlink") == "NVLink"
        assert medium_of_resource("server0/pcie") == "PCIe"
        assert medium_of_resource("server0/gpu3") == "local"


class TestAggregation:
    def test_per_cnode_averaging(self):
        records = [
            TimelineRecord("a", "server0/gpu0", 0.0, 1.0, "compute"),
            TimelineRecord("b", "server0/gpu1", 0.0, 3.0, "compute"),
        ]
        m = measurement(records, num_cnodes=2)
        assert m.compute_time == pytest.approx(2.0)

    def test_input_elapsed_includes_queueing(self):
        # Two GPUs behind one PCIe complex: ends at 1s and 2s.
        records = [
            TimelineRecord("i0", "server0/pcie", 0.0, 1.0, "input"),
            TimelineRecord("i1", "server0/pcie", 1.0, 2.0, "input"),
        ]
        m = measurement(records, num_cnodes=2)
        assert m.data_io_time == pytest.approx(1.5)

    def test_weight_times_keyed_by_medium(self):
        records = [
            TimelineRecord("w0", "server0/nic", 0.0, 2.0, "weight"),
            TimelineRecord("w1", "server0/pcie", 2.0, 3.0, "weight"),
        ]
        m = measurement(records)
        times = m.weight_times()
        assert times["Ethernet"] == pytest.approx(2.0)
        assert times["PCIe"] == pytest.approx(1.0)
        assert m.weight_time == pytest.approx(3.0)

    def test_breakdown_matches_components(self):
        records = [
            TimelineRecord("i", "server0/pcie", 0.0, 0.5, "input"),
            TimelineRecord("c", "server0/gpu0", 0.5, 1.5, "compute"),
            TimelineRecord("m", "server0/gpu0", 1.5, 2.0, "memory"),
            TimelineRecord("w", "server0/nic", 2.0, 3.0, "weight"),
        ]
        m = measurement(records)
        breakdown = m.breakdown()
        assert breakdown.data_io == pytest.approx(0.5)
        assert breakdown.compute_flops == pytest.approx(1.0)
        assert breakdown.compute_memory == pytest.approx(0.5)
        assert breakdown.weight_total == pytest.approx(1.0)
        assert breakdown.total == pytest.approx(3.0)

    def test_overhead_excluded_from_breakdown_but_in_serial_total(self):
        records = [
            TimelineRecord("launch", "server0/gpu0", 0.0, 0.1, "overhead"),
            TimelineRecord("c", "server0/gpu0", 0.1, 1.1, "compute"),
        ]
        m = measurement(records)
        assert m.breakdown().total == pytest.approx(1.0)
        assert m.serial_total == pytest.approx(1.1)

    def test_summary_keys(self):
        m = measurement(
            [TimelineRecord("c", "gpu", 0.0, 1.0, "compute")]
        )
        summary = m.summary()
        assert summary["workload"] == "toy"
        assert summary["compute_bound"] == pytest.approx(1.0)

    def test_empty_measurement(self):
        m = measurement([])
        assert m.data_io_time == 0.0
        assert m.weight_times() == {}

    def test_rejects_negative_step_time(self):
        with pytest.raises(ValueError):
            StepMeasurement("x", (), step_time=-1.0, num_cnodes=1)
