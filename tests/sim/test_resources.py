"""Channels and devices: FIFO contention, launch overhead."""

import pytest

from repro.sim.resources import Channel, Device


class TestChannel:
    def test_transfer_duration(self):
        channel = Channel("pcie", bandwidth=10e9, efficiency=1.0)
        assert channel.transfer_duration(10e9) == pytest.approx(1.0)

    def test_efficiency_slows_transfers(self):
        channel = Channel("pcie", bandwidth=10e9, efficiency=0.5)
        assert channel.transfer_duration(10e9) == pytest.approx(2.0)

    def test_fifo_contention(self):
        """Two simultaneous requests serialize -- the PCIe input effect."""
        channel = Channel("pcie", bandwidth=1e9, efficiency=1.0)
        first = channel.reserve(0.0, 1e9, "gpu0/input", "input")
        second = channel.reserve(0.0, 1e9, "gpu1/input", "input")
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_no_contention_when_spaced(self):
        channel = Channel("pcie", bandwidth=1e9, efficiency=1.0)
        channel.reserve(0.0, 1e9, "a", "input")
        late = channel.reserve(5.0, 1e9, "b", "input")
        assert late == pytest.approx(6.0)

    def test_records_kept(self):
        channel = Channel("pcie", bandwidth=1e9, efficiency=1.0)
        channel.reserve(0.0, 1e9, "a", "input")
        assert len(channel.records) == 1
        assert channel.records[0].volume == 1e9

    def test_reset(self):
        channel = Channel("pcie", bandwidth=1e9, efficiency=1.0)
        channel.reserve(0.0, 1e9, "a", "input")
        channel.reset()
        assert channel.records == []
        assert channel.reserve(0.0, 1e9, "b", "input") == pytest.approx(1.0)

    def test_latency_applies_per_transfer(self):
        channel = Channel("pcie", bandwidth=1e9, latency=0.5, efficiency=1.0)
        assert channel.reserve(0.0, 1e9, "a", "input") == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Channel("bad", bandwidth=0)
        with pytest.raises(ValueError):
            Channel("bad", bandwidth=1e9, efficiency=1.5)
        channel = Channel("ok", bandwidth=1e9)
        with pytest.raises(ValueError):
            channel.transfer_duration(-1)


class TestDevice:
    def make(self, **kw):
        defaults = dict(
            name="gpu0",
            peak_flops=1e12,
            memory_bandwidth=1e12,
            compute_efficiency=1.0,
            memory_efficiency=1.0,
            launch_overhead=0.0,
        )
        defaults.update(kw)
        return Device(**defaults)

    def test_serial_execution(self):
        gpu = self.make()
        first = gpu.run_kernel(0.0, "a", 1.0, "compute")
        second = gpu.run_kernel(0.0, "b", 1.0, "compute")
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_launch_overhead_recorded_separately(self):
        gpu = self.make(launch_overhead=0.25)
        end = gpu.run_kernel(0.0, "a", 1.0, "compute")
        assert end == pytest.approx(1.25)
        categories = [r.category for r in gpu.records]
        assert categories == ["overhead", "compute"]

    def test_overhead_override(self):
        gpu = self.make(launch_overhead=0.25)
        end = gpu.run_kernel(0.0, "a", 1.0, "compute", overhead=0.5)
        assert end == pytest.approx(1.5)

    def test_reset(self):
        gpu = self.make()
        gpu.run_kernel(0.0, "a", 1.0, "compute")
        gpu.reset()
        assert gpu.records == []
        assert gpu.now_free == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(peak_flops=0)
        with pytest.raises(ValueError):
            self.make(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            self.make(launch_overhead=-1.0)
        gpu = self.make()
        with pytest.raises(ValueError):
            gpu.run_kernel(0.0, "a", -1.0, "compute")
