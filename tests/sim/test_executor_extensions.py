"""Executor extensions: straggler jitter and memory validation."""

import pytest

from repro.core.architectures import Architecture
from repro.graphs import Deployment, build_gcn, build_multi_interests, build_resnet50
from repro.sim.executor import SimulationOptions, simulate_step
from repro.sim.stragglers import JitterModel, expected_straggler_factor


class TestJitter:
    def test_zero_jitter_is_deterministic(self, testbed):
        graph = build_resnet50()
        deployment = Deployment(Architecture.ALLREDUCE_LOCAL, 4)
        first = simulate_step(graph, deployment, testbed)
        second = simulate_step(graph, deployment, testbed)
        assert first.step_time == second.step_time

    def test_jitter_slows_the_barrier(self, testbed):
        graph = build_resnet50()
        deployment = Deployment(Architecture.ALLREDUCE_LOCAL, 8)
        base = simulate_step(graph, deployment, testbed)
        jittered = simulate_step(
            graph,
            deployment,
            testbed,
            options=SimulationOptions(jitter_sigma=0.15),
        )
        assert jittered.step_time > base.step_time

    def test_jitter_reproducible_per_seed(self, testbed):
        graph = build_resnet50()
        deployment = Deployment(Architecture.ALLREDUCE_LOCAL, 8)
        options = SimulationOptions(jitter_sigma=0.15, jitter_seed=5)
        first = simulate_step(graph, deployment, testbed, options=options)
        second = simulate_step(graph, deployment, testbed, options=options)
        assert first.step_time == second.step_time

    def test_des_jitter_matches_analytical_scale(self, testbed):
        """The DES barrier inflation should be in the same ballpark as
        the analytical expected-max factor."""
        graph = build_resnet50()
        deployment = Deployment(Architecture.ALLREDUCE_LOCAL, 8)
        base = simulate_step(graph, deployment, testbed)
        inflations = []
        for seed in range(8):
            jittered = simulate_step(
                graph,
                deployment,
                testbed,
                options=SimulationOptions(jitter_sigma=0.1, jitter_seed=seed),
            )
            inflations.append(jittered.step_time / base.step_time)
        observed = sum(inflations) / len(inflations)
        analytical = expected_straggler_factor(8, JitterModel(sigma=0.1))
        # Only part of the step jitters, so observed <= analytical; both
        # must exceed 1 and agree within a loose band.
        assert 1.0 < observed <= analytical * 1.05


class TestMemoryValidation:
    def test_replica_mode_rejects_oversized_models(self, testbed):
        gcn = build_gcn()  # 54 GB of embeddings
        with pytest.raises(ValueError, match="GB per GPU"):
            simulate_step(
                gcn, Deployment(Architecture.ALLREDUCE_LOCAL, 8), testbed
            )

    def test_pearl_accepts_when_sharded(self, testbed):
        gcn = build_gcn()
        measurement = simulate_step(
            gcn, Deployment(Architecture.PEARL, 8), testbed
        )
        assert measurement.step_time > 0

    def test_ps_hosts_huge_embeddings(self, testbed):
        # Multi-Interests: 239 GB at rest, but the table lives on the
        # parameter servers' host memory.
        graph = build_multi_interests()
        measurement = simulate_step(
            graph, Deployment(Architecture.PS_WORKER, 8), testbed
        )
        assert measurement.step_time > 0

    def test_check_can_be_disabled(self, testbed):
        gcn = build_gcn()
        measurement = simulate_step(
            gcn,
            Deployment(Architecture.ALLREDUCE_LOCAL, 8),
            testbed,
            options=SimulationOptions(check_memory=False),
        )
        assert measurement.step_time > 0
