"""The training-step executor across all architectures."""

import pytest

from repro.core.architectures import Architecture
from repro.core.efficiency import TABLE_VI_EFFICIENCIES, uniform_efficiency
from repro.graphs import Deployment, build_resnet50
from repro.sim.executor import SimulationOptions, TestbedSimulator, simulate_step


@pytest.fixture(scope="module")
def resnet():
    return build_resnet50()


class TestPhases:
    def test_single_gpu_step(self, resnet, testbed):
        measurement = simulate_step(
            resnet, Deployment(Architecture.SINGLE, 1), testbed
        )
        assert measurement.step_time > 0
        assert measurement.weight_time == 0.0
        assert measurement.data_io_time > 0
        assert measurement.compute_time > 0
        assert measurement.memory_time > 0

    def test_allreduce_local_syncs_on_nvlink(self, resnet, testbed):
        measurement = simulate_step(
            resnet, Deployment(Architecture.ALLREDUCE_LOCAL, 8), testbed
        )
        assert set(measurement.weight_times()) == {"NVLink"}

    def test_ps_worker_syncs_on_ethernet_and_pcie(self, resnet, testbed):
        measurement = simulate_step(
            resnet, Deployment(Architecture.PS_WORKER, 4), testbed
        )
        assert set(measurement.weight_times()) == {"Ethernet", "PCIe"}

    def test_1wng_syncs_on_pcie(self, resnet, testbed):
        measurement = simulate_step(
            resnet, Deployment(Architecture.LOCAL_CENTRALIZED, 4), testbed
        )
        assert set(measurement.weight_times()) == {"PCIe"}

    def test_cluster_allreduce_uses_ethernet(self, resnet, testbed):
        measurement = simulate_step(
            resnet, Deployment(Architecture.ALLREDUCE_CLUSTER, 16), testbed
        )
        assert "Ethernet" in measurement.weight_times()


class TestContention:
    def test_input_contention_grows_with_local_gpus(self, resnet, testbed):
        one = simulate_step(resnet, Deployment(Architecture.SINGLE, 1), testbed)
        eight = simulate_step(
            resnet, Deployment(Architecture.ALLREDUCE_LOCAL, 8), testbed
        )
        # Average queue position is (n+1)/2, so ~4.5x the solo latency.
        assert eight.data_io_time > 3 * one.data_io_time

    def test_ps_workers_do_not_contend(self, resnet, testbed):
        one = simulate_step(resnet, Deployment(Architecture.SINGLE, 1), testbed)
        ps = simulate_step(resnet, Deployment(Architecture.PS_WORKER, 8), testbed)
        assert ps.data_io_time == pytest.approx(one.data_io_time, rel=0.01)


class TestEfficiencyEffects:
    def test_lower_efficiency_is_slower(self, resnet, testbed):
        fast = simulate_step(
            resnet,
            Deployment(Architecture.SINGLE, 1),
            testbed,
            uniform_efficiency(0.9),
        )
        slow = simulate_step(
            resnet,
            Deployment(Architecture.SINGLE, 1),
            testbed,
            uniform_efficiency(0.3),
        )
        assert slow.step_time > fast.step_time

    def test_table_vi_speech_memory_collapse(self, testbed):
        from repro.graphs import build_speech

        speech = build_speech()
        deployment = Deployment(Architecture.SINGLE, 1)
        nominal = simulate_step(
            speech, deployment, testbed, uniform_efficiency(0.7)
        )
        measured = simulate_step(
            speech, deployment, testbed, TABLE_VI_EFFICIENCIES["Speech"]
        )
        # 3.1% GDDR efficiency vs 70%: memory time explodes ~22x.
        assert measured.memory_time > 15 * nominal.memory_time


class TestOverheads:
    def test_more_kernels_per_op_means_more_overhead(self, resnet, testbed):
        lean = simulate_step(
            resnet,
            Deployment(Architecture.SINGLE, 1),
            testbed,
            options=SimulationOptions(kernels_per_op=1.0),
        )
        heavy = simulate_step(
            resnet,
            Deployment(Architecture.SINGLE, 1),
            testbed,
            options=SimulationOptions(kernels_per_op=100.0),
        )
        assert heavy.overhead_time > 10 * lean.overhead_time

    def test_serial_total_includes_overhead(self, resnet, testbed):
        measurement = simulate_step(
            resnet, Deployment(Architecture.SINGLE, 1), testbed
        )
        parts = (
            measurement.data_io_time
            + measurement.compute_time
            + measurement.memory_time
            + measurement.weight_time
        )
        assert measurement.serial_total == pytest.approx(
            parts + measurement.overhead_time
        )


class TestMixedPrecisionOption:
    def test_executor_level_mp_speeds_matmuls(self, resnet, testbed):
        deployment = Deployment(Architecture.SINGLE, 1)
        base = simulate_step(resnet, deployment, testbed)
        mp = simulate_step(
            resnet,
            deployment,
            testbed,
            options=SimulationOptions(mixed_precision=True),
        )
        assert base.compute_time / mp.compute_time == pytest.approx(2.8, rel=0.01)


class TestDefaults:
    def test_simulator_defaults_to_testbed(self, resnet):
        simulator = TestbedSimulator()
        measurement = simulator.run_step(
            resnet, Deployment(Architecture.SINGLE, 1)
        )
        assert measurement.step_time > 0

    def test_more_cnodes_more_records(self, resnet, testbed):
        two = simulate_step(
            resnet, Deployment(Architecture.ALLREDUCE_LOCAL, 2), testbed
        )
        eight = simulate_step(
            resnet, Deployment(Architecture.ALLREDUCE_LOCAL, 8), testbed
        )
        assert len(eight.records) > len(two.records)
