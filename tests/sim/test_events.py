"""The discrete-event core."""

import pytest

from repro.sim.events import EventQueue, TimelineRecord


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(2.0, lambda: order.append("b"))
        queue.schedule(1.0, lambda: order.append("a"))
        queue.schedule(3.0, lambda: order.append("c"))
        queue.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: order.append("first"))
        queue.schedule(1.0, lambda: order.append("second"))
        queue.run()
        assert order == ["first", "second"]

    def test_now_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda: seen.append(queue.now))
        final = queue.run()
        assert seen == [5.0]
        assert final == 5.0

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        order = []

        def chain():
            order.append(queue.now)
            if queue.now < 3.0:
                queue.schedule(1.0, chain)

        queue.schedule(1.0, chain)
        queue.run()
        assert order == [1.0, 2.0, 3.0]

    def test_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(10.0, lambda: fired.append(10))
        queue.run(until=5.0)
        assert fired == [1]
        assert len(queue) == 1

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_rejects_scheduling_in_the_past(self):
        queue = EventQueue()
        queue.schedule(2.0, lambda: None)
        queue.run()
        with pytest.raises(ValueError):
            queue.schedule_at(1.0, lambda: None)

    def test_schedule_at_absolute(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(4.0, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [4.0]


class TestTimelineRecord:
    def test_duration(self):
        record = TimelineRecord("op", "gpu0", 1.0, 3.5, "compute")
        assert record.duration == 2.5

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            TimelineRecord("op", "gpu0", 2.0, 1.0, "compute")
