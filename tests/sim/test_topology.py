"""Simulated cluster construction."""

import pytest

from repro.core.efficiency import EfficiencyModel
from repro.sim.topology import build_cluster


class TestBuildCluster:
    def test_default_shape(self, testbed):
        cluster = build_cluster(2, testbed)
        assert len(cluster.servers) == 2
        assert len(cluster.servers[0].gpus) == 8
        assert cluster.servers[0].nvlink is not None

    def test_no_nvlink_servers(self, hardware):
        cluster = build_cluster(1, hardware, with_nvlink=False)
        assert cluster.servers[0].nvlink is None

    def test_efficiency_propagates(self, testbed):
        eff = EfficiencyModel(compute=0.9, memory=0.3, pcie=0.5, network=0.4)
        cluster = build_cluster(1, testbed, efficiency=eff)
        gpu = cluster.servers[0].gpus[0]
        assert gpu.compute_efficiency == 0.9
        assert gpu.memory_efficiency == 0.3
        assert cluster.servers[0].pcie.efficiency == 0.5
        assert cluster.servers[0].nic.efficiency == 0.4
        assert cluster.servers[0].nvlink.efficiency == 0.4

    def test_gpu_specs_propagate(self, testbed):
        cluster = build_cluster(1, testbed)
        gpu = cluster.servers[0].gpus[0]
        assert gpu.peak_flops == testbed.gpu.peak_flops
        assert gpu.tensor_core_flops == testbed.gpu.tensor_core_flops

    def test_flat_gpu_indexing(self, testbed):
        cluster = build_cluster(2, testbed, gpus_per_server=4)
        assert len(cluster.all_gpus()) == 8
        assert cluster.gpu(5).name == "server1/gpu1"
        assert cluster.server_of_gpu(5).index == 1

    def test_reset_clears_state(self, testbed):
        cluster = build_cluster(1, testbed)
        cluster.servers[0].pcie.reserve(0.0, 1e9, "x", "input")
        cluster.servers[0].gpus[0].run_kernel(0.0, "k", 1.0, "compute")
        cluster.reset()
        assert cluster.records() == []

    def test_rejects_zero_servers(self, testbed):
        with pytest.raises(ValueError):
            build_cluster(0, testbed)

    def test_records_aggregates_all_resources(self, testbed):
        cluster = build_cluster(1, testbed, gpus_per_server=2)
        cluster.servers[0].pcie.reserve(0.0, 1e6, "x", "input")
        cluster.servers[0].gpus[1].run_kernel(0.0, "k", 1.0, "compute")
        names = {r.resource for r in cluster.records()}
        assert "server0/pcie" in names
        assert "server0/gpu1" in names
