"""PEARL: partitioning, collective schedule, and its Fig. 13(d) win."""

import pytest

from repro.core.architectures import Architecture
from repro.core.efficiency import TABLE_VI_EFFICIENCIES
from repro.graphs import Deployment, build_gcn
from repro.sim.executor import simulate_step
from repro.sim.pearl import pearl_schedule, plan_pearl


@pytest.fixture(scope="module")
def gcn():
    return build_gcn()


class TestPartition:
    def test_shards_evenly(self, gcn):
        partition = plan_pearl(gcn, 8)
        assert partition.shard_bytes == pytest.approx(
            gcn.embedding_weight_bytes / 8
        )

    def test_gcn_fits_only_when_partitioned(self, gcn, testbed):
        capacity = testbed.gpu.memory_capacity
        assert gcn.embedding_weight_bytes > capacity  # replica impossible
        partition = plan_pearl(gcn, 8)
        assert partition.fits_in(capacity)

    def test_single_worker_gets_everything(self, gcn):
        partition = plan_pearl(gcn, 1)
        assert partition.shard_bytes == gcn.embedding_weight_bytes

    def test_rejects_zero_workers(self, gcn):
        with pytest.raises(ValueError):
            plan_pearl(gcn, 0)


class TestSchedule:
    def test_phases(self, gcn):
        schedule = pearl_schedule(gcn, 8, nvlink_bandwidth=50e9)
        assert schedule.pre_forward == [schedule.gather]
        assert schedule.post_backward == [
            schedule.scatter,
            schedule.dense_allreduce,
        ]
        assert schedule.total_seconds > 0

    def test_mesh_parallelism(self, gcn):
        # Each worker handles ~1/n of the one-way accessed volume in
        # each phase -- the partitioned-gather parallelism of the
        # analytical model.
        schedule = pearl_schedule(gcn, 8, 50e9, network_efficiency=1.0)
        one_way = gcn.embedding_access_bytes / 2
        assert schedule.gather.volume_per_node == pytest.approx(one_way / 8)
        assert schedule.scatter.volume_per_node == pytest.approx(one_way / 8)

    def test_more_workers_less_time_per_phase(self, gcn):
        two = pearl_schedule(gcn, 2, 50e9)
        eight = pearl_schedule(gcn, 8, 50e9)
        assert eight.gather.seconds < two.gather.seconds


class TestEndToEnd:
    def test_pearl_beats_ps_for_gcn(self, gcn, testbed):
        eff = TABLE_VI_EFFICIENCIES["GCN"]
        pearl = simulate_step(
            gcn, Deployment(Architecture.PEARL, 8), testbed, eff
        )
        ps = simulate_step(
            gcn, Deployment(Architecture.PS_WORKER, 8), testbed, eff
        )
        assert pearl.serial_total < ps.serial_total / 5

    def test_comm_share_shapes_match_fig13d(self, gcn, testbed):
        eff = TABLE_VI_EFFICIENCIES["GCN"]
        pearl = simulate_step(
            gcn, Deployment(Architecture.PEARL, 8), testbed, eff
        )
        ps = simulate_step(
            gcn, Deployment(Architecture.PS_WORKER, 8), testbed, eff
        )
        pearl_share = pearl.weight_time / pearl.serial_total
        ps_share = ps.weight_time / ps.serial_total
        assert 0.15 <= pearl_share <= 0.45  # paper: 25%
        assert ps_share >= 0.90  # paper: ~95%

    def test_pearl_uses_nvlink_only(self, gcn, testbed):
        pearl = simulate_step(
            gcn, Deployment(Architecture.PEARL, 8), testbed
        )
        assert set(pearl.weight_times()) == {"NVLink"}
