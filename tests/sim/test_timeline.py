"""Text timeline rendering."""

import pytest

from repro.core.architectures import Architecture
from repro.graphs import Deployment, build_resnet50
from repro.sim.events import TimelineRecord
from repro.sim.executor import simulate_step
from repro.sim.measurement import StepMeasurement
from repro.sim.timeline import (
    busy_fraction_by_resource,
    render_timeline,
)


def toy_measurement():
    records = (
        TimelineRecord("in", "server0/pcie", 0.0, 0.25, "input"),
        TimelineRecord("mm", "server0/gpu0", 0.25, 0.75, "compute"),
        TimelineRecord("ew", "server0/gpu0", 0.75, 0.9, "memory"),
        TimelineRecord("ar", "server0/nvlink", 0.9, 1.0, "weight"),
    )
    return StepMeasurement("toy", records, step_time=1.0, num_cnodes=1)


class TestRenderTimeline:
    def test_glyph_placement(self):
        text = render_timeline(toy_measurement(), width=20)
        lines = text.splitlines()
        assert lines[0].startswith("step toy")
        by_resource = {line.split()[0]: line.split()[-1] for line in lines[1:]}
        assert by_resource["server0/pcie"].startswith("IIIII")
        assert by_resource["server0/pcie"].endswith(".")
        assert "C" in by_resource["server0/gpu0"]
        assert "M" in by_resource["server0/gpu0"]
        assert by_resource["server0/nvlink"].endswith("WW")

    def test_rows_have_equal_width(self):
        text = render_timeline(toy_measurement(), width=30)
        rows = [line.split()[-1] for line in text.splitlines()[1:]]
        assert all(len(row) == 30 for row in rows)

    def test_real_step_renders(self, testbed):
        measurement = simulate_step(
            build_resnet50(), Deployment(Architecture.ALLREDUCE_LOCAL, 4), testbed
        )
        text = render_timeline(measurement)
        assert "server0/gpu0" in text
        assert "W=weight" in text

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_timeline(toy_measurement(), width=2)

    def test_empty_step(self):
        empty = StepMeasurement("none", (), 0.0, 1)
        assert render_timeline(empty) == "(empty step)"

    def test_max_resources_cap(self, testbed):
        measurement = simulate_step(
            build_resnet50(), Deployment(Architecture.ALLREDUCE_LOCAL, 8), testbed
        )
        text = render_timeline(measurement, max_resources=3)
        assert len(text.splitlines()) == 4  # header + 3 rows


class TestBusyFractions:
    def test_fractions(self):
        fractions = busy_fraction_by_resource(toy_measurement())
        assert fractions["server0/gpu0"] == pytest.approx(0.65)
        assert fractions["server0/pcie"] == pytest.approx(0.25)

    def test_bounded_by_one(self, testbed):
        measurement = simulate_step(
            build_resnet50(), Deployment(Architecture.SINGLE, 1), testbed
        )
        assert all(
            0.0 <= f <= 1.0
            for f in busy_fraction_by_resource(measurement).values()
        )

    def test_empty(self):
        assert busy_fraction_by_resource(
            StepMeasurement("none", (), 0.0, 1)
        ) == {}
