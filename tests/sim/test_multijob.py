"""The cluster-level multi-job scheduler."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.sim.multijob import ClusterScheduler, sample_durations
from repro.trace.schema import JobRecord


def job(job_id, architecture=Architecture.SINGLE, num_cnodes=1, submit_day=0):
    features = WorkloadFeatures(
        name=f"job-{job_id}",
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=32,
        flop_count=1e9,
        memory_access_bytes=1e6,
        input_bytes=1e3,
        weight_traffic_bytes=0.0 if architecture is Architecture.SINGLE else 1e6,
        dense_weight_bytes=1e6,
    )
    return JobRecord(job_id=job_id, features=features, submit_day=submit_day)


class TestDurations:
    def test_deterministic_per_seed(self, small_trace):
        first = sample_durations(small_trace, seed=3)
        second = sample_durations(small_trace, seed=3)
        assert first == second

    def test_different_seeds_differ(self, small_trace):
        assert sample_durations(small_trace, seed=3) != sample_durations(
            small_trace, seed=4
        )

    def test_positive(self, small_trace):
        assert all(d > 0 for d in sample_durations(small_trace).values())

    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            sample_durations(small_trace, median_hours=0.0)


class TestPlacement:
    def test_local_job_needs_one_server(self):
        scheduler = ClusterScheduler(num_servers=2, gpus_per_server=8)
        # A 6-GPU local job and then another: both fit, one per server.
        jobs = [
            job(0, Architecture.ALLREDUCE_LOCAL, 6),
            job(1, Architecture.ALLREDUCE_LOCAL, 6),
        ]
        result = scheduler.schedule(jobs, durations={0: 1.0, 1: 1.0})
        assert all(e.wait_hours == 0 for e in result.executions)

    def test_fragmented_cluster_queues_local_jobs(self):
        scheduler = ClusterScheduler(num_servers=2, gpus_per_server=8)
        # Two 5-GPU jobs leave 3+3 free: a 6-GPU local job must wait even
        # though 6 GPUs are free in total.
        jobs = [
            job(0, Architecture.ALLREDUCE_LOCAL, 5),
            job(1, Architecture.ALLREDUCE_LOCAL, 5),
            job(2, Architecture.ALLREDUCE_LOCAL, 6),
        ]
        result = scheduler.schedule(
            jobs, durations={0: 2.0, 1: 3.0, 2: 1.0}
        )
        waits = {e.job.job_id: e.wait_hours for e in result.executions}
        assert waits[2] >= 2.0  # waits for the first 5-GPU job to end

    def test_ps_job_spreads_across_servers(self):
        scheduler = ClusterScheduler(num_servers=4, gpus_per_server=8)
        # A 4-worker PS job takes one GPU per server; a second one too.
        jobs = [
            job(0, Architecture.PS_WORKER, 4),
            job(1, Architecture.PS_WORKER, 4),
        ]
        result = scheduler.schedule(jobs, durations={0: 1.0, 1: 1.0})
        assert all(e.wait_hours == 0 for e in result.executions)

    def test_ps_job_wider_than_cluster_waits_forever_guard(self):
        scheduler = ClusterScheduler(num_servers=2, gpus_per_server=8)
        # 4 workers > 2 servers at 1 worker/server: never placeable.
        with pytest.raises(RuntimeError):
            scheduler.schedule(
                [job(0, Architecture.PS_WORKER, 4)], durations={0: 1.0}
            )

    def test_oversized_jobs_rejected(self):
        scheduler = ClusterScheduler(num_servers=1, gpus_per_server=8)
        result = scheduler.schedule(
            [job(0, Architecture.ALLREDUCE_CLUSTER, 100)], durations={0: 1.0}
        )
        assert len(result.rejected) == 1
        assert not result.executions


class TestMetrics:
    def test_gpu_hours(self):
        scheduler = ClusterScheduler(num_servers=1, gpus_per_server=8)
        result = scheduler.schedule(
            [job(0, Architecture.ALLREDUCE_LOCAL, 4)], durations={0: 2.0}
        )
        assert result.executions[0].gpu_hours == pytest.approx(8.0)

    def test_distributed_resource_share(self):
        scheduler = ClusterScheduler(num_servers=2, gpus_per_server=8)
        jobs = [
            job(0, Architecture.SINGLE, 1),
            job(1, Architecture.ALLREDUCE_LOCAL, 8),
        ]
        result = scheduler.schedule(jobs, durations={0: 1.0, 1: 1.0})
        assert result.distributed_resource_share() == pytest.approx(8 / 9)

    def test_utilization_bounded(self, small_trace):
        scheduler = ClusterScheduler(num_servers=64, gpus_per_server=8)
        placeable = [
            j for j in small_trace
            if j.num_cnodes <= 8 or j.workload_type is not Architecture.PS_WORKER
        ]
        # PS jobs wider than 64 servers cannot spread; drop them.
        placeable = [
            j for j in placeable
            if not (
                j.workload_type is Architecture.PS_WORKER and j.num_cnodes > 64
            )
        ]
        result = scheduler.schedule(placeable[:200])
        assert 0.0 < result.utilization() <= 1.0

    def test_makespan_covers_all_jobs(self):
        scheduler = ClusterScheduler(num_servers=1, gpus_per_server=8)
        jobs = [job(i, Architecture.SINGLE, 1, submit_day=i) for i in range(3)]
        result = scheduler.schedule(
            jobs, durations={0: 1.0, 1: 1.0, 2: 5.0}
        )
        assert result.makespan_hours >= 2 * 24 + 5.0

    def test_paper_claim_distributed_dominates(self, trace):
        """Sec. II-A2: distributed training uses >85% of resources."""
        scheduler = ClusterScheduler(num_servers=512, gpus_per_server=8)
        placeable = [
            j for j in trace
            if not (
                j.workload_type is Architecture.PS_WORKER
                and j.num_cnodes > 512
            )
        ][:1500]
        result = scheduler.schedule(placeable)
        assert result.distributed_resource_share() > 0.85


class TestValidation:
    def test_cluster_dimensions(self):
        with pytest.raises(ValueError):
            ClusterScheduler(num_servers=0)
        with pytest.raises(ValueError):
            ClusterScheduler(num_servers=1, gpus_per_server=0)
