"""PS-fleet provisioning wired into the step executor."""

import pytest

from repro.core.architectures import Architecture
from repro.graphs import Deployment, build_multi_interests
from repro.sim.executor import simulate_step


@pytest.fixture(scope="module")
def graph():
    return build_multi_interests()


class TestPsFleetInExecutor:
    def test_default_is_well_provisioned(self, graph, testbed):
        implicit = simulate_step(
            graph, Deployment(Architecture.PS_WORKER, 8), testbed
        )
        explicit = simulate_step(
            graph,
            Deployment(Architecture.PS_WORKER, 8, num_parameter_servers=8),
            testbed,
        )
        assert implicit.weight_time == pytest.approx(explicit.weight_time)

    def test_underprovisioned_fleet_slows_sync(self, graph, testbed):
        healthy = simulate_step(
            graph,
            Deployment(Architecture.PS_WORKER, 16, num_parameter_servers=16),
            testbed,
        )
        starved = simulate_step(
            graph,
            Deployment(Architecture.PS_WORKER, 16, num_parameter_servers=2),
            testbed,
        )
        assert starved.weight_time > 3 * healthy.weight_time

    def test_overprovisioning_does_not_help(self, graph, testbed):
        at_w = simulate_step(
            graph,
            Deployment(Architecture.PS_WORKER, 8, num_parameter_servers=8),
            testbed,
        )
        at_4w = simulate_step(
            graph,
            Deployment(Architecture.PS_WORKER, 8, num_parameter_servers=32),
            testbed,
        )
        assert at_4w.weight_time == pytest.approx(at_w.weight_time)

    def test_only_ethernet_hop_is_throttled(self, graph, testbed):
        healthy = simulate_step(
            graph,
            Deployment(Architecture.PS_WORKER, 16, num_parameter_servers=16),
            testbed,
        )
        starved = simulate_step(
            graph,
            Deployment(Architecture.PS_WORKER, 16, num_parameter_servers=4),
            testbed,
        )
        assert starved.weight_times()["PCIe"] == pytest.approx(
            healthy.weight_times()["PCIe"]
        )
        # 4x the wire time, modulo the fixed per-transfer NIC latency.
        assert starved.weight_times()["Ethernet"] == pytest.approx(
            4 * healthy.weight_times()["Ethernet"], rel=1e-3
        )

    def test_fleet_size_validation(self):
        with pytest.raises(ValueError):
            Deployment(Architecture.PS_WORKER, 8, num_parameter_servers=0)
