"""Collective cost models: ring, mesh, PS round trips."""

import pytest

from repro.sim.collectives import (
    allgatherv_time,
    broadcast_time,
    ps_pull_push_time,
    reduce_scatter_time,
    ring_allreduce_time,
)


class TestRingAllreduce:
    def test_single_node_is_free(self):
        assert ring_allreduce_time(1e9, 1, 1e9).seconds == 0.0

    def test_per_node_volume(self):
        cost = ring_allreduce_time(8e9, 8, 1e9, efficiency=1.0)
        assert cost.volume_per_node == pytest.approx(2 * 7 / 8 * 8e9)
        assert cost.seconds == pytest.approx(14.0)

    def test_latency_scales_with_ring_steps(self):
        cost = ring_allreduce_time(0.0, 4, 1e9, latency=0.1)
        assert cost.seconds == pytest.approx(2 * 3 * 0.1)

    def test_volume_approaches_2s_for_large_rings(self):
        cost = ring_allreduce_time(1e9, 1000, 1e9, efficiency=1.0)
        assert cost.volume_per_node == pytest.approx(2e9, rel=0.01)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(1.0, 0, 1e9)


class TestAllGatherv:
    def test_ring_topology(self):
        cost = allgatherv_time(1e9, 8, 1e9, efficiency=1.0, topology="ring")
        assert cost.volume_per_node == pytest.approx(7e9)

    def test_mesh_topology_is_one_slice(self):
        # The NVLink hybrid mesh runs pairwise exchanges concurrently.
        cost = allgatherv_time(1e9, 8, 1e9, efficiency=1.0, topology="mesh")
        assert cost.volume_per_node == pytest.approx(1e9)
        assert cost.seconds == pytest.approx(1.0)

    def test_mesh_beats_ring(self):
        ring = allgatherv_time(1e9, 8, 1e9, topology="ring")
        mesh = allgatherv_time(1e9, 8, 1e9, topology="mesh")
        assert mesh.seconds < ring.seconds

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            allgatherv_time(1e9, 8, 1e9, topology="torus")

    def test_single_node(self):
        assert allgatherv_time(1e9, 1, 1e9).seconds == 0.0


class TestReduceScatter:
    def test_ring_volume(self):
        cost = reduce_scatter_time(8e9, 8, 1e9, efficiency=1.0)
        assert cost.volume_per_node == pytest.approx(7e9)

    def test_mesh_volume(self):
        cost = reduce_scatter_time(
            8e9, 8, 1e9, efficiency=1.0, topology="mesh"
        )
        assert cost.volume_per_node == pytest.approx(1e9)

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            reduce_scatter_time(1e9, 4, 1e9, topology="star")


class TestBroadcast:
    def test_volume_independent_of_n(self):
        small = broadcast_time(1e9, 2, 1e9, efficiency=1.0)
        large = broadcast_time(1e9, 64, 1e9, efficiency=1.0)
        assert small.seconds == pytest.approx(large.seconds)

    def test_single_node(self):
        assert broadcast_time(1e9, 1, 1e9).seconds == 0.0


class TestPsPullPush:
    def test_hops_serialize(self):
        # The Ethernet & PCIe serialization of the analytical model.
        cost = ps_pull_push_time(
            7e8,
            ethernet_bandwidth=3.125e9,
            pcie_bandwidth=10e9,
            network_efficiency=0.7,
            pcie_efficiency=0.7,
        )
        expected = 7e8 / (3.125e9 * 0.7) + 7e8 / (10e9 * 0.7)
        assert cost.seconds == pytest.approx(expected)

    def test_ethernet_dominates(self):
        cost = ps_pull_push_time(1e9, 3.125e9, 10e9)
        eth_only = ps_pull_push_time(1e9, 3.125e9, 1e15)
        assert eth_only.seconds / cost.seconds > 0.7
