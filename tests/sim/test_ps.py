"""Parameter-server provisioning."""

import pytest

from repro.sim.ps import (
    PsProvisioning,
    ps_scaling_curve,
    ps_sync_time,
    recommended_ps_count,
)


class TestProvisioning:
    def test_load_factor(self):
        assert PsProvisioning(16, 4).ps_load_factor == 4.0
        assert PsProvisioning(16, 16).ps_load_factor == 1.0

    def test_ps_bound(self):
        assert PsProvisioning(16, 4).ps_bound
        assert not PsProvisioning(16, 16).ps_bound
        assert not PsProvisioning(8, 16).ps_bound

    def test_validation(self):
        with pytest.raises(ValueError):
            PsProvisioning(0, 1)
        with pytest.raises(ValueError):
            PsProvisioning(1, 0)


class TestSyncTime:
    def test_well_provisioned_matches_paper_model(self, hardware):
        """With p >= w the explicit PS model reduces to S_w on
        Ethernet + PCIe -- exactly the Sec. II-B charge."""
        traffic = 700e6
        time = ps_sync_time(traffic, PsProvisioning(8, 8), hardware)
        expected = traffic / (3.125e9 * 0.7) + traffic / (10e9 * 0.7)
        assert time == pytest.approx(expected)

    def test_underprovisioned_fleet_throttles(self, hardware):
        traffic = 700e6
        healthy = ps_sync_time(traffic, PsProvisioning(32, 32), hardware)
        starved = ps_sync_time(traffic, PsProvisioning(32, 4), hardware)
        assert starved > 4 * healthy * 0.5  # the wire part scales 8x

    def test_monotone_in_ps_count(self, hardware):
        traffic = 1e9
        times = [
            ps_sync_time(traffic, PsProvisioning(64, p), hardware)
            for p in (1, 2, 8, 32, 64)
        ]
        assert times == sorted(times, reverse=True)

    def test_overprovisioning_does_not_help(self, hardware):
        traffic = 1e9
        at_w = ps_sync_time(traffic, PsProvisioning(16, 16), hardware)
        at_2w = ps_sync_time(traffic, PsProvisioning(16, 32), hardware)
        assert at_2w == pytest.approx(at_w)

    def test_rejects_negative_traffic(self, hardware):
        with pytest.raises(ValueError):
            ps_sync_time(-1.0, PsProvisioning(2, 2), hardware)


class TestRecommendation:
    def test_one_ps_shard_per_worker(self):
        assert recommended_ps_count(32) == 32

    def test_recommended_count_is_sufficient(self, hardware):
        traffic = 1e9
        workers = 24
        recommended = recommended_ps_count(workers)
        at_recommended = ps_sync_time(
            traffic, PsProvisioning(workers, recommended), hardware
        )
        at_plenty = ps_sync_time(
            traffic, PsProvisioning(workers, 10 * workers), hardware
        )
        assert at_recommended == pytest.approx(at_plenty)

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_ps_count(0)


class TestScalingCurve:
    def test_rows_sorted_and_flagged(self, hardware):
        rows = ps_scaling_curve(1e9, 32, hardware, ps_counts=[2, 8, 32])
        assert [row["num_ps"] for row in rows] == [2, 8, 32]
        assert rows[0]["ps_bound"]
        assert not rows[-1]["ps_bound"]

    def test_default_counts_include_worker_count(self, hardware):
        rows = ps_scaling_curve(1e9, 32, hardware)
        assert any(row["num_ps"] == 32 for row in rows)
