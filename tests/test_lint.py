"""Repository hygiene: output discipline for the obs subsystem.

Tier-1 guard that ``src/`` stays free of bare ``print()`` calls -- the
check ran through ``tools/check_no_print.py`` historically and now goes
straight through the :mod:`repro.lint` engine (the CLI equivalent is
``python -m repro.lint src --rules no-print``).
"""

from pathlib import Path

from repro.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_no_bare_print_outside_cli_and_report():
    """Everything except the CLI and report renderer goes through
    :mod:`repro.obs` sinks (so ``-q``/``-v``/``--log-json`` govern it)."""
    result = lint_paths([REPO_ROOT / "src"], rules=["no-print"])
    assert result.findings == [], "\n".join(
        finding.render() for finding in result.findings
    )


def test_lint_catches_a_bare_print(tmp_path):
    offender = tmp_path / "repro" / "bad.py"
    offender.parent.mkdir(parents=True)
    offender.write_text('print("leaky")\n')
    result = lint_paths([tmp_path], rules=["no-print"])
    assert [finding.rule for finding in result.findings] == ["no-print"]
    # Docstrings and strings mentioning print() are fine (AST-based).
    offender.write_text('"""usage: print(x)"""\nVALUE = "print(x)"\n')
    assert lint_paths([tmp_path], rules=["no-print"]).findings == []
