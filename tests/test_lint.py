"""Repository hygiene: output discipline for the obs subsystem."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_no_bare_print_outside_cli_and_report():
    """Everything except the CLI and report renderer goes through
    :mod:`repro.obs` sinks (so ``-q``/``-v``/``--log-json`` govern it)."""
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_no_print
    finally:
        sys.path.pop(0)
    assert check_no_print.main([str(REPO_ROOT / "src")]) == 0


def test_lint_catches_a_bare_print(tmp_path):
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import check_no_print
    finally:
        sys.path.pop(0)
    offender = tmp_path / "repro" / "bad.py"
    offender.parent.mkdir(parents=True)
    offender.write_text('print("leaky")\n')
    assert check_no_print.main([str(tmp_path)]) == 1
    # Docstrings and strings mentioning print() are fine (AST-based).
    offender.write_text('"""usage: print(x)"""\nVALUE = "print(x)"\n')
    assert check_no_print.main([str(tmp_path)]) == 0
