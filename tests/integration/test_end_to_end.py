"""Cross-module integration: the full characterization pipelines."""

import pytest

from repro.core import (
    Architecture,
    PAPER_DEFAULT_EFFICIENCY,
    TABLE_VI_EFFICIENCIES,
    analyze_population,
    average_fractions,
    estimate_breakdown,
    projection_speedups,
)
from repro.graphs import (
    Deployment,
    all_case_studies,
    case_study_features,
    features_for,
)
from repro.optim import apply_passes, mixed_precision_pass, xla_fusion_pass
from repro.profiling import JobMetadata, RunMetadata, extract_features
from repro.sim import simulate_step
from repro.trace import features_of_type


class TestProfileExtractEstimateLoop:
    """The Fig. 4 pipeline end to end: simulate a step, profile it,
    extract features, estimate the breakdown, compare to the measured."""

    @pytest.mark.parametrize("name", ["ResNet50", "NMT", "BERT"])
    def test_loop_closes_for_allreduce_models(self, name, case_studies, testbed):
        graph = case_studies[name]
        deployment = Deployment(
            Architecture.ALLREDUCE_LOCAL,
            8,
            embedding_sync_dense=(name == "BERT"),
        )
        measurement = simulate_step(
            graph, deployment, testbed, PAPER_DEFAULT_EFFICIENCY
        )
        metadata = RunMetadata.from_measurement(measurement)
        job = JobMetadata(
            name, deployment.architecture, num_workers=8,
            batch_size=graph.batch_size,
        )
        extracted = extract_features(metadata, job)
        estimate = estimate_breakdown(extracted, testbed)
        measured = measurement.breakdown()
        # Same efficiency on both sides: compute and memory agree tightly.
        assert estimate.compute_flops == pytest.approx(
            measured.compute_flops, rel=0.02
        )
        assert estimate.compute_memory == pytest.approx(
            measured.compute_memory, rel=0.02
        )

    def test_ps_weight_time_roundtrip(self, case_studies, testbed):
        graph = case_studies["Multi-Interests"]
        deployment = Deployment(Architecture.PS_WORKER, 8)
        measurement = simulate_step(
            graph, deployment, testbed, PAPER_DEFAULT_EFFICIENCY
        )
        metadata = RunMetadata.from_measurement(measurement)
        job = JobMetadata("mi", deployment.architecture, num_workers=8)
        extracted = extract_features(metadata, job)
        estimate = estimate_breakdown(extracted, testbed)
        measured = measurement.breakdown()
        assert estimate.weight_total == pytest.approx(
            measured.weight_total, rel=0.02
        )


class TestTraceToConclusions:
    """From synthetic trace to the paper's headline conclusions."""

    def test_communication_is_the_bottleneck(self, trace, hardware):
        analyzed = analyze_population(
            [job.features for job in trace], hardware
        )
        fractions = average_fractions(analyzed, cnode_level=True)
        assert fractions["weight"] > max(
            fractions["compute_bound"], fractions["memory_bound"]
        )

    def test_projection_pipeline_over_trace(self, trace, hardware):
        ps = features_of_type(list(trace), Architecture.PS_WORKER)[:500]
        results = [
            projection_speedups(f, Architecture.ALLREDUCE_LOCAL, hardware)
            for f in ps
        ]
        sped_up = sum(1 for r in results if r.sped_up) / len(results)
        assert 0.5 < sped_up < 0.75


class TestOptimizationPipeline:
    def test_mp_xla_compose_on_real_model(self, case_studies, testbed):
        graph = case_studies["BERT"]
        deployment = Deployment(
            Architecture.ALLREDUCE_LOCAL, 8, embedding_sync_dense=True
        )
        eff = TABLE_VI_EFFICIENCIES["BERT"]
        base = simulate_step(graph, deployment, testbed, eff)
        optimized = simulate_step(
            apply_passes(graph, [mixed_precision_pass, xla_fusion_pass]),
            deployment,
            testbed,
            eff,
        )
        speedup = base.serial_total / optimized.serial_total
        assert 1.8 <= speedup <= 3.0  # paper: 2x


class TestCaseStudyFeatureParity:
    def test_features_match_direct_derivation(self, case_studies, deployments):
        derived = case_study_features()
        for name, graph in case_studies.items():
            direct = features_for(graph, deployments[name])
            assert derived[name] == direct

    def test_all_six_models_estimable_on_testbed(self, testbed):
        for name, features in case_study_features().items():
            breakdown = estimate_breakdown(features, testbed)
            assert breakdown.total > 0, name


class TestSimulatorAgreesWithModelAtUniformEfficiency:
    """With identical 70% efficiencies and no overhead, the simulator
    must converge to the analytical model -- the strongest cross-check
    between the two implementations."""

    @pytest.mark.parametrize(
        "name,arch,n",
        [
            ("ResNet50", Architecture.SINGLE, 1),
            ("ResNet50", Architecture.PS_WORKER, 4),
            ("Speech", Architecture.SINGLE, 1),
        ],
    )
    def test_agreement(self, name, arch, n, case_studies, testbed):
        from repro.sim.executor import SimulationOptions

        graph = case_studies[name]
        deployment = Deployment(arch, n)
        measurement = simulate_step(
            graph,
            deployment,
            testbed,
            PAPER_DEFAULT_EFFICIENCY,
            options=SimulationOptions(launch_overhead=0.0),
        )
        estimate = estimate_breakdown(features_for(graph, deployment), testbed)
        assert measurement.breakdown().total == pytest.approx(
            estimate.total, rel=0.05
        )
