"""The changepoint detector: baselines, sustained deviations, bursts."""

import pytest

from repro.faults import Anomaly, detect, detect_series, rolling_baseline
from repro.faults.detect import BURST_MIN_EVENTS, SUSTAIN, WARMUP_SAMPLES


def series(values):
    return list(range(len(values))), list(values)


def healthy_then(level, *, healthy=1.0, warmup=WARMUP_SAMPLES, tail=6):
    return [healthy] * warmup + [level] * tail


class TestRollingBaseline:
    def test_median_of_warmup_window(self):
        assert rolling_baseline([1.0, 2.0, 3.0], warmup=3) == 2.0
        assert rolling_baseline([1.0, 2.0, 3.0, 4.0], warmup=4) == 2.5

    def test_robust_to_an_early_outlier(self):
        values = [1.0, 50.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        assert rolling_baseline(values) == 1.0

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            rolling_baseline([])


class TestDetectSeries:
    def test_flat_series_is_clean(self):
        times, values = series([1.0] * 20)
        assert detect_series(times, values, direction="up") is None

    def test_sustained_inflation_is_flagged_at_onset(self):
        times, values = series(healthy_then(1.5))
        hit = detect_series(times, values, direction="up")
        assert hit is not None
        onset, peak = hit
        assert onset == WARMUP_SAMPLES
        assert peak == pytest.approx(0.5)

    def test_blip_shorter_than_sustain_is_ignored(self):
        values = [1.0] * WARMUP_SAMPLES
        values += [1.5] * (SUSTAIN - 1)
        values += [1.0] * 6
        times, values = series(values)
        assert detect_series(times, values, direction="up") is None

    def test_downward_direction_flags_drops(self):
        times, values = series(healthy_then(0.6))
        hit = detect_series(
            times, values, direction="down", threshold=0.15
        )
        assert hit is not None
        assert hit[1] == pytest.approx(0.4)

    def test_drop_is_invisible_to_up_direction(self):
        times, values = series(healthy_then(0.6))
        assert detect_series(times, values, direction="up") is None

    def test_peak_spans_the_whole_excursion(self):
        values = [1.0] * WARMUP_SAMPLES + [1.5, 1.5, 1.5, 2.0, 1.5]
        times, values = series(values)
        hit = detect_series(times, values, direction="up")
        assert hit is not None
        assert hit[1] == pytest.approx(1.0)  # the late 2.0 sample

    def test_too_short_series_is_clean(self):
        times, values = series([1.0] * WARMUP_SAMPLES)
        assert detect_series(times, values, direction="up") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_series([0.0], [1.0], direction="sideways")
        with pytest.raises(ValueError):
            detect_series([0.0, 1.0], [1.0], direction="up")


def step_event(tick, replica, compute_s, step_s):
    return {
        "kind": "telemetry.step",
        "tick": tick,
        "replica": replica,
        "compute_s": compute_s,
        "step_s": step_s,
    }


class TestDetect:
    def test_compute_inflation_yields_replica_anomaly(self):
        events = []
        for tick in range(WARMUP_SAMPLES + 6):
            sick = tick >= WARMUP_SAMPLES
            events.append(step_event(tick, 0, 2.0 if sick else 1.0, 1.0))
            events.append(step_event(tick, 1, 1.0, 1.0))
        anomalies = detect(events)
        assert (
            Anomaly("compute_inflation", "replica:0", float(WARMUP_SAMPLES), 1.0)
            in anomalies
        )
        assert all(a.target != "replica:1" for a in anomalies)

    def test_single_failure_is_not_a_burst(self):
        events = [
            {
                "kind": "sched.job_failed",
                "job_id": 4,
                "hour": 12.0,
                "retries": 1,
            }
        ]
        anomalies = detect(events)
        assert [a.symptom for a in anomalies] == ["job_failure"]
        assert anomalies[0].target == "job:4"

    def test_preemption_burst_needs_events_and_distinct_jobs(self):
        one_job = [
            {"kind": "sched.preempted", "job_id": 1, "hour": float(h)}
            for h in range(BURST_MIN_EVENTS)
        ]
        assert not any(
            a.symptom == "preemption_burst" for a in detect(one_job)
        )
        two_jobs = one_job + [
            {"kind": "sched.preempted", "job_id": 2, "hour": 9.0}
        ]
        bursts = [
            a for a in detect(two_jobs) if a.symptom == "preemption_burst"
        ]
        assert len(bursts) == 1
        assert bursts[0].target == "fleet"
        assert bursts[0].onset == 0.0

    def test_empty_stream_is_clean(self):
        assert detect([]) == ()
