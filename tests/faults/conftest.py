"""Shared fixtures for the fault-injection tests."""

import pytest

from repro.core.architectures import Architecture
from repro.graphs.features_from_graph import Deployment
from repro.graphs.graph import ModelGraph
from repro.graphs.ops import matmul_op


@pytest.fixture(scope="session")
def probe_graph():
    """The same tiny dense model the scenario harness replays."""
    ops = (
        matmul_op("fc1", 512, 512, 512, batch=32, param_bytes=512 * 512 * 4),
        matmul_op("fc2", 512, 512, 256, batch=32, param_bytes=512 * 256 * 4),
    )
    return ModelGraph(
        name="faults-test-probe",
        domain="synthetic",
        forward=ops,
        batch_size=32,
        input_bytes_per_sample=4096.0,
    )


@pytest.fixture(scope="session")
def probe_deployment():
    return Deployment(
        architecture=Architecture.PS_WORKER,
        num_cnodes=4,
        num_parameter_servers=4,
    )
