"""The scored scenario harness: coverage, accuracy, determinism."""

import inspect
import json

import pytest

from repro.faults import (
    FaultKind,
    run_scenario,
    scenario_specs,
    score_suite,
)

#: The committed acceptance bar (>= 25 scenarios, >= 80% localized).
SUITE_SIZE = 25
MIN_ACCURACY = 0.8


@pytest.fixture(scope="module")
def report():
    return score_suite(SUITE_SIZE)


class TestSpecs:
    def test_count_validated(self):
        with pytest.raises(ValueError):
            scenario_specs(0)

    def test_kinds_cycle_round_robin(self):
        specs = scenario_specs(SUITE_SIZE)
        kinds = [s.fault.kind for s in specs]
        for kind in FaultKind:
            assert kinds.count(kind) == SUITE_SIZE // len(FaultKind)

    def test_specs_are_deterministic(self):
        assert scenario_specs(10) == scenario_specs(10)

    def test_seed_changes_the_plans(self):
        assert scenario_specs(10, seed=1) != scenario_specs(10, seed=2)

    def test_single_fault_per_plan(self):
        for spec in scenario_specs(SUITE_SIZE):
            assert len(spec.plan.faults) == 1


class TestAcceptance:
    def test_suite_meets_the_localization_bar(self, report):
        assert len(report.results) == SUITE_SIZE
        assert report.accuracy >= MIN_ACCURACY
        assert report.kind_accuracy >= MIN_ACCURACY

    def test_every_kind_is_covered_and_localized(self, report):
        by_kind = report.by_kind()
        assert set(by_kind) == {k.value for k in FaultKind}
        for kind, (localized, total) in by_kind.items():
            assert total == SUITE_SIZE // len(FaultKind)
            assert localized / total >= MIN_ACCURACY, kind

    def test_onsets_are_localized_in_time(self, report):
        assert report.onset_accuracy >= MIN_ACCURACY

    def test_report_round_trips_through_json(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["scenarios"] == SUITE_SIZE
        assert payload["accuracy"] == report.accuracy
        assert payload["digest"] == report.digest
        assert len(payload["results"]) == SUITE_SIZE


class TestDeterminism:
    def test_rerun_reproduces_byte_identical_scores(self, report):
        again = score_suite(SUITE_SIZE)
        assert again.digest == report.digest
        assert again.results == report.results

    def test_single_scenario_reruns_identically(self):
        spec = scenario_specs(3)[2]  # a sched-kind scenario (crash)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first == second
        assert first.digest == second.digest


class TestBlindness:
    """The detection pipeline never sees the ground truth."""

    def test_detector_modules_never_touch_the_plan(self):
        import repro.faults.detect as detect_module
        import repro.faults.localize as localize_module

        for module in (detect_module, localize_module):
            source = inspect.getsource(module)
            assert "FaultPlan" not in source
            assert "injector" not in source

    def test_diagnosis_works_from_captured_events_only(self):
        from repro.faults import canonical_events, capture, diagnose
        from repro.faults.scenarios import _run_sim_scenario

        spec = scenario_specs(1)[0]  # a straggler scenario
        with capture() as sink:
            _run_sim_scenario(spec)
        events = canonical_events(sink.events)
        # Nothing in the stream names the cause...
        for event in events:
            assert "straggler" not in json.dumps(event)
        # ...yet the pipeline recovers it.
        diagnosis = diagnose(events)
        assert diagnosis.kind is FaultKind.STRAGGLER
        assert diagnosis.target == spec.fault.target
