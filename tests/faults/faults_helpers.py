"""Shared job factory for the fault-injection tests."""

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.trace.schema import JobRecord


def make_job(job_id, num_cnodes=1, submit_day=0):
    """One synthetic job for engine-level fault tests."""
    architecture = (
        Architecture.SINGLE
        if num_cnodes == 1
        else Architecture.LOCAL_CENTRALIZED
    )
    features = WorkloadFeatures(
        name=f"job-{job_id}",
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=32,
        flop_count=1e9,
        memory_access_bytes=1e6,
        input_bytes=1e3,
        weight_traffic_bytes=0.0 if num_cnodes == 1 else 1e6,
        dense_weight_bytes=1e6,
    )
    return JobRecord(job_id=job_id, features=features, submit_day=submit_day)
