"""Typed fault specifications: validation, windows, plan partition."""

import pytest

from repro.faults import (
    SCHED_KINDS,
    SIM_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    fleet_target,
    job_target,
    link_target,
    parse_target,
    ps_target,
    replica_target,
)


class TestTargets:
    def test_round_trip(self):
        assert parse_target(replica_target(2)) == ("replica", "2")
        assert parse_target(link_target(1, "nic")) == ("link", "1", "nic")
        assert parse_target(ps_target(3)) == ("ps", "3")
        assert parse_target(job_target(17)) == ("job", "17")
        assert parse_target(job_target("*")) == ("job", "*")
        assert parse_target(fleet_target()) == ("fleet",)


class TestFaultSpec:
    def test_activation_window_is_half_open(self):
        fault = FaultSpec(
            FaultKind.STRAGGLER, replica_target(0), 10.0, 5.0, 2.0
        )
        assert not fault.active_at(9.9)
        assert fault.active_at(10.0)
        assert fault.active_at(14.9)
        assert not fault.active_at(15.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.STRAGGLER, replica_target(0), -1.0, 5.0, 2.0)
        with pytest.raises(ValueError):
            FaultSpec(FaultKind.STRAGGLER, replica_target(0), 1.0, 0.0, 2.0)

    @pytest.mark.parametrize(
        "kind,target,bad_severity",
        [
            (FaultKind.STRAGGLER, replica_target(0), 0.5),
            (FaultKind.LINK_DEGRADATION, link_target(0, "nic"), 0.0),
            (FaultKind.LINK_DEGRADATION, link_target(0, "nic"), 1.5),
            (FaultKind.PS_HOTSPOT, ps_target(0), 1.0),
            (FaultKind.WORKER_CRASH, job_target("*"), 0.0),
            (FaultKind.PREEMPTION_STORM, fleet_target(), 0.5),
        ],
    )
    def test_kind_specific_severity_validation(
        self, kind, target, bad_severity
    ):
        with pytest.raises(ValueError):
            FaultSpec(kind, target, 1.0, 5.0, bad_severity)

    def test_valid_severities_accepted(self):
        FaultSpec(FaultKind.STRAGGLER, replica_target(0), 0.0, 1.0, 1.0)
        FaultSpec(
            FaultKind.LINK_DEGRADATION, link_target(0, "pcie"), 0.0, 1.0, 1.0
        )
        FaultSpec(FaultKind.PS_HOTSPOT, ps_target(1), 0.0, 1.0, 3.0)
        FaultSpec(FaultKind.WORKER_CRASH, job_target(4), 0.0, 2.0, 2.0)
        FaultSpec(FaultKind.PREEMPTION_STORM, fleet_target(), 0.0, 3.0, 2.0)


class TestFaultPlan:
    def test_partitions_by_layer(self):
        sim = FaultSpec(FaultKind.STRAGGLER, replica_target(0), 5.0, 5.0, 2.0)
        sched = FaultSpec(FaultKind.WORKER_CRASH, job_target("*"), 2.0, 2.0, 2.0)
        plan = FaultPlan(seed=7, faults=(sim, sched))
        assert plan.sim_faults == (sim,)
        assert plan.sched_faults == (sched,)

    def test_kind_partition_is_total(self):
        assert set(SIM_KINDS) | set(SCHED_KINDS) == set(FaultKind)
        assert not set(SIM_KINDS) & set(SCHED_KINDS)
