"""Regression tests for each fault kind's symptom signature.

The separability table in :mod:`repro.faults.localize` is what makes
telemetry-only RCA possible; these tests pin each row of it, first at
the executor/engine level (raw measurements) and then through the full
detect -> localize pipeline on scenario telemetry.
"""

import pytest

from repro.faults import FaultKind, canonical_events, capture, detect
from repro.faults.scenarios import (
    _run_sched_scenario,
    _run_sim_scenario,
    scenario_specs,
)
from repro.sched import (
    CrashSpec,
    FifoPolicy,
    Fleet,
    SchedFaults,
    StormSpec,
    run_schedule,
)
from repro.sim import SimulationOptions, StepFaults, simulate_step

from faults_helpers import make_job

OPTIONS = SimulationOptions(jitter_sigma=0.0)


def run(graph, deployment, faults=None):
    return simulate_step(graph, deployment, options=OPTIONS, faults=faults)


class TestSimSignatures:
    def test_healthy_run_matches_no_faults(self, probe_graph, probe_deployment):
        baseline = run(probe_graph, probe_deployment)
        explicit = run(probe_graph, probe_deployment, StepFaults())
        assert baseline.replica_step_s == explicit.replica_step_s
        assert baseline.replica_compute_s == explicit.replica_compute_s

    def test_straggler_inflates_one_replica_compute_and_step(
        self, probe_graph, probe_deployment
    ):
        healthy = run(probe_graph, probe_deployment)
        faulted = run(
            probe_graph,
            probe_deployment,
            StepFaults(compute_multipliers={1: 2.5}),
        )
        # The victim's kernels slow down, so its compute and step inflate
        # (launch overhead is unscaled, so observed < 2.5x).
        assert (
            faulted.replica_compute_s[1] > 1.4 * healthy.replica_compute_s[1]
        )
        assert faulted.replica_step_s[1] > healthy.replica_step_s[1]
        for replica in (0, 2, 3):
            assert faulted.replica_compute_s[replica] == pytest.approx(
                healthy.replica_compute_s[replica]
            )

    def test_link_degradation_inflates_step_with_flat_compute(
        self, probe_graph, probe_deployment
    ):
        healthy = run(probe_graph, probe_deployment)
        faulted = run(
            probe_graph,
            probe_deployment,
            StepFaults(link_bandwidth={(0, "nic"): 0.3}),
        )
        assert faulted.replica_step_s[0] > 1.1 * healthy.replica_step_s[0]
        for replica in range(4):
            assert faulted.replica_compute_s[replica] == pytest.approx(
                healthy.replica_compute_s[replica]
            )

    def test_hotspot_inflates_every_replica_step_with_flat_compute(
        self, probe_graph, probe_deployment
    ):
        healthy = run(probe_graph, probe_deployment)
        faulted = run(
            probe_graph,
            probe_deployment,
            StepFaults(ps_shard_weights=(4.0, 1.0, 1.0, 1.0)),
        )
        for replica in range(4):
            assert (
                faulted.replica_step_s[replica]
                > 1.2 * healthy.replica_step_s[replica]
            )
            assert faulted.replica_compute_s[replica] == pytest.approx(
                healthy.replica_compute_s[replica]
            )

    def test_injection_is_deterministic(self, probe_graph, probe_deployment):
        faults = StepFaults(
            compute_multipliers={2: 2.0}, link_bandwidth={(1, "pcie"): 0.5}
        )
        first = run(probe_graph, probe_deployment, faults)
        second = run(probe_graph, probe_deployment, faults)
        assert first.replica_step_s == second.replica_step_s
        assert first.replica_compute_s == second.replica_compute_s


class TestSchedSignatures:
    def _jobs(self, count=6):
        return [make_job(i, num_cnodes=2) for i in range(count)]

    def _durations(self, count=6, hours=10.0):
        return {i: hours for i in range(count)}

    def test_crash_emits_job_failed_and_counts_retry(self):
        with capture() as sink:
            outcome = run_schedule(
                self._jobs(),
                Fleet(num_servers=4),
                FifoPolicy(),
                durations=self._durations(),
                faults=SchedFaults(crashes=(CrashSpec(hour=2.0),)),
            )
        failures = sink.of_kind("sched.job_failed")
        assert len(failures) == 1
        assert outcome.total_retries == 1
        # Work is conserved: every job still completes.
        assert len(outcome.outcomes) == 6
        assert all(o.end_hour is not None for o in outcome.outcomes)

    def test_storm_emits_preemption_burst(self):
        storm = StormSpec(
            start_hour=1.0, ticks=3, interval_hours=1.0, victims_per_tick=2
        )
        with capture() as sink:
            outcome = run_schedule(
                self._jobs(),
                Fleet(num_servers=4),
                FifoPolicy(),
                durations=self._durations(),
                faults=SchedFaults(storms=(storm,)),
            )
        preemptions = sink.of_kind("sched.preempted")
        assert len(preemptions) >= 3
        assert len({e["job_id"] for e in preemptions}) >= 2
        assert all(o.end_hour is not None for o in outcome.outcomes)

    def test_healthy_fifo_run_is_symptom_free(self):
        with capture() as sink:
            run_schedule(
                self._jobs(),
                Fleet(num_servers=4),
                FifoPolicy(),
                durations=self._durations(),
            )
        assert not sink.of_kind("sched.job_failed")
        assert not sink.of_kind("sched.preempted")

    def test_injection_is_deterministic(self):
        def replay():
            return run_schedule(
                self._jobs(),
                Fleet(num_servers=4),
                FifoPolicy(),
                durations=self._durations(),
                faults=SchedFaults(
                    crashes=(CrashSpec(hour=2.0),),
                    storms=(StormSpec(start_hour=5.0),),
                ),
            )

        first, second = replay(), replay()
        assert [o.end_hour for o in first.outcomes] == [
            o.end_hour for o in second.outcomes
        ]
        assert [o.retries for o in first.outcomes] == [
            o.retries for o in second.outcomes
        ]


def _symptoms(spec):
    with capture() as sink:
        if spec.is_sched:
            _run_sched_scenario(spec)
        else:
            _run_sim_scenario(spec)
    anomalies = detect(canonical_events(sink.events))
    return {a.symptom for a in anomalies}, anomalies


class TestPipelineSignatures:
    """Scenario telemetry shows exactly the expected symptom families.

    ``scenario_specs`` cycles kinds in a fixed order, so ids 0..4 give
    one scenario of every kind.
    """

    @pytest.fixture(scope="class")
    def specs(self):
        specs = scenario_specs(5)
        assert [s.fault.kind for s in specs] == [
            FaultKind.STRAGGLER,
            FaultKind.LINK_DEGRADATION,
            FaultKind.WORKER_CRASH,
            FaultKind.PS_HOTSPOT,
            FaultKind.PREEMPTION_STORM,
        ]
        return specs

    def test_straggler_signature(self, specs):
        symptoms, anomalies = _symptoms(specs[0])
        assert "compute_inflation" in symptoms
        assert "step_inflation" in symptoms
        assert "link_rate_drop" not in symptoms
        assert "shard_skew" not in symptoms
        targets = {
            a.target for a in anomalies if a.symptom == "compute_inflation"
        }
        assert targets == {specs[0].fault.target}

    def test_link_signature(self, specs):
        symptoms, anomalies = _symptoms(specs[1])
        assert "link_rate_drop" in symptoms
        assert "step_inflation" in symptoms
        assert "compute_inflation" not in symptoms
        assert "shard_skew" not in symptoms
        targets = {
            a.target for a in anomalies if a.symptom == "link_rate_drop"
        }
        assert specs[1].fault.target in targets

    def test_crash_signature(self, specs):
        symptoms, _ = _symptoms(specs[2])
        assert "job_failure" in symptoms
        assert "preemption_burst" not in symptoms

    def test_hotspot_signature(self, specs):
        symptoms, anomalies = _symptoms(specs[3])
        assert "shard_skew" in symptoms
        assert "compute_inflation" not in symptoms
        assert "link_rate_drop" not in symptoms
        # The synchronization tier is sick, so the slowdown is symmetric:
        # step inflation is either fleet-wide (severe hotspot) or below
        # the changepoint threshold everywhere -- never one replica.
        inflated = {
            a.target for a in anomalies if a.symptom == "step_inflation"
        }
        assert len(inflated) in (0, 4)

    def test_storm_signature(self, specs):
        symptoms, _ = _symptoms(specs[4])
        assert "preemption_burst" in symptoms
        assert "job_failure" not in symptoms
