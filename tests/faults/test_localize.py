"""Symptom -> root-cause attribution: the decision list, pinned."""

from repro.faults import Anomaly, FaultKind, localize


def anomaly(symptom, target, onset=10.0, magnitude=0.5):
    return Anomaly(symptom, target, onset, magnitude)


class TestDecisionOrder:
    def test_empty_set_is_healthy(self):
        diagnosis = localize([])
        assert diagnosis.is_healthy
        assert diagnosis.kind is None
        assert diagnosis.confidence == 0.0

    def test_job_failure_wins_over_everything(self):
        diagnosis = localize(
            [
                anomaly("compute_inflation", "replica:0"),
                anomaly("job_failure", "job:7", onset=4.0),
            ]
        )
        assert diagnosis.kind is FaultKind.WORKER_CRASH
        assert diagnosis.target == "job:7"
        assert diagnosis.onset == 4.0

    def test_earliest_failure_names_the_victim(self):
        diagnosis = localize(
            [
                anomaly("job_failure", "job:9", onset=8.0),
                anomaly("job_failure", "job:3", onset=2.0),
            ]
        )
        assert diagnosis.target == "job:3"

    def test_burst_beats_inflation(self):
        diagnosis = localize(
            [
                anomaly("step_inflation", "replica:1"),
                anomaly("preemption_burst", "fleet", magnitude=6.0),
            ]
        )
        assert diagnosis.kind is FaultKind.PREEMPTION_STORM
        assert diagnosis.target == "fleet"

    def test_compute_inflation_means_straggler(self):
        diagnosis = localize(
            [
                anomaly("compute_inflation", "replica:2", magnitude=0.9),
                anomaly("step_inflation", "replica:2", magnitude=0.4),
            ]
        )
        assert diagnosis.kind is FaultKind.STRAGGLER
        assert diagnosis.target == "replica:2"
        assert diagnosis.confidence == 1.0  # corroborated by step_s

    def test_uncorroborated_straggler_has_lower_confidence(self):
        diagnosis = localize([anomaly("compute_inflation", "replica:2")])
        assert diagnosis.kind is FaultKind.STRAGGLER
        assert diagnosis.confidence < 1.0

    def test_strongest_compute_inflation_wins(self):
        diagnosis = localize(
            [
                anomaly("compute_inflation", "replica:0", magnitude=0.3),
                anomaly("compute_inflation", "replica:3", magnitude=0.8),
            ]
        )
        assert diagnosis.target == "replica:3"

    def test_link_drop_without_compute_inflation_means_link(self):
        diagnosis = localize(
            [
                anomaly("link_rate_drop", "link:1:nic", magnitude=0.6),
                anomaly("step_inflation", "replica:1", magnitude=0.3),
            ]
        )
        assert diagnosis.kind is FaultKind.LINK_DEGRADATION
        assert diagnosis.target == "link:1:nic"

    def test_shard_skew_means_hotspot(self):
        diagnosis = localize(
            [
                anomaly("shard_skew", "ps:2", magnitude=2.5),
                anomaly("step_inflation", "replica:0"),
                anomaly("step_inflation", "replica:1"),
            ]
        )
        assert diagnosis.kind is FaultKind.PS_HOTSPOT
        assert diagnosis.target == "ps:2"
        assert diagnosis.confidence == 1.0

    def test_fleetwide_step_inflation_falls_back_to_hotspot(self):
        diagnosis = localize(
            [
                anomaly("step_inflation", "replica:0", onset=12.0),
                anomaly("step_inflation", "replica:1", onset=13.0),
            ]
        )
        assert diagnosis.kind is FaultKind.PS_HOTSPOT
        assert diagnosis.target is None
        assert diagnosis.onset == 12.0
        assert diagnosis.confidence < 0.5

    def test_single_step_inflation_stays_healthy(self):
        # One replica slower with flat compute/links/shards: no single
        # root cause is separable, so the pipeline stays silent rather
        # than guessing.
        diagnosis = localize([anomaly("step_inflation", "replica:0")])
        assert diagnosis.is_healthy

    def test_evidence_lists_every_anomaly(self):
        diagnosis = localize(
            [
                anomaly("job_failure", "job:1"),
                anomaly("step_inflation", "replica:0"),
            ]
        )
        assert len(diagnosis.evidence) == 2
        assert any("job_failure@job:1" in e for e in diagnosis.evidence)
