"""Plan -> hook compilation: windows, composition, validation."""

import pytest

from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    fleet_target,
    job_target,
    link_target,
    ps_target,
    replica_target,
    sched_faults_for,
    step_faults_at,
)
from repro.faults.injector import STORM_TICKS


def plan_of(*faults):
    return FaultPlan(seed=1, faults=tuple(faults))


class TestStepFaultsAt:
    def test_inactive_outside_window(self):
        plan = plan_of(
            FaultSpec(FaultKind.STRAGGLER, replica_target(1), 10.0, 5.0, 2.0)
        )
        assert step_faults_at(plan, 9.0, 4).is_healthy
        assert not step_faults_at(plan, 10.0, 4).is_healthy
        assert step_faults_at(plan, 15.0, 4).is_healthy

    def test_straggler_compiles_to_compute_multiplier(self):
        plan = plan_of(
            FaultSpec(FaultKind.STRAGGLER, replica_target(2), 0.0, 5.0, 2.5)
        )
        hooks = step_faults_at(plan, 1.0, 4)
        assert hooks.compute_multiplier(2) == 2.5
        assert hooks.compute_multiplier(0) == 1.0

    def test_overlapping_stragglers_take_the_worst(self):
        plan = plan_of(
            FaultSpec(FaultKind.STRAGGLER, replica_target(0), 0.0, 9.0, 1.8),
            FaultSpec(FaultKind.STRAGGLER, replica_target(0), 0.0, 9.0, 2.6),
        )
        assert step_faults_at(plan, 1.0, 4).compute_multiplier(0) == 2.6

    def test_link_degradation_compiles_to_bandwidth_fraction(self):
        plan = plan_of(
            FaultSpec(
                FaultKind.LINK_DEGRADATION, link_target(1, "nic"), 0.0, 5.0, 0.4
            )
        )
        assert step_faults_at(plan, 0.0, 4).link_bandwidth == {(1, "nic"): 0.4}

    def test_overlapping_links_take_the_worst(self):
        plan = plan_of(
            FaultSpec(
                FaultKind.LINK_DEGRADATION, link_target(0, "pcie"), 0.0, 9.0, 0.6
            ),
            FaultSpec(
                FaultKind.LINK_DEGRADATION, link_target(0, "pcie"), 0.0, 9.0, 0.3
            ),
        )
        assert step_faults_at(plan, 0.0, 4).link_bandwidth == {
            (0, "pcie"): 0.3
        }

    def test_hotspot_compiles_to_weight_vector(self):
        plan = plan_of(
            FaultSpec(FaultKind.PS_HOTSPOT, ps_target(2), 0.0, 5.0, 4.0)
        )
        assert step_faults_at(plan, 0.0, 4).ps_shard_weights == (
            1.0,
            1.0,
            4.0,
            1.0,
        )

    def test_hotspot_outside_fleet_rejected(self):
        plan = plan_of(
            FaultSpec(FaultKind.PS_HOTSPOT, ps_target(7), 0.0, 5.0, 4.0)
        )
        with pytest.raises(ValueError):
            step_faults_at(plan, 0.0, 4)

    def test_bad_link_kind_rejected(self):
        plan = plan_of(
            FaultSpec(
                FaultKind.LINK_DEGRADATION, "link:0:carrier-pigeon",
                0.0, 5.0, 0.5,
            )
        )
        with pytest.raises(ValueError):
            step_faults_at(plan, 0.0, 4)

    def test_sched_kinds_are_ignored(self):
        plan = plan_of(
            FaultSpec(FaultKind.WORKER_CRASH, job_target("*"), 0.0, 2.0, 2.0)
        )
        assert step_faults_at(plan, 0.0, 4).is_healthy


class TestSchedFaultsFor:
    def test_crash_spec(self):
        plan = plan_of(
            FaultSpec(FaultKind.WORKER_CRASH, job_target(9), 12.0, 3.0, 3.0)
        )
        faults = sched_faults_for(plan)
        assert len(faults.crashes) == 1
        crash = faults.crashes[0]
        assert crash.hour == 12.0
        assert crash.job_id == 9
        assert crash.backoff_hours == 3.0

    def test_wildcard_crash_has_no_preferred_victim(self):
        plan = plan_of(
            FaultSpec(FaultKind.WORKER_CRASH, job_target("*"), 12.0, 3.0, 3.0)
        )
        assert sched_faults_for(plan).crashes[0].job_id is None

    def test_storm_spec_splits_window_into_waves(self):
        plan = plan_of(
            FaultSpec(FaultKind.PREEMPTION_STORM, fleet_target(), 6.0, 3.0, 2.0)
        )
        faults = sched_faults_for(plan)
        assert len(faults.storms) == 1
        storm = faults.storms[0]
        assert storm.ticks == STORM_TICKS
        assert storm.victims_per_tick == 2
        assert storm.tick_hours() == (6.0, 7.0, 8.0)

    def test_sim_kinds_are_ignored(self):
        plan = plan_of(
            FaultSpec(FaultKind.STRAGGLER, replica_target(0), 0.0, 5.0, 2.0)
        )
        assert sched_faults_for(plan).is_healthy
