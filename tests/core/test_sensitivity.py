"""Sec. V sensitivity analyses: efficiency shifts and overlap."""

import pytest

from repro.core.architectures import Architecture
from repro.core.efficiency import PAPER_DEFAULT_EFFICIENCY
from repro.core.features import WorkloadFeatures
from repro.core.sensitivity import (
    FIG15_SCENARIOS,
    compare_overlap_assumptions,
    eq3_weight_bound_speedup,
    weight_share_scenarios,
    weight_share_under_efficiency,
)


def ps_jobs(n=20):
    return [
        WorkloadFeatures(
            name=f"job-{i}",
            architecture=Architecture.PS_WORKER,
            num_cnodes=4 + i,
            batch_size=64,
            flop_count=(i + 1) * 2e11,
            memory_access_bytes=(i + 1) * 2e9,
            input_bytes=(i + 1) * 1e6,
            weight_traffic_bytes=(i + 1) * 80e6,
            dense_weight_bytes=(i + 1) * 80e6,
        )
        for i in range(n)
    ]


class TestEq3:
    def test_exactly_21_under_table1(self, hardware):
        assert eq3_weight_bound_speedup(hardware) == pytest.approx(21.0)

    def test_independent_of_uniform_efficiency(self, hardware):
        from repro.core.efficiency import uniform_efficiency

        assert eq3_weight_bound_speedup(
            hardware, uniform_efficiency(0.5)
        ) == pytest.approx(21.0)

    def test_scales_with_nvlink(self, hardware):
        faster = hardware.with_resource("nvlink", 100e9)
        assert eq3_weight_bound_speedup(faster) == pytest.approx(42.0)


class TestFig15Scenarios:
    def test_four_paper_curves(self):
        names = [scenario.name for scenario in FIG15_SCENARIOS]
        assert names == [
            "All eff. 70%",
            "Communication eff. 50%",
            "Computation eff. 50%",
            "Computation eff. 25%",
        ]

    def test_lower_comm_efficiency_raises_weight_share(self, hardware):
        jobs = ps_jobs()
        base = weight_share_under_efficiency(
            jobs, hardware, PAPER_DEFAULT_EFFICIENCY
        )
        slow_comm = weight_share_under_efficiency(
            jobs, hardware, PAPER_DEFAULT_EFFICIENCY.scaled(communication=50 / 70)
        )
        assert all(s >= b for s, b in zip(slow_comm, base))

    def test_lower_compute_efficiency_lowers_weight_share(self, hardware):
        jobs = ps_jobs()
        base = weight_share_under_efficiency(
            jobs, hardware, PAPER_DEFAULT_EFFICIENCY
        )
        slow_compute = weight_share_under_efficiency(
            jobs, hardware, PAPER_DEFAULT_EFFICIENCY.scaled(compute=25 / 70)
        )
        assert all(s <= b for s, b in zip(slow_compute, base))

    def test_scenarios_keyed_by_name(self, hardware):
        results = weight_share_scenarios(ps_jobs(5), hardware)
        assert set(results) == {s.name for s in FIG15_SCENARIOS}
        assert all(len(v) == 5 for v in results.values())


class TestOverlapComparison:
    def test_populations_match(self, hardware):
        comparison = compare_overlap_assumptions(ps_jobs(12), hardware)
        assert len(comparison.non_overlap_speedups) == 12
        assert len(comparison.ideal_overlap_speedups) == 12

    def test_non_ps_jobs_ignored(self, hardware):
        single = WorkloadFeatures(
            name="s",
            architecture=Architecture.SINGLE,
            num_cnodes=1,
            batch_size=1,
            flop_count=1.0,
            memory_access_bytes=1.0,
            input_bytes=1.0,
            weight_traffic_bytes=0.0,
        )
        comparison = compare_overlap_assumptions(
            ps_jobs(3) + [single], hardware
        )
        assert len(comparison.non_overlap_speedups) == 3

    def test_weight_bound_jobs_pin_at_21x_under_ideal_overlap(self, hardware):
        # Sec. V-B: jobs bound by weight traffic before and after the
        # projection show exactly the Eq. 3 speedup.
        bound = [
            WorkloadFeatures(
                name="wb",
                architecture=Architecture.PS_WORKER,
                num_cnodes=8,
                batch_size=64,
                flop_count=1.0,
                memory_access_bytes=1.0,
                input_bytes=1.0,
                weight_traffic_bytes=10e9,
                dense_weight_bytes=10e9,
            )
        ]
        comparison = compare_overlap_assumptions(bound, hardware)
        assert comparison.ideal_overlap_speedups[0] == pytest.approx(21.0)
        assert comparison.fraction_at_speedup(21.0) == pytest.approx(1.0)

    def test_ideal_overlap_exposes_weight_share(self, hardware):
        comparison = compare_overlap_assumptions(ps_jobs(), hardware)
        # Under max-composition the dominant part's "share" is larger.
        assert sum(comparison.ideal_overlap_weight_shares) >= sum(
            comparison.non_overlap_weight_shares
        )

    def test_not_sped_up_fractions_in_range(self, hardware):
        comparison = compare_overlap_assumptions(ps_jobs(), hardware)
        assert 0.0 <= comparison.non_overlap_not_sped_up <= 1.0
        assert 0.0 <= comparison.ideal_overlap_not_sped_up <= 1.0

    def test_empty_population(self, hardware):
        comparison = compare_overlap_assumptions([], hardware)
        assert comparison.non_overlap_not_sped_up == 0.0
        assert comparison.fraction_at_speedup(21.0) == 0.0
