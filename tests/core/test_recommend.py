"""Architecture recommendation (the Sec. VI selection tooling)."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.recommend import (
    DeploymentPlan,
    candidate_plans,
    feasible,
    recommend_architecture,
)


def job(weight=300e6, embedding=0.0, num_cnodes=16, **kw):
    defaults = dict(
        name="job",
        architecture=Architecture.PS_WORKER,
        num_cnodes=num_cnodes,
        batch_size=128,
        flop_count=1e12,
        memory_access_bytes=10e9,
        input_bytes=10e6,
        weight_traffic_bytes=weight * 0.6,
        dense_weight_bytes=weight,
        embedding_weight_bytes=embedding,
    )
    defaults.update(kw)
    return WorkloadFeatures(**defaults)


class TestFeasibility:
    def test_small_model_fits_everywhere(self, hardware):
        features = job(weight=300e6)
        for plan in candidate_plans(features):
            ok, reason = feasible(plan, features, hardware)
            assert ok, (plan, reason)

    def test_huge_dense_model_excludes_allreduce(self, hardware):
        features = job(weight=100e9)
        plan = DeploymentPlan(Architecture.ALLREDUCE_LOCAL, 8)
        ok, reason = feasible(plan, features, hardware)
        assert not ok
        assert "replica" in reason

    def test_huge_embedding_model_allows_pearl_when_sharded(self, hardware):
        features = job(weight=200e6, embedding=100e9)
        ok, _ = feasible(
            DeploymentPlan(Architecture.PEARL, 8), features, hardware
        )
        # 100 GB / 8 = 12.5 GB shard + 0.2 GB dense < 0.8 * 32 GB.
        assert ok

    def test_pearl_rejects_unshardable_table(self, hardware):
        features = job(weight=200e6, embedding=500e9)
        ok, reason = feasible(
            DeploymentPlan(Architecture.PEARL, 8), features, hardware
        )
        assert not ok
        assert "shard" in reason

    def test_nvlink_requirement(self, hardware):
        features = job()
        ok, reason = feasible(
            DeploymentPlan(Architecture.ALLREDUCE_LOCAL, 8),
            features,
            hardware,
            has_nvlink=False,
        )
        assert not ok
        assert "NVLink" in reason

    def test_local_cap(self, hardware):
        ok, reason = feasible(
            DeploymentPlan(Architecture.ALLREDUCE_LOCAL, 16), job(), hardware
        )
        assert not ok

    def test_ps_always_feasible(self, hardware):
        features = job(weight=5e9, embedding=300e9, num_cnodes=128)
        ok, _ = feasible(
            DeploymentPlan(Architecture.PS_WORKER, 128), features, hardware
        )
        assert ok


class TestRecommendations:
    def test_comm_bound_job_prefers_nvlink(self, hardware):
        features = job(weight=5e9, num_cnodes=8, input_bytes=1e3)
        best = recommend_architecture(features, hardware)[0]
        assert best.plan.architecture in (
            Architecture.ALLREDUCE_LOCAL,
            Architecture.PEARL,
        )

    def test_huge_embedding_job_prefers_pearl_over_ps(self, hardware):
        features = job(
            weight=200e6,
            embedding=120e9,
            num_cnodes=8,
            weight_traffic_bytes=2e9,
            embedding_traffic_bytes=1.8e9,
        )
        ranked = recommend_architecture(features, hardware)
        architectures = [r.plan.architecture for r in ranked]
        assert architectures.index(Architecture.PEARL) < architectures.index(
            Architecture.PS_WORKER
        )
        assert Architecture.ALLREDUCE_LOCAL not in architectures

    def test_without_nvlink_ps_wins_for_big_models(self, hardware):
        features = job(weight=60e9, embedding=0.0, num_cnodes=16)
        ranked = recommend_architecture(features, hardware, has_nvlink=False)
        assert ranked[0].plan.architecture in (
            Architecture.PS_WORKER,
            Architecture.LOCAL_CENTRALIZED,
        )

    def test_ranked_by_throughput(self, hardware):
        ranked = recommend_architecture(job(), hardware)
        throughputs = [r.throughput for r in ranked]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_bottleneck_reported(self, hardware):
        ranked = recommend_architecture(job(), hardware)
        assert all(
            r.bottleneck
            in ("data_io", "weight", "compute_bound", "memory_bound")
            for r in ranked
        )

    def test_never_empty(self, hardware):
        # PS/Worker hosts anything.
        features = job(weight=10e9, embedding=400e9, num_cnodes=64)
        assert recommend_architecture(features, hardware, has_nvlink=False)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            DeploymentPlan(Architecture.PS_WORKER, 0)
