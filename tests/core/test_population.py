"""Population-level aggregation: job vs cNode weighting."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.population import (
    COMPONENT_KEYS,
    HARDWARE_KEYS,
    analyze_population,
    average_fractions,
    average_hardware_shares,
    fraction_samples,
    hardware_share_samples,
    weighted_fraction_exceeding,
)


def jobs():
    small = WorkloadFeatures(
        name="small",
        architecture=Architecture.PS_WORKER,
        num_cnodes=1,
        batch_size=32,
        flop_count=7.7e12,  # 1 s compute at Table I rates
        memory_access_bytes=1.0,
        input_bytes=1.0,
        weight_traffic_bytes=1.0,
        dense_weight_bytes=1.0,
    )
    big = WorkloadFeatures(
        name="big",
        architecture=Architecture.PS_WORKER,
        num_cnodes=9,
        batch_size=32,
        flop_count=1.0,
        memory_access_bytes=1.0,
        input_bytes=1.0,
        weight_traffic_bytes=2.1875e9,  # 1 s on Ethernet at 70%
        dense_weight_bytes=2.1875e9,
    )
    return [small, big]


class TestAnalyzePopulation:
    def test_one_breakdown_per_job(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        assert len(analyzed) == 2
        assert analyzed[0].features.name == "small"
        assert analyzed[0].weight == 1
        assert analyzed[1].weight == 9


class TestAverageFractions:
    def test_job_level_is_unweighted(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        fractions = average_fractions(analyzed, cnode_level=False)
        # One compute-dominated and one comm-dominated job average ~50/50.
        assert fractions["compute_bound"] == pytest.approx(0.5, abs=0.05)
        assert fractions["weight"] == pytest.approx(0.5, abs=0.05)

    def test_cnode_level_weights_by_size(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        fractions = average_fractions(analyzed, cnode_level=True)
        # The 9-cNode comm-bound job dominates the weighted view.
        assert fractions["weight"] > 0.85

    def test_fractions_cover_components(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        fractions = average_fractions(analyzed)
        assert set(fractions) == set(COMPONENT_KEYS)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            average_fractions([])


class TestHardwareShares:
    def test_keys(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        shares = average_hardware_shares(analyzed)
        assert set(shares) == set(HARDWARE_KEYS)

    def test_cnode_level_shifts_to_ethernet(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        job_level = average_hardware_shares(analyzed, cnode_level=False)
        cnode_level = average_hardware_shares(analyzed, cnode_level=True)
        assert cnode_level["Ethernet"] > job_level["Ethernet"]

    def test_samples(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        assert len(hardware_share_samples(analyzed, "Ethernet")) == 2
        with pytest.raises(KeyError):
            hardware_share_samples(analyzed, "Floppy")


class TestFractionSamples:
    def test_samples_match_population(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        samples = fraction_samples(analyzed, "weight")
        assert len(samples) == 2
        assert samples[1] > samples[0]

    def test_unknown_component(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        with pytest.raises(KeyError):
            fraction_samples(analyzed, "luck")


class TestWeightedFractionExceeding:
    def test_job_level(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        assert weighted_fraction_exceeding(
            analyzed, "weight", 0.8
        ) == pytest.approx(0.5)

    def test_cnode_level(self, hardware):
        analyzed = analyze_population(jobs(), hardware)
        assert weighted_fraction_exceeding(
            analyzed, "weight", 0.8, cnode_level=True
        ) == pytest.approx(0.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_fraction_exceeding([], "weight", 0.5)


class TestFeatureArrays:
    def test_extracts_one_row_per_workload(self):
        from repro.core.population import FeatureArrays

        arrays = FeatureArrays.from_workloads(jobs())
        assert len(arrays) == 2
        assert arrays.num_cnodes.tolist() == [1, 9]

    def test_coerce_passes_arrays_through(self):
        from repro.core.population import FeatureArrays

        arrays = FeatureArrays.from_workloads(jobs())
        assert FeatureArrays.coerce(arrays) is arrays
        assert len(FeatureArrays.coerce(jobs())) == 2

    def test_mask_of_selects_architecture(self):
        from repro.core.population import FeatureArrays

        arrays = FeatureArrays.from_workloads(jobs())
        assert arrays.mask_of(Architecture.PS_WORKER).all()
        assert not arrays.mask_of(Architecture.SINGLE).any()

    def test_empty_population_rejected(self):
        from repro.core.population import FeatureArrays

        with pytest.raises(ValueError):
            FeatureArrays.from_workloads([])


class TestProjectPsTo:
    def test_local_caps_cnodes_at_eight(self):
        from repro.core.population import FeatureArrays

        arrays = FeatureArrays.from_workloads(jobs())
        projected = arrays.project_ps_to(Architecture.ALLREDUCE_LOCAL)
        assert projected.num_cnodes.tolist() == [1, 8]

    def test_cluster_keeps_cnodes(self):
        from repro.core.population import FeatureArrays

        arrays = FeatureArrays.from_workloads(jobs())
        projected = arrays.project_ps_to(Architecture.ALLREDUCE_CLUSTER)
        assert projected.num_cnodes.tolist() == [1, 9]

    def test_rejects_non_ps_population(self):
        from repro.core.population import FeatureArrays

        single = jobs()[0].with_architecture(Architecture.SINGLE, num_cnodes=1)
        arrays = FeatureArrays.from_workloads([single])
        with pytest.raises(ValueError):
            arrays.project_ps_to(Architecture.ALLREDUCE_LOCAL)

    def test_rejects_unknown_target(self):
        from repro.core.population import FeatureArrays

        arrays = FeatureArrays.from_workloads(jobs())
        with pytest.raises(ValueError):
            arrays.project_ps_to(Architecture.PS_WORKER)


class TestBatchMatchesScalar:
    def test_batch_breakdowns_equal_scalar_analysis(self, hardware):
        from repro.core.population import batch_breakdowns

        population = jobs()
        scalar = analyze_population(population, hardware)
        batch = batch_breakdowns(population, hardware)
        for i, analyzed in enumerate(scalar):
            assert batch.total[i] == pytest.approx(
                analyzed.breakdown.total, rel=1e-12
            )

    def test_batch_average_fractions_match(self, hardware):
        from repro.core.population import batch_breakdowns

        population = jobs()
        scalar = average_fractions(
            analyze_population(population, hardware), cnode_level=True
        )
        batch = batch_breakdowns(population, hardware).average_fractions(
            cnode_level=True
        )
        for component in COMPONENT_KEYS:
            assert batch[component] == pytest.approx(
                scalar[component], rel=1e-12
            )

    def test_batch_step_times_positive(self, hardware):
        from repro.core.population import batch_step_times

        times = batch_step_times(jobs(), hardware)
        assert (times > 0).all()
