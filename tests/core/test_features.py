"""Workload feature records and deployment transforms."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures


def make_features(**overrides):
    defaults = dict(
        name="job",
        architecture=Architecture.PS_WORKER,
        num_cnodes=16,
        batch_size=64,
        flop_count=1e12,
        memory_access_bytes=10e9,
        input_bytes=30e6,
        weight_traffic_bytes=200e6,
        dense_weight_bytes=200e6,
    )
    defaults.update(overrides)
    return WorkloadFeatures(**defaults)


class TestValidation:
    def test_valid(self):
        features = make_features()
        assert features.num_cnodes == 16

    def test_rejects_zero_cnodes(self):
        with pytest.raises(ValueError):
            make_features(num_cnodes=0)

    def test_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            make_features(batch_size=0)

    @pytest.mark.parametrize(
        "field",
        [
            "flop_count",
            "memory_access_bytes",
            "input_bytes",
            "weight_traffic_bytes",
            "dense_weight_bytes",
            "embedding_weight_bytes",
        ],
    )
    def test_rejects_negative(self, field):
        with pytest.raises(ValueError):
            make_features(**{field: -1.0})

    def test_1w1g_must_have_one_cnode(self):
        with pytest.raises(ValueError):
            make_features(
                architecture=Architecture.SINGLE,
                num_cnodes=2,
                weight_traffic_bytes=0.0,
            )

    def test_1w1g_must_not_move_weights(self):
        with pytest.raises(ValueError):
            make_features(
                architecture=Architecture.SINGLE,
                num_cnodes=1,
                weight_traffic_bytes=1.0,
            )

    def test_local_architectures_capped_at_8(self):
        with pytest.raises(ValueError):
            make_features(
                architecture=Architecture.ALLREDUCE_LOCAL, num_cnodes=9
            )

    def test_embedding_traffic_bounded_by_total(self):
        with pytest.raises(ValueError):
            make_features(
                weight_traffic_bytes=10.0, embedding_traffic_bytes=11.0
            )


class TestDerived:
    def test_weight_bytes_sums_parts(self):
        features = make_features(
            dense_weight_bytes=1e9, embedding_weight_bytes=54e9
        )
        assert features.weight_bytes == 55e9

    def test_dense_traffic(self):
        features = make_features(
            weight_traffic_bytes=3e9, embedding_traffic_bytes=2.7e9
        )
        assert features.dense_traffic_bytes == pytest.approx(0.3e9)


class TestLocalCNodesPerServer:
    def test_ps_worker_one_per_server(self):
        assert make_features().local_cnodes_per_server == 1

    def test_local_packs_all(self):
        features = make_features(
            architecture=Architecture.ALLREDUCE_LOCAL, num_cnodes=6
        )
        assert features.local_cnodes_per_server == 6

    def test_cluster_allreduce_packs_8(self):
        features = make_features(
            architecture=Architecture.ALLREDUCE_CLUSTER, num_cnodes=32
        )
        assert features.local_cnodes_per_server == 8

    def test_single(self):
        features = make_features(
            architecture=Architecture.SINGLE,
            num_cnodes=1,
            weight_traffic_bytes=0.0,
        )
        assert features.local_cnodes_per_server == 1


class TestWithArchitecture:
    def test_projection_preserves_requirements(self):
        original = make_features()
        projected = original.with_architecture(
            Architecture.ALLREDUCE_LOCAL, num_cnodes=8
        )
        assert projected.flop_count == original.flop_count
        assert projected.weight_traffic_bytes == original.weight_traffic_bytes
        assert projected.input_bytes == original.input_bytes
        assert projected.num_cnodes == 8

    def test_keeps_cnodes_by_default(self):
        projected = make_features().with_architecture(
            Architecture.ALLREDUCE_CLUSTER
        )
        assert projected.num_cnodes == 16

    def test_to_single_clears_traffic(self):
        single = make_features(num_cnodes=1).with_architecture(
            Architecture.SINGLE
        )
        assert single.weight_traffic_bytes == 0.0

    def test_original_is_untouched(self):
        original = make_features()
        original.with_architecture(Architecture.ALLREDUCE_LOCAL, num_cnodes=4)
        assert original.architecture is Architecture.PS_WORKER
