"""Eq. 2 throughput and speedup helpers."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.throughput import job_throughput, step_speedup, throughput_speedup
from repro.core.timemodel import estimate_step_time


def make(architecture=Architecture.PS_WORKER, num_cnodes=16, batch_size=128, **kw):
    defaults = dict(
        name="job",
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=batch_size,
        flop_count=1e12,
        memory_access_bytes=10e9,
        input_bytes=10e6,
        weight_traffic_bytes=0.0
        if architecture is Architecture.SINGLE
        else 200e6,
        dense_weight_bytes=200e6,
    )
    defaults.update(kw)
    return WorkloadFeatures(**defaults)


class TestJobThroughput:
    def test_equation_two(self, hardware):
        features = make()
        step = estimate_step_time(features, hardware)
        expected = features.num_cnodes / step * features.batch_size
        assert job_throughput(features, hardware) == pytest.approx(expected)

    def test_scales_with_cnodes(self, hardware):
        # Same per-cNode behaviour, more replicas -> proportional samples/s.
        small = make(num_cnodes=8)
        large = make(num_cnodes=16)
        assert job_throughput(large, hardware) == pytest.approx(
            2 * job_throughput(small, hardware)
        )

    def test_scales_with_batch(self, hardware):
        assert job_throughput(make(batch_size=256), hardware) == pytest.approx(
            2 * job_throughput(make(batch_size=128), hardware)
        )


class TestSpeedups:
    def test_identity(self, hardware):
        features = make()
        assert step_speedup(features, features, hardware) == pytest.approx(1.0)
        assert throughput_speedup(features, features, hardware) == pytest.approx(1.0)

    def test_step_speedup_ignores_cnode_count_change(self, hardware):
        # Single-cNode speedup compares per-step times only.
        ps = make(num_cnodes=64)
        local = ps.with_architecture(Architecture.ALLREDUCE_LOCAL, num_cnodes=8)
        single = step_speedup(ps, local, hardware)
        throughput = throughput_speedup(ps, local, hardware)
        assert throughput == pytest.approx(single * 8 / 64)

    def test_weight_bound_job_approaches_21x(self, hardware):
        ps = make(
            num_cnodes=8,
            weight_traffic_bytes=100e9,
            flop_count=1.0,
            memory_access_bytes=1.0,
            input_bytes=1.0,
            dense_weight_bytes=100e9,
        )
        local = ps.with_architecture(Architecture.ALLREDUCE_LOCAL)
        assert step_speedup(ps, local, hardware) == pytest.approx(21.0, rel=1e-3)

    def test_data_bound_job_slows_down(self, hardware):
        # Contention makes I/O-bound jobs slower under AllReduce-Local.
        ps = make(
            num_cnodes=8,
            weight_traffic_bytes=1.0,
            input_bytes=1e9,
            flop_count=1.0,
            memory_access_bytes=1.0,
        )
        local = ps.with_architecture(Architecture.ALLREDUCE_LOCAL)
        assert step_speedup(ps, local, hardware) < 1.0
