"""Units: constructors, parsers and formatting."""

import math

import pytest

from repro.core.units import (
    GB,
    MB,
    TB,
    bits,
    format_bandwidth,
    format_size,
    format_time,
    gbps,
    gigabytes,
    gigabytes_per_second,
    gigaflops,
    kilobytes,
    megabytes,
    parse_bandwidth,
    parse_flops,
    parse_size,
    teraflops,
    terabytes,
    terabytes_per_second,
)


class TestConstructors:
    def test_gbps_is_bits(self):
        # The exact factor behind Eq. 3: 25 Gb/s == 3.125 GB/s.
        assert gbps(25) == 3.125e9

    def test_bits(self):
        assert bits(8) == 1.0

    def test_byte_scales(self):
        assert kilobytes(1) == 1e3
        assert megabytes(204) == 204e6
        assert gigabytes(54) == 54e9
        assert terabytes(1) == 1e12

    def test_rate_scales(self):
        assert gigabytes_per_second(10) == 10e9
        assert terabytes_per_second(1) == 1e12

    def test_flop_scales(self):
        assert teraflops(11) == 11e12
        assert gigaflops(105.8) == pytest.approx(105.8e9)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("204MB", 204 * MB),
            ("3 GB", 3 * GB),
            ("1.5GB", 1.5 * GB),
            ("22 kB", 22e3),
            ("1TB", TB),
            ("512B", 512.0),
            ("1GiB", 1024.0**3),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "abc", "12 XB", "GB12", "-3GB"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


class TestParseBandwidth:
    def test_gigabit(self):
        assert parse_bandwidth("25Gbps") == pytest.approx(3.125e9)

    def test_gigabyte(self):
        assert parse_bandwidth("10GB/s") == pytest.approx(10e9)

    def test_terabyte(self):
        assert parse_bandwidth("1TB/s") == pytest.approx(1e12)

    def test_case_of_b_matters(self):
        assert parse_bandwidth("1GB/s") == 8 * parse_bandwidth("1Gb/s")

    @pytest.mark.parametrize("text", ["", "fast", "10G"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_bandwidth(text)


class TestParseFlops:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1.56T", 1.56e12),
            ("105.8G", 105.8e9),
            ("2.5 TFLOPs", 2.5e12),
            ("330.7 GFLOPs", 330.7e9),
            ("7.9TFLOPs/s", 7.9e12),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_flops(text) == pytest.approx(expected)

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_flops("lots")


class TestFormatting:
    def test_format_size_units(self):
        assert format_size(204e6) == "204MB"
        assert format_size(3e9) == "3GB"
        assert format_size(12) == "12B"

    def test_format_bandwidth(self):
        assert format_bandwidth(10e9).endswith("/s")

    def test_format_time_scales(self):
        assert format_time(1.5) == "1.5s"
        assert format_time(2e-3) == "2ms"
        assert format_time(3e-6) == "3us"

    def test_roundtrip_size(self):
        value = 357e6
        assert parse_size(format_size(value)) == pytest.approx(value, rel=0.01)

    def test_format_size_monotone_prefix(self):
        # A value on a unit boundary renders without overflowing digits.
        assert format_size(1e12) == "1TB"
        assert not math.isnan(parse_size(format_size(999.0)))
