"""Crossover analysis: break-even Ethernet bandwidth."""

import pytest

from repro.core.architectures import Architecture
from repro.core.crossover import crossover_distribution, ethernet_crossover
from repro.core.features import WorkloadFeatures
from repro.core.projection import projection_speedups


def ps_job(weight=2e9, flops=5e12, io=20e6, num_cnodes=16):
    return WorkloadFeatures(
        name="job",
        architecture=Architecture.PS_WORKER,
        num_cnodes=num_cnodes,
        batch_size=128,
        flop_count=flops,
        memory_access_bytes=20e9,
        input_bytes=io,
        weight_traffic_bytes=weight,
        dense_weight_bytes=weight,
    )


class TestEthernetCrossover:
    def test_comm_bound_jobs_prefer_nvlink_at_any_fabric_speed(self, hardware):
        # The PS/Worker weight path includes a PCIe hop slower than
        # NVLink, so no Ethernet upgrade saves it -- the paper's core
        # point about high-speed GPU interconnects.
        result = ethernet_crossover(ps_job(), hardware)
        assert not result.has_crossover
        assert result.always_better

    def _marginal_job(self):
        # I/O chosen so the 8x contention penalty lands between the
        # residual weight savings at infinite Ethernet and the savings
        # at a slow fabric: a finite crossover exists.
        return ps_job(weight=2e9, io=0.5e9, flops=5e12)

    def test_marginal_job_has_finite_crossover(self, hardware):
        result = ethernet_crossover(self._marginal_job(), hardware)
        assert result.has_crossover
        assert result.value > hardware.ethernet.bandwidth

    def test_break_even_is_actually_break_even(self, hardware):
        job = self._marginal_job()
        result = ethernet_crossover(job, hardware)
        at_crossover = hardware.with_resource("ethernet", result.value)
        speedup = projection_speedups(
            job, Architecture.ALLREDUCE_LOCAL, at_crossover
        ).single_cnode_speedup
        assert speedup == pytest.approx(1.0, abs=1e-5)

    def test_closed_form_for_weight_bound_job(self, hardware):
        """For a pure weight-bound job the break-even solves
        S/(B*eff) + S/(B_p*eff) = k*Td + S/(B_n*eff) analytically."""
        job = ps_job(weight=10e9, flops=1.0, io=1.0)
        result = ethernet_crossover(job, hardware)
        eff = 0.7
        s = job.weight_traffic_bytes
        # T_ps(B) = s/(B eff) + s/(10e9 eff); T_arl = s/(50e9 eff)
        # (I/O and compute are negligible by construction).
        expected = 1.0 / (1.0 / (50e9) - 1.0 / (10e9) + 0)  # negative!
        # The PCIe hop alone already exceeds the NVLink time, so NO
        # finite bandwidth saves PS/Worker:
        assert expected < 0
        assert not result.has_crossover
        assert result.always_better

    def test_io_bound_job_never_benefits(self, hardware):
        job = ps_job(weight=1e6, io=2e9, flops=1e11)
        result = ethernet_crossover(job, hardware)
        assert not result.has_crossover
        assert not result.always_better

    def test_range_validation(self, hardware):
        with pytest.raises(ValueError):
            ethernet_crossover(ps_job(), hardware, low=10.0, high=5.0)


class TestDistribution:
    def test_over_trace_population(self, trace, hardware):
        from repro.trace import features_of_type

        population = features_of_type(
            list(trace), Architecture.PS_WORKER
        )[:200]
        results = crossover_distribution(population, hardware)
        assert len(results) == 200
        always = [r for r in results if r.always_better]
        finite = [r for r in results if r.has_crossover]
        # Most jobs want NVLink at any fabric speed (the PCIe hop floors
        # PS/Worker); the I/O-heavy cohort has a finite break-even
        # bandwidth beyond which keeping PS/Worker wins.
        assert len(always) > len(results) / 2
        assert finite
        assert all(r.value > hardware.ethernet.bandwidth / 10 for r in finite)

    def test_non_ps_jobs_ignored(self, hardware):
        single = WorkloadFeatures(
            name="s",
            architecture=Architecture.SINGLE,
            num_cnodes=1,
            batch_size=1,
            flop_count=1.0,
            memory_access_bytes=1.0,
            input_bytes=1.0,
            weight_traffic_bytes=0.0,
        )
        assert crossover_distribution([single], hardware) == []
