"""Hardware sweeps (Fig. 11 machinery)."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.hardware import TABLE_III_VARIATIONS
from repro.core.sweep import sweep_all_resources, sweep_resource
from repro.core.units import gbps, teraflops


def population(n=10):
    return [
        WorkloadFeatures(
            name=f"job-{i}",
            architecture=Architecture.PS_WORKER,
            num_cnodes=8,
            batch_size=64,
            flop_count=(i + 1) * 1e11,
            memory_access_bytes=(i + 1) * 1e9,
            input_bytes=1e6,
            weight_traffic_bytes=(i + 1) * 50e6,
            dense_weight_bytes=(i + 1) * 50e6,
        )
        for i in range(n)
    ]


class TestSweepResource:
    def test_points_sorted_by_value(self, hardware):
        series = sweep_resource(
            population(), "ethernet", [gbps(100), gbps(10), gbps(25)], hardware
        )
        values = [p.value for p in series.points]
        assert values == sorted(values)

    def test_baseline_speedup_is_one(self, hardware):
        series = sweep_resource(population(), "ethernet", [gbps(25)], hardware)
        assert series.points[0].average_speedup == pytest.approx(1.0)

    def test_downgrade_slows_down(self, hardware):
        series = sweep_resource(population(), "ethernet", [gbps(10)], hardware)
        assert series.points[0].average_speedup < 1.0

    def test_upgrade_speeds_up(self, hardware):
        series = sweep_resource(population(), "ethernet", [gbps(100)], hardware)
        assert series.points[0].average_speedup > 1.0

    def test_speedups_per_job_recorded(self, hardware):
        series = sweep_resource(population(5), "ethernet", [gbps(100)], hardware)
        assert len(series.points[0].speedups) == 5

    def test_monotone_in_bandwidth(self, hardware):
        series = sweep_resource(
            population(), "ethernet", list(TABLE_III_VARIATIONS.ethernet), hardware
        )
        speedups = [p.average_speedup for p in series.points]
        assert speedups == sorted(speedups)

    def test_empty_population_rejected(self, hardware):
        with pytest.raises(ValueError):
            sweep_resource([], "ethernet", [gbps(100)], hardware)

    def test_speedup_at_normalized(self, hardware):
        series = sweep_resource(
            population(), "ethernet", list(TABLE_III_VARIATIONS.ethernet), hardware
        )
        assert series.speedup_at_normalized(1.0) == pytest.approx(1.0)
        with pytest.raises(KeyError):
            series.speedup_at_normalized(7.7)

    def test_max_speedup(self, hardware):
        series = sweep_resource(
            population(), "ethernet", list(TABLE_III_VARIATIONS.ethernet), hardware
        )
        assert series.max_speedup == series.speedup_at_normalized(4.0)


class TestSweepAllResources:
    def test_covers_table3(self, hardware):
        results = sweep_all_resources(population(), hardware)
        assert set(results) == {"ethernet", "pcie", "gpu_flops", "gpu_memory"}
        assert len(results["gpu_flops"].points) == 4

    def test_ps_worker_most_sensitive_to_ethernet(self, hardware):
        # The Fig. 11(c) observation, on a comm-heavy toy population.
        results = sweep_all_resources(population(), hardware)
        best = max(results.values(), key=lambda s: s.max_speedup)
        assert best.resource == "ethernet"

    def test_gpu_upgrade_speedup_bounded_by_compute_share(self, hardware):
        results = sweep_all_resources(population(), hardware)
        series = results["gpu_flops"]
        # 64 TFLOPs is ~5.8x normalized but compute is a minor share.
        assert series.speedup_at_normalized(teraflops(64) / teraflops(11)) < 1.5
