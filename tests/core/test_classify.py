"""Bottleneck classification."""

import pytest

from repro.core.architectures import Architecture
from repro.core.classify import (
    Bottleneck,
    bottleneck_census,
    classify,
    classify_population,
)
from repro.core.features import WorkloadFeatures


def job(weight=1.0, flops=1.0, memory=1.0, io=1.0, num_cnodes=8):
    return WorkloadFeatures(
        name="job",
        architecture=Architecture.PS_WORKER,
        num_cnodes=num_cnodes,
        batch_size=64,
        flop_count=flops,
        memory_access_bytes=memory,
        input_bytes=io,
        weight_traffic_bytes=weight,
        dense_weight_bytes=weight,
    )


class TestClassify:
    def test_communication_bound(self, hardware):
        labeled = classify(job(weight=10e9), hardware)
        assert labeled.label is Bottleneck.COMMUNICATION
        assert labeled.dominant_component == "weight"
        assert labeled.dominant_share > 0.9

    def test_compute_bound(self, hardware):
        labeled = classify(job(flops=100e12), hardware)
        assert labeled.label is Bottleneck.COMPUTE

    def test_memory_bound(self, hardware):
        labeled = classify(job(memory=10e12), hardware)
        assert labeled.label is Bottleneck.MEMORY

    def test_io_bound(self, hardware):
        labeled = classify(job(io=100e9), hardware)
        assert labeled.label is Bottleneck.INPUT_IO

    def test_balanced(self, hardware):
        # Calibrate four roughly equal components (~1 s each at Table I
        # rates with 70% efficiency).
        balanced = job(
            weight=2.1875e9 / 1.3125,  # ~1 s over Ethernet+PCIe
            flops=7.7e12,
            memory=0.7e12,
            io=7e9,
        )
        labeled = classify(balanced, hardware)
        assert labeled.label is Bottleneck.BALANCED
        assert labeled.dominant_share < 0.5

    def test_threshold_validation(self, hardware):
        with pytest.raises(ValueError):
            classify(job(), hardware, threshold=0.0)

    def test_custom_threshold(self, hardware):
        # With a very low threshold nothing is balanced.
        labeled = classify(job(), hardware, threshold=0.01)
        assert labeled.label is not Bottleneck.BALANCED


class TestCensus:
    def test_shares_sum_to_one(self, hardware):
        population = [job(weight=10e9), job(flops=100e12), job(io=100e9)]
        census = bottleneck_census(classify_population(population, hardware))
        assert sum(census.values()) == pytest.approx(1.0)
        assert census[Bottleneck.COMMUNICATION] == pytest.approx(1 / 3)

    def test_cnode_weighting(self, hardware):
        population = [
            job(weight=10e9, num_cnodes=90),
            job(flops=100e12, num_cnodes=10),
        ]
        census = bottleneck_census(
            classify_population(population, hardware), cnode_level=True
        )
        assert census[Bottleneck.COMMUNICATION] == pytest.approx(0.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bottleneck_census([])


class TestOnTrace:
    def test_ps_population_is_mostly_comm_bound(self, trace, hardware):
        from repro.trace import features_of_type

        population = features_of_type(list(trace), Architecture.PS_WORKER)
        census = bottleneck_census(
            classify_population(population[:1000], hardware)
        )
        assert census[Bottleneck.COMMUNICATION] > 0.5
