"""The Sec. II-B analytical model: Eq. 1, media paths, Eq. 3, overlap."""

import dataclasses

import pytest

from repro.core.architectures import Architecture
from repro.core.efficiency import EfficiencyModel, full_efficiency
from repro.core.features import WorkloadFeatures
from repro.core.hardware import (
    pai_default_hardware,
    testbed_v100_hardware as v100_hardware,
)
from repro.core.timemodel import (
    ModelOptions,
    OverlapMode,
    PAPER_MODEL_OPTIONS,
    TimeBreakdown,
    estimate_breakdown,
    estimate_step_time,
    ring_allreduce_factor,
    weight_traffic_times,
)


def features_for(architecture, **overrides):
    defaults = dict(
        name="job",
        architecture=architecture,
        num_cnodes=1 if architecture is Architecture.SINGLE else 8,
        batch_size=64,
        flop_count=1.05e12,  # 0.1 s at 15 TFLOPs * 0.7
        memory_access_bytes=6.3e9,  # 0.01 s at 0.9 TB/s * 0.7
        input_bytes=7e6,  # 1 ms at 10 GB/s * 0.7 (no contention)
        weight_traffic_bytes=0.0
        if architecture is Architecture.SINGLE
        else 350e6,
        dense_weight_bytes=350e6,
    )
    defaults.update(overrides)
    return WorkloadFeatures(**defaults)


class TestEquationOne:
    """T_c = FLOPs / (peak * eff) + S_mem / (B_mem * eff)."""

    def test_resnet50_example_from_paper(self):
        # Sec. IV-B: 1.56T / (15T * 70%) = 0.149 s.
        hardware = v100_hardware()
        features = features_for(
            Architecture.SINGLE,
            num_cnodes=1,
            flop_count=1.56e12,
            memory_access_bytes=0.0,
        )
        breakdown = estimate_breakdown(features, hardware)
        assert breakdown.compute_flops == pytest.approx(0.1486, abs=1e-3)

    def test_memory_bound_term(self, hardware):
        features = features_for(
            Architecture.SINGLE,
            num_cnodes=1,
            flop_count=0.0,
            memory_access_bytes=0.7e12,
        )
        breakdown = estimate_breakdown(features, hardware)
        assert breakdown.compute_memory == pytest.approx(1.0)

    def test_terms_add(self, hardware):
        features = features_for(Architecture.SINGLE, num_cnodes=1)
        breakdown = estimate_breakdown(features, hardware)
        assert breakdown.computation == pytest.approx(
            breakdown.compute_flops + breakdown.compute_memory
        )


class TestWeightPath:
    """T_w follows the Table II media of each architecture."""

    def test_1w1g_no_weight_time(self, hardware):
        breakdown = estimate_breakdown(
            features_for(Architecture.SINGLE, num_cnodes=1), hardware
        )
        assert breakdown.weight_total == 0.0

    def test_1wng_pcie_only(self, hardware):
        times = weight_traffic_times(
            features_for(Architecture.LOCAL_CENTRALIZED), hardware
        )
        assert set(times) == {"PCIe"}
        assert times["PCIe"] == pytest.approx(350e6 / (10e9 * 0.7))

    def test_ps_worker_serializes_two_hops(self, hardware):
        times = weight_traffic_times(
            features_for(Architecture.PS_WORKER, num_cnodes=16), hardware
        )
        assert set(times) == {"Ethernet", "PCIe"}
        assert times["Ethernet"] == pytest.approx(350e6 / (3.125e9 * 0.7))
        assert times["PCIe"] == pytest.approx(350e6 / (10e9 * 0.7))

    def test_allreduce_local_nvlink(self, hardware):
        times = weight_traffic_times(
            features_for(Architecture.ALLREDUCE_LOCAL), hardware
        )
        assert set(times) == {"NVLink"}

    def test_eq3_exact_21x(self, hardware):
        """The weight-bound PS -> AllReduce-Local speedup is exactly 21."""
        ps = features_for(Architecture.PS_WORKER, num_cnodes=16)
        local = ps.with_architecture(Architecture.ALLREDUCE_LOCAL, num_cnodes=8)
        tw_ps = sum(weight_traffic_times(ps, hardware).values())
        tw_local = sum(weight_traffic_times(local, hardware).values())
        assert tw_ps / tw_local == pytest.approx(21.0)

    def test_cluster_speedup_at_most_1_2x(self, hardware):
        """Sec. III-C1: Ethernet still dominates; at most ~1.2x."""
        ps = features_for(Architecture.PS_WORKER, num_cnodes=16)
        cluster = ps.with_architecture(Architecture.ALLREDUCE_CLUSTER)
        tw_ps = sum(weight_traffic_times(ps, hardware).values())
        tw_cluster = sum(weight_traffic_times(cluster, hardware).values())
        assert tw_ps / tw_cluster == pytest.approx(1.235, abs=0.01)


class TestInputContention:
    def test_ps_worker_no_contention(self, hardware):
        breakdown = estimate_breakdown(
            features_for(Architecture.PS_WORKER, num_cnodes=16), hardware
        )
        assert breakdown.data_io == pytest.approx(1e-3)

    def test_allreduce_local_contends(self, hardware):
        breakdown = estimate_breakdown(
            features_for(Architecture.ALLREDUCE_LOCAL, num_cnodes=8), hardware
        )
        assert breakdown.data_io == pytest.approx(8e-3)

    def test_contention_scales_with_local_gpus(self, hardware):
        four = estimate_breakdown(
            features_for(Architecture.ALLREDUCE_LOCAL, num_cnodes=4), hardware
        )
        eight = estimate_breakdown(
            features_for(Architecture.ALLREDUCE_LOCAL, num_cnodes=8), hardware
        )
        assert eight.data_io == pytest.approx(2 * four.data_io)

    def test_cluster_contention_caps_at_8(self, hardware):
        breakdown = estimate_breakdown(
            features_for(Architecture.ALLREDUCE_CLUSTER, num_cnodes=32),
            hardware,
        )
        assert breakdown.data_io == pytest.approx(8e-3)

    def test_contention_can_be_disabled(self, hardware):
        options = dataclasses.replace(
            PAPER_MODEL_OPTIONS, input_pcie_contention=False
        )
        breakdown = estimate_breakdown(
            features_for(Architecture.ALLREDUCE_LOCAL, num_cnodes=8),
            hardware,
            options=options,
        )
        assert breakdown.data_io == pytest.approx(1e-3)


class TestOverlap:
    def test_non_overlap_sums(self, hardware):
        features = features_for(Architecture.PS_WORKER, num_cnodes=16)
        breakdown = estimate_breakdown(features, hardware)
        assert breakdown.total == pytest.approx(
            breakdown.data_io + breakdown.computation + breakdown.weight_total
        )

    def test_ideal_overlap_takes_max(self, hardware):
        features = features_for(Architecture.PS_WORKER, num_cnodes=16)
        breakdown = estimate_breakdown(features, hardware)
        assert breakdown.total_ideal_overlap == pytest.approx(
            max(
                breakdown.data_io,
                breakdown.computation,
                breakdown.weight_total,
            )
        )

    def test_overlap_mode_selects_total(self, hardware):
        features = features_for(Architecture.PS_WORKER, num_cnodes=16)
        ideal = dataclasses.replace(
            PAPER_MODEL_OPTIONS, overlap=OverlapMode.IDEAL
        )
        assert estimate_step_time(
            features, hardware, options=ideal
        ) <= estimate_step_time(features, hardware)


class TestTimeBreakdown:
    def test_fractions_sum_to_one(self, hardware):
        breakdown = estimate_breakdown(
            features_for(Architecture.PS_WORKER, num_cnodes=16), hardware
        )
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_zero_breakdown_fractions(self):
        empty = TimeBreakdown(0.0, 0.0, 0.0, {})
        assert all(v == 0.0 for v in empty.fractions().values())
        assert all(v == 0.0 for v in empty.hardware_shares().values())

    def test_hardware_shares_sum_to_one(self, hardware):
        breakdown = estimate_breakdown(
            features_for(Architecture.PS_WORKER, num_cnodes=16), hardware
        )
        assert sum(breakdown.hardware_shares().values()) == pytest.approx(1.0)

    def test_ps_pcie_share_includes_input_and_weights(self, hardware):
        breakdown = estimate_breakdown(
            features_for(Architecture.PS_WORKER, num_cnodes=16), hardware
        )
        shares = breakdown.hardware_shares()
        expected = (
            breakdown.data_io + breakdown.weight_comm["PCIe"]
        ) / breakdown.total
        assert shares["PCIe"] == pytest.approx(expected)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            TimeBreakdown(-1.0, 0.0, 0.0, {})
        with pytest.raises(ValueError):
            TimeBreakdown(0.0, 0.0, 0.0, {"PCIe": -1.0})

    def test_scaled(self):
        breakdown = TimeBreakdown(1.0, 2.0, 3.0, {"PCIe": 4.0})
        doubled = breakdown.scaled(2.0)
        assert doubled.total == pytest.approx(2 * breakdown.total)


class TestTrafficShaping:
    def test_ring_factor(self):
        assert ring_allreduce_factor(1) == 0.0
        assert ring_allreduce_factor(2) == pytest.approx(0.5)
        assert ring_allreduce_factor(8) == pytest.approx(7 / 8)

    def test_ring_factor_rejects_zero(self):
        with pytest.raises(ValueError):
            ring_allreduce_factor(0)

    def test_ring_option_shrinks_allreduce_traffic(self, hardware):
        features = features_for(Architecture.ALLREDUCE_LOCAL, num_cnodes=8)
        plain = weight_traffic_times(features, hardware)["NVLink"]
        ringed = weight_traffic_times(
            features,
            hardware,
            options=dataclasses.replace(
                PAPER_MODEL_OPTIONS, allreduce_ring_factor=True
            ),
        )["NVLink"]
        assert ringed == pytest.approx(plain * 7 / 8)

    def test_pearl_partition_parallelism(self, hardware):
        features = features_for(
            Architecture.PEARL,
            num_cnodes=8,
            weight_traffic_bytes=900e6,
            embedding_traffic_bytes=800e6,
        )
        times = weight_traffic_times(features, hardware)
        # dense 100 MB + 800/8 MB sparse = 200 MB effective.
        assert times["NVLink"] == pytest.approx(200e6 / (50e9 * 0.7))

    def test_pearl_parallelism_can_be_disabled(self, hardware):
        features = features_for(
            Architecture.PEARL,
            num_cnodes=8,
            weight_traffic_bytes=900e6,
            embedding_traffic_bytes=800e6,
        )
        options = dataclasses.replace(
            PAPER_MODEL_OPTIONS, pearl_partition_parallelism=False
        )
        times = weight_traffic_times(features, hardware, options=options)
        assert times["NVLink"] == pytest.approx(900e6 / (50e9 * 0.7))


class TestEfficiencyScaling:
    def test_full_efficiency_is_faster(self, hardware):
        features = features_for(Architecture.PS_WORKER, num_cnodes=16)
        at_70 = estimate_step_time(features, hardware)
        at_100 = estimate_step_time(features, hardware, full_efficiency())
        assert at_100 == pytest.approx(at_70 * 0.7)

    def test_component_efficiency_targets_one_term(self, hardware):
        features = features_for(Architecture.PS_WORKER, num_cnodes=16)
        slow_memory = EfficiencyModel(memory=0.35)
        base = estimate_breakdown(features, hardware)
        slowed = estimate_breakdown(features, hardware, slow_memory)
        assert slowed.compute_memory == pytest.approx(2 * base.compute_memory)
        assert slowed.compute_flops == pytest.approx(base.compute_flops)
