"""PS/Worker -> AllReduce projections (Sec. III-C1)."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.projection import (
    ALLREDUCE_LOCAL_MAX_CNODES,
    project_to_allreduce_cluster,
    project_to_allreduce_local,
    projection_speedups,
)


def ps_job(num_cnodes=16, weight=300e6, **kw):
    defaults = dict(
        name="ps-job",
        architecture=Architecture.PS_WORKER,
        num_cnodes=num_cnodes,
        batch_size=128,
        flop_count=1e12,
        memory_access_bytes=10e9,
        input_bytes=10e6,
        weight_traffic_bytes=weight,
        dense_weight_bytes=weight,
    )
    defaults.update(kw)
    return WorkloadFeatures(**defaults)


class TestLocalProjection:
    def test_caps_cnodes_at_8(self):
        projected = project_to_allreduce_local(ps_job(num_cnodes=64))
        assert projected.num_cnodes == ALLREDUCE_LOCAL_MAX_CNODES
        assert projected.architecture is Architecture.ALLREDUCE_LOCAL

    def test_small_jobs_keep_cnodes(self):
        projected = project_to_allreduce_local(ps_job(num_cnodes=4))
        assert projected.num_cnodes == 4

    def test_requirements_carry_over(self):
        original = ps_job()
        projected = project_to_allreduce_local(original)
        assert projected.flop_count == original.flop_count
        assert projected.weight_traffic_bytes == original.weight_traffic_bytes

    def test_rejects_non_ps_jobs(self):
        local = ps_job().with_architecture(Architecture.ALLREDUCE_LOCAL, 8)
        with pytest.raises(ValueError):
            project_to_allreduce_local(local)

    def test_rejects_models_too_big_for_gpu(self, hardware):
        # AllReduce supports only the weight-replica mode; a 100 GB model
        # cannot live in one GPU's memory.
        huge = ps_job(weight=100e9, dense_weight_bytes=100e9)
        with pytest.raises(ValueError):
            project_to_allreduce_local(huge, hardware)

    def test_accepts_fitting_models_with_hardware(self, hardware):
        projected = project_to_allreduce_local(ps_job(), hardware)
        assert projected.architecture is Architecture.ALLREDUCE_LOCAL


class TestClusterProjection:
    def test_keeps_cnodes(self):
        projected = project_to_allreduce_cluster(ps_job(num_cnodes=64))
        assert projected.num_cnodes == 64
        assert projected.architecture is Architecture.ALLREDUCE_CLUSTER

    def test_rejects_non_ps_jobs(self):
        single = WorkloadFeatures(
            name="x",
            architecture=Architecture.SINGLE,
            num_cnodes=1,
            batch_size=1,
            flop_count=1.0,
            memory_access_bytes=1.0,
            input_bytes=1.0,
            weight_traffic_bytes=0.0,
        )
        with pytest.raises(ValueError):
            project_to_allreduce_cluster(single)


class TestProjectionSpeedups:
    def test_result_fields(self, hardware):
        result = projection_speedups(
            ps_job(), Architecture.ALLREDUCE_LOCAL, hardware
        )
        assert result.original.architecture is Architecture.PS_WORKER
        assert result.projected.architecture is Architecture.ALLREDUCE_LOCAL
        assert result.single_cnode_speedup > 0
        assert result.throughput_speedup > 0

    def test_throughput_penalty_for_big_jobs(self, hardware):
        result = projection_speedups(
            ps_job(num_cnodes=64), Architecture.ALLREDUCE_LOCAL, hardware
        )
        assert result.throughput_speedup == pytest.approx(
            result.single_cnode_speedup * 8 / 64
        )

    def test_sped_up_flags(self, hardware):
        weight_bound = ps_job(num_cnodes=8, weight=50e9, input_bytes=1.0)
        result = projection_speedups(
            weight_bound, Architecture.ALLREDUCE_LOCAL, hardware
        )
        assert result.sped_up
        assert result.single_cnode_sped_up

    def test_io_bound_job_not_sped_up(self, hardware):
        io_bound = ps_job(
            num_cnodes=8,
            weight=1e6,
            input_bytes=1e9,
            flop_count=1.0,
            memory_access_bytes=1.0,
        )
        result = projection_speedups(
            io_bound, Architecture.ALLREDUCE_LOCAL, hardware
        )
        assert not result.single_cnode_sped_up

    def test_cluster_speedup_capped_near_1_2(self, hardware):
        weight_bound = ps_job(num_cnodes=4, weight=50e9, input_bytes=1.0)
        result = projection_speedups(
            weight_bound, Architecture.ALLREDUCE_CLUSTER, hardware
        )
        assert 1.0 < result.single_cnode_speedup < 1.25

    def test_rejects_bad_target(self, hardware):
        with pytest.raises(ValueError):
            projection_speedups(ps_job(), Architecture.SINGLE, hardware)
