"""The Table II taxonomy."""

import pytest

from repro.core.architectures import Architecture


class TestTaxonomy:
    def test_five_paper_types_plus_pearl(self):
        assert len(Architecture) == 6

    def test_labels(self):
        assert str(Architecture.SINGLE) == "1w1g"
        assert str(Architecture.PS_WORKER) == "PS/Worker"
        assert str(Architecture.ALLREDUCE_LOCAL) == "AllReduce-Local"

    def test_from_label(self):
        assert Architecture.from_label("ps/worker") is Architecture.PS_WORKER
        assert Architecture.from_label("PEARL") is Architecture.PEARL

    def test_from_label_unknown(self):
        with pytest.raises(KeyError):
            Architecture.from_label("ring-of-fire")


class TestWeightMedia:
    """The 'Weight Movement' column of Table II."""

    def test_1w1g_moves_nothing(self):
        assert Architecture.SINGLE.weight_media == ()

    def test_1wng_uses_pcie(self):
        assert Architecture.LOCAL_CENTRALIZED.weight_media == ("PCIe",)

    def test_ps_worker_uses_ethernet_and_pcie(self):
        assert Architecture.PS_WORKER.weight_media == ("Ethernet", "PCIe")

    def test_allreduce_local_uses_nvlink(self):
        assert Architecture.ALLREDUCE_LOCAL.weight_media == ("NVLink",)

    def test_allreduce_cluster_uses_ethernet_and_nvlink(self):
        assert Architecture.ALLREDUCE_CLUSTER.weight_media == (
            "Ethernet",
            "NVLink",
        )

    def test_pearl_uses_nvlink(self):
        assert Architecture.PEARL.weight_media == ("NVLink",)


class TestClassification:
    def test_centralized(self):
        assert Architecture.PS_WORKER.is_centralized
        assert Architecture.LOCAL_CENTRALIZED.is_centralized
        assert not Architecture.ALLREDUCE_LOCAL.is_centralized

    def test_local(self):
        assert Architecture.SINGLE.is_local
        assert Architecture.LOCAL_CENTRALIZED.is_local
        assert Architecture.ALLREDUCE_LOCAL.is_local
        assert not Architecture.PS_WORKER.is_local
        assert not Architecture.ALLREDUCE_CLUSTER.is_local

    def test_distributed(self):
        assert not Architecture.SINGLE.is_distributed
        assert all(
            arch.is_distributed
            for arch in Architecture
            if arch is not Architecture.SINGLE
        )


class TestContention:
    def test_single_server_architectures_contend(self):
        assert Architecture.LOCAL_CENTRALIZED.input_contends_for_pcie
        assert Architecture.ALLREDUCE_LOCAL.input_contends_for_pcie

    def test_packed_cluster_architectures_contend(self):
        assert Architecture.ALLREDUCE_CLUSTER.input_contends_for_pcie
        assert Architecture.PEARL.input_contends_for_pcie

    def test_one_worker_per_server_does_not(self):
        assert not Architecture.PS_WORKER.input_contends_for_pcie
        assert not Architecture.SINGLE.input_contends_for_pcie


class TestLimits:
    def test_local_cap_is_8(self):
        assert Architecture.ALLREDUCE_LOCAL.max_local_cnodes == 8
        assert Architecture.LOCAL_CENTRALIZED.max_local_cnodes == 8

    def test_single_cap_is_1(self):
        assert Architecture.SINGLE.max_local_cnodes == 1

    def test_cluster_unbounded(self):
        assert Architecture.PS_WORKER.max_local_cnodes >= 1024

    def test_nvlink_requirement(self):
        assert Architecture.ALLREDUCE_LOCAL.requires_nvlink
        assert Architecture.PEARL.requires_nvlink
        assert not Architecture.PS_WORKER.requires_nvlink

    def test_partitioned_weight_support(self):
        # AllReduce only supports the weight-replica mode (Sec. III-A).
        assert Architecture.PS_WORKER.supports_partitioned_weights
        assert Architecture.PEARL.supports_partitioned_weights
        assert not Architecture.ALLREDUCE_LOCAL.supports_partitioned_weights
        assert not Architecture.ALLREDUCE_CLUSTER.supports_partitioned_weights
