"""Efficiency models: the 70% assumption and Table VI."""

import pytest

from repro.core.efficiency import (
    EfficiencyModel,
    PAPER_DEFAULT_EFFICIENCY,
    TABLE_VI_EFFICIENCIES,
    full_efficiency,
    uniform_efficiency,
)


class TestDefaults:
    def test_paper_default_is_70_percent(self):
        for field in ("compute", "memory", "pcie", "network"):
            assert getattr(PAPER_DEFAULT_EFFICIENCY, field) == 0.7

    def test_uniform(self):
        model = uniform_efficiency(0.5)
        assert model.compute == model.network == 0.5

    def test_full(self):
        assert full_efficiency().memory == 1.0


class TestValidation:
    @pytest.mark.parametrize("value", [0.0, -0.1, 1.5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            EfficiencyModel(compute=value)


class TestForMedium:
    def test_pcie(self):
        assert PAPER_DEFAULT_EFFICIENCY.for_medium("PCIe") == 0.7

    def test_network_media_share_efficiency(self):
        model = EfficiencyModel(network=0.4)
        assert model.for_medium("Ethernet") == 0.4
        assert model.for_medium("NVLink") == 0.4

    def test_compute_media(self):
        model = EfficiencyModel(compute=0.8, memory=0.3)
        assert model.for_medium("GPU_FLOPs") == 0.8
        assert model.for_medium("GPU_memory") == 0.3
        assert model.for_medium("GDDR") == 0.3

    def test_unknown(self):
        with pytest.raises(KeyError):
            PAPER_DEFAULT_EFFICIENCY.for_medium("smoke-signal")


class TestScaled:
    def test_scales_sides_independently(self):
        scaled = PAPER_DEFAULT_EFFICIENCY.scaled(compute=0.5, communication=1.0)
        assert scaled.compute == pytest.approx(0.35)
        assert scaled.memory == pytest.approx(0.35)
        assert scaled.pcie == 0.7
        assert scaled.network == 0.7

    def test_caps_at_one(self):
        scaled = PAPER_DEFAULT_EFFICIENCY.scaled(compute=2.0)
        assert scaled.compute == 1.0

    def test_fig15_scenario_values(self):
        # "Communication eff. 50%" scales the 70% baseline by 50/70.
        scaled = PAPER_DEFAULT_EFFICIENCY.scaled(communication=50 / 70)
        assert scaled.pcie == pytest.approx(0.5)
        assert scaled.network == pytest.approx(0.5)


class TestTableVI:
    def test_all_six_models_present(self):
        assert set(TABLE_VI_EFFICIENCIES) == {
            "Multi-Interests",
            "ResNet50",
            "NMT",
            "BERT",
            "Speech",
            "GCN",
        }

    def test_speech_memory_is_3_percent(self):
        # The cause of the Fig. 12 Speech outlier.
        assert TABLE_VI_EFFICIENCIES["Speech"].memory == pytest.approx(0.031)

    def test_nmt_pcie_is_tiny(self):
        assert TABLE_VI_EFFICIENCIES["NMT"].pcie == pytest.approx(0.001)

    def test_values_match_table(self):
        resnet = TABLE_VI_EFFICIENCIES["ResNet50"]
        assert resnet.compute == pytest.approx(0.8255)
        assert resnet.memory == pytest.approx(0.789)
        assert resnet.pcie == pytest.approx(0.351)
        assert resnet.network == pytest.approx(0.494)

    def test_70_percent_is_about_average(self):
        # Sec. V-A: "70% is about the average level".
        values = [
            getattr(model, field)
            for model in TABLE_VI_EFFICIENCIES.values()
            for field in ("compute", "memory", "pcie", "network")
        ]
        assert 0.4 < sum(values) / len(values) < 0.85
