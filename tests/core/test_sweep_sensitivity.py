"""The per-unit sensitivity metric of sweep series (Fig. 11 ranking)."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.sweep import SweepPoint, SweepSeries, sweep_resource
from repro.core.units import gbps


def series(points):
    return SweepSeries(
        resource="ethernet",
        points=tuple(
            SweepPoint(
                resource="ethernet",
                value=norm * gbps(25),
                normalized_value=norm,
                average_speedup=speedup,
                speedups=(speedup,),
            )
            for norm, speedup in points
        ),
    )


class TestSensitivity:
    def test_per_unit_slope(self):
        # 1.6x at 4x normalized: (1.6 - 1) / (4 - 1) = 0.2 per unit.
        s = series([(1.0, 1.0), (4.0, 1.6)])
        assert s.sensitivity == pytest.approx(0.2)

    def test_picks_the_best_point(self):
        # A steep early gain beats a flatter later one.
        s = series([(1.0, 1.0), (2.0, 1.5), (4.0, 1.6)])
        assert s.sensitivity == pytest.approx(0.5)

    def test_baseline_only_is_zero(self):
        assert series([(1.0, 1.0)]).sensitivity == 0.0

    def test_downgrades_do_not_count(self):
        s = series([(0.4, 0.6), (1.0, 1.0)])
        assert s.sensitivity == 0.0

    def test_wide_sweep_no_longer_wins_automatically(self):
        # PCIe reaches 5x normalized, GPU memory only 4x -- the raw max
        # favors PCIe even when memory is more valuable per unit.
        pcie = series([(1.0, 1.0), (5.0, 1.5)])
        memory = series([(1.0, 1.0), (4.0, 1.45)])
        assert pcie.max_speedup > memory.max_speedup
        assert memory.sensitivity > pcie.sensitivity


class TestSensitivityOnRealSweep:
    def test_matches_hand_computation(self, hardware):
        job = WorkloadFeatures(
            name="j",
            architecture=Architecture.PS_WORKER,
            num_cnodes=8,
            batch_size=64,
            flop_count=1e12,
            memory_access_bytes=5e9,
            input_bytes=1e6,
            weight_traffic_bytes=1e9,
            dense_weight_bytes=1e9,
        )
        swept = sweep_resource(
            [job], "ethernet", [gbps(25), gbps(100)], hardware
        )
        point = swept.points[-1]
        expected = (point.average_speedup - 1.0) / (
            point.normalized_value - 1.0
        )
        assert swept.sensitivity == pytest.approx(expected)
