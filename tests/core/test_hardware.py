"""Hardware specs: Table I defaults, Table III variations, sweeps."""

import dataclasses

import pytest

from repro.core.hardware import (
    GpuSpec,
    HardwareConfig,
    HardwareVariations,
    LinkSpec,
    ServerSpec,
    TABLE_III_VARIATIONS,
    pai_default_hardware,  # noqa: F401 (fixture source)
    testbed_v100_hardware as v100_hardware,
)
from repro.core.units import gbps, gigabytes_per_second, teraflops


class TestTableIDefaults:
    def test_gpu(self, hardware):
        assert hardware.gpu.peak_flops == teraflops(11)
        assert hardware.gpu.memory_bandwidth == 1e12

    def test_links(self, hardware):
        assert hardware.ethernet.bandwidth == gbps(25)
        assert hardware.pcie.bandwidth == 10e9
        assert hardware.nvlink.bandwidth == 50e9

    def test_nvlink_is_fastest_interconnect(self, hardware):
        assert hardware.nvlink.bandwidth > hardware.pcie.bandwidth
        assert hardware.pcie.bandwidth > hardware.ethernet.bandwidth


class TestTestbed:
    def test_v100_specs(self, testbed):
        # Sec. IV-B divides ResNet50's 1.56T by 15 TFLOPs.
        assert testbed.gpu.peak_flops == teraflops(15)
        assert testbed.gpu.tensor_core_flops == teraflops(120)
        assert testbed.server.has_nvlink


class TestValidation:
    def test_gpu_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GpuSpec("bad", peak_flops=0, memory_bandwidth=1e12)
        with pytest.raises(ValueError):
            GpuSpec("bad", peak_flops=1e12, memory_bandwidth=-1)

    def test_link_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth=0)

    def test_link_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", bandwidth=1e9, latency=-1e-6)

    def test_server_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            ServerSpec(gpus_per_server=0)


class TestLinkTransfer:
    def test_transfer_time(self):
        link = LinkSpec("eth", bandwidth=1e9, latency=0.0)
        assert link.transfer_time(1e9) == pytest.approx(1.0)

    def test_transfer_time_with_efficiency(self):
        link = LinkSpec("eth", bandwidth=1e9)
        assert link.transfer_time(7e8, efficiency=0.7) == pytest.approx(1.0)

    def test_transfer_includes_latency(self):
        link = LinkSpec("eth", bandwidth=1e9, latency=0.5)
        assert link.transfer_time(0.0) == pytest.approx(0.5)

    def test_transfer_rejects_negative(self):
        link = LinkSpec("eth", bandwidth=1e9)
        with pytest.raises(ValueError):
            link.transfer_time(-1)
        with pytest.raises(ValueError):
            link.transfer_time(1, efficiency=0.0)


class TestBandwidthOf:
    @pytest.mark.parametrize(
        "medium,attr",
        [
            ("Ethernet", "ethernet"),
            ("PCIe", "pcie"),
            ("NVLink", "nvlink"),
        ],
    )
    def test_media(self, hardware, medium, attr):
        assert hardware.bandwidth_of(medium) == getattr(hardware, attr).bandwidth

    def test_gpu_memory(self, hardware):
        assert hardware.bandwidth_of("GPUMemory") == hardware.gpu.memory_bandwidth

    def test_case_insensitive(self, hardware):
        assert hardware.bandwidth_of("ethernet") == hardware.bandwidth_of("ETHERNET")

    def test_unknown_medium(self, hardware):
        with pytest.raises(KeyError):
            hardware.bandwidth_of("carrier-pigeon")


class TestWithResource:
    def test_replaces_ethernet(self, hardware):
        upgraded = hardware.with_resource("ethernet", gbps(100))
        assert upgraded.ethernet.bandwidth == gbps(100)
        assert hardware.ethernet.bandwidth == gbps(25)  # original untouched

    def test_replaces_gpu_flops(self, hardware):
        upgraded = hardware.with_resource("gpu_flops", teraflops(64))
        assert upgraded.gpu.peak_flops == teraflops(64)
        assert upgraded.gpu.memory_bandwidth == hardware.gpu.memory_bandwidth

    def test_replaces_gpu_memory(self, hardware):
        upgraded = hardware.with_resource("gpu_memory", 4e12)
        assert upgraded.gpu.memory_bandwidth == 4e12

    def test_replaces_pcie_and_nvlink(self, hardware):
        assert hardware.with_resource("pcie", 50e9).pcie.bandwidth == 50e9
        assert hardware.with_resource("nvlink", 100e9).nvlink.bandwidth == 100e9

    def test_unknown_resource(self, hardware):
        with pytest.raises(KeyError):
            hardware.with_resource("quantum", 1.0)


class TestNormalization:
    def test_ethernet_normalized(self, hardware):
        assert hardware.normalized_resource("ethernet", gbps(100)) == pytest.approx(4.0)

    def test_pcie_normalized(self, hardware):
        assert hardware.normalized_resource(
            "pcie", gigabytes_per_second(50)
        ) == pytest.approx(5.0)

    def test_unknown(self, hardware):
        with pytest.raises(KeyError):
            hardware.normalized_resource("bogus", 1.0)


class TestTableIIIVariations:
    def test_resources(self):
        assert TABLE_III_VARIATIONS.resources() == (
            "ethernet",
            "pcie",
            "gpu_flops",
            "gpu_memory",
        )

    def test_candidate_counts(self):
        assert len(TABLE_III_VARIATIONS.ethernet) == 3
        assert len(TABLE_III_VARIATIONS.pcie) == 2
        assert len(TABLE_III_VARIATIONS.gpu_flops) == 4
        assert len(TABLE_III_VARIATIONS.gpu_memory) == 3

    def test_iteration_covers_all(self):
        pairs = list(TABLE_III_VARIATIONS)
        assert len(pairs) == 12
        assert ("ethernet", gbps(100)) in pairs

    def test_unknown_candidates(self):
        with pytest.raises(KeyError):
            TABLE_III_VARIATIONS.candidates("bogus")

    def test_base_values_included(self, hardware):
        # Every sweep includes the Table I baseline.
        assert hardware.ethernet.bandwidth in TABLE_III_VARIATIONS.ethernet
        assert hardware.pcie.bandwidth in TABLE_III_VARIATIONS.pcie
        assert hardware.gpu.memory_bandwidth in TABLE_III_VARIATIONS.gpu_memory

    def test_frozen(self, hardware):
        with pytest.raises(dataclasses.FrozenInstanceError):
            hardware.gpu = None
