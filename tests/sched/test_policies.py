"""Policy behavior: ordering, backfill and preemption decisions."""

import pytest

from repro.core.architectures import Architecture
from repro.sched import (
    BackfillPolicy,
    FifoPolicy,
    Fleet,
    PriorityPolicy,
    SjfPolicy,
    run_schedule,
)

from sched_helpers import make_job


def starts_of(outcome):
    return {o.job.job_id: o.first_start_hour for o in outcome.outcomes}


class TestFifo:
    def test_head_of_line_blocks_later_jobs(self):
        # Job 1 needs the full server; job 2 would fit alongside job 0
        # but must not overtake the blocked head.
        jobs = [
            make_job(0, Architecture.ALLREDUCE_LOCAL, 6),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8),
            make_job(2, Architecture.ALLREDUCE_LOCAL, 2),
        ]
        outcome = run_schedule(
            jobs, Fleet(1), FifoPolicy(), durations={0: 4.0, 1: 1.0, 2: 1.0}
        )
        starts = starts_of(outcome)
        assert starts[0] == 0.0
        assert starts[1] == 4.0
        assert starts[2] == 5.0

    def test_arrival_order_wins_over_job_id(self):
        jobs = [
            make_job(5, Architecture.ALLREDUCE_LOCAL, 8, submit_day=0),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8, submit_day=1),
        ]
        outcome = run_schedule(
            jobs, Fleet(1), FifoPolicy(), durations={5: 30.0, 1: 1.0}
        )
        starts = starts_of(outcome)
        assert starts[5] == 0.0
        assert starts[1] == 30.0


class TestSjf:
    def test_shortest_predicted_job_first(self):
        # All three arrive together and need the full server: the two
        # short jobs run before the long one despite its lower id.
        jobs = [
            make_job(0, Architecture.ALLREDUCE_LOCAL, 8),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8),
            make_job(2, Architecture.ALLREDUCE_LOCAL, 8),
        ]
        outcome = run_schedule(
            jobs, Fleet(1), SjfPolicy(), durations={0: 10.0, 1: 1.0, 2: 2.0}
        )
        starts = starts_of(outcome)
        assert starts[1] == 0.0
        assert starts[2] == 1.0
        assert starts[0] == 3.0


class TestBackfill:
    def test_short_job_backfills_behind_blocked_head(self):
        # Head (job 1) waits for the full server at t=10; job 2 fits in
        # the two spare GPUs and finishes by then, job 3 would not.
        jobs = [
            make_job(0, Architecture.ALLREDUCE_LOCAL, 6),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8),
            make_job(2, Architecture.ALLREDUCE_LOCAL, 2),
            make_job(3, Architecture.ALLREDUCE_LOCAL, 2),
        ]
        durations = {0: 10.0, 1: 1.0, 2: 5.0, 3: 20.0}
        outcome = run_schedule(jobs, Fleet(1), BackfillPolicy(), durations=durations)
        starts = starts_of(outcome)
        assert starts[0] == 0.0
        assert starts[2] == 0.0  # backfilled
        assert starts[1] == 10.0  # head starts exactly at its reservation
        assert starts[3] == 11.0  # too long to backfill

    def test_never_delays_the_head(self):
        jobs = [
            make_job(0, Architecture.ALLREDUCE_LOCAL, 6),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8),
            make_job(2, Architecture.ALLREDUCE_LOCAL, 2),
        ]
        durations = {0: 10.0, 1: 1.0, 2: 5.0}
        fifo = run_schedule(jobs, Fleet(1), FifoPolicy(), durations=durations)
        easy = run_schedule(jobs, Fleet(1), BackfillPolicy(), durations=durations)
        assert starts_of(easy)[1] == starts_of(fifo)[1]


class TestPriority:
    def test_preempts_lower_priority(self):
        # A 1-GPU job holds the server when an 8-GPU gang arrives; the
        # gang (higher default priority = width) evicts it.
        jobs = [
            make_job(0, Architecture.SINGLE, 1, submit_day=0),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8, submit_day=1),
        ]
        outcome = run_schedule(
            jobs, Fleet(1), PriorityPolicy(), durations={0: 100.0, 1: 10.0}
        )
        by_id = {o.job.job_id: o for o in outcome.outcomes}
        gang = by_id[1]
        assert gang.first_start_hour == 24.0
        assert gang.queueing_delay_hours == 0.0
        victim = by_id[0]
        assert victim.preemptions == 1
        assert victim.segments[0].end_hour == 24.0
        # Work is conserved: 24 h ran before eviction, the remaining
        # 76 h resume when the gang finishes at t=34.
        assert victim.segments[1].start_hour == 34.0
        assert victim.executed_hours == pytest.approx(100.0)
        assert victim.end_hour == pytest.approx(110.0)

    def test_preemption_disabled(self):
        jobs = [
            make_job(0, Architecture.SINGLE, 1, submit_day=0),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8, submit_day=1),
        ]
        outcome = run_schedule(
            jobs,
            Fleet(1),
            PriorityPolicy(preempt=False),
            durations={0: 100.0, 1: 10.0},
        )
        by_id = {o.job.job_id: o for o in outcome.outcomes}
        assert by_id[0].preemptions == 0
        assert by_id[1].first_start_hour == 100.0

    def test_equal_priority_never_preempts(self):
        jobs = [
            make_job(0, Architecture.ALLREDUCE_LOCAL, 8, submit_day=0),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8, submit_day=1),
        ]
        outcome = run_schedule(
            jobs, Fleet(1), PriorityPolicy(), durations={0: 100.0, 1: 1.0}
        )
        by_id = {o.job.job_id: o for o in outcome.outcomes}
        assert by_id[0].preemptions == 0
        assert by_id[1].first_start_hour == 100.0

    def test_custom_priority_function(self):
        # Invert the default: narrow jobs win, so the gang waits.
        jobs = [
            make_job(0, Architecture.SINGLE, 1, submit_day=0),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8, submit_day=1),
        ]
        policy = PriorityPolicy(priority=lambda job: -float(job.num_cnodes))
        outcome = run_schedule(
            jobs, Fleet(1), policy, durations={0: 100.0, 1: 10.0}
        )
        by_id = {o.job.job_id: o for o in outcome.outcomes}
        assert by_id[0].preemptions == 0
        assert by_id[1].first_start_hour == 100.0
