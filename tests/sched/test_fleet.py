"""The fleet resource model: shaped placement and accounting."""

import pytest

from repro.core.architectures import Architecture
from repro.sched.fleet import Fleet, Placement


class TestValidation:
    def test_dimensions_must_be_positive(self):
        with pytest.raises(ValueError):
            Fleet(num_servers=0)
        with pytest.raises(ValueError):
            Fleet(num_servers=2, gpus_per_server=0)

    def test_num_gpus_must_be_positive(self):
        fleet = Fleet(num_servers=2)
        with pytest.raises(ValueError):
            fleet.try_place(Architecture.SINGLE, 0)

    def test_release_checks_geometry(self):
        fleet = Fleet(num_servers=2)
        with pytest.raises(ValueError):
            fleet.release(Placement(gpus_by_server=(1,)))

    def test_release_checks_capacity(self):
        fleet = Fleet(num_servers=1, gpus_per_server=8)
        with pytest.raises(ValueError):
            fleet.release(Placement(gpus_by_server=(1,)))


class TestPlacementShapes:
    def test_local_gang_on_one_server(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        placement = fleet.try_place(Architecture.ALLREDUCE_LOCAL, 6)
        assert placement.gpus_by_server == (6, 0)
        assert placement.servers_used == 1

    def test_local_gang_first_fit_skips_fragmented_servers(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 5)
        placement = fleet.try_place(Architecture.ALLREDUCE_LOCAL, 6)
        assert placement.gpus_by_server == (0, 6)

    def test_local_gang_blocked_by_fragmentation(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 5)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 5)
        # Six GPUs free in total, but only 3 + 3 per server.
        assert fleet.free_gpus == 6
        assert fleet.try_place(Architecture.ALLREDUCE_LOCAL, 6) is None

    def test_ps_spreads_one_per_server(self):
        fleet = Fleet(num_servers=4, gpus_per_server=8)
        placement = fleet.try_place(Architecture.PS_WORKER, 3)
        assert placement.gpus_by_server == (1, 1, 1, 0)

    def test_ps_wider_than_fleet_fails(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        assert fleet.try_place(Architecture.PS_WORKER, 3) is None

    def test_packed_fills_greedily(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        placement = fleet.try_place(Architecture.ALLREDUCE_CLUSTER, 10)
        assert placement.gpus_by_server == (8, 2)

    def test_placement_total(self):
        fleet = Fleet(num_servers=3, gpus_per_server=8)
        placement = fleet.try_place(Architecture.PEARL, 12)
        assert placement.total_gpus == 12


class TestAccounting:
    def test_release_restores_capacity(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        placement = fleet.try_place(Architecture.ALLREDUCE_CLUSTER, 10)
        assert fleet.busy_gpus == 10
        fleet.release(placement)
        assert fleet.busy_gpus == 0
        assert fleet.free_by_server == (8, 8)

    def test_fits_does_not_mutate(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        assert fleet.fits(Architecture.ALLREDUCE_LOCAL, 8)
        assert fleet.free_gpus == 16

    def test_clone_is_independent(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        clone = fleet.clone()
        clone.try_place(Architecture.SINGLE, 1)
        assert fleet.free_gpus == 16
        assert clone.free_gpus == 15

    def test_fragmentation(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        assert fleet.fragmentation() == pytest.approx(0.5)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 5)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 5)
        # 3 + 3 free, largest block 3.
        assert fleet.fragmentation() == pytest.approx(0.5)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 3)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 3)
        assert fleet.fragmentation() == 0.0

    def test_utilization(self):
        fleet = Fleet(num_servers=2, gpus_per_server=8)
        fleet.try_place(Architecture.ALLREDUCE_CLUSTER, 4)
        assert fleet.utilization() == pytest.approx(0.25)


class TestCanEverPlace:
    def test_local_bounded_by_server(self):
        fleet = Fleet(num_servers=4, gpus_per_server=8)
        assert fleet.can_ever_place(Architecture.ALLREDUCE_LOCAL, 8)
        assert not fleet.can_ever_place(Architecture.ALLREDUCE_LOCAL, 9)

    def test_ps_bounded_by_servers(self):
        fleet = Fleet(num_servers=4, gpus_per_server=8)
        assert fleet.can_ever_place(Architecture.PS_WORKER, 4)
        assert not fleet.can_ever_place(Architecture.PS_WORKER, 5)

    def test_packed_bounded_by_total(self):
        fleet = Fleet(num_servers=4, gpus_per_server=8)
        assert fleet.can_ever_place(Architecture.ALLREDUCE_CLUSTER, 32)
        assert not fleet.can_ever_place(Architecture.ALLREDUCE_CLUSTER, 33)
