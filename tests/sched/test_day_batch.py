"""Day-batched engine: byte-identical to the per-event reference.

The day engine reorders *work*, never *semantics*: batch admission,
vectorized per-day durations and the queue feasibility screen are each
an exact reduction of what the per-event engine does.  These tests pin
that claim on the suite's 20k-job default trace across every bundled
policy, with and without injected faults, by comparing whole
:class:`~repro.sched.outcomes.ScheduleOutcome` values -- outcomes,
segments, rejections and telemetry samples alike.
"""

import pytest

from repro.analysis.context import default_trace
from repro.sched.engine import run_schedule
from repro.sched.faults import CrashSpec, SchedFaults, StormSpec
from repro.sched.fleet import Fleet
from repro.sched.policies import (
    BackfillPolicy,
    FifoPolicy,
    PriorityPolicy,
    SjfPolicy,
)
from repro.sched.predictor import ModelRuntimePredictor
from repro.trace.generator import TraceConfig, generate_trace

#: Fleet geometry for the 20k regression: loaded enough that queues
#: form (so policies actually decide) while keeping each replay in
#: seconds rather than minutes.
_SERVERS = 160

_POLICIES = {
    "fifo": FifoPolicy,
    "sjf": SjfPolicy,
    "backfill": BackfillPolicy,
    "priority": PriorityPolicy,
}

#: Crashes and a storm landing inside the default trace's submission
#: window (days 23-43), so every fault actually fires mid-replay.
_FAULTS = SchedFaults(
    crashes=(
        CrashSpec(hour=23 * 24.0 + 5.0),
        CrashSpec(hour=30 * 24.0 + 1.0, job_id=7, backoff_hours=3.0),
    ),
    storms=(
        StormSpec(
            start_hour=26 * 24.0,
            ticks=3,
            interval_hours=4.0,
            victims_per_tick=2,
        ),
    ),
)


def _outcomes_identical(a, b):
    assert a.policy == b.policy
    assert a.total_gpus == b.total_gpus
    assert a.rejected == b.rejected
    assert a.outcomes == b.outcomes
    assert a.telemetry == b.telemetry
    assert a == b


@pytest.mark.slow
@pytest.mark.parametrize("policy_name", sorted(_POLICIES))
@pytest.mark.parametrize("faulty", [False, True], ids=["healthy", "faults"])
def test_day_engine_matches_event_engine_on_default_trace(
    policy_name, faulty
):
    trace = default_trace()
    assert len(trace) == 20000
    faults = _FAULTS if faulty else None
    reference = run_schedule(
        trace,
        Fleet(_SERVERS),
        _POLICIES[policy_name](),
        engine="event",
        faults=faults,
    )
    batched = run_schedule(
        trace,
        Fleet(_SERVERS),
        _POLICIES[policy_name](),
        engine="day",
        faults=faults,
    )
    _outcomes_identical(reference, batched)


class TestDayEngineSmall:
    """Cheap equivalence checks exercising paths the big run may miss."""

    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(config=TraceConfig(num_jobs=600, seed=17))

    def test_model_predicted_durations_resolve_per_day(self, trace):
        """Day mode defers predictor durations to admission time; the
        vectorized batch path must reproduce the event engine's floats
        exactly."""
        reference = run_schedule(
            trace,
            Fleet(8),
            SjfPolicy(),
            predictor=ModelRuntimePredictor(),
            engine="event",
        )
        batched = run_schedule(
            trace,
            Fleet(8),
            SjfPolicy(),
            predictor=ModelRuntimePredictor(),
            engine="day",
        )
        _outcomes_identical(reference, batched)

    def test_explicit_duration_dict(self, trace):
        durations = {job.job_id: 0.5 + (job.job_id % 7) for job in trace}
        reference = run_schedule(
            trace, Fleet(8), FifoPolicy(), durations=durations, engine="event"
        )
        batched = run_schedule(
            trace, Fleet(8), FifoPolicy(), durations=durations, engine="day"
        )
        _outcomes_identical(reference, batched)

    def test_non_preempting_priority_is_screened_identically(self, trace):
        policy = PriorityPolicy(preempt=False)
        assert policy.may_preempt is False
        reference = run_schedule(trace, Fleet(6), policy, engine="event")
        batched = run_schedule(trace, Fleet(6), policy, engine="day")
        _outcomes_identical(reference, batched)

    def test_faults_firing_before_first_arrival(self, trace):
        late = [job for job in trace if job.submit_day >= 2]
        faults = SchedFaults(
            crashes=(CrashSpec(hour=1.0),),
            storms=(StormSpec(start_hour=2.0),),
        )
        reference = run_schedule(
            late, Fleet(6), FifoPolicy(), engine="event", faults=faults
        )
        batched = run_schedule(
            late, Fleet(6), FifoPolicy(), engine="day", faults=faults
        )
        _outcomes_identical(reference, batched)

    def test_rejections_preserve_trace_order(self, trace):
        reference = run_schedule(trace, Fleet(2), FifoPolicy(), engine="event")
        batched = run_schedule(trace, Fleet(2), FifoPolicy(), engine="day")
        assert len(batched.rejected) > 0
        _outcomes_identical(reference, batched)

    def test_on_unplaceable_raise_parity(self, trace):
        with pytest.raises(RuntimeError, match="cannot be placed"):
            run_schedule(
                trace,
                Fleet(2),
                FifoPolicy(),
                engine="day",
                on_unplaceable="raise",
            )

    def test_empty_trace(self):
        for engine in ("day", "event"):
            outcome = run_schedule([], Fleet(2), FifoPolicy(), engine=engine)
            assert outcome.outcomes == []
            assert outcome.rejected == []

    def test_engine_name_is_validated(self):
        with pytest.raises(ValueError, match="engine must be"):
            run_schedule([], Fleet(2), FifoPolicy(), engine="hourly")


class TestMayPreempt:
    def test_bundled_policies_declare_preemption(self):
        assert FifoPolicy().may_preempt is False
        assert SjfPolicy().may_preempt is False
        assert BackfillPolicy().may_preempt is False
        assert PriorityPolicy().may_preempt is True
        assert PriorityPolicy(preempt=False).may_preempt is False

    def test_unknown_policies_are_treated_as_preempting(self):
        class Opaque:
            name = "opaque"

            def select(self, context):  # pragma: no cover - never called
                raise AssertionError

        assert getattr(Opaque(), "may_preempt", True) is True


class TestFeasibilityCaps:
    """The caps must reduce ``fits`` exactly, shape by shape."""

    def test_caps_match_fits_across_occupancies(self):
        from repro.core.architectures import Architecture

        fleet = Fleet(5, gpus_per_server=8)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 7)
        fleet.try_place(Architecture.ALLREDUCE_LOCAL, 8)
        fleet.try_place(Architecture.PS_WORKER, 3)
        largest, with_free, total_free = fleet.feasibility_caps()
        for architecture in Architecture:
            for width in range(1, fleet.total_gpus + 2):
                if architecture.is_local:
                    expected = width <= largest
                elif architecture is Architecture.PS_WORKER:
                    expected = width <= with_free
                else:
                    expected = width <= total_free
                assert fleet.fits(architecture, width) is expected, (
                    architecture,
                    width,
                )


class TestBatchDurations:
    def test_batch_matches_scalar_exactly(self):
        trace = generate_trace(config=TraceConfig(num_jobs=400, seed=23))
        predictor = ModelRuntimePredictor()
        batch = predictor.batch_duration_hours(trace)
        for job in trace:
            assert batch[job.job_id] == predictor.duration_hours(job)

    def test_empty_batch(self):
        assert ModelRuntimePredictor().batch_duration_hours([]) == {}
