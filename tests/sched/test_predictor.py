"""Model-predicted runtimes: determinism, clamping, architecture effects."""

import pytest

from repro.core.architectures import Architecture
from repro.sched import ModelRuntimePredictor
from repro.sched.predictor import sample_durations

from sched_helpers import make_job


class TestValidation:
    def test_median_steps_positive(self):
        with pytest.raises(ValueError):
            ModelRuntimePredictor(median_steps=0.0)

    def test_sigma_non_negative(self):
        with pytest.raises(ValueError):
            ModelRuntimePredictor(sigma=-0.1)

    def test_max_hours_positive(self):
        with pytest.raises(ValueError):
            ModelRuntimePredictor(max_hours=0.0)


class TestPrediction:
    def test_deterministic_per_job_id(self):
        predictor = ModelRuntimePredictor()
        job = make_job(42)
        assert predictor.duration_hours(job) == predictor.duration_hours(job)
        again = ModelRuntimePredictor()
        assert predictor.duration_hours(job) == again.duration_hours(job)

    def test_seed_changes_step_budget(self):
        job = make_job(42)
        first = ModelRuntimePredictor(seed=1).num_steps(job.job_id)
        second = ModelRuntimePredictor(seed=2).num_steps(job.job_id)
        assert first != second

    def test_step_budget_is_architecture_independent(self):
        # The same job id keeps its training work across deployments;
        # only the step *time* changes.  This is what makes the what-if
        # comparison apples-to-apples.
        predictor = ModelRuntimePredictor()
        assert predictor.num_steps(7) == predictor.num_steps(7)

    def test_faster_architecture_predicts_shorter_job(self):
        predictor = ModelRuntimePredictor(max_hours=None)
        heavy_sync = make_job(
            0, Architecture.PS_WORKER, 16, weight_traffic=4e9
        )
        light_sync = make_job(
            0, Architecture.ALLREDUCE_LOCAL, 8, weight_traffic=4e7
        )
        assert predictor.duration_hours(light_sync) < predictor.duration_hours(
            heavy_sync
        )

    def test_clamp(self):
        job = make_job(0, Architecture.PS_WORKER, 16, weight_traffic=1e12)
        clamped = ModelRuntimePredictor(max_hours=1.0)
        assert clamped.duration_hours(job) == 1.0
        unclamped = ModelRuntimePredictor(max_hours=None)
        assert unclamped.duration_hours(job) > 1.0

    def test_durations_keyed_by_job_id(self):
        predictor = ModelRuntimePredictor()
        jobs = [make_job(3), make_job(8)]
        durations = predictor.durations(jobs)
        assert set(durations) == {3, 8}
        assert all(value > 0 for value in durations.values())


class TestSampleDurations:
    def test_matches_legacy_draw(self):
        from repro.sim.multijob import sample_durations as legacy
        jobs = [make_job(i) for i in range(5)]
        assert sample_durations(jobs, seed=3) == legacy(jobs, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_durations([], median_hours=0.0)
