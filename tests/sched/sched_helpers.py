"""Shared job factory for the scheduling-subsystem tests."""

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.trace.schema import JobRecord


def make_job(
    job_id,
    architecture=Architecture.SINGLE,
    num_cnodes=1,
    submit_day=0,
    weight_traffic=1e6,
):
    """One synthetic trace job with the given deployment shape."""
    features = WorkloadFeatures(
        name=f"job-{job_id}",
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=32,
        flop_count=1e9,
        memory_access_bytes=1e6,
        input_bytes=1e3,
        weight_traffic_bytes=(
            0.0 if architecture is Architecture.SINGLE else weight_traffic
        ),
        dense_weight_bytes=1e6,
    )
    return JobRecord(job_id=job_id, features=features, submit_day=submit_day)
