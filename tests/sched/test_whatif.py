"""The fleet-level PS -> AllReduce what-if coupling."""

import pytest

from repro.core.architectures import Architecture
from repro.sched import (
    ModelRuntimePredictor,
    project_trace,
    run_projection_what_if,
)

from sched_helpers import make_job


def ps_heavy_trace():
    """Singles plus PS/Worker jobs that profit from the projection."""
    jobs = [make_job(i, submit_day=i % 2) for i in range(6)]
    jobs += [
        make_job(10 + i, Architecture.PS_WORKER, 12, submit_day=i % 2,
                 weight_traffic=4e9)
        for i in range(4)
    ]
    return jobs


class TestProjectTrace:
    def test_projects_profitable_ps_jobs(self):
        rewritten, considered, projected = project_trace(ps_heavy_trace())
        assert considered == 4
        assert projected == 4
        projected_jobs = [
            j for j in rewritten
            if j.workload_type is Architecture.ALLREDUCE_LOCAL
        ]
        assert len(projected_jobs) == 4
        assert all(j.num_cnodes <= 8 for j in projected_jobs)

    def test_non_ps_jobs_untouched(self):
        trace = ps_heavy_trace()
        rewritten, _, _ = project_trace(trace)
        originals = {j.job_id: j for j in trace}
        for job in rewritten:
            if job.workload_type is not Architecture.ALLREDUCE_LOCAL:
                assert job == originals[job.job_id]

    def test_oversized_model_not_projected(self):
        # dense_weight_bytes is tiny here, so force the memory check via
        # a features tuple whose weights exceed one GPU.
        from dataclasses import replace
        job = make_job(0, Architecture.PS_WORKER, 12)
        big = replace(
            job, features=replace(job.features, dense_weight_bytes=1e12)
        )
        _, considered, projected = project_trace([big])
        assert considered == 1
        assert projected == 0


class TestWhatIf:
    def test_report_structure_and_gains(self):
        trace = ps_heavy_trace()
        report = run_projection_what_if(
            trace,
            num_servers=12,
            predictor=ModelRuntimePredictor(),
        )
        assert report.considered_jobs == 4
        assert report.projected_jobs == 4
        assert len(report.baseline.outcomes) == len(trace)
        assert len(report.projected.outcomes) == len(trace)
        # Faster steps on fewer GPUs: the fleet frees GPU-hours.
        assert report.gpu_hours_saved > 0
        assert report.queueing_delay_reduction >= 0.0

    def test_zero_baseline_delay_guard(self):
        report = run_projection_what_if(
            [make_job(0)], num_servers=4,
            predictor=ModelRuntimePredictor(),
        )
        assert report.queueing_delay_reduction == 0.0
        assert report.completion_time_reduction == pytest.approx(
            1.0
            - report.projected.mean_completion_time_hours
            / report.baseline.mean_completion_time_hours
        )
