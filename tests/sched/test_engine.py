"""The discrete-event engine: mechanics, telemetry and determinism."""

import pytest

from repro.core.architectures import Architecture
from repro.sched import (
    FifoPolicy,
    Fleet,
    PriorityPolicy,
    SjfPolicy,
    run_schedule,
)

from sched_helpers import make_job


class TestMechanics:
    def test_arrival_at_submit_day(self):
        jobs = [make_job(0, submit_day=3)]
        outcome = run_schedule(jobs, Fleet(1), FifoPolicy(), durations={0: 1.0})
        assert outcome.outcomes[0].arrival_hour == 72.0
        assert outcome.outcomes[0].first_start_hour == 72.0

    def test_oversized_job_rejected(self):
        jobs = [make_job(0, Architecture.ALLREDUCE_CLUSTER, 17)]
        outcome = run_schedule(jobs, Fleet(2), FifoPolicy(), durations={0: 1.0})
        assert [job.job_id for job in outcome.rejected] == [0]
        assert outcome.outcomes == []

    def test_unplaceable_shape_rejected_by_default(self):
        # 4 PS workers over 2 servers: fits the GPU count, not the shape.
        jobs = [make_job(0, Architecture.PS_WORKER, 4)]
        outcome = run_schedule(jobs, Fleet(2), FifoPolicy(), durations={0: 1.0})
        assert [job.job_id for job in outcome.rejected] == [0]

    def test_unplaceable_shape_raises_when_asked(self):
        jobs = [make_job(0, Architecture.PS_WORKER, 4)]
        with pytest.raises(RuntimeError):
            run_schedule(
                jobs,
                Fleet(2),
                FifoPolicy(),
                durations={0: 1.0},
                on_unplaceable="raise",
            )

    def test_on_unplaceable_validated(self):
        with pytest.raises(ValueError):
            run_schedule([], Fleet(1), FifoPolicy(), on_unplaceable="ignore")

    def test_outcomes_sorted_by_submission(self):
        jobs = [
            make_job(3, submit_day=0),
            make_job(1, submit_day=1),
            make_job(2, submit_day=0),
        ]
        outcome = run_schedule(
            jobs, Fleet(1), FifoPolicy(), durations={1: 1.0, 2: 1.0, 3: 1.0}
        )
        assert [o.job.job_id for o in outcome.outcomes] == [2, 3, 1]

    def test_policy_name_recorded(self):
        outcome = run_schedule([], Fleet(1), SjfPolicy())
        assert outcome.policy == "sjf"

    def test_default_durations_are_lognormal_draw(self):
        jobs = [make_job(0), make_job(1)]
        first = run_schedule(jobs, Fleet(1), FifoPolicy())
        second = run_schedule(jobs, Fleet(1), FifoPolicy())
        assert [o.service_hours for o in first.outcomes] == [
            o.service_hours for o in second.outcomes
        ]


class TestDeterminism:
    def test_same_inputs_same_schedule(self):
        jobs = [
            make_job(i, Architecture.ALLREDUCE_LOCAL, 2 + i % 6, submit_day=i % 3)
            for i in range(30)
        ]
        for policy in (FifoPolicy(), SjfPolicy(), PriorityPolicy()):
            first = run_schedule(jobs, Fleet(2), policy)
            second = run_schedule(jobs, Fleet(2), policy)
            assert first.outcomes == second.outcomes
            assert first.rejected == second.rejected
            assert first.telemetry == second.telemetry


class TestTelemetry:
    def test_samples_track_fleet_state(self):
        jobs = [
            make_job(0, Architecture.ALLREDUCE_LOCAL, 8),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8),
        ]
        outcome = run_schedule(
            jobs, Fleet(1), FifoPolicy(), durations={0: 2.0, 1: 2.0}
        )
        telemetry = outcome.telemetry
        hours = [sample.hour for sample in telemetry.samples]
        assert hours == [0.0, 2.0, 4.0]
        assert [s.busy_gpus for s in telemetry.samples] == [8, 8, 0]
        assert telemetry.samples[0].queue_depth == 1
        assert telemetry.peak_queue_depth == 1

    def test_active_gpu_hours_integrates_busy_time(self):
        jobs = [
            make_job(0, Architecture.ALLREDUCE_LOCAL, 8),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 4),
        ]
        outcome = run_schedule(
            jobs, Fleet(2), FifoPolicy(), durations={0: 2.0, 1: 3.0}
        )
        assert outcome.telemetry.active_gpu_hours == pytest.approx(
            8 * 2.0 + 4 * 3.0
        )

    def test_energy_proxy(self):
        jobs = [make_job(0, Architecture.ALLREDUCE_LOCAL, 8)]
        outcome = run_schedule(jobs, Fleet(1), FifoPolicy(), durations={0: 10.0})
        assert outcome.telemetry.energy_kwh(gpu_watts=300.0) == pytest.approx(
            8 * 10.0 * 0.3
        )
        with pytest.raises(ValueError):
            outcome.telemetry.energy_kwh(gpu_watts=-1.0)

    def test_telemetry_can_be_disabled(self):
        jobs = [make_job(0)]
        outcome = run_schedule(
            jobs, Fleet(1), FifoPolicy(), durations={0: 1.0},
            collect_telemetry=False,
        )
        assert outcome.telemetry.samples == ()
        # Integration happens regardless of sampling.
        assert outcome.telemetry.active_gpu_hours == pytest.approx(1.0)


class TestOutcomeMetrics:
    def test_queueing_delay_and_slowdown(self):
        jobs = [
            make_job(0, Architecture.ALLREDUCE_LOCAL, 8),
            make_job(1, Architecture.ALLREDUCE_LOCAL, 8),
        ]
        outcome = run_schedule(
            jobs, Fleet(1), FifoPolicy(), durations={0: 2.0, 1: 2.0}
        )
        by_id = {o.job.job_id: o for o in outcome.outcomes}
        assert by_id[1].queueing_delay_hours == pytest.approx(2.0)
        assert by_id[1].completion_time_hours == pytest.approx(4.0)
        assert by_id[1].slowdown == pytest.approx(2.0)
        assert outcome.mean_queueing_delay_hours == pytest.approx(1.0)
        assert outcome.mean_slowdown == pytest.approx(1.5)
        assert outcome.mean_bounded_slowdown(threshold_hours=1.0) == pytest.approx(1.5)

    def test_bounded_slowdown_floors_service(self):
        jobs = [make_job(0, Architecture.ALLREDUCE_LOCAL, 8), make_job(1)]
        outcome = run_schedule(
            jobs, Fleet(1), FifoPolicy(), durations={0: 10.0, 1: 0.01}
        )
        # Raw slowdown for job 1 is 1000x; bounded treats it as >= 1 h.
        assert outcome.mean_slowdown > 100.0
        assert outcome.mean_bounded_slowdown(threshold_hours=1.0) < 10.0
        with pytest.raises(ValueError):
            outcome.mean_bounded_slowdown(threshold_hours=0.0)

    def test_utilization_matches_legacy_definition(self):
        jobs = [make_job(0, Architecture.ALLREDUCE_LOCAL, 8)]
        outcome = run_schedule(jobs, Fleet(2), FifoPolicy(), durations={0: 4.0})
        assert outcome.utilization() == pytest.approx(0.5)
