"""Optimizer state accounting (Table IV footnote)."""

import pytest

from repro.graphs.optimizers import ADAGRAD, ADAM, MOMENTUM, SGD, Optimizer


class TestMultipliers:
    def test_sgd_keeps_only_variables(self):
        assert SGD.state_multiplier == 1

    def test_momentum_doubles(self):
        # ResNet50: 102 MB trainable -> 204 MB at rest (Table IV).
        assert MOMENTUM.state_multiplier == 2
        assert MOMENTUM.at_rest_bytes(102e6) == pytest.approx(204e6)

    def test_adam_triples(self):
        # BERT: ~333 MB dense trainable -> ~1 GB at rest.
        assert ADAM.state_multiplier == 3

    def test_adagrad(self):
        assert ADAGRAD.state_multiplier == 2


class TestValidation:
    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            Optimizer("bad", slots=-1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            SGD.at_rest_bytes(-1.0)
