"""ModelGraph aggregation and transformations."""

import pytest

from repro.graphs.graph import GraphTotals, ModelGraph
from repro.graphs.ops import elementwise_op, embedding_lookup_op, matmul_op
from repro.graphs.optimizers import ADAM, MOMENTUM, SGD


def tiny_graph(optimizer=MOMENTUM):
    forward = (
        matmul_op("fc1", m=1, k=100, n=200, batch=32),
        elementwise_op("relu", 32 * 200),
        embedding_lookup_op("emb", vocab_size=1000, embedding_dim=16,
                            lookups=32 * 4),
    )
    return ModelGraph(
        name="tiny",
        domain="test",
        forward=forward,
        batch_size=32,
        input_bytes_per_sample=400.0,
        embedding_access_bytes=2.0 * 32 * 4 * 16 * 4,
        optimizer=optimizer,
    )


class TestGraphTotals:
    def test_of_splits_by_kind(self):
        graph = tiny_graph()
        totals = GraphTotals.of(graph.forward)
        assert totals.op_count == 3
        assert totals.compute_bound_flops == graph.forward[0].flops
        assert totals.memory_bound_access_bytes == (
            graph.forward[1].memory_access_bytes
            + graph.forward[2].memory_access_bytes
        )


class TestParameters:
    def test_dense_vs_embedding_split(self):
        graph = tiny_graph()
        assert graph.dense_trainable_bytes == graph.forward[0].param_bytes
        assert graph.embedding_trainable_bytes == 1000 * 16 * 4

    def test_optimizer_multiplier(self):
        momentum = tiny_graph(MOMENTUM)
        sgd = tiny_graph(SGD)
        adam = tiny_graph(ADAM)
        assert momentum.dense_weight_bytes == 2 * sgd.dense_weight_bytes
        assert adam.dense_weight_bytes == 3 * sgd.dense_weight_bytes

    def test_weight_bytes_sums(self):
        graph = tiny_graph()
        assert graph.weight_bytes == (
            graph.dense_weight_bytes + graph.embedding_weight_bytes
        )

    def test_extra_dense_params(self):
        import dataclasses

        graph = dataclasses.replace(tiny_graph(), extra_dense_param_bytes=1e6)
        assert graph.dense_trainable_bytes == pytest.approx(
            tiny_graph().dense_trainable_bytes + 1e6
        )


class TestTrainingStep:
    def test_training_step_appends_backward(self):
        graph = tiny_graph()
        assert len(graph.training_step) == 2 * len(graph.forward)

    def test_flop_count_is_3x_forward(self):
        graph = tiny_graph()
        assert graph.flop_count == pytest.approx(
            3 * graph.forward_totals.compute_bound_flops
        )

    def test_input_bytes(self):
        assert tiny_graph().input_bytes == 32 * 400.0


class TestTransformations:
    def test_with_forward_replaces_ops(self):
        graph = tiny_graph()
        new = graph.with_forward(graph.forward[:1])
        assert len(new.forward) == 1
        assert len(graph.forward) == 3

    def test_with_batch_size_scales_linearly(self):
        graph = tiny_graph()
        doubled = graph.with_batch_size(64)
        assert doubled.flop_count == pytest.approx(2 * graph.flop_count)
        assert doubled.memory_access_bytes == pytest.approx(
            2 * graph.memory_access_bytes
        )
        assert doubled.input_bytes == pytest.approx(2 * graph.input_bytes)
        assert doubled.embedding_access_bytes == pytest.approx(
            2 * graph.embedding_access_bytes
        )

    def test_with_batch_size_keeps_params(self):
        graph = tiny_graph()
        assert graph.with_batch_size(64).weight_bytes == graph.weight_bytes

    def test_with_batch_size_rejects_zero(self):
        with pytest.raises(ValueError):
            tiny_graph().with_batch_size(0)

    def test_summary_keys(self):
        summary = tiny_graph().summary()
        assert summary["name"] == "tiny"
        assert summary["op_count"] == 3


class TestValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            ModelGraph(
                name="empty",
                domain="test",
                forward=(),
                batch_size=1,
                input_bytes_per_sample=0.0,
            )

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            ModelGraph(
                name="bad",
                domain="test",
                forward=(matmul_op("m", 1, 1, 1),),
                batch_size=1,
                input_bytes_per_sample=-1.0,
            )
