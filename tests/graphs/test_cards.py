"""Model cards and layer-group aggregation."""

import pytest

from repro.graphs.cards import group_stats, render_model_card


class TestGroupStats:
    def test_groups_by_prefix(self, case_studies):
        stats = group_stats(case_studies["BERT"], depth=1)
        groups = [s.group for s in stats]
        assert "encoder" in groups
        assert "embeddings" in groups

    def test_depth_two_splits_layers(self, case_studies):
        stats = group_stats(case_studies["BERT"], depth=2)
        layer_groups = [s.group for s in stats if s.group.startswith("encoder/")]
        assert len(layer_groups) == 12

    def test_totals_preserved(self, case_studies):
        graph = case_studies["ResNet50"]
        stats = group_stats(graph, depth=1)
        assert sum(s.flops for s in stats) == pytest.approx(
            graph.forward_totals.flops
        )
        assert sum(s.param_bytes for s in stats) == pytest.approx(
            sum(op.param_bytes for op in graph.forward)
        )
        assert sum(s.op_count for s in stats) == len(graph.forward)

    def test_depth_validation(self, case_studies):
        with pytest.raises(ValueError):
            group_stats(case_studies["BERT"], depth=0)


class TestRenderModelCard:
    def test_contains_headline_numbers(self, case_studies):
        card = render_model_card(case_studies["BERT"])
        assert "BERT" in card
        assert "adam" in card
        assert "GFLOPs" in card
        assert "top layer groups by parameters" in card

    def test_every_case_study_renders(self, case_studies):
        for graph in case_studies.values():
            card = render_model_card(graph, depth=2)
            assert graph.name in card
            assert len(card.splitlines()) > 8

    def test_top_limit(self, case_studies):
        short = render_model_card(case_studies["BERT"], depth=2, top=2)
        long = render_model_card(case_studies["BERT"], depth=2, top=10)
        assert len(long.splitlines()) > len(short.splitlines())
