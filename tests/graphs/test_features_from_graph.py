"""Graph -> deployment -> analytical features bridge."""

import pytest

from repro.core.architectures import Architecture
from repro.graphs import Deployment, features_for, ring_sync_bytes, sync_traffic
from repro.graphs.graph import ModelGraph
from repro.graphs.ops import elementwise_op, embedding_lookup_op, matmul_op
from repro.graphs.optimizers import SGD


def graph_with(dense_param_bytes=100e6, embedding_access=40e6):
    forward = (
        matmul_op("fc", m=1, k=100, n=100, batch=8,
                  param_bytes=dense_param_bytes),
        elementwise_op("relu", 800),
        embedding_lookup_op("emb", vocab_size=10000, embedding_dim=64,
                            lookups=800),
    )
    return ModelGraph(
        name="toy",
        domain="test",
        forward=forward,
        batch_size=8,
        input_bytes_per_sample=1000.0,
        embedding_access_bytes=embedding_access,
        optimizer=SGD,
    )


class TestRingSyncBytes:
    def test_single_node_moves_nothing(self):
        assert ring_sync_bytes(100.0, 1) == 0.0

    def test_formula(self):
        # 2 phases x 2 directions x (n-1)/n x S.
        assert ring_sync_bytes(8.0, 8) == pytest.approx(4 * 7 / 8 * 8.0)

    def test_resnet_reference_volume(self, case_studies):
        # The Table V 357 MB figure: 4 * 7/8 * 102 MB of trainables.
        graph = case_studies["ResNet50"]
        assert ring_sync_bytes(
            graph.dense_trainable_bytes, 8
        ) == pytest.approx(357e6, rel=0.02)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            ring_sync_bytes(1.0, 0)


class TestSyncTraffic:
    def test_single_has_none(self):
        total, embedding = sync_traffic(
            graph_with(), Deployment(Architecture.SINGLE, 1)
        )
        assert total == 0.0 and embedding == 0.0

    def test_ps_is_pull_plus_push_plus_sparse(self):
        graph = graph_with(dense_param_bytes=100e6, embedding_access=40e6)
        total, embedding = sync_traffic(
            graph, Deployment(Architecture.PS_WORKER, 4)
        )
        assert total == pytest.approx(2 * 100e6 + 40e6)
        assert embedding == 0.0

    def test_allreduce_rings_dense(self):
        graph = graph_with()
        total, _ = sync_traffic(
            graph, Deployment(Architecture.ALLREDUCE_LOCAL, 8)
        )
        assert total == pytest.approx(4 * 7 / 8 * 100e6 + 40e6)

    def test_pearl_flags_embedding_part(self):
        graph = graph_with()
        total, embedding = sync_traffic(
            graph, Deployment(Architecture.PEARL, 8)
        )
        assert embedding == pytest.approx(40e6)
        assert total > embedding

    def test_embedding_sync_dense_folds_table(self):
        graph = graph_with()
        dense_mode = Deployment(
            Architecture.ALLREDUCE_LOCAL, 8, embedding_sync_dense=True
        )
        total, _ = sync_traffic(graph, dense_mode)
        combined = 100e6 + graph.embedding_trainable_bytes
        assert total == pytest.approx(4 * 7 / 8 * combined)


class TestFeaturesFor:
    def test_fields_carry_over(self):
        graph = graph_with()
        features = features_for(graph, Deployment(Architecture.PS_WORKER, 4))
        assert features.name == "toy"
        assert features.num_cnodes == 4
        assert features.flop_count == graph.flop_count
        assert features.memory_access_bytes == graph.memory_access_bytes
        assert features.input_bytes == graph.input_bytes
        assert features.dense_weight_bytes == graph.dense_weight_bytes

    def test_features_valid_for_every_architecture(self):
        graph = graph_with()
        for arch, n in [
            (Architecture.SINGLE, 1),
            (Architecture.LOCAL_CENTRALIZED, 4),
            (Architecture.PS_WORKER, 16),
            (Architecture.ALLREDUCE_LOCAL, 8),
            (Architecture.ALLREDUCE_CLUSTER, 16),
            (Architecture.PEARL, 8),
        ]:
            features = features_for(graph, Deployment(arch, n))
            assert features.architecture is arch

    def test_deployment_validation(self):
        with pytest.raises(ValueError):
            Deployment(Architecture.PS_WORKER, 0)
