"""Deep structural checks on the six case-study builders.

Beyond the Table IV/V totals, verify that each model's internal shape
is the architecture it claims to be: stage/layer structure, parameter
placement, spatial/sequence dimensions.
"""

import pytest

from repro.graphs.ops import FP32_BYTES, OpKind


def ops_named(graph, prefix):
    return [op for op in graph.forward if op.name.startswith(prefix)]


class TestResNet50Structure:
    def test_stage_block_counts(self, case_studies):
        graph = case_studies["ResNet50"]
        for stage, blocks in ((1, 3), (2, 4), (3, 6), (4, 3)):
            block_names = {
                op.name.split("/")[1]
                for op in ops_named(graph, f"stage{stage}/")
            }
            assert len(block_names) == blocks, f"stage{stage}"

    def test_bottleneck_shape(self, case_studies):
        graph = case_studies["ResNet50"]
        block = ops_named(graph, "stage1/block1/")
        conv_names = [op.name for op in block if op.name.endswith("/conv")]
        # 1x1 reduce, 3x3, 1x1 expand, projection shortcut.
        assert len(conv_names) == 4

    def test_channel_progression(self, case_studies):
        graph = case_studies["ResNet50"]
        # The expand conv of the last stage produces 2048 channels:
        # its parameters are 1x1 x 512 x 2048 (+bias).
        expand = next(
            op for op in graph.forward if op.name == "stage4/block3/c/conv"
        )
        assert expand.param_bytes == (512 * 2048 + 2048) * FP32_BYTES

    def test_stem_downsamples(self, case_studies):
        graph = case_studies["ResNet50"]
        stem = next(op for op in graph.forward if op.name == "stem/conv")
        # 7x7x3x64 kernel.
        assert stem.param_bytes == (49 * 3 * 64 + 64) * FP32_BYTES

    def test_classifier_is_1000_way(self, case_studies):
        graph = case_studies["ResNet50"]
        head = next(
            op for op in graph.forward if op.name == "head/classifier"
        )
        assert head.param_bytes == (2048 * 1000 + 1000) * FP32_BYTES

    def test_every_conv_has_bn(self, case_studies):
        graph = case_studies["ResNet50"]
        convs = {op.name[:-5] for op in graph.forward if op.name.endswith("/conv")}
        bns = {op.name[:-3] for op in graph.forward if op.name.endswith("/bn")}
        assert convs == bns


class TestTransformerStructure:
    @pytest.mark.parametrize("model", ["BERT", "NMT"])
    def test_attention_has_five_ops(self, case_studies, model):
        graph = case_studies[model]
        prefix = (
            "encoder/layer0/self_attn/"
            if model == "BERT"
            else "encoder/layer0/self_attn/"
        )
        names = {op.name.split("/")[-1] for op in ops_named(graph, prefix)}
        assert {"qkv", "scores", "softmax", "context", "out_proj"} <= names

    def test_bert_layer_parameter_formula(self, case_studies):
        graph = case_studies["BERT"]
        layer_ops = ops_named(graph, "encoder/layer0/")
        params = sum(op.param_bytes for op in layer_ops)
        d, ffn = 768, 3072
        # qkv 3d^2 + out d^2 + 2 FFN matrices + biases + 2 LayerNorms.
        expected = (
            (4 * d * d) + (d * ffn + ffn) + (ffn * d + d) + 2 * (2 * d)
        ) * FP32_BYTES
        assert params == pytest.approx(expected)

    def test_bert_logits_tied_to_embeddings(self, case_studies):
        graph = case_studies["BERT"]
        logits = next(op for op in graph.forward if op.name == "mlm/logits")
        assert logits.param_bytes == 0.0  # tied: no extra parameters

    def test_nmt_decoder_has_cross_attention(self, case_studies):
        graph = case_studies["NMT"]
        for layer in range(6):
            assert ops_named(graph, f"decoder/layer{layer}/cross_attn/")

    def test_nmt_embeddings_are_two_tables(self, case_studies):
        graph = case_studies["NMT"]
        tables = [op for op in graph.forward if op.is_embedding]
        assert len(tables) == 2
        assert all(
            op.param_bytes == 65536 * 768 * FP32_BYTES for op in tables
        )

    def test_attention_scores_scale_with_seq_squared(self, case_studies):
        graph = case_studies["BERT"]
        scores = next(
            op
            for op in graph.forward
            if op.name == "encoder/layer0/self_attn/scores"
        )
        # 2 * batch * seq * d * seq FLOPs.
        assert scores.flops == pytest.approx(2 * 12 * 256 * 768 * 256)


class TestSpeechStructure:
    def test_lstm_gate_widths(self, case_studies):
        graph = case_studies["Speech"]
        first_gate = next(
            op for op in graph.forward if op.name == "lstm/layer0/gates"
        )
        # 4 * hidden gates over (input 640 + hidden 1024).
        assert first_gate.param_bytes == (
            (640 + 1024) * 4096 + 4096
        ) * FP32_BYTES

    def test_recurrent_layers_use_hidden_input(self, case_studies):
        graph = case_studies["Speech"]
        later_gate = next(
            op for op in graph.forward if op.name == "lstm/layer3/gates"
        )
        assert later_gate.param_bytes == (
            (1024 + 1024) * 4096 + 4096
        ) * FP32_BYTES

    def test_layernorm_per_lstm_layer(self, case_studies):
        graph = case_studies["Speech"]
        norms = [op for op in graph.forward if "layernorm" in op.name]
        assert len(norms) == 5

    def test_ctc_head_vocab(self, case_studies):
        graph = case_studies["Speech"]
        logits = next(
            op for op in graph.forward if op.name == "head/logits/matmul"
        )
        assert logits.param_bytes == (1024 * 12000 + 12000) * FP32_BYTES


class TestRecommenderStructure:
    def test_multi_interests_embedding_shape(self, case_studies):
        graph = case_studies["Multi-Interests"]
        table = next(op for op in graph.forward if op.is_embedding)
        assert table.param_bytes == 467_500_000 * 64 * FP32_BYTES

    def test_multi_interests_lookups_match_sequence(self, case_studies):
        graph = case_studies["Multi-Interests"]
        table = next(op for op in graph.forward if op.is_embedding)
        # 2 passes x batch x seq x dim x 4 bytes.
        assert table.memory_access_bytes == pytest.approx(
            2 * 2048 * 115 * 64 * FP32_BYTES
        )

    def test_gcn_fanout_structure(self, case_studies):
        from repro.graphs.builders.gcn import _MEMORY_AMPLIFICATION

        graph = case_studies["GCN"]
        table = next(op for op in graph.forward if op.is_embedding)
        # 5210 sampled nodes per seed item (10 + 200 + 5000), scaled by
        # the builder's Table V memory calibration.
        assert table.memory_access_bytes == pytest.approx(
            2 * 512 * 5210 * 128 * FP32_BYTES * _MEMORY_AMPLIFICATION
        )

    def test_gcn_hop_transforms_share_width(self, case_studies):
        graph = case_studies["GCN"]
        for hop in range(3):
            transform = next(
                op
                for op in graph.forward
                if op.name == f"gcn/hop{hop}/transform"
            )
            assert transform.param_bytes == 128 * 128 * FP32_BYTES

    def test_gcn_tower_is_deep(self, case_studies):
        graph = case_studies["GCN"]
        tower = [op for op in ops_named(graph, "tower/") if op.matmul_like]
        assert len(tower) == 4  # three hidden layers + similarity head


class TestOpKindBalance:
    @pytest.mark.parametrize(
        "model", ["ResNet50", "NMT", "BERT", "Speech", "Multi-Interests", "GCN"]
    )
    def test_both_kinds_present(self, case_studies, model):
        kinds = {op.kind for op in case_studies[model].forward}
        assert kinds == {OpKind.COMPUTE_BOUND, OpKind.MEMORY_BOUND}

    @pytest.mark.parametrize(
        "model,compute_heavier",
        [("ResNet50", True), ("Multi-Interests", False)],
    )
    def test_flops_vs_memory_profile(self, case_studies, model, compute_heavier):
        """CV models are compute-dominant; recommenders memory-dominant
        (the Sec. VI-A2 observation about XLA's applicability)."""
        graph = case_studies[model]
        compute_time_proxy = graph.flop_count / 15e12
        memory_time_proxy = graph.memory_access_bytes / 0.9e12
        if compute_heavier:
            assert compute_time_proxy > memory_time_proxy
        else:
            assert memory_time_proxy > compute_time_proxy
