"""The ResNet depth family validates the convolution substrate."""

import pytest

from repro.graphs.builders.resnet import RESNET_CONFIGS, build_resnet

#: Published trainable-parameter counts (torchvision, including BN
#: affine parameters and the 1000-way head).
REFERENCE_PARAMS = {
    18: 11.69e6,
    34: 21.80e6,
    50: 25.56e6,
    101: 44.55e6,
    152: 60.19e6,
}


@pytest.mark.parametrize("depth", sorted(RESNET_CONFIGS))
class TestParameterCounts:
    def test_matches_published_counts(self, depth):
        graph = build_resnet(depth)
        params = graph.dense_trainable_bytes / 4
        assert params == pytest.approx(REFERENCE_PARAMS[depth], rel=0.005)


class TestFamilyShape:
    def test_flops_grow_with_depth(self):
        flops = [build_resnet(d).flop_count for d in (18, 34, 50, 101, 152)]
        assert flops == sorted(flops)

    def test_basic_vs_bottleneck_blocks(self):
        shallow = build_resnet(18)
        deep = build_resnet(50)
        # Basic blocks have two 3x3 convs (a, b); bottlenecks three.
        shallow_block = [
            op.name for op in shallow.forward
            if op.name.startswith("stage1/block1/") and op.name.endswith("/conv")
        ]
        deep_block = [
            op.name for op in deep.forward
            if op.name.startswith("stage1/block1/") and op.name.endswith("/conv")
        ]
        assert len(shallow_block) == 2
        assert len(deep_block) == 4  # 3 + projection shortcut

    def test_final_width(self):
        assert build_resnet(18).forward[-2].param_bytes == (512 * 1000 + 1000) * 4
        assert build_resnet(50).forward[-2].param_bytes == (2048 * 1000 + 1000) * 4

    def test_unsupported_depth(self):
        with pytest.raises(ValueError):
            build_resnet(42)

    def test_names(self):
        assert build_resnet(101).name == "ResNet101"
        assert build_resnet(50).name == "ResNet50"

    def test_resnet50_wrapper_unchanged(self, case_studies):
        assert build_resnet(50).summary() == case_studies["ResNet50"].summary()
