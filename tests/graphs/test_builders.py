"""The six case-study builders must match Tables IV and V."""

import pytest

from repro.analysis.paper_constants import TABLE_IV, TABLE_V
from repro.core.architectures import Architecture
from repro.graphs import (
    Deployment,
    build_multi_interests,
    case_study_deployments,
    sync_traffic,
)

#: Acceptance band for the calibrated builders; FLOPs/weights/traffic
#: derive from layer shapes, so deviations reflect modeling choices.
RELATIVE_TOLERANCE = 0.15

MODELS = ["Multi-Interests", "ResNet50", "NMT", "BERT", "Speech", "GCN"]


@pytest.mark.parametrize("name", MODELS)
class TestTableIV:
    def test_dense_weights(self, case_studies, name):
        graph = case_studies[name]
        paper = TABLE_IV[name]["dense"]
        assert graph.dense_weight_bytes == pytest.approx(
            paper, rel=RELATIVE_TOLERANCE
        )

    def test_embedding_weights(self, case_studies, name):
        graph = case_studies[name]
        paper = TABLE_IV[name]["embedding"]
        if paper == 0:
            assert graph.embedding_weight_bytes == 0
        else:
            assert graph.embedding_weight_bytes == pytest.approx(
                paper, rel=RELATIVE_TOLERANCE
            )

    def test_domain(self, case_studies, name):
        assert case_studies[name].domain == TABLE_IV[name]["domain"]


@pytest.mark.parametrize("name", MODELS)
class TestTableV:
    def test_batch_size(self, case_studies, name):
        assert case_studies[name].batch_size == TABLE_V[name]["batch_size"]

    def test_flop_count(self, case_studies, name):
        assert case_studies[name].flop_count == pytest.approx(
            TABLE_V[name]["flop_count"], rel=RELATIVE_TOLERANCE
        )

    def test_memory_access(self, case_studies, name):
        assert case_studies[name].memory_access_bytes == pytest.approx(
            TABLE_V[name]["memory_access"], rel=RELATIVE_TOLERANCE
        )

    def test_pcie_copy(self, case_studies, name):
        assert case_studies[name].input_bytes == pytest.approx(
            TABLE_V[name]["pcie_copy"], rel=RELATIVE_TOLERANCE
        )

    def test_network_traffic(self, case_studies, deployments, name):
        graph = case_studies[name]
        deployment = deployments[name]
        if deployment.architecture is Architecture.SINGLE:
            # Table V reports the reference ring volume at n=8 for the
            # 1w1g Speech model.
            deployment = Deployment(Architecture.ALLREDUCE_LOCAL, 8)
        traffic, _ = sync_traffic(graph, deployment)
        assert traffic == pytest.approx(
            TABLE_V[name]["network_traffic"], rel=RELATIVE_TOLERANCE
        )


class TestDeployments:
    def test_architectures_match_table_iv(self, deployments):
        assert deployments["ResNet50"].architecture is Architecture.ALLREDUCE_LOCAL
        assert deployments["Speech"].architecture is Architecture.SINGLE
        assert deployments["Multi-Interests"].architecture is Architecture.PS_WORKER
        assert deployments["GCN"].architecture is Architecture.PEARL

    def test_bert_embeddings_sync_dense(self, deployments):
        assert deployments["BERT"].embedding_sync_dense
        assert not deployments["NMT"].embedding_sync_dense


class TestStructure:
    def test_resnet_has_53_convolutions(self, case_studies):
        convs = [
            op for op in case_studies["ResNet50"].forward
            if op.name.endswith("/conv")
        ]
        assert len(convs) == 53  # 1 stem + 52 in blocks (incl. shortcuts)

    def test_bert_has_12_encoder_layers(self, case_studies):
        layers = {
            op.name.split("/")[1]
            for op in case_studies["BERT"].forward
            if op.name.startswith("encoder/")
        }
        assert len(layers) == 12

    def test_nmt_has_encoder_and_decoder(self, case_studies):
        names = [op.name for op in case_studies["NMT"].forward]
        assert any(n.startswith("encoder/") for n in names)
        assert any(n.startswith("decoder/") for n in names)
        assert any("cross_attn" in n for n in names)

    def test_speech_has_lstm_stack_with_layernorm(self, case_studies):
        names = [op.name for op in case_studies["Speech"].forward]
        assert sum(1 for n in names if n.endswith("/gates")) == 5
        assert any("layernorm" in n for n in names)
        assert any(n.startswith("frontend/conv") for n in names)

    def test_gcn_three_hops(self, case_studies):
        names = [op.name for op in case_studies["GCN"].forward]
        for hop in range(3):
            assert any(n.startswith(f"gcn/hop{hop}/") for n in names)

    def test_recommendation_models_have_embeddings(self, case_studies):
        for name in ("Multi-Interests", "GCN"):
            assert case_studies[name].embedding_weight_bytes > 1e9

    def test_cv_and_speech_have_no_embeddings(self, case_studies):
        for name in ("ResNet50", "Speech"):
            assert case_studies[name].embedding_weight_bytes == 0


class TestMultiInterestsKnobs:
    def test_attention_layers_add_compute(self):
        two = build_multi_interests(attention_layers=2)
        six = build_multi_interests(attention_layers=6)
        assert six.flop_count > two.flop_count

    def test_batch_scales_step_cost(self):
        small = build_multi_interests(batch_size=1024)
        large = build_multi_interests(batch_size=8192)
        assert large.flop_count == pytest.approx(8 * small.flop_count, rel=0.01)
        assert large.weight_bytes == small.weight_bytes
