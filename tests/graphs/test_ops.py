"""Op primitives: shape math and backward synthesis."""

import pytest

from repro.graphs.ops import (
    FP32_BYTES,
    Op,
    OpKind,
    activation_op,
    backward_ops,
    batchnorm_op,
    conv2d_op,
    conv2d_output_hw,
    elementwise_op,
    embedding_lookup_op,
    layernorm_op,
    lstm_layer_ops,
    matmul_op,
    pooling_op,
    softmax_op,
)


class TestMatmul:
    def test_flops(self):
        op = matmul_op("mm", m=4, k=8, n=16, batch=2)
        assert op.flops == 2 * 4 * 8 * 16 * 2
        assert op.kind is OpKind.COMPUTE_BOUND
        assert op.matmul_like

    def test_default_params_are_weight_matrix(self):
        op = matmul_op("mm", m=4, k=8, n=16)
        assert op.param_bytes == 8 * 16 * FP32_BYTES

    def test_explicit_zero_params(self):
        op = matmul_op("scores", m=4, k=8, n=16, param_bytes=0.0)
        assert op.param_bytes == 0.0


class TestConv2d:
    def test_output_shape_same_padding(self):
        assert conv2d_output_hw(224, 224, 7, 2) == (112, 112)
        assert conv2d_output_hw(14, 14, 3, 1) == (14, 14)

    def test_output_shape_valid_padding(self):
        assert conv2d_output_hw(224, 224, 7, 2, padding="valid") == (109, 109)

    def test_unknown_padding(self):
        with pytest.raises(ValueError):
            conv2d_output_hw(8, 8, 3, 1, padding="circular")

    def test_flops_count_macs_twice(self):
        op = conv2d_op("c", batch=1, height=8, width=8, in_channels=4,
                       out_channels=16, kernel=3)
        assert op.flops == 2 * 8 * 8 * 16 * 4 * 9

    def test_params_include_bias(self):
        op = conv2d_op("c", batch=1, height=8, width=8, in_channels=4,
                       out_channels=16, kernel=3)
        assert op.param_bytes == (9 * 4 * 16 + 16) * FP32_BYTES

    def test_stride_reduces_flops(self):
        dense = conv2d_op("c", 1, 16, 16, 4, 8, 3, stride=1)
        strided = conv2d_op("c", 1, 16, 16, 4, 8, 3, stride=2)
        assert strided.flops == pytest.approx(dense.flops / 4)


class TestElementwise:
    def test_access_counts_reads_and_writes(self):
        op = elementwise_op("ew", elements=100, reads=2, writes=1)
        assert op.memory_access_bytes == 100 * 3 * FP32_BYTES
        assert op.kind is OpKind.MEMORY_BOUND
        assert op.fusible

    def test_variants(self):
        assert activation_op("a", 10).memory_access_bytes == 10 * 2 * FP32_BYTES
        assert batchnorm_op("b", 10, 4).param_bytes == 8 * FP32_BYTES
        assert layernorm_op("l", 10, 4).param_bytes == 8 * FP32_BYTES
        assert softmax_op("s", 10).memory_access_bytes == 10 * 3 * FP32_BYTES

    def test_pooling(self):
        op = pooling_op("p", input_elements=100, output_elements=25)
        assert op.memory_access_bytes == 125 * FP32_BYTES


class TestEmbedding:
    def test_only_accessed_rows_touch_memory(self):
        op = embedding_lookup_op("e", vocab_size=1000000, embedding_dim=64,
                                 lookups=50)
        assert op.param_bytes == 1000000 * 64 * FP32_BYTES
        assert op.memory_access_bytes == 2 * 50 * 64 * FP32_BYTES
        assert op.is_embedding
        assert not op.fusible

    def test_embedding_without_params_rejected(self):
        with pytest.raises(ValueError):
            Op("bad", OpKind.MEMORY_BOUND, 0.0, 1.0, param_bytes=0.0,
               is_embedding=True)


class TestLstm:
    def test_two_ops_per_layer(self):
        ops = lstm_layer_ops("lstm", batch=2, seq_len=10, input_size=8,
                             hidden_size=16)
        assert len(ops) == 2
        gate, cell = ops
        assert gate.kind is OpKind.COMPUTE_BOUND
        assert cell.kind is OpKind.MEMORY_BOUND

    def test_gate_params(self):
        gate = lstm_layer_ops("lstm", 1, 1, 8, 16)[0]
        assert gate.param_bytes == ((8 + 16) * 64 + 64) * FP32_BYTES


class TestValidation:
    def test_negative_flops(self):
        with pytest.raises(ValueError):
            Op("bad", OpKind.COMPUTE_BOUND, -1.0, 0.0)

    def test_negative_access(self):
        with pytest.raises(ValueError):
            Op("bad", OpKind.MEMORY_BOUND, 0.0, -1.0)

    def test_unfused_factor_below_one(self):
        with pytest.raises(ValueError):
            Op("bad", OpKind.MEMORY_BOUND, 0.0, 1.0, unfused_factor=0.5)

    def test_scaled(self):
        op = elementwise_op("ew", 100)
        doubled = op.scaled(memory_factor=2.0)
        assert doubled.memory_access_bytes == 2 * op.memory_access_bytes


class TestBackward:
    def test_compute_backward_doubles_flops(self):
        forward = [matmul_op("mm", 4, 4, 4)]
        grads = backward_ops(forward)
        assert len(grads) == 1
        assert grads[0].flops == 2 * forward[0].flops
        assert grads[0].is_backward

    def test_memory_backward_factor(self):
        forward = [elementwise_op("ew", 100)]
        grads = backward_ops(forward)
        assert grads[0].memory_access_bytes == pytest.approx(
            1.5 * forward[0].memory_access_bytes
        )

    def test_backward_carries_no_params(self):
        grads = backward_ops([matmul_op("mm", 4, 4, 4)])
        assert grads[0].param_bytes == 0.0

    def test_backward_propagates_fusion_metadata(self):
        from dataclasses import replace

        forward = [replace(elementwise_op("ew", 100), unfused_factor=3.0)]
        grads = backward_ops(forward)
        assert grads[0].unfused_factor == 3.0
        assert grads[0].fusible
