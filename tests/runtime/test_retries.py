"""Opt-in failed-experiment retries in ``run_suite``."""

import pytest

from repro.analysis.result import ExperimentResult
from repro.runtime import ResultCache, failed_ids, run_suite


def _toy_registry(monkeypatch, experiments):
    import repro.analysis.registry as registry_module

    monkeypatch.setattr(registry_module, "EXPERIMENTS", experiments)


def _toy(experiment_id, value):
    return ExperimentResult(
        experiment=experiment_id, title="toy", rows=[{"v": value}]
    )


def _flaky(experiment_id, failures, calls):
    """An experiment that fails its first ``failures`` calls."""

    def run():
        calls.append(experiment_id)
        if calls.count(experiment_id) <= failures:
            raise RuntimeError(f"transient failure in {experiment_id}")
        return _toy(experiment_id, 1)

    return run


class TestRetries:
    def test_default_is_no_retry(self, monkeypatch):
        calls = []
        _toy_registry(monkeypatch, {"flaky": _flaky("flaky", 1, calls)})
        outcomes = run_suite(["flaky"], jobs=1)
        assert failed_ids(outcomes) == ["flaky"]
        assert calls == ["flaky"]
        assert outcomes[0].retries == 0

    def test_retry_recovers_transient_failure(self, monkeypatch):
        calls = []
        _toy_registry(monkeypatch, {"flaky": _flaky("flaky", 1, calls)})
        outcomes = run_suite(["flaky"], jobs=1, retries=1)
        assert outcomes[0].ok
        assert outcomes[0].retries == 1
        assert calls == ["flaky", "flaky"]

    def test_budget_is_bounded(self, monkeypatch):
        calls = []
        _toy_registry(monkeypatch, {"flaky": _flaky("flaky", 10, calls)})
        outcomes = run_suite(["flaky"], jobs=1, retries=2)
        assert failed_ids(outcomes) == ["flaky"]
        assert outcomes[0].retries == 2
        assert len(calls) == 3  # initial attempt + 2 retries

    def test_only_failures_are_retried(self, monkeypatch):
        calls = []
        _toy_registry(
            monkeypatch,
            {
                "steady": _flaky("steady", 0, calls),
                "flaky": _flaky("flaky", 1, calls),
            },
        )
        outcomes = run_suite(["steady", "flaky"], jobs=1, retries=1)
        assert [o.experiment_id for o in outcomes] == ["steady", "flaky"]
        assert all(o.ok for o in outcomes)
        assert outcomes[0].retries == 0
        assert outcomes[1].retries == 1
        assert calls.count("steady") == 1
        assert calls.count("flaky") == 2

    def test_recovered_result_is_cached(self, monkeypatch, tmp_path):
        calls = []
        _toy_registry(monkeypatch, {"flaky": _flaky("flaky", 1, calls)})
        cache = ResultCache(tmp_path)
        first = run_suite(["flaky"], jobs=1, cache=cache, retries=1)
        second = run_suite(["flaky"], jobs=1, cache=cache, retries=1)
        assert first[0].ok and not first[0].cached
        assert second[0].ok and second[0].cached
        assert calls.count("flaky") == 2  # never re-run after recovery

    def test_retry_emits_obs_events(self, monkeypatch):
        from repro.obs import MemorySink, get_obs, reset_obs

        reset_obs()
        sink = get_obs().add_sink(MemorySink())
        try:
            calls = []
            _toy_registry(monkeypatch, {"flaky": _flaky("flaky", 1, calls)})
            run_suite(["flaky"], jobs=1, retries=3)
        finally:
            reset_obs()
        events = sink.of_kind("runtime.retry")
        assert len(events) == 1
        assert events[0]["experiment"] == "flaky"
        assert events[0]["attempt"] == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            run_suite(["fig5"], jobs=1, retries=-1)
