"""Configuration fingerprinting for the result cache."""

import dataclasses

import pytest

import repro
from repro.analysis.context import TRACE_JOBS_ENV_VAR, default_trace_config
from repro.core.architectures import Architecture
from repro.core.hardware import pai_default_hardware
from repro.runtime.fingerprint import (
    canonical_json,
    canonical_payload,
    experiment_fingerprint,
    fingerprint,
)
from repro.trace.generator import TraceConfig


class TestCanonicalPayload:
    def test_dataclasses_are_tagged_with_class_name(self):
        payload = canonical_payload(TraceConfig(num_jobs=10, seed=3))
        assert payload["__dataclass__"] == "TraceConfig"
        assert payload["num_jobs"] == 10
        assert payload["seed"] == 3

    def test_enums_hash_by_qualified_name(self):
        assert (
            canonical_payload(Architecture.PS_WORKER)
            == "Architecture.PS_WORKER"
        )

    def test_dict_key_order_is_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json(
            {"b": 2, "a": 1}
        )

    def test_nested_structures_round_trip(self):
        hardware = pai_default_hardware()
        text = canonical_json(hardware)
        assert "GpuSpec" in text
        assert canonical_json(hardware) == text


class TestFingerprint:
    def test_deterministic(self):
        config = TraceConfig(num_jobs=10, seed=3)
        assert fingerprint("x", config) == fingerprint("x", config)

    def test_part_boundaries_matter(self):
        assert fingerprint("ab", "c") != fingerprint("a", "bc")

    def test_any_field_change_changes_the_digest(self):
        base = TraceConfig(num_jobs=10, seed=3)
        for change in ({"num_jobs": 11}, {"seed": 4}):
            assert fingerprint(base) != fingerprint(
                dataclasses.replace(base, **change)
            )


class TestExperimentFingerprint:
    def test_distinct_per_experiment(self):
        assert experiment_fingerprint("fig9") != experiment_fingerprint(
            "fig10"
        )

    def test_trace_size_env_override_participates(self, monkeypatch):
        before = experiment_fingerprint("fig9")
        monkeypatch.setenv(TRACE_JOBS_ENV_VAR, "1234")
        assert experiment_fingerprint("fig9") != before
        monkeypatch.delenv(TRACE_JOBS_ENV_VAR)
        assert experiment_fingerprint("fig9") == before

    def test_explicit_trace_config_overrides_default(self):
        small = experiment_fingerprint(
            "fig9", trace_config=TraceConfig(num_jobs=50, seed=1)
        )
        assert small != experiment_fingerprint("fig9")

    def test_package_version_participates(self, monkeypatch):
        before = experiment_fingerprint("fig9")
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        # The fingerprint module reads the version at import time; patch
        # its binding too, as a release bump would rewrite both.  (The
        # package re-exports a function named ``fingerprint``, shadowing
        # the submodule attribute, so go through sys.modules.)
        import sys

        fp_module = sys.modules["repro.runtime.fingerprint"]
        monkeypatch.setattr(fp_module, "__version__", "0.0.0-test")
        assert experiment_fingerprint("fig9") != before

    def test_default_config_matches_context(self):
        explicit = experiment_fingerprint(
            "fig9",
            trace_config=default_trace_config(),
            hardware=pai_default_hardware(),
        )
        assert explicit == experiment_fingerprint("fig9")
