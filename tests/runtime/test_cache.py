"""The on-disk content-addressed result cache."""

import json

import numpy as np
import pytest

from repro.analysis.result import ExperimentResult, format_value
from repro.runtime.cache import (
    CACHE_DIR_ENV_VAR,
    ResultCache,
    default_cache_dir,
    normalize_result,
    normalize_value,
)


def sample_result():
    return ExperimentResult(
        experiment="figX",
        title="Toy",
        rows=[{"a": 1, "b": 0.5, "ok": True}, {"a": 2, "b": 1.25, "ok": False}],
        notes=["first note"],
    )


KEY = "0" * 64


class TestNormalization:
    def test_native_types_pass_through(self):
        for value in (1, 2.5, "x", True, None):
            assert normalize_value(value) == value
            assert type(normalize_value(value)) is type(value)

    def test_numpy_scalars_become_native(self):
        assert type(normalize_value(np.float64(0.5))) is float
        assert type(normalize_value(np.int64(3))) is int
        assert type(normalize_value(np.bool_(True))) is bool

    def test_numpy_bool_renders_like_native_bool(self):
        # np.bool_ is not a bool subclass: unnormalized it would render
        # "True" where the table renderer writes "yes".
        assert format_value(normalize_value(np.bool_(True))) == "yes"

    def test_other_types_fall_back_to_str(self):
        assert normalize_value(complex(1, 2)) == str(complex(1, 2))

    def test_normalize_result_is_json_safe(self):
        result = ExperimentResult(
            experiment="figX",
            title="Toy",
            rows=[{"n": np.int64(3), "ok": np.bool_(True)}],
        )
        json.dumps(normalize_result(result).rows)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result(), duration_s=0.5)
        loaded = cache.load(KEY)
        assert loaded == sample_result()

    def test_round_trip_preserves_float_bits(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = 0.1 + 0.2  # not exactly representable shortest-repr
        cache.store(
            KEY,
            ExperimentResult("e", "t", rows=[{"v": value}]),
        )
        assert cache.load(KEY).rows[0]["v"] == value

    def test_missing_entry_is_a_miss(self, tmp_path):
        assert ResultCache(tmp_path).load(KEY) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for(KEY).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(KEY).write_text("{ not json")
        assert cache.load(KEY) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        path = cache.path_for(KEY)
        path.write_text(path.read_text()[: 20])
        assert cache.load(KEY) is None

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        # An entry renamed (or copied) to the wrong key must not serve.
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        other = "1" * 64
        cache.path_for(KEY).rename(cache.path_for(other))
        assert cache.load(other) is None

    def test_format_version_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        payload = json.loads(cache.path_for(KEY).read_text())
        payload["format"] = -1
        cache.path_for(KEY).write_text(json.dumps(payload))
        assert cache.load(KEY) is None

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        cache.store("1" * 64, sample_result())
        assert cache.clear() == 2
        assert cache.load(KEY) is None
        assert cache.clear() == 0

    def test_store_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        updated = ExperimentResult("figX", "Toy v2", rows=[])
        cache.store(KEY, updated)
        assert cache.load(KEY).title == "Toy v2"

    def test_discard_removes_one_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        other = "1" * 64
        cache.store(other, sample_result())
        assert cache.discard(KEY) is True
        assert cache.load(KEY) is None
        assert cache.load(other) is not None

    def test_discard_missing_entry_is_false(self, tmp_path):
        assert ResultCache(tmp_path).discard(KEY) is False


class TestTmpFileHygiene:
    """A process dying between temp-file creation and ``os.replace``
    leaves ``*.tmp`` orphans; they must not accumulate forever."""

    @staticmethod
    def _orphan(tmp_path, name="deadbeef.tmp", age_s=0.0):
        orphan = tmp_path / name
        orphan.write_text("{ partial entry")
        if age_s:
            import os as os_module
            import time as time_module

            stale = time_module.time() - age_s
            os_module.utime(orphan, (stale, stale))
        return orphan

    def test_clear_removes_orphaned_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, sample_result())
        orphan = self._orphan(tmp_path)
        assert cache.clear() == 2  # the entry and the orphan
        assert not orphan.exists()
        assert list(tmp_path.iterdir()) == []
        assert cache.clear() == 0

    def test_store_sweeps_stale_orphans(self, tmp_path):
        cache = ResultCache(tmp_path)
        orphan = self._orphan(tmp_path, age_s=7200.0)
        cache.store(KEY, sample_result())
        assert not orphan.exists()
        assert cache.load(KEY) == sample_result()

    def test_store_spares_fresh_tmp_files(self, tmp_path):
        # A young .tmp may be another live writer's in-flight entry.
        cache = ResultCache(tmp_path)
        fresh = self._orphan(tmp_path)
        cache.store(KEY, sample_result())
        assert fresh.exists()

    def test_sweep_tmp_counts_and_ignores_missing_root(self, tmp_path):
        assert ResultCache(tmp_path / "nowhere").sweep_tmp() == 0
        cache = ResultCache(tmp_path)
        self._orphan(tmp_path, "one.tmp")
        self._orphan(tmp_path, "two.tmp")
        assert cache.sweep_tmp() == 2


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV_VAR, str(tmp_path / "cc"))
        assert default_cache_dir() == tmp_path / "cc"

    def test_default_under_home_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV_VAR, raising=False)
        assert default_cache_dir().name == "pai-repro"
