"""Parallel, cached, error-isolated suite execution."""

import multiprocessing
import os

import pytest

from repro.analysis.context import TRACE_JOBS_ENV_VAR, clear_caches
from repro.analysis.registry import EXPERIMENTS
from repro.analysis.report import render_outcomes
from repro.analysis.result import ExperimentResult
from repro.runtime import (
    ExperimentOutcome,
    ResultCache,
    failed_ids,
    run_suite,
    suite_experiment_ids,
)

#: Small trace for suite-level tests; participates in fingerprints, so
#: entries never collide with a full-size run's cache.
SMALL_TRACE = "1500"


@pytest.fixture()
def small_trace(monkeypatch):
    monkeypatch.setenv(TRACE_JOBS_ENV_VAR, SMALL_TRACE)
    yield
    clear_caches()


def _toy_registry(monkeypatch, experiments):
    import repro.analysis.registry as registry_module

    monkeypatch.setattr(registry_module, "EXPERIMENTS", experiments)


def _toy(experiment_id, value):
    return ExperimentResult(
        experiment=experiment_id, title="toy", rows=[{"v": value}]
    )


class TestOutcome:
    def test_requires_exactly_one_of_result_or_error(self):
        with pytest.raises(ValueError):
            ExperimentOutcome("x", None, None, 0.0)
        with pytest.raises(ValueError):
            ExperimentOutcome("x", _toy("x", 1), "boom", 0.0)

    def test_ok(self):
        assert ExperimentOutcome("x", _toy("x", 1), None, 0.0).ok
        assert not ExperimentOutcome("x", None, "boom", 0.0).ok


class TestSuiteIds:
    def test_skips_fig13_panels(self):
        ids = suite_experiment_ids()
        assert "fig13" in ids
        for panel in ("fig13a", "fig13b", "fig13c", "fig13d"):
            assert panel not in ids

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="no-such-experiment"):
            run_suite(["no-such-experiment"])


class TestErrorIsolation:
    def test_failure_is_an_outcome_not_an_exception(self, monkeypatch):
        def broken():
            raise RuntimeError("injected failure")

        _toy_registry(
            monkeypatch,
            {"a": lambda: _toy("a", 1), "broken": broken,
             "b": lambda: _toy("b", 2)},
        )
        outcomes = run_suite(["a", "broken", "b"], jobs=1)
        assert [o.experiment_id for o in outcomes] == ["a", "broken", "b"]
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "injected failure" in outcomes[1].error
        assert "RuntimeError" in outcomes[1].error
        assert failed_ids(outcomes) == ["broken"]

    def test_failures_are_not_cached(self, monkeypatch, tmp_path):
        calls = []

        def flaky():
            calls.append(1)
            raise RuntimeError("still broken")

        _toy_registry(monkeypatch, {"flaky": flaky})
        cache = ResultCache(tmp_path)
        run_suite(["flaky"], jobs=1, cache=cache)
        run_suite(["flaky"], jobs=1, cache=cache)
        assert len(calls) == 2  # re-attempted, never served from cache


class TestCaching:
    def test_second_run_is_served_from_cache(self, monkeypatch, tmp_path):
        calls = []

        def counted():
            calls.append(1)
            return _toy("a", 41)

        _toy_registry(monkeypatch, {"a": counted})
        cache = ResultCache(tmp_path)
        cold = run_suite(["a"], jobs=1, cache=cache)
        warm = run_suite(["a"], jobs=1, cache=cache)
        assert len(calls) == 1
        assert not cold[0].cached
        assert warm[0].cached
        assert warm[0].result == cold[0].result

    def test_no_cache_recomputes(self, monkeypatch):
        calls = []

        def counted():
            calls.append(1)
            return _toy("a", 41)

        _toy_registry(monkeypatch, {"a": counted})
        run_suite(["a"], jobs=1, cache=None)
        run_suite(["a"], jobs=1, cache=None)
        assert len(calls) == 2


needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="hard-crash isolation requires the fork start method",
)


class TestHardCrashIsolation:
    """A worker killed mid-run must not abort the suite (the PR-3
    error-isolation contract extended to ``BrokenProcessPool``)."""

    @needs_fork
    def test_os_exit_worker_fails_only_the_crasher(
        self, small_trace, monkeypatch
    ):
        def crasher():
            os._exit(1)  # simulates an OOM kill / SIGKILL mid-experiment

        experiments = {"a": lambda: _toy("a", 1), "crash": crasher}
        for name in ("b", "c", "d", "e"):
            experiments[name] = (lambda n: lambda: _toy(n, 2))(name)
        _toy_registry(monkeypatch, experiments)

        ids = ["a", "crash", "b", "c", "d", "e"]
        outcomes = run_suite(ids, jobs=2)

        # One outcome per experiment, in request order -- no exception.
        assert [o.experiment_id for o in outcomes] == ids
        assert failed_ids(outcomes) == ["crash"]
        crash = outcomes[1]
        assert "worker process died" in crash.error
        assert "crash" in crash.error
        for outcome in outcomes:
            if outcome.experiment_id != "crash":
                assert outcome.ok
                assert outcome.result.rows

    @needs_fork
    def test_pool_breakage_emits_obs_events(self, small_trace, monkeypatch):
        from repro.obs import MemorySink, get_obs, reset_obs

        reset_obs()
        sink = get_obs().add_sink(MemorySink())
        try:

            def crasher():
                os._exit(1)

            _toy_registry(
                monkeypatch,
                {"ok": lambda: _toy("ok", 1), "crash": crasher},
            )
            outcomes = run_suite(["ok", "crash"], jobs=2)
        finally:
            reset_obs()
        assert failed_ids(outcomes) == ["crash"]
        assert sink.of_kind("pool.broken")
        assert sink.of_kind("pool.worker_died")
        spans = [
            e for e in sink.of_kind("span") if e.get("name") == "experiment"
        ]
        assert {s["id"] for s in spans} == {"ok", "crash"}
        assert {s["status"] for s in spans} == {"ok", "error"}

    def test_in_process_exceptions_still_isolated(self, monkeypatch):
        # The soft-failure contract is unchanged by the pool rework.
        def broken():
            raise ValueError("soft failure")

        _toy_registry(
            monkeypatch, {"x": lambda: _toy("x", 1), "broken": broken}
        )
        outcomes = run_suite(["x", "broken"], jobs=1)
        assert failed_ids(outcomes) == ["broken"]


@pytest.mark.slow
class TestFullSuite:
    def test_warm_report_is_byte_identical(self, small_trace, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_suite(jobs=1, cache=cache)
        warm = run_suite(jobs=1, cache=cache)
        assert failed_ids(cold) == []
        assert all(o.cached for o in warm)
        assert render_outcomes(warm) == render_outcomes(cold)

    def test_parallel_matches_serial_for_every_experiment(self, small_trace):
        ids = list(EXPERIMENTS)
        serial = run_suite(ids, jobs=1)
        parallel = run_suite(ids, jobs=2)
        assert failed_ids(serial) == []
        assert failed_ids(parallel) == []
        for s, p in zip(serial, parallel):
            assert s.experiment_id == p.experiment_id
            assert p.result.render() == s.result.render()
