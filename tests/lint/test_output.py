"""Output formats: the JSON-lines stream must be valid obs-schema
events, and the human rendering must carry locations and the summary."""

from __future__ import annotations

import json

from repro.lint import Finding, LintResult
from repro.lint.output import render_human, render_jsonl, summary_event


def _result():
    finding = Finding(
        rule="no-print",
        path="src/repro/core/x.py",
        line=3,
        col=4,
        message="bare print()",
        context='print("x")',
        pkg_path="repro/core/x.py",
    )
    return LintResult(
        findings=[finding],
        files=2,
        rule_ids=["no-print", "determinism"],
        suppressed=1,
    )


def test_jsonl_is_obs_schema_events_plus_summary():
    lines = render_jsonl(_result()).strip().splitlines()
    events = [json.loads(line) for line in lines]

    # Every event carries the obs envelope: ts / kind / level.
    for event in events:
        assert isinstance(event["ts"], float)
        assert isinstance(event["kind"], str)
        assert event["level"] in {"info", "warning"}

    finding_event = events[0]
    assert finding_event["kind"] == "lint.finding"
    assert finding_event["rule"] == "no-print"
    assert finding_event["path"] == "src/repro/core/x.py"
    assert finding_event["pkg_path"] == "repro/core/x.py"
    assert finding_event["line"] == 3
    assert finding_event["col"] == 4

    summary = events[-1]
    assert summary["kind"] == "lint.summary"
    assert summary["findings"] == 1
    assert summary["files"] == 2
    assert summary["suppressed"] == 1
    assert summary["rules"] == ["no-print", "determinism"]


def test_summary_level_tracks_the_verdict():
    dirty = _result()
    assert summary_event(dirty)["level"] == "warning"
    clean = LintResult(files=1, rule_ids=["no-print"])
    assert summary_event(clean)["level"] == "info"


def test_human_rendering_has_location_and_summary():
    text = render_human(_result())
    assert "src/repro/core/x.py:3:4: [no-print] bare print()" in text
    assert 'print("x")' in text
    assert "repro.lint: 1 finding(s) in 2 file(s)" in text


def test_human_rendering_flags_stale_baseline_entries():
    from repro.lint.baseline import BaselineEntry

    result = _result()
    result.unused_baseline = [
        BaselineEntry(rule="no-print", path="repro/gone.py", context="", reason="")
    ]
    assert "stale baseline entries" in render_human(result)
    assert "no-print:repro/gone.py" in render_human(result)
