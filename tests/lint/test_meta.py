"""Meta-tests: every rule is documented, fixtured, and the real tree
is clean under the committed baseline -- the pytest bridge in anger."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import Baseline, all_rules, assert_clean

from .fixtures import RULE_FIXTURES

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINT_DOC = REPO_ROOT / "docs" / "LINT.md"
BASELINE = REPO_ROOT / "lint-baseline.json"

_KEBAB = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


def test_at_least_the_six_issue_rules_are_registered():
    assert {
        "no-print",
        "determinism",
        "import-layering",
        "fork-safety",
        "units-hygiene",
        "api-hygiene",
    } <= set(all_rules())


@pytest.mark.parametrize("rule_id", sorted(all_rules()))
def test_every_rule_documents_itself(rule_id):
    rule = all_rules()[rule_id]
    assert _KEBAB.match(rule_id), f"{rule_id!r} is not kebab-case"
    assert rule.title, f"{rule_id} has no title"
    assert rule.rationale, f"{rule_id} has no rationale"
    assert rule.suggestion, f"{rule_id} has no suggestion"


@pytest.mark.parametrize("rule_id", sorted(all_rules()))
def test_every_rule_appears_in_the_docs_catalog(rule_id):
    assert LINT_DOC.exists(), "docs/LINT.md is missing"
    text = LINT_DOC.read_text(encoding="utf-8")
    assert f"`{rule_id}`" in text, f"{rule_id} undocumented in docs/LINT.md"


@pytest.mark.parametrize("rule_id", sorted(all_rules()))
def test_every_rule_has_positive_and_negative_fixtures(rule_id):
    fixtures = RULE_FIXTURES.get(rule_id)
    assert fixtures is not None, f"{rule_id} has no fixtures"
    assert fixtures["positive"], f"{rule_id} has no positive fixture"
    assert fixtures["negative"], f"{rule_id} has no negative fixture"


def test_fixtures_reference_only_registered_rules():
    assert set(RULE_FIXTURES) <= set(all_rules())


def test_source_tree_is_clean_under_the_committed_baseline():
    """The issue's satellite: ``python -m repro.lint src/`` exits 0."""
    result = assert_clean(
        [REPO_ROOT / "src"], baseline=Baseline.load(BASELINE)
    )
    assert result.ok
    # Every baseline entry must still earn its keep and carry a reason.
    assert result.unused_baseline == []
    for entry in Baseline.load(BASELINE).entries:
        assert entry.reason, f"baseline entry {entry.key()} lacks a reason"
        assert entry.reason != "grandfathered; justify or fix", (
            f"baseline entry {entry.key()} still has the placeholder reason"
        )
