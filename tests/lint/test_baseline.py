"""Baseline file format, matching semantics and regeneration."""

from __future__ import annotations

import json

import pytest

from repro.lint import Baseline, Finding, write_baseline
from repro.lint.baseline import BaselineEntry


def _finding(line=10):
    return Finding(
        rule="fork-safety",
        path="/abs/src/repro/obs/core.py",
        line=line,
        col=4,
        message="global rebinding",
        context="global _OBS",
        pkg_path="repro/obs/core.py",
    )


def test_match_is_line_independent():
    baseline = Baseline(
        [
            BaselineEntry(
                rule="fork-safety",
                path="repro/obs/core.py",
                context="global _OBS",
                reason="process-local singleton",
            )
        ]
    )
    assert baseline.match(_finding(line=10))
    assert baseline.match(_finding(line=999))  # moved code still matches
    assert baseline.unused() == []


def test_write_then_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    count = write_baseline([_finding(10), _finding(20)], path)
    assert count == 1  # same key collapses to one entry
    payload = json.loads(path.read_text())
    assert payload["version"] == 1
    (entry,) = payload["entries"]
    assert entry["path"] == "repro/obs/core.py"  # pkg path, not filesystem
    assert entry["context"] == "global _OBS"

    baseline = Baseline.load(path)
    assert baseline.match(_finding(5))


def test_regeneration_preserves_hand_written_reasons(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline([_finding()], path)
    payload = json.loads(path.read_text())
    payload["entries"][0]["reason"] = "carefully justified"
    path.write_text(json.dumps(payload))

    write_baseline([_finding(line=77)], path)  # regenerate
    reloaded = json.loads(path.read_text())
    assert reloaded["entries"][0]["reason"] == "carefully justified"


def test_unknown_version_is_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_unmatched_entries_surface_as_unused():
    entry = BaselineEntry(
        rule="no-print", path="repro/gone.py", context="print('x')", reason="?"
    )
    baseline = Baseline([entry])
    assert not baseline.match(_finding())
    assert baseline.unused() == [entry]
