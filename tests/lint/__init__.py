"""Tests for :mod:`repro.lint` (a package so fixtures import relatively)."""
