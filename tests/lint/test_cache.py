"""The incremental analysis cache: hits, invalidation, corruption."""

from __future__ import annotations

import json

import pytest

from repro.lint.cache import AnalysisCache, rules_signature
from repro.lint.engine import lint_paths
from repro.lint.findings import Finding


@pytest.fixture()
def project(tmp_path):
    src = tmp_path / "proj"
    src.mkdir()
    (src / "clean.py").write_text(
        '"""A module with nothing to report."""\n\n\ndef add(a, b):\n'
        '    """Sum."""\n    return a + b\n',
        encoding="utf-8",
    )
    (src / "noisy.py").write_text(
        '"""A module that prints."""\n\n\ndef shout(msg):\n'
        '    """Print it."""\n    print(msg)\n',
        encoding="utf-8",
    )
    return src


def run(project, tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    return lint_paths([project], rules=["no-print"], cache=cache)


def test_cold_run_analyzes_everything(project, tmp_path):
    result = run(project, tmp_path)
    assert len(result.analyzed_files) == 2
    assert result.cached_files == []
    assert [f.rule for f in result.findings] == ["no-print"]


def test_warm_run_serves_everything_from_cache(project, tmp_path):
    first = run(project, tmp_path)
    second = run(project, tmp_path)
    assert second.analyzed_files == []
    assert len(second.cached_files) == 2
    # Findings are identical whether computed or replayed.
    assert [
        (f.rule, f.path, f.line) for f in second.findings
    ] == [(f.rule, f.path, f.line) for f in first.findings]


def test_touching_one_file_reanalyzes_only_it(project, tmp_path):
    run(project, tmp_path)
    noisy = project / "noisy.py"
    noisy.write_text(
        noisy.read_text(encoding="utf-8") + "\n\nEXTRA = 1\n",
        encoding="utf-8",
    )
    result = run(project, tmp_path)
    assert [p.endswith("noisy.py") for p in result.analyzed_files] == [True]
    assert len(result.cached_files) == 1
    assert [f.rule for f in result.findings] == ["no-print"]


def test_key_depends_on_rule_set_and_content(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    assert cache.key(b"x = 1\n", ["no-print"]) != cache.key(
        b"x = 2\n", ["no-print"]
    )
    assert cache.key(b"x = 1\n", ["no-print"]) != cache.key(
        b"x = 1\n", ["no-print", "hot-path"]
    )
    # Order of rule ids does not matter.
    assert cache.key(b"x = 1\n", ["b", "a"]) == cache.key(b"x = 1\n", ["a", "b"])


def test_rules_signature_is_stable_within_a_process():
    assert rules_signature() == rules_signature()
    assert len(rules_signature()) == 64


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    key = cache.key(b"x = 1\n", ["no-print"])
    assert cache.get(key) is None  # empty cache
    (cache.directory / f"{key}.json").write_text("{not json", encoding="utf-8")
    assert cache.get(key) is None  # corruption is a miss, not an error


def test_round_trip_preserves_findings(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    finding = Finding(
        rule="no-print",
        path="proj/noisy.py",
        line=6,
        col=4,
        message="print() call",
        context="print(msg)",
    )
    key = cache.key(b"whatever", ["no-print"])
    assert cache.put(key, ([finding], 2, {"calls": [["a", 1]]}))
    cached = cache.get(key)
    assert cached is not None
    findings, suppressed, summaries = cached
    assert findings == [finding]
    assert suppressed == 2
    assert summaries == {"calls": [["a", 1]]}


def test_unserializable_summary_declines_to_cache(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    key = cache.key(b"whatever", ["no-print"])
    assert not cache.put(key, ([], 0, {"bad": object()}))
    assert cache.get(key) is None


def test_entries_are_valid_json_files(project, tmp_path):
    run(project, tmp_path)
    entries = list((tmp_path / "cache").glob("*.json"))
    assert len(entries) == 2
    for entry in entries:
        payload = json.loads(entry.read_text(encoding="utf-8"))
        assert set(payload) == {"findings", "suppressed", "summaries"}
