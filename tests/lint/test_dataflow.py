"""The bundled analyses: held locks, open resources, reaching defs."""

from __future__ import annotations

import ast

from repro.lint.cfg import WithExit, build_cfg
from repro.lint.dataflow import (
    HeldLocks,
    OpenResources,
    ReachingDefinitions,
    run_forward,
)


def flow(source: str, analysis):
    tree = ast.parse(source)
    cfg = build_cfg(tree.body[0])
    return run_forward(cfg, analysis)


def classify_open(call: ast.Call):
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return ("handle", "open(...)")
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "with_name"
    ):
        return ("tmpfile", "with_name(...)")
    return None


# ---- HeldLocks ------------------------------------------------------


def test_lock_held_inside_with_released_after():
    analysis = HeldLocks()
    result = flow(
        "def f(self):\n"
        "    with self._lock:\n"
        "        inside = 1\n"
        "    outside = 2\n",
        analysis,
    )
    held_at = {}
    for element, state in result.states():
        if isinstance(element, ast.Assign):
            name = element.targets[0].id
            held_at[name] = analysis.held(state)
    assert held_at["inside"] == frozenset({"self._lock"})
    assert held_at["outside"] == frozenset()


def test_nested_and_multi_item_withs_stack():
    analysis = HeldLocks()
    result = flow(
        "def f(self, other):\n"
        "    with self.a, other.b:\n"
        "        with self.c:\n"
        "            deep = 1\n"
        "        shallow = 2\n",
        analysis,
    )
    held_at = {}
    for element, state in result.states():
        if isinstance(element, ast.Assign):
            held_at[element.targets[0].id] = analysis.held(state)
    assert held_at["deep"] == frozenset({"self.a", "other.b", "self.c"})
    assert held_at["shallow"] == frozenset({"self.a", "other.b"})


def test_call_context_managers_are_not_locks():
    analysis = HeldLocks()
    result = flow(
        "def f(path):\n"
        "    with open(path) as fh:\n"
        "        data = fh.read()\n",
        analysis,
    )
    for _element, state in result.states():
        assert analysis.held(state) == frozenset()


# ---- OpenResources --------------------------------------------------


def leaked(source: str):
    return {r.name for r in flow(source, OpenResources(classify_open)).at_exit()}


def test_unclosed_handle_leaks():
    assert leaked("def f(p):\n    fh = open(p)\n    return 1\n") == {"fh"}


def test_closed_handle_does_not_leak():
    assert leaked("def f(p):\n    fh = open(p)\n    fh.close()\n") == set()


def test_leak_on_one_branch_is_reported():
    assert leaked(
        "def f(p, flag):\n"
        "    fh = open(p)\n"
        "    if flag:\n"
        "        return None\n"
        "    fh.close()\n"
        "    return 1\n"
    ) == {"fh"}


def test_with_management_kills_handles():
    assert leaked(
        "def f(p):\n"
        "    fh = open(p)\n"
        "    with fh:\n"
        "        return fh.read()\n"
    ) == set()


def test_escapes_transfer_ownership():
    assert leaked("def f(p):\n    fh = open(p)\n    return fh\n") == set()
    assert leaked("def f(p, sink):\n    fh = open(p)\n    sink(fh)\n") == set()
    assert leaked(
        "def f(self, p):\n    fh = open(p)\n    self.fh = fh\n"
    ) == set()


def test_rebinding_forgets_the_old_resource():
    # The first handle is dropped on rebind; only the second is live,
    # and it is closed.
    assert leaked(
        "def f(p, q):\n"
        "    fh = open(p)\n"
        "    fh = open(q)\n"
        "    fh.close()\n"
    ) == set()


def test_os_replace_commits_a_tmpfile():
    assert leaked(
        "def f(path, os):\n"
        "    tmp = path.with_name('x.tmp')\n"
        "    os.replace(tmp, path)\n"
    ) == set()


def test_os_replace_on_handle_name_commits_it():
    assert leaked(
        "def f(path, os, tempfile):\n"
        "    handle = open(path)\n"
        "    os.replace(handle.name, path)\n"
    ) == set()


def test_method_calls_keep_the_resource_alive():
    assert leaked(
        "def f(p):\n"
        "    fh = open(p)\n"
        "    fh.write(b'x')\n"
        "    return 1\n"
    ) == {"fh"}


def test_atomic_write_idiom_is_clean():
    assert leaked(
        "def f(path, payload, os):\n"
        "    tmp = path.with_name(path.name + '.tmp')\n"
        "    try:\n"
        "        tmp.write_bytes(payload)\n"
        "        os.replace(tmp, path)\n"
        "    except BaseException:\n"
        "        tmp.unlink()\n"
        "        raise\n"
    ) == set()


def test_atomic_write_without_commit_leaks():
    assert leaked(
        "def f(path, payload):\n"
        "    tmp = path.with_name(path.name + '.tmp')\n"
        "    tmp.write_bytes(payload)\n"
    ) == {"tmp"}


# ---- ReachingDefinitions -------------------------------------------


def test_reaching_definitions_merge_at_joins():
    result = flow(
        "def f(flag):\n"
        "    x = 1\n"
        "    if flag:\n"
        "        x = 2\n"
        "    done = 1\n",
        ReachingDefinitions(),
    )
    at_done = None
    for element, state in result.states():
        if (
            isinstance(element, ast.Assign)
            and element.targets[0].id == "done"
        ):
            at_done = state
    x_lines = {line for name, line in at_done if name == "x"}
    assert x_lines == {2, 4}


def test_reaching_definitions_kill_on_rebind():
    result = flow(
        "def f():\n    x = 1\n    x = 2\n    done = 1\n",
        ReachingDefinitions(),
    )
    at_done = None
    for element, state in result.states():
        if (
            isinstance(element, ast.Assign)
            and element.targets[0].id == "done"
        ):
            at_done = state
    assert {line for name, line in at_done if name == "x"} == {3}


def test_with_exit_markers_carry_no_resource_change():
    analysis = OpenResources(classify_open)
    result = flow(
        "def f(p):\n"
        "    with open(p) as fh:\n"
        "        data = fh.read()\n",
        analysis,
    )
    for element, state in result.states():
        if isinstance(element, WithExit):
            assert analysis.transfer(state, element) == state
