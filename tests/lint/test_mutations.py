"""Seeded-defect mutations: each flow rule catches its target bug.

These tests take the *real* sources the rules were calibrated against,
re-introduce the exact defect class the rule exists to catch, and
assert the rule fires on the mutant -- and stays quiet on the pristine
file.  If a refactor ever renames the mutated anchors, the ``assert
anchor in source`` lines fail first with a clear message, rather than
the mutation silently becoming a no-op.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.engine import lint_source

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def read(relative: str) -> str:
    return (SRC / relative).read_text(encoding="utf-8")


def rules_fired(source: str, module: str, rules) -> set:
    findings = lint_source(
        source,
        filename=f"src/repro/{module.split('.')[-1]}.py",
        module=module,
        rules=rules,
    )
    return {finding.rule for finding in findings}


# ---- lock-discipline ------------------------------------------------


def test_removing_shard_lock_from_ingest_fires_lock_discipline():
    source = read("serve/state.py")
    anchor = "                with shard.lock:"
    assert anchor in source
    mutant = source.replace(anchor, "                if True:", 1)
    assert "lock-discipline" not in rules_fired(
        source, "repro.serve.state", ["lock-discipline"]
    )
    assert "lock-discipline" in rules_fired(
        mutant, "repro.serve.state", ["lock-discipline"]
    )


# ---- resource-safety ------------------------------------------------


def test_removing_os_replace_from_atomic_write_fires_resource_safety():
    source = read("trace/columnar.py")
    anchor = "        os.replace(tmp, path)\n"
    assert anchor in source
    mutant = source.replace(anchor, "", 1)
    assert "resource-safety" not in rules_fired(
        source, "repro.trace.columnar", ["resource-safety"]
    )
    assert "resource-safety" in rules_fired(
        mutant, "repro.trace.columnar", ["resource-safety"]
    )


# ---- exception-contract ---------------------------------------------


def test_swallowing_the_worker_traceback_fires_exception_contract():
    source = read("runtime/executor.py")
    anchor = "traceback.format_exc(),"
    assert anchor in source
    mutant = source.replace(anchor, '"worker failed",', 1)
    assert "exception-contract" not in rules_fired(
        source, "repro.runtime.executor", ["exception-contract"]
    )
    assert "exception-contract" in rules_fired(
        mutant, "repro.runtime.executor", ["exception-contract"]
    )


# ---- hot-path -------------------------------------------------------


def test_np_append_in_a_loop_fires_hot_path_in_a_hot_module():
    source = read("core/population.py")
    extra = (
        "\n\n"
        "def _accumulate(values):\n"
        '    """Mutant: quadratic accumulation."""\n'
        "    out = np.empty(0)\n"
        "    for value in values:\n"
        "        out = np.append(out, value)\n"
        "    return out\n"
    )
    assert "hot-path" not in rules_fired(
        source, "repro.core.population", ["hot-path"]
    )
    assert "hot-path" in rules_fired(
        source + extra, "repro.core.population", ["hot-path"]
    )


def test_the_same_defect_is_quiet_outside_hot_modules():
    source = (
        '"""Cold module."""\n\n'
        "import numpy as np\n\n\n"
        "def accumulate(values):\n"
        '    """Quadratic, but nobody cares here."""\n'
        "    out = np.empty(0)\n"
        "    for value in values:\n"
        "        out = np.append(out, value)\n"
        "    return out\n"
    )
    assert "hot-path" not in rules_fired(
        source, "repro.analysis.scratch", ["hot-path"]
    )
