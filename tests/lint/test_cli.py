"""The ``python -m repro.lint`` / ``repro-lint`` command line."""

from __future__ import annotations

import json

import pytest

from repro.lint import rule_ids
from repro.lint.cli import main


@pytest.fixture()
def dirty_tree(tmp_path, monkeypatch):
    """A tree with one violation; cwd moved there so no repo baseline
    is silently picked up."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text('print("leak")\n')
    return tmp_path


def test_list_rules_names_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out


def test_findings_exit_1_clean_exit_0(dirty_tree, capsys):
    assert main([str(dirty_tree)]) == 1
    assert "no-print" in capsys.readouterr().out
    (dirty_tree / "mod.py").write_text("VALUE = 1\n")
    assert main([str(dirty_tree)]) == 0


def test_json_format_streams_obs_events(dirty_tree, capsys):
    assert main([str(dirty_tree), "--format", "json"]) == 1
    events = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    kinds = [event["kind"] for event in events]
    assert kinds[:-1] == ["lint.finding"] * (len(events) - 1)
    assert kinds[-1] == "lint.summary"
    assert events[0]["rule"] == "no-print"


def test_rules_flag_restricts_and_validates(dirty_tree, capsys):
    assert main([str(dirty_tree), "--rules", "units-hygiene"]) == 0
    with pytest.raises(SystemExit) as excinfo:
        main([str(dirty_tree), "--rules", "bogus"])
    assert excinfo.value.code == 2


def test_write_baseline_then_clean_run(dirty_tree, capsys):
    assert main([str(dirty_tree), "--write-baseline"]) == 0
    assert (dirty_tree / "lint-baseline.json").exists()
    # The default baseline in cwd is now picked up automatically.
    assert main([str(dirty_tree)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out.splitlines()[-1]


def test_explicit_baseline_path(dirty_tree, capsys):
    baseline = dirty_tree / "custom.json"
    assert main([str(dirty_tree), "--write-baseline", "--baseline", str(baseline)]) == 0
    assert main([str(dirty_tree), "--baseline", str(baseline)]) == 0


def test_corrupt_baseline_is_a_usage_error(dirty_tree):
    bad = dirty_tree / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit) as excinfo:
        main([str(dirty_tree), "--baseline", str(bad)])
    assert excinfo.value.code == 2


def test_jobs_must_be_positive(dirty_tree):
    with pytest.raises(SystemExit) as excinfo:
        main([str(dirty_tree), "--jobs", "0"])
    assert excinfo.value.code == 2
