"""The ``python -m repro.lint`` / ``repro-lint`` command line."""

from __future__ import annotations

import json

import pytest

from repro.lint import rule_ids
from repro.lint.cli import main


@pytest.fixture()
def dirty_tree(tmp_path, monkeypatch):
    """A tree with one violation; cwd moved there so no repo baseline
    is silently picked up."""
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text('print("leak")\n')
    return tmp_path


def test_list_rules_names_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in rule_ids():
        assert rule_id in out


def test_findings_exit_1_clean_exit_0(dirty_tree, capsys):
    assert main([str(dirty_tree)]) == 1
    assert "no-print" in capsys.readouterr().out
    (dirty_tree / "mod.py").write_text("VALUE = 1\n")
    assert main([str(dirty_tree)]) == 0


def test_json_format_streams_obs_events(dirty_tree, capsys):
    assert main([str(dirty_tree), "--format", "json"]) == 1
    events = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    kinds = [event["kind"] for event in events]
    assert kinds[:-1] == ["lint.finding"] * (len(events) - 1)
    assert kinds[-1] == "lint.summary"
    assert events[0]["rule"] == "no-print"


def test_rules_flag_restricts_and_validates(dirty_tree, capsys):
    assert main([str(dirty_tree), "--rules", "units-hygiene"]) == 0
    with pytest.raises(SystemExit) as excinfo:
        main([str(dirty_tree), "--rules", "bogus"])
    assert excinfo.value.code == 2


def test_write_baseline_then_clean_run(dirty_tree, capsys):
    assert main([str(dirty_tree), "--write-baseline"]) == 0
    assert (dirty_tree / "lint-baseline.json").exists()
    # The default baseline in cwd is now picked up automatically.
    assert main([str(dirty_tree)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out.splitlines()[-1]


def test_explicit_baseline_path(dirty_tree, capsys):
    baseline = dirty_tree / "custom.json"
    assert main([str(dirty_tree), "--write-baseline", "--baseline", str(baseline)]) == 0
    assert main([str(dirty_tree), "--baseline", str(baseline)]) == 0


def test_corrupt_baseline_is_a_usage_error(dirty_tree):
    bad = dirty_tree / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit) as excinfo:
        main([str(dirty_tree), "--baseline", str(bad)])
    assert excinfo.value.code == 2


def test_jobs_must_be_positive(dirty_tree):
    with pytest.raises(SystemExit) as excinfo:
        main([str(dirty_tree), "--jobs", "0"])
    assert excinfo.value.code == 2


def test_stale_baseline_entries_fail_the_run(dirty_tree, capsys):
    assert main([str(dirty_tree), "--write-baseline"]) == 0
    # Fix the finding; its baseline entry is now stale, which must fail
    # the run even though there are zero findings.
    (dirty_tree / "mod.py").write_text("VALUE = 1\n")
    assert main([str(dirty_tree)]) == 1
    captured = capsys.readouterr()
    assert "stale baseline" in captured.err


def test_prune_baseline_drops_stale_entries(dirty_tree, capsys):
    assert main([str(dirty_tree), "--write-baseline"]) == 0
    (dirty_tree / "mod.py").write_text("VALUE = 1\n")
    assert main([str(dirty_tree), "--prune-baseline"]) == 0
    payload = json.loads((dirty_tree / "lint-baseline.json").read_text())
    assert payload["entries"] == []
    # After the prune, a plain run is clean again.
    assert main([str(dirty_tree)]) == 0
    capsys.readouterr()


def test_prune_baseline_requires_a_baseline_file(dirty_tree):
    with pytest.raises(SystemExit) as excinfo:
        main([str(dirty_tree), "--prune-baseline"])
    assert excinfo.value.code == 2


def test_baseline_entries_without_reasons_are_rejected(dirty_tree, capsys):
    assert main([str(dirty_tree), "--write-baseline"]) == 0
    path = dirty_tree / "lint-baseline.json"
    payload = json.loads(path.read_text())
    for entry in payload["entries"]:
        entry["reason"] = ""
    path.write_text(json.dumps(payload))
    with pytest.raises(SystemExit) as excinfo:
        main([str(dirty_tree)])
    assert excinfo.value.code == 2


def test_cache_flag_serves_warm_runs_incrementally(dirty_tree, capsys):
    assert main([str(dirty_tree), "--cache"]) == 1
    assert (dirty_tree / ".lint-cache").is_dir()
    assert main([str(dirty_tree), "--cache"]) == 1
    out = capsys.readouterr().out
    assert "0 analyzed, 1 served from cache" in out


def test_sarif_file_is_written_even_when_findings_fail_the_run(dirty_tree):
    assert main([str(dirty_tree), "--sarif", "out.sarif"]) == 1
    doc = json.loads((dirty_tree / "out.sarif").read_text())
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"][0]["ruleId"] == "no-print"


def test_sarif_format_prints_to_stdout(dirty_tree, capsys):
    assert main([str(dirty_tree), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-lint"
