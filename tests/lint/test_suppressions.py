"""Suppression placement: trailing, multi-line, standalone, decorator.

The regression of record: a ``# repro: ignore[rule]`` marker written on
a decorator line or on a continuation line of a multi-line statement
must suppress the finding reported at the *statement's* first line --
findings are always reported there, not where the comment happens to
sit.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.lint.context import FileContext
from repro.lint.engine import lint_source
from repro.lint.suppressions import parse_suppressions


def context_of(source: str) -> FileContext:
    return FileContext(Path("x.py"), source, ast.parse(source))


# ---- parse_suppressions mapping -------------------------------------


def test_trailing_comment_registers_on_its_own_line():
    marks = parse_suppressions("x = 1  # repro: ignore[no-print] scratch\n")
    assert "no-print" in marks.get(1, ())


def test_multiline_statement_marker_maps_to_first_line():
    source = (
        "value = compute(\n"
        "    a,\n"
        "    b,  # repro: ignore[hot-path] bounded by config\n"
        ")\n"
    )
    marks = parse_suppressions(source)
    assert "hot-path" in marks.get(1, ()), marks
    assert "hot-path" in marks.get(3, ())


def test_standalone_comment_attaches_to_next_statement():
    source = (
        "# repro: ignore[exception-contract] last-resort by design\n"
        "try:\n"
        "    risky()\n"
        "except Exception:\n"
        "    pass\n"
    )
    marks = parse_suppressions(source)
    assert "exception-contract" in marks.get(2, ())


def test_standalone_comment_skips_blank_lines_and_comments():
    source = (
        "# repro: ignore[units] legacy field\n"
        "# (measured in seconds since the 2019 trace)\n"
        "\n"
        "WINDOW = 86400\n"
    )
    marks = parse_suppressions(source)
    assert "units" in marks.get(4, ())


def test_marker_inside_string_literal_is_inert():
    source = 'doc = "use # repro: ignore[no-print] to suppress"\nx = 1\n'
    marks = parse_suppressions(source)
    assert not any("no-print" in ids for ids in marks.values())


def test_multiple_ids_in_one_marker():
    marks = parse_suppressions(
        "x = 1  # repro: ignore[no-print, hot-path] scratch\n"
    )
    assert {"no-print", "hot-path"} <= set(marks.get(1, ()))


# ---- FileContext.suppressed (decorator aliasing) --------------------


def test_decorator_line_marker_suppresses_the_def_finding():
    source = (
        "@retry(  # repro: ignore[api-hygiene] wrapper keeps the docstring\n"
        "    times=3,\n"
        ")\n"
        "def fetch():\n"
        "    return 1\n"
    )
    ctx = context_of(source)
    # Findings against a decorated def are reported at the ``def`` line.
    assert ctx.suppressed("api-hygiene", 4)


def test_undecorated_def_does_not_inherit_earlier_markers():
    source = (
        "x = 1  # repro: ignore[api-hygiene] unrelated\n"
        "def fetch():\n"
        "    return 1\n"
    )
    ctx = context_of(source)
    assert not ctx.suppressed("api-hygiene", 2)


def test_wrong_rule_id_does_not_suppress():
    source = "x = 1  # repro: ignore[no-print] scratch\n"
    ctx = context_of(source)
    assert not ctx.suppressed("hot-path", 1)


# ---- end to end through the engine ----------------------------------


def test_decorator_suppression_end_to_end():
    plain = (
        "\"\"\"Mod.\"\"\"\n"
        "\n"
        "import functools\n"
        "\n"
        "\n"
        "@functools.lru_cache(maxsize=None)\n"
        "def lookup(key):\n"
        "    \"\"\"Find.\"\"\"\n"
        "    print(key)\n"
        "    return key\n"
    )
    findings = lint_source(plain, rules=["no-print"])
    assert [f.rule for f in findings] == ["no-print"]

    suppressed = plain.replace(
        "print(key)",
        "print(key)  # repro: ignore[no-print] debug hook",
    )
    assert lint_source(suppressed, rules=["no-print"]) == []


def test_multiline_call_suppression_end_to_end():
    source = (
        "\"\"\"Mod.\"\"\"\n"
        "\n"
        "\n"
        "def report(a, b):\n"
        "    \"\"\"Emit.\"\"\"\n"
        "    print(\n"
        "        a,\n"
        "        b,  # repro: ignore[no-print] operator console output\n"
        "    )\n"
    )
    assert lint_source(source, rules=["no-print"]) == []
