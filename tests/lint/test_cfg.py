"""CFG builder: structural invariants, by hand and by property.

The hand-written cases pin the shapes the dataflow rules rely on
(branch joins, loop back-edges, finally inlining, handler edges); the
hypothesis properties generate arbitrary function bodies from a small
statement grammar and assert the invariants every analysis assumes --
entry reaches exit, edges are symmetric, every element lives in
exactly one block, and the worklist reaches a fixpoint.
"""

from __future__ import annotations

import ast

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.cfg import WithExit, build_cfg, walk_element
from repro.lint.dataflow import ReachingDefinitions, run_forward


def cfg_of(source: str):
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def reachable_exit(cfg) -> bool:
    return cfg.exit in cfg.reachable()


# ---------------------------------------------------------------------
# hand-written shapes


def test_straight_line_is_entry_to_exit():
    cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return a + b\n")
    assert reachable_exit(cfg)


def test_if_without_else_joins_both_arms():
    cfg = cfg_of(
        "def f(x):\n"
        "    a = 1\n"
        "    if x:\n"
        "        a = 2\n"
        "    return a\n"
    )
    # The return must be reachable both through and around the branch.
    assert reachable_exit(cfg)
    returns = [
        block
        for block in cfg.blocks.values()
        if any(isinstance(el, ast.Return) for el in block.elements)
    ]
    assert len(returns) == 1
    assert len(returns[0].preds) >= 2


def test_while_has_back_edge_and_false_exit():
    cfg = cfg_of("def f(n):\n    while n:\n        n -= 1\n    return n\n")
    assert reachable_exit(cfg)
    header = next(
        block
        for block in cfg.blocks.values()
        if any(isinstance(el, ast.While) for el in block.elements)
    )
    # Loop body flows back into the header.
    assert any(header.id in cfg.blocks[pred].succs for pred in header.preds)


def test_while_true_without_break_never_reaches_exit():
    cfg = cfg_of("def f():\n    while True:\n        pass\n")
    assert not reachable_exit(cfg)


def test_while_true_with_break_reaches_exit():
    cfg = cfg_of("def f():\n    while True:\n        break\n    return 1\n")
    assert reachable_exit(cfg)


def test_raise_without_handler_still_reaches_exit():
    cfg = cfg_of("def f():\n    raise ValueError('x')\n")
    assert reachable_exit(cfg)


def test_handler_reachable_from_try_body():
    cfg = cfg_of(
        "def f(x):\n"
        "    try:\n"
        "        a = x()\n"
        "    except ValueError:\n"
        "        a = None\n"
        "    return a\n"
    )
    assert reachable_exit(cfg)
    handler_blocks = [
        block
        for block in cfg.blocks.values()
        if any(isinstance(el, ast.ExceptHandler) for el in block.elements)
    ]
    assert handler_blocks and all(b.preds for b in handler_blocks)


def test_with_body_is_bracketed_by_header_and_exit_marker():
    cfg = cfg_of(
        "def f(self):\n"
        "    with self.lock:\n"
        "        self.x = 1\n"
        "    return self.x\n"
    )
    elements = [el for block in cfg.blocks.values() for el in block.elements]
    assert any(isinstance(el, ast.With) for el in elements)
    assert any(isinstance(el, WithExit) for el in elements)


def test_finally_runs_on_the_return_path():
    cfg = cfg_of(
        "def f(x):\n"
        "    try:\n"
        "        return x\n"
        "    finally:\n"
        "        cleanup()\n"
    )
    # The finally body is inlined ahead of the return's exit edge, so a
    # path entry -> cleanup -> exit exists.
    assert reachable_exit(cfg)
    cleanup_blocks = [
        block
        for block in cfg.blocks.values()
        if any("cleanup" in ast.dump(el) for el in block.elements
               if isinstance(el, ast.stmt))
    ]
    assert cleanup_blocks
    assert any(
        cfg.exit in block.succs or block.succs for block in cleanup_blocks
    )


def test_walk_element_skips_nested_function_bodies():
    source = (
        "def f():\n"
        "    def inner():\n"
        "        return hidden()\n"
        "    return inner\n"
    )
    tree = ast.parse(source)
    func = tree.body[0]
    names = set()
    for stmt in func.body:
        for node in walk_element(stmt):
            if isinstance(node, ast.Name):
                names.add(node.id)
    assert "hidden" not in names


# ---------------------------------------------------------------------
# property tests: a small statement grammar


@st.composite
def statements(draw, depth: int = 0):
    simple = st.sampled_from(
        [
            "x = 1",
            "y = x",
            "call()",
            "x += 1",
            "return x",
            "raise ValueError('boom')",
            "pass",
        ]
    )
    if depth >= 2:
        return [draw(simple)]
    body = draw(st.lists(simple, min_size=1, max_size=3))
    shape = draw(
        st.sampled_from(["plain", "if", "ifelse", "while", "for", "try", "with"])
    )
    indent = "    "

    def nest(lines):
        return [indent + line for line in lines]

    inner = draw(statements(depth=depth + 1))
    if shape == "plain":
        return body
    if shape == "if":
        return ["if cond:"] + nest(inner) + body
    if shape == "ifelse":
        other = draw(statements(depth=depth + 1))
        return ["if cond:"] + nest(inner) + ["else:"] + nest(other) + body
    if shape == "while":
        # ``while cond`` (never ``while True``): the loop may be skipped,
        # so the exit stays reachable.
        return ["while cond:"] + nest(inner) + body
    if shape == "for":
        return ["for item in seq:"] + nest(inner) + body
    if shape == "try":
        other = draw(statements(depth=depth + 1))
        return (
            ["try:"]
            + nest(inner)
            + ["except Exception:"]
            + nest(other)
            + ["finally:"]
            + ["    cleanup()"]
            + body
        )
    return ["with ctx:"] + nest(inner) + body


@st.composite
def function_sources(draw):
    lines = draw(statements())
    return "def f(x, cond, seq, ctx, call, cleanup):\n" + "\n".join(
        "    " + line for line in lines
    )


@settings(max_examples=120, deadline=None)
@given(function_sources())
def test_generated_cfgs_connect_entry_to_exit(source):
    cfg = cfg_of(source)
    assert reachable_exit(cfg), source


@settings(max_examples=120, deadline=None)
@given(function_sources())
def test_generated_cfg_edges_are_symmetric(source):
    cfg = cfg_of(source)
    for block in cfg.blocks.values():
        for succ in block.succs:
            assert block.id in cfg.blocks[succ].preds, source
        for pred in block.preds:
            assert block.id in cfg.blocks[pred].succs, source


@settings(max_examples=120, deadline=None)
@given(function_sources())
def test_statements_land_in_exactly_one_block_outside_finally(source):
    # ``finally`` bodies are inlined once per departing jump -- those
    # statements legitimately appear in several blocks.  Everything
    # else must be placed exactly once.
    tree = ast.parse(source)
    in_finally = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for inner in ast.walk(stmt):
                    in_finally.add(id(inner))
    cfg = build_cfg(tree.body[0])  # same tree as the id() collection
    seen = {}
    for block in cfg.blocks.values():
        for element in block.elements:
            if id(element) in in_finally:
                continue
            assert id(element) not in seen, source
            seen[id(element)] = block.id


@settings(max_examples=120, deadline=None)
@given(function_sources())
def test_dataflow_reaches_fixpoint_on_generated_cfgs(source):
    cfg = cfg_of(source)
    # Termination (no RuntimeError) is the property under test.
    result = run_forward(cfg, ReachingDefinitions())
    for _element, state in result.states():
        assert isinstance(state, frozenset)


@pytest.mark.parametrize("max_passes", [1])
def test_non_converging_analysis_raises(max_passes):
    class Diverging(ReachingDefinitions):
        def transfer(self, state, element):
            # Grows a fresh fact every visit: can never stabilize.
            return state | {("bogus", len(state))}

    cfg = cfg_of("def f(n):\n    while n:\n        n -= 1\n    return n\n")
    with pytest.raises(RuntimeError):
        run_forward(cfg, Diverging(), max_passes=max_passes)
