"""Every rule against its inline fixtures, plus suppression semantics."""

from __future__ import annotations

import pytest

from repro.lint import lint_source
from repro.lint.suppressions import (
    SUPPRESS_ALL,
    is_suppressed,
    parse_suppressions,
)

from .fixtures import RULE_FIXTURES


def _cases(kind):
    for rule_id, fixtures in sorted(RULE_FIXTURES.items()):
        for index, (source, module) in enumerate(fixtures[kind]):
            yield pytest.param(
                rule_id, source, module, id=f"{rule_id}-{kind}-{index}"
            )


@pytest.mark.parametrize("rule_id,source,module", _cases("positive"))
def test_positive_fixture_fires(rule_id, source, module):
    findings = lint_source(source, module=module, rules=[rule_id])
    assert findings, f"{rule_id} missed its positive fixture"
    assert all(f.rule == rule_id for f in findings)
    assert all(f.line >= 1 and f.message for f in findings)


@pytest.mark.parametrize("rule_id,source,module", _cases("negative"))
def test_negative_fixture_stays_quiet(rule_id, source, module):
    findings = lint_source(source, module=module, rules=[rule_id])
    assert findings == [], f"{rule_id} false-positived: {findings}"


@pytest.mark.parametrize("rule_id,source,module", _cases("positive"))
def test_inline_suppression_silences_every_positive(rule_id, source, module):
    """Appending ``# repro: ignore[rule]`` to each flagged line mutes it."""
    baseline_findings = lint_source(source, module=module, rules=[rule_id])
    flagged = {f.line for f in baseline_findings}
    lines = source.splitlines()
    suppressed_src = "\n".join(
        line + f"  # repro: ignore[{rule_id}]" if number in flagged else line
        for number, line in enumerate(lines, start=1)
    ) + "\n"
    assert lint_source(suppressed_src, module=module, rules=[rule_id]) == []


def test_bare_suppression_mutes_all_rules():
    source = 'print("hi")  # repro: ignore\n'
    assert lint_source(source, rules=["no-print"]) == []


def test_suppression_is_rule_scoped():
    source = 'print("hi")  # repro: ignore[units-hygiene]\n'
    findings = lint_source(source, rules=["no-print"])
    assert [f.rule for f in findings] == ["no-print"]


def test_parse_suppressions_maps_lines_to_rules():
    source = (
        "x = 1  # repro: ignore[fork-safety]\n"
        "y = 2  # repro: ignore[a, b]\n"
        "z = 3  # repro: ignore\n"
        "w = 4\n"
    )
    parsed = parse_suppressions(source)
    assert parsed[1] == frozenset({"fork-safety"})
    assert parsed[2] == frozenset({"a", "b"})
    assert parsed[3] == SUPPRESS_ALL
    assert 4 not in parsed
    assert is_suppressed(parsed, "fork-safety", 1)
    assert not is_suppressed(parsed, "no-print", 1)
    assert is_suppressed(parsed, "anything", 3)


def test_determinism_reports_the_witness_chain():
    source = (
        "import numpy as np\n"
        "\n"
        "def helper():\n"
        "    return np.random.rand(3)\n"
        "\n"
        "def run():\n"
        "    return helper()\n"
        "\n"
        'EXPERIMENTS = {"fig1": run}\n'
    )
    (finding,) = lint_source(source, rules=["determinism"])
    assert finding.line == 4
    assert "'fig1'" in finding.message
    assert "->" in finding.message  # the run -> helper witness path


def test_layering_finding_names_the_offending_edge():
    findings = lint_source(
        "from repro.analysis import tables\n",
        module="repro.core.units",
        rules=["import-layering"],
    )
    (finding,) = findings
    assert "repro.core.units" in finding.message
    assert "repro.analysis" in finding.message
