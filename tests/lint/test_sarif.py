"""SARIF rendering: structure, rule descriptors, baseline state."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.findings import Finding
from repro.lint.sarif import render_sarif, to_sarif


def result_with_findings() -> LintResult:
    new = Finding(
        rule="no-print",
        path="src/repro/x.py",
        line=12,
        col=4,
        message="print() call in library code",
        context="print(x)",
    )
    old = Finding(
        rule="hot-path",
        path="src\\repro\\y.py",  # windows-style separators must normalize
        line=3,
        col=0,
        message="per-row loop",
        context="for i in range(len(rows)):",
    )
    return LintResult(
        findings=[new],
        baselined=[old],
        files=2,
        rule_ids=["no-print", "hot-path"],
    )


def test_sarif_envelope_shape():
    doc = to_sarif(result_with_findings())
    assert doc["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in doc["$schema"]
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"


def test_rule_descriptors_cover_the_run_rules():
    doc = to_sarif(result_with_findings())
    rules = doc["runs"][0]["tool"]["driver"]["rules"]
    ids = {rule["id"] for rule in rules}
    assert {"no-print", "hot-path"} <= ids


def test_results_carry_baseline_state():
    doc = to_sarif(result_with_findings())
    results = doc["runs"][0]["results"]
    states = {
        result["ruleId"]: result["baselineState"] for result in results
    }
    assert states == {"no-print": "new", "hot-path": "unchanged"}


def test_locations_are_one_based_and_uri_normalized():
    doc = to_sarif(result_with_findings())
    by_rule = {r["ruleId"]: r for r in doc["runs"][0]["results"]}
    region = by_rule["no-print"]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 12
    assert region["startColumn"] == 5  # col 4 is 0-based in findings
    uri = by_rule["hot-path"]["locations"][0]["physicalLocation"][
        "artifactLocation"
    ]["uri"]
    assert "\\" not in uri


def test_render_sarif_is_valid_json():
    text = render_sarif(result_with_findings())
    doc = json.loads(text)
    assert doc["runs"][0]["results"]


def test_empty_result_renders_empty_results_array():
    doc = to_sarif(LintResult(files=0, rule_ids=["no-print"]))
    assert doc["runs"][0]["results"] == []
