"""Inline-source fixtures for every lint rule.

Each rule maps to positive fixtures (must produce at least one finding
with that rule id) and negative fixtures (must produce none).  The
meta-test (:mod:`tests.lint.test_meta`) asserts every registered rule
has at least one of each, so adding a rule without fixtures fails CI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: rule id -> ("positive" | "negative") -> [(source, module-override)]
Fixture = Tuple[str, Optional[str]]

RULE_FIXTURES: Dict[str, Dict[str, List[Fixture]]] = {
    "no-print": {
        "positive": [
            ('print("hello")\n', None),
            ('def f():\n    print("nested")\n', "repro.core.units"),
        ],
        "negative": [
            # Strings and docstrings mentioning print are fine (AST-based).
            ('"""usage: print(x)"""\nVALUE = "print(x)"\n', None),
            # The CLIs own stdout.
            ('print("report")\n', "repro.analysis.cli"),
            ('print("report")\n', "repro.analysis.report"),
        ],
    },
    "determinism": {
        "positive": [
            # Unseeded module-state draw reachable from a registered
            # experiment through a helper.
            (
                "import numpy as np\n"
                "\n"
                "def helper():\n"
                "    return np.random.rand(3)\n"
                "\n"
                "def run():\n"
                "    return helper()\n"
                "\n"
                'EXPERIMENTS = {"fig1": run}\n',
                None,
            ),
            # Wall-clock read at module top level runs at import time.
            ("import time\n\nSTART = time.time()\n", None),
            # Environment read reachable from an annotated registry.
            (
                "import os\n"
                "from typing import Callable, Dict\n"
                "\n"
                "def run():\n"
                '    return os.environ.get("KNOB", "0")\n'
                "\n"
                "EXPERIMENTS: Dict[str, Callable] = {\"fig2\": run}\n",
                None,
            ),
        ],
        "negative": [
            # The sanctioned idiom: a seeded generator.
            (
                "import numpy as np\n"
                "\n"
                "def run(seed=0):\n"
                "    rng = np.random.default_rng(seed)\n"
                "    return float(rng.random())\n"
                "\n"
                'EXPERIMENTS = {"fig1": run}\n',
                None,
            ),
            # A sin in a function no experiment reaches is not flagged.
            ("import time\n\ndef helper():\n    return time.time()\n", None),
        ],
    },
    "import-layering": {
        "positive": [
            # core (layer 0) must not import analysis (layer 6).
            ("from repro.analysis import tables\n", "repro.core.units"),
            ("import repro.runtime.executor\n", "repro.trace.model"),
            # obs may import nothing of repro.
            ("from repro.core import units\n", "repro.obs.core"),
            # The injection hooks live below the fault plans: sim must
            # never import the faults package above it.
            ("from repro.faults import FaultPlan\n", "repro.sim.executor"),
            # profiling and faults share a rank; neither may import the
            # other at module level.
            ("from repro.profiling import flame\n", "repro.faults.detect"),
        ],
        "negative": [
            # Downward edges are the point.
            ("from repro.core import units\n", "repro.analysis.report"),
            # faults sits above the layers it injects into...
            ("from repro.sim import StepFaults\n", "repro.faults.injector"),
            ("from repro.sched import CrashSpec\n", "repro.faults.injector"),
            # ...and below its consumers.
            (
                "from repro.faults import score_suite\n",
                "repro.analysis.faults_scenarios",
            ),
            # Function-scoped imports are the sanctioned cycle breaker.
            (
                "def f():\n"
                "    from repro.analysis import tables\n"
                "    return tables\n",
                "repro.core.units",
            ),
            # Same-subpackage imports are not edges.
            ("from repro.core import units\n", "repro.core.hardware"),
        ],
    },
    "fork-safety": {
        "positive": [
            # Mutating a module-level container from a function.
            (
                "CACHE = {}\n"
                "\n"
                "def put(key, item):\n"
                "    CACHE[key] = item\n",
                None,
            ),
            ("SEEN = []\n\ndef note(x):\n    SEEN.append(x)\n", None),
            # global statement rebinding module state.
            (
                "_STATE = None\n"
                "\n"
                "def install(value):\n"
                "    global _STATE\n"
                "    _STATE = value\n",
                None,
            ),
            # Locks and handles created at import time cross the fork.
            ("import threading\n\nLOCK = threading.Lock()\n", None),
        ],
        "negative": [
            # Function-local mutation is private to the call.
            (
                "def f():\n"
                "    cache = {}\n"
                '    cache["a"] = 1\n'
                "    return cache\n",
                None,
            ),
            # Module-level constants that are never mutated.
            ("LIMITS = (1, 2, 3)\nNAMES = {}\n", None),
        ],
    },
    "units-hygiene": {
        "positive": [
            # Magic conversion literals belong in core/units.py.
            ("def gb(n):\n    return n / 1e9\n", None),
            ("def mib(n):\n    return n / (1024 * 1024)\n", None),
            # Non-base-unit name suffixes.
            ("duration_ms = 5\n", None),
            ("def f(size_gb):\n    return size_gb\n", None),
        ],
        "negative": [
            # The units module itself defines the constants.
            ("GB = 1e9\nMIB = 1024 * 1024\n", "repro.core.units"),
            # Base-unit suffixes are the convention.
            ("total_bytes = 10\nelapsed_s = 1.5\n", None),
        ],
    },
    "lock-discipline": {
        "positive": [
            # Guarded write in one method, unguarded read in another.
            (
                "import threading\n"
                "\n"
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._total = 0\n"
                "\n"
                "    def add(self, n):\n"
                "        with self._lock:\n"
                "            self._total += n\n"
                "\n"
                "    def peek(self):\n"
                "        return self._total\n",
                None,
            ),
            # Unguarded write races the guarded one.
            (
                "import threading\n"
                "\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self.lock = threading.Lock()\n"
                "        self.value = None\n"
                "\n"
                "    def set(self, v):\n"
                "        with self.lock:\n"
                "            self.value = v\n"
                "\n"
                "    def reset(self):\n"
                "        self.value = None\n",
                None,
            ),
        ],
        "negative": [
            # Every non-constructor access holds the lock.
            (
                "import threading\n"
                "\n"
                "class Counter:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._total = 0\n"
                "\n"
                "    def add(self, n):\n"
                "        with self._lock:\n"
                "            self._total += n\n"
                "\n"
                "    def peek(self):\n"
                "        with self._lock:\n"
                "            return self._total\n",
                None,
            ),
            # No lock anywhere: nothing establishes a discipline.
            (
                "class Plain:\n"
                "    def __init__(self):\n"
                "        self.value = 0\n"
                "\n"
                "    def bump(self):\n"
                "        self.value += 1\n",
                None,
            ),
            # The justified lock-free read of monotone state.
            (
                "import threading\n"
                "\n"
                "class Monotone:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._version = 0\n"
                "\n"
                "    def bump(self):\n"
                "        with self._lock:\n"
                "            self._version += 1\n"
                "\n"
                "    def peek(self):\n"
                "        # repro: ignore[lock-discipline] monotone counter\n"
                "        return self._version\n",
                None,
            ),
        ],
    },
    "resource-safety": {
        "positive": [
            # The early return leaks the handle on one path.
            (
                "def read_header(path, strict):\n"
                "    fh = open(path)\n"
                "    if strict:\n"
                "        return None\n"
                "    data = fh.read(16)\n"
                "    fh.close()\n"
                "    return data\n",
                None,
            ),
            # The tmp file only commits on one branch.
            (
                "import os\n"
                "\n"
                "def commit(path, payload):\n"
                "    tmp = path.with_name(path.name + '.tmp')\n"
                "    tmp.write_bytes(payload)\n"
                "    if payload:\n"
                "        os.replace(tmp, path)\n",
                None,
            ),
        ],
        "negative": [
            # Context management closes on every path.
            (
                "def read_all(path):\n"
                "    with open(path) as fh:\n"
                "        return fh.read()\n",
                None,
            ),
            # Explicit close on the single exit path.
            (
                "def sizes(path):\n"
                "    fh = open(path)\n"
                "    total = 0\n"
                "    for line in fh:\n"
                "        total += len(line)\n"
                "    fh.close()\n"
                "    return total\n",
                None,
            ),
            # The repo's atomic-write idiom: commit or unlink-and-raise.
            (
                "import os\n"
                "\n"
                "def commit(path, payload):\n"
                "    tmp = path.with_name(path.name + '.tmp')\n"
                "    try:\n"
                "        tmp.write_bytes(payload)\n"
                "        os.replace(tmp, path)\n"
                "    except BaseException:\n"
                "        tmp.unlink()\n"
                "        raise\n",
                None,
            ),
            # Returning the handle transfers ownership to the caller.
            ("def acquire(path):\n    return open(path)\n", None),
        ],
    },
    "exception-contract": {
        "positive": [
            (
                "def call(task):\n"
                "    try:\n"
                "        return task()\n"
                "    except Exception:\n"
                "        return None\n",
                None,
            ),
            # Silent retry: permanent failures loop without a trace.
            (
                "def retry(task):\n"
                "    for _ in range(3):\n"
                "        try:\n"
                "            return task()\n"
                "        except BaseException:\n"
                "            continue\n",
                None,
            ),
        ],
        "negative": [
            # Reporting through the bound name satisfies the contract.
            (
                "def call(task, log):\n"
                "    try:\n"
                "        return task()\n"
                "    except Exception as error:\n"
                "        log.warning('task failed: %s', error)\n"
                "        return None\n",
                None,
            ),
            # Cleanup-and-reraise is the fence idiom.
            (
                "def call(task, undo):\n"
                "    try:\n"
                "        return task()\n"
                "    except BaseException:\n"
                "        undo()\n"
                "        raise\n",
                None,
            ),
            # Narrow catches are outside this rule's contract.
            (
                "def call(task):\n"
                "    try:\n"
                "        return task()\n"
                "    except ValueError:\n"
                "        return None\n",
                None,
            ),
        ],
    },
    "hot-path": {
        "positive": [
            (
                "def listify(column):\n    return column.tolist()\n",
                "repro.core.population",
            ),
            (
                "import numpy as np\n"
                "\n"
                "def grow(items):\n"
                "    out = np.zeros(0)\n"
                "    for item in items:\n"
                "        out = np.append(out, item)\n"
                "    return out\n",
                "repro.sched.engine",
            ),
            (
                "import numpy as np\n"
                "\n"
                "def names(n):\n"
                "    return np.empty(n, dtype=object)\n",
                "repro.trace.columnar",
            ),
            (
                "def total(xs):\n"
                "    acc = 0\n"
                "    for i in range(len(xs)):\n"
                "        acc += xs[i]\n"
                "    return acc\n",
                "repro.core.population",
            ),
        ],
        "negative": [
            # Outside the hot registry the same code is fine.
            ("def listify(column):\n    return column.tolist()\n", None),
            # One concatenate after the loop is the sanctioned shape.
            (
                "import numpy as np\n"
                "\n"
                "def join(chunks):\n"
                "    parts = [np.asarray(c) for c in chunks]\n"
                "    return np.concatenate(parts)\n",
                "repro.core.population",
            ),
            # Direct iteration is not a range(len(...)) loop.
            (
                "def total(xs):\n"
                "    acc = 0\n"
                "    for x in xs:\n"
                "        acc += x\n"
                "    return acc\n",
                "repro.sched.engine",
            ),
        ],
    },
    "api-hygiene": {
        "positive": [
            ("def f(items=[]):\n    return items\n", None),
            ("def f(memo={}):\n    return memo\n", None),
            ("try:\n    pass\nexcept:\n    pass\n", None),
            ("def g(id):\n    return id\n", None),
            ("def f():\n    for list in ([],):\n        pass\n", None),
        ],
        "negative": [
            ("def f(items=None):\n    return items or []\n", None),
            ("try:\n    pass\nexcept ValueError:\n    pass\n", None),
            # Class bodies are their own namespace.
            ("class C:\n    id = 1\n\n    def set(self, v):\n        self.v = v\n", None),
        ],
    },
}
