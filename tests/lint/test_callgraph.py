"""The cross-file call graph and its reachability queries."""

from __future__ import annotations

from repro.lint.callgraph import CallGraph


def diamond() -> CallGraph:
    graph = CallGraph()
    graph.add_function("pkg.a.main", [("pkg.b.left", 3), ("pkg.b.right", 4)])
    graph.add_function("pkg.b.left", [("pkg.c.sink", 7)])
    graph.add_function("pkg.b.right", [("pkg.c.sink", 9)])
    graph.add_function("pkg.c.sink", [])
    graph.add_function("pkg.d.orphan", [("pkg.c.sink", 2)])
    return graph


def test_reach_covers_transitive_callees_only():
    reached = diamond().reach([("exp", "pkg.a.main")])
    assert "pkg.c.sink" in reached
    assert "pkg.b.left" in reached and "pkg.b.right" in reached
    assert "pkg.d.orphan" not in reached


def test_chain_is_a_real_call_path():
    reached = diamond().reach([("exp", "pkg.a.main")])
    chain = reached.chain("pkg.c.sink")
    assert chain[0] == "pkg.a.main"
    assert chain[-1] == "pkg.c.sink"
    # Every hop is an actual edge in the graph.
    graph = diamond()
    for caller, callee in zip(chain, chain[1:]):
        assert callee in {c for c, _line in graph.callees_of(caller)}


def test_origin_labels_the_first_root_that_reached():
    graph = diamond()
    reached = graph.reach(
        [("first", "pkg.b.left"), ("second", "pkg.d.orphan")]
    )
    # sink is reached breadth-first from ``first`` before ``second``'s
    # edge is processed; the label records the winner deterministically.
    assert reached.origin["pkg.c.sink"] == "first"
    assert reached.origin["pkg.d.orphan"] == "second"


def test_edges_to_unregistered_names_are_dropped():
    graph = CallGraph()
    graph.add_function("pkg.a.f", [("numpy.random.seed", 2)])
    reached = graph.reach([("exp", "pkg.a.f")])
    assert "numpy.random.seed" not in reached
    assert reached.chain("pkg.a.f") == ["pkg.a.f"]


def test_unknown_roots_are_ignored():
    reached = diamond().reach([("exp", "pkg.nowhere.f")])
    assert list(reached) == []


def test_add_function_accepts_lists_after_json_round_trip():
    # Summaries pass through the analysis cache as JSON, where tuples
    # come back as lists; the graph must accept both shapes.
    graph = CallGraph()
    graph.add_function("pkg.a.f", [["pkg.b.g", 5]])
    graph.add_function("pkg.b.g", ())
    assert graph.callees_of("pkg.a.f") == [("pkg.b.g", 5)]
    assert "pkg.b.g" in graph.reach([("exp", "pkg.a.f")])


def test_callers_of_reverse_edges():
    graph = diamond()
    callers = {caller for caller, _line in graph.callers_of("pkg.c.sink")}
    assert callers == {"pkg.b.left", "pkg.b.right", "pkg.d.orphan"}


def test_cycles_terminate_and_stay_reachable():
    graph = CallGraph()
    graph.add_function("pkg.a.ping", [("pkg.a.pong", 2)])
    graph.add_function("pkg.a.pong", [("pkg.a.ping", 2)])
    reached = graph.reach([("exp", "pkg.a.ping")])
    assert "pkg.a.pong" in reached
    assert reached.chain("pkg.a.pong") == ["pkg.a.ping", "pkg.a.pong"]
