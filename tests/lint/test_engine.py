"""Engine-level tests: the seeded-violations tree from the issue's
acceptance criteria, parallel equivalence, and the pytest bridge."""

from __future__ import annotations

import pytest

from repro.lint import Baseline, assert_clean, lint_paths, write_baseline


def _seed_tree(root):
    """A package tree carrying exactly the issue's three violations:

    * an unseeded ``np.random`` draw reachable (cross-file) from a
      registered experiment,
    * a ``core`` module importing ``analysis``,
    * a bare ``print``.
    """
    pkg = root / "repro"
    for sub in (pkg, pkg / "core", pkg / "analysis"):
        sub.mkdir(parents=True, exist_ok=True)
        (sub / "__init__.py").write_text("")
    (pkg / "analysis" / "helpers.py").write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def draw():\n"
        "    return np.random.rand(4)\n"
    )
    (pkg / "analysis" / "registry.py").write_text(
        "from repro.analysis import helpers\n"
        "\n"
        "\n"
        "def run_fig1():\n"
        "    return helpers.draw()\n"
        "\n"
        "\n"
        'EXPERIMENTS = {"fig1": run_fig1}\n'
    )
    (pkg / "core" / "helper.py").write_text(
        "from repro.analysis import registry\n"
        "\n"
        "\n"
        "def experiments():\n"
        "    return registry.EXPERIMENTS\n"
    )
    (pkg / "core" / "printer.py").write_text(
        "def shout():\n"
        '    print("loud")\n'
    )
    return pkg


def _by_rule(findings):
    grouped = {}
    for finding in findings:
        grouped.setdefault(finding.rule, []).append(finding)
    return grouped


def test_seeded_violations_are_each_caught_with_location(tmp_path):
    pkg = _seed_tree(tmp_path)
    result = lint_paths([tmp_path])
    grouped = _by_rule(result.findings)

    (determinism,) = grouped["determinism"]
    assert determinism.path.endswith("helpers.py")
    assert determinism.line == 5
    assert "'fig1'" in determinism.message
    assert "repro.analysis.registry.run_fig1" in determinism.message

    (layering,) = grouped["import-layering"]
    assert layering.path == str(pkg / "core" / "helper.py")
    assert layering.line == 1
    assert "repro.core.helper -> repro.analysis" in layering.message

    (no_print,) = grouped["no-print"]
    assert no_print.path == str(pkg / "core" / "printer.py")
    assert no_print.line == 2

    assert set(result.rule_ids) >= {
        "api-hygiene",
        "determinism",
        "fork-safety",
        "import-layering",
        "no-print",
        "units-hygiene",
    }


def test_parallel_jobs_match_serial(tmp_path):
    _seed_tree(tmp_path)
    serial = lint_paths([tmp_path], jobs=1)
    parallel = lint_paths([tmp_path], jobs=2)
    assert serial.findings == parallel.findings
    assert serial.suppressed == parallel.suppressed


def test_baseline_roundtrip_grandfathers_everything(tmp_path):
    _seed_tree(tmp_path)
    dirty = lint_paths([tmp_path])
    assert not dirty.ok

    baseline_path = tmp_path / "baseline.json"
    write_baseline(dirty.findings, baseline_path)
    clean = lint_paths([tmp_path], baseline=Baseline.load(baseline_path))
    assert clean.ok
    assert len(clean.baselined) == len(dirty.findings)
    assert clean.unused_baseline == []


def test_stale_baseline_entries_are_reported(tmp_path):
    pkg = _seed_tree(tmp_path)
    dirty = lint_paths([tmp_path])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(dirty.findings, baseline_path)

    # Fix the print; its baseline entry goes stale.
    (pkg / "core" / "printer.py").write_text("def shout():\n    return 0\n")
    result = lint_paths([tmp_path], baseline=Baseline.load(baseline_path))
    assert result.ok
    stale = [entry.rule for entry in result.unused_baseline]
    assert stale == ["no-print"]


def test_unparseable_file_is_a_finding_not_a_crash(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    result = lint_paths([tmp_path])
    (finding,) = result.findings
    assert finding.rule == "parse-error"
    assert finding.path.endswith("broken.py")


def test_assert_clean_raises_with_rendered_findings(tmp_path):
    _seed_tree(tmp_path)
    with pytest.raises(AssertionError) as excinfo:
        assert_clean([tmp_path])
    assert "no-print" in str(excinfo.value)
    assert "printer.py" in str(excinfo.value)


def test_assert_clean_passes_on_a_clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text("def f(n_bytes):\n    return n_bytes\n")
    result = assert_clean([tmp_path])
    assert result.ok and result.files == 1


def test_rule_selection_restricts_the_run(tmp_path):
    _seed_tree(tmp_path)
    result = lint_paths([tmp_path], rules=["no-print"])
    assert {f.rule for f in result.findings} == {"no-print"}
    with pytest.raises(KeyError):
        lint_paths([tmp_path], rules=["no-such-rule"])
