"""The fast examples must keep running end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "architecture_advisor.py",
    "inference_characterization.py",
    "pearl_vs_ps.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_mentions_the_key_outputs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "step time estimate" in result.stdout
    assert "AllReduce-Local projection" in result.stdout
    assert "100 Gbps" in result.stdout
