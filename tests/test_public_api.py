"""Public-API hygiene: every exported name resolves and is documented."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.graphs",
    "repro.trace",
    "repro.sim",
    "repro.sched",
    "repro.profiling",
    "repro.optim",
    "repro.inference",
    "repro.analysis",
    "repro.serve",
    "repro.faults",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_all_sorted_uniquely(self, package_name):
        package = importlib.import_module(package_name)
        assert len(set(package.__all__)) == len(package.__all__)

    def test_package_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a docstring"


class TestPublicCallablesDocumented:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_exports_have_docstrings(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in package.__all__:
            obj = getattr(package, name)
            if not callable(obj) or not isinstance(obj, type) and not (
                hasattr(obj, "__module__")
            ):
                continue
            # typing aliases (e.g. OptimizationPass) carry no docstring.
            if type(obj).__module__ == "typing":
                continue
            if callable(obj) and not getattr(obj, "__doc__", None):
                undocumented.append(name)
        assert not undocumented, (
            f"{package_name} exports lack docstrings: {undocumented}"
        )


class TestVersion:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
