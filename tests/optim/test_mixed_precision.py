"""The mixed-precision (TensorCore) pass."""

import pytest

from repro.core.architectures import Architecture
from repro.graphs import Deployment, build_bert
from repro.graphs.ops import OpKind
from repro.optim.mixed_precision import (
    NET_MATMUL_SPEEDUP,
    TENSOR_CORE_PEAK_RATIO,
    TENSOR_CORE_UTILIZATION,
    mixed_precision_pass,
)
from repro.sim.executor import simulate_step


@pytest.fixture(scope="module")
def bert():
    return build_bert()


class TestConstants:
    def test_net_speedup_matches_paper(self):
        # 8x TensorCore peak at 35% relative utilization = 2.8x.
        assert NET_MATMUL_SPEEDUP == pytest.approx(2.8)
        assert TENSOR_CORE_PEAK_RATIO == 8.0
        assert 0 < TENSOR_CORE_UTILIZATION < 1


class TestPass:
    def test_marks_matmuls(self, bert):
        transformed = mixed_precision_pass(bert)
        for original, new in zip(bert.forward, transformed.forward):
            if original.matmul_like and original.kind is OpKind.COMPUTE_BOUND:
                assert new.tensor_core
            else:
                assert not new.tensor_core

    def test_halves_matmul_activation_traffic(self, bert):
        transformed = mixed_precision_pass(bert)
        for original, new in zip(bert.forward, transformed.forward):
            if new.tensor_core:
                assert new.memory_access_bytes == pytest.approx(
                    original.memory_access_bytes / 2
                )

    def test_flop_counts_unchanged(self, bert):
        # FLOPs are a workload property; only the execution rate changes.
        transformed = mixed_precision_pass(bert)
        assert transformed.flop_count == bert.flop_count

    def test_leaves_memory_bound_ops_alone(self, bert):
        transformed = mixed_precision_pass(bert)
        for original, new in zip(bert.forward, transformed.forward):
            if original.kind is OpKind.MEMORY_BOUND:
                assert new == original

    def test_pass_is_idempotent(self, bert):
        once = mixed_precision_pass(bert)
        twice = mixed_precision_pass(once)
        assert [op.tensor_core for op in twice.forward] == [
            op.tensor_core for op in once.forward
        ]


class TestEndToEnd:
    def test_compute_time_speedup_is_2_8x(self, bert, testbed):
        deployment = Deployment(
            Architecture.ALLREDUCE_LOCAL, 8, embedding_sync_dense=True
        )
        base = simulate_step(bert, deployment, testbed)
        mp = simulate_step(mixed_precision_pass(bert), deployment, testbed)
        assert base.compute_time / mp.compute_time == pytest.approx(2.8, rel=0.01)

    def test_end_to_end_speedup_in_paper_band(self, bert, testbed):
        # Paper: 1.44x end-to-end for the BERT-class model.
        from repro.core.efficiency import TABLE_VI_EFFICIENCIES

        deployment = Deployment(
            Architecture.ALLREDUCE_LOCAL, 8, embedding_sync_dense=True
        )
        eff = TABLE_VI_EFFICIENCIES["BERT"]
        base = simulate_step(bert, deployment, testbed, eff)
        mp = simulate_step(mixed_precision_pass(bert), deployment, testbed, eff)
        speedup = base.serial_total / mp.serial_total
        assert 1.3 <= speedup <= 1.6
