"""Communication-overlap scheduling (the Sec. V-B middle ground)."""

import pytest

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.timemodel import estimate_breakdown
from repro.optim.overlap import (
    OverlapSchedule,
    overlap_speedup,
    overlapped_step_time,
)


def ps_job(weight=2e9, flops=2e12, **kw):
    defaults = dict(
        name="job",
        architecture=Architecture.PS_WORKER,
        num_cnodes=16,
        batch_size=128,
        flop_count=flops,
        memory_access_bytes=20e9,
        input_bytes=10e6,
        weight_traffic_bytes=weight,
        dense_weight_bytes=weight,
    )
    defaults.update(kw)
    return WorkloadFeatures(**defaults)


class TestBounds:
    def test_between_the_papers_two_extremes(self, hardware):
        features = ps_job()
        breakdown = estimate_breakdown(features, hardware)
        for fraction in (0.0, 0.3, 0.6, 0.9, 1.0):
            overlapped = overlapped_step_time(
                features,
                hardware,
                OverlapSchedule(overlap_fraction=fraction, tail_fraction=0.05),
            )
            assert breakdown.total_ideal_overlap <= overlapped
            assert overlapped <= breakdown.total + 1e-12

    def test_zero_overlap_recovers_non_overlap(self, hardware):
        features = ps_job()
        breakdown = estimate_breakdown(features, hardware)
        overlapped = overlapped_step_time(
            features,
            hardware,
            OverlapSchedule(overlap_fraction=0.0, tail_fraction=0.0),
        )
        assert overlapped == pytest.approx(breakdown.total)

    def test_more_overlap_never_slower(self, hardware):
        features = ps_job()
        times = [
            overlapped_step_time(
                features,
                hardware,
                OverlapSchedule(overlap_fraction=f, tail_fraction=0.05),
            )
            for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert times == sorted(times, reverse=True)


class TestTail:
    def test_tail_limits_the_gain(self, hardware):
        features = ps_job(weight=20e9, flops=1e14)
        no_tail = overlapped_step_time(
            features,
            hardware,
            OverlapSchedule(overlap_fraction=1.0, tail_fraction=0.0),
        )
        big_tail = overlapped_step_time(
            features,
            hardware,
            OverlapSchedule(overlap_fraction=1.0, tail_fraction=0.5),
        )
        assert big_tail > no_tail


class TestSpeedup:
    def test_balanced_jobs_gain_most(self, hardware):
        # Overlap hides communication behind backward compute, so the
        # gain peaks when T_w is comparable to T_c; extreme jobs on
        # either side have little to hide (or nothing to hide behind).
        balanced = ps_job(weight=2.3e9, flops=10e12)  # T_w ~ T_c
        comm_extreme = ps_job(weight=50e9, flops=1e12)
        compute_extreme = ps_job(weight=0.05e9, flops=50e12)
        schedule = OverlapSchedule(overlap_fraction=0.9, tail_fraction=0.05)
        best = overlap_speedup(balanced, hardware, schedule)
        assert best > overlap_speedup(comm_extreme, hardware, schedule)
        assert best > overlap_speedup(compute_extreme, hardware, schedule)

    def test_speedup_at_least_one(self, hardware):
        assert overlap_speedup(ps_job(), hardware) >= 1.0


class TestValidation:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            OverlapSchedule(overlap_fraction=1.5)
        with pytest.raises(ValueError):
            OverlapSchedule(tail_fraction=-0.1)
