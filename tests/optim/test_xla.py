"""The XLA-style fusion pass."""

import pytest

from repro.core.architectures import Architecture
from repro.core.efficiency import TABLE_VI_EFFICIENCIES
from repro.graphs import Deployment, build_speech
from repro.graphs.graph import ModelGraph
from repro.graphs.ops import OpKind, elementwise_op, matmul_op
from repro.optim.xla import (
    CACHE_RESIDENCY_UPLIFT,
    MAX_FUSED_EFFICIENCY,
    fused_memory_efficiency,
    fusion_groups,
    xla_fusion_pass,
)
from repro.sim.executor import simulate_step


def chain_graph():
    """matmul -> 3 fusible elementwise -> matmul -> 1 elementwise."""
    forward = (
        matmul_op("mm1", 8, 8, 8),
        elementwise_op("add", 64, reads=2),
        elementwise_op("relu", 64),
        elementwise_op("scale", 64),
        matmul_op("mm2", 8, 8, 8),
        elementwise_op("softmax", 64, reads=2),
    )
    return ModelGraph(
        name="chain",
        domain="test",
        forward=forward,
        batch_size=1,
        input_bytes_per_sample=64.0,
    )


class TestFusionGroups:
    def test_groups_maximal_runs(self):
        groups = fusion_groups(list(chain_graph().forward))
        sizes = [len(g) for g in groups]
        assert sizes == [1, 3, 1, 1]

    def test_non_fusible_singletons(self):
        groups = fusion_groups([matmul_op("a", 2, 2, 2)])
        assert len(groups) == 1

    def test_empty(self):
        assert fusion_groups([]) == []


class TestFusedEfficiency:
    def test_uplift(self):
        assert fused_memory_efficiency(0.031) == pytest.approx(
            0.031 * CACHE_RESIDENCY_UPLIFT
        )

    def test_cap(self):
        assert fused_memory_efficiency(0.7) == MAX_FUSED_EFFICIENCY

    def test_never_lowers(self):
        # A workload already above the cap keeps its efficiency.
        assert fused_memory_efficiency(0.95) == 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            fused_memory_efficiency(0.0)


class TestPass:
    def test_chain_collapses_to_one_kernel(self):
        fused = xla_fusion_pass(chain_graph())
        memory_ops = [
            op for op in fused.forward if op.kind is OpKind.MEMORY_BOUND
        ]
        assert len(memory_ops) == 2  # the 3-chain and the lone softmax
        assert all(op.fused for op in memory_ops)

    def test_matmuls_pass_through(self):
        fused = xla_fusion_pass(chain_graph())
        matmuls = [op for op in fused.forward if op.matmul_like]
        assert len(matmuls) == 2
        assert all(not op.fused for op in matmuls)

    def test_fusion_reduces_memory_traffic(self):
        graph = chain_graph()
        fused = xla_fusion_pass(graph)
        assert fused.memory_access_bytes < graph.memory_access_bytes

    def test_dematerialization_recovers_unfused_factor(self):
        from repro.graphs.builders.common import amplify_memory

        ops = amplify_memory([elementwise_op("big", 1000)], 8.0)
        graph = ModelGraph(
            name="amp",
            domain="test",
            forward=tuple(ops),
            batch_size=1,
            input_bytes_per_sample=1.0,
        )
        fused = xla_fusion_pass(graph)
        # The 8x materialization inflation is undone by fusion.
        assert fused.forward[0].memory_access_bytes == pytest.approx(
            graph.forward[0].memory_access_bytes / 8.0
        )

    def test_params_preserved(self):
        graph = chain_graph()
        fused = xla_fusion_pass(graph)
        assert fused.dense_trainable_bytes == graph.dense_trainable_bytes

    def test_flops_preserved_within_groups(self):
        graph = chain_graph()
        fused = xla_fusion_pass(graph)
        assert fused.training_totals.flops == pytest.approx(
            graph.training_totals.flops
        )


class TestSpeechFig13b:
    def test_elementwise_speedup_band(self, testbed):
        """Paper: 3.43x element-wise speedup on the Speech model."""
        speech = build_speech()
        deployment = Deployment(Architecture.SINGLE, 1)
        eff = TABLE_VI_EFFICIENCIES["Speech"]
        base = simulate_step(speech, deployment, testbed, eff)
        fused = simulate_step(
            xla_fusion_pass(speech), deployment, testbed, eff
        )
        speedup = base.memory_time / fused.memory_time
        assert 2.7 <= speedup <= 4.0

    def test_end_to_end_speedup_band(self, testbed):
        """Paper: 1.83x end-to-end (we measure ~1.4x; see EXPERIMENTS)."""
        speech = build_speech()
        deployment = Deployment(Architecture.SINGLE, 1)
        eff = TABLE_VI_EFFICIENCIES["Speech"]
        base = simulate_step(speech, deployment, testbed, eff)
        fused = simulate_step(
            xla_fusion_pass(speech), deployment, testbed, eff
        )
        speedup = base.serial_total / fused.serial_total
        assert 1.25 <= speedup <= 2.0
