"""Shared fixtures: hardware configs, traces and case-study models.

Expensive artifacts (the calibrated trace, the six model graphs) are
session-scoped so the suite builds them once.
"""

from __future__ import annotations

import pytest

from repro.core import (
    PAPER_DEFAULT_EFFICIENCY,
    pai_default_hardware,
    testbed_v100_hardware,
)
from repro.graphs import all_case_studies, case_study_deployments
from repro.trace import generate_trace


@pytest.fixture(scope="session")
def hardware():
    """Table I base settings."""
    return pai_default_hardware()


@pytest.fixture(scope="session")
def testbed():
    """The Sec. IV V100 testbed."""
    return testbed_v100_hardware()


@pytest.fixture(scope="session")
def efficiency():
    """The uniform 70% assumption."""
    return PAPER_DEFAULT_EFFICIENCY


@pytest.fixture(scope="session")
def trace():
    """A default-seed synthetic trace, large enough for stable stats."""
    return generate_trace(num_jobs=8000)


@pytest.fixture(scope="session")
def small_trace():
    """A small trace for cheap structural tests."""
    return generate_trace(num_jobs=400, seed=11)


@pytest.fixture(scope="session")
def case_studies():
    """The six Table IV model graphs."""
    return all_case_studies()


@pytest.fixture(scope="session")
def deployments():
    """The Table IV deployments."""
    return case_study_deployments()
