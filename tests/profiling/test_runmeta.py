"""RunMetadata-style traces from simulated steps."""

import pytest

from repro.core.architectures import Architecture
from repro.graphs import Deployment, build_resnet50
from repro.profiling.runmeta import JobMetadata, OpTraceEntry, RunMetadata
from repro.sim.events import TimelineRecord
from repro.sim.executor import simulate_step


@pytest.fixture(scope="module")
def resnet_metadata(testbed):
    measurement = simulate_step(
        build_resnet50(), Deployment(Architecture.ALLREDUCE_LOCAL, 4), testbed
    )
    return RunMetadata.from_measurement(measurement)


class TestOpTraceEntry:
    def test_from_record_converts_to_microseconds(self):
        record = TimelineRecord("op", "gpu0", 0.001, 0.002, "compute", 5.0)
        entry = OpTraceEntry.from_record(record)
        assert entry.start_us == pytest.approx(1000.0)
        assert entry.duration_us == pytest.approx(1000.0)
        assert entry.volume == 5.0


class TestJobMetadata:
    def test_cnodes(self):
        job = JobMetadata(
            "job", Architecture.PS_WORKER, num_workers=4, gpus_per_worker=2
        )
        assert job.num_cnodes == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            JobMetadata("bad", Architecture.PS_WORKER, num_workers=0)
        with pytest.raises(ValueError):
            JobMetadata(
                "bad",
                Architecture.PS_WORKER,
                num_workers=1,
                num_parameter_servers=-1,
            )


class TestRunMetadata:
    def test_entries_sorted_by_start(self, resnet_metadata):
        starts = [e.start_us for e in resnet_metadata.entries]
        assert starts == sorted(starts)

    def test_devices_observed(self, resnet_metadata):
        devices = resnet_metadata.devices()
        assert "server0/pcie" in devices
        assert any(d.startswith("server0/gpu") for d in devices)

    def test_entries_on_device(self, resnet_metadata):
        pcie = resnet_metadata.entries_on("server0/pcie")
        assert pcie
        assert all(e.device == "server0/pcie" for e in pcie)

    def test_categories_present(self, resnet_metadata):
        for category in ("input", "compute", "memory", "weight", "overhead"):
            assert resnet_metadata.entries_of(category), category

    def test_total_volume_positive(self, resnet_metadata):
        assert resnet_metadata.total_volume("compute") > 0
        assert resnet_metadata.total_volume("memory") > 0

    def test_step_span_covers_everything(self, resnet_metadata):
        span = resnet_metadata.step_span_us()
        assert span >= max(e.duration_us for e in resnet_metadata.entries)

    def test_summary_is_busy_time(self, resnet_metadata):
        summary = resnet_metadata.summary()
        assert summary["compute"] == pytest.approx(
            resnet_metadata.busy_time_us("compute")
        )

    def test_empty_metadata(self):
        empty = RunMetadata([])
        assert empty.step_span_us() == 0.0
        assert empty.devices() == []
