"""Feature extraction closes the Fig. 4 loop: profile -> features."""

import pytest

from repro.core.architectures import Architecture
from repro.graphs import Deployment, build_resnet50, features_for
from repro.profiling.extraction import (
    extract_features,
    extract_weight_traffic_by_medium,
)
from repro.profiling.runmeta import JobMetadata, RunMetadata
from repro.sim.executor import simulate_step


@pytest.fixture(scope="module")
def resnet():
    return build_resnet50()


def profile(graph, deployment, testbed):
    measurement = simulate_step(graph, deployment, testbed)
    return RunMetadata.from_measurement(measurement)


class TestRoundTrip:
    """Extracted features must agree with the graph-derived ones."""

    def test_compute_features_roundtrip(self, resnet, testbed):
        deployment = Deployment(Architecture.PS_WORKER, 4)
        metadata = profile(resnet, deployment, testbed)
        job = JobMetadata(
            "resnet", Architecture.PS_WORKER, num_workers=4,
            batch_size=resnet.batch_size,
        )
        extracted = extract_features(metadata, job)
        expected = features_for(resnet, deployment)
        assert extracted.flop_count == pytest.approx(expected.flop_count, rel=0.01)
        assert extracted.memory_access_bytes == pytest.approx(
            expected.memory_access_bytes, rel=0.01
        )
        assert extracted.input_bytes == pytest.approx(
            expected.input_bytes, rel=0.01
        )

    def test_ps_weight_traffic_roundtrip(self, resnet, testbed):
        deployment = Deployment(Architecture.PS_WORKER, 4)
        metadata = profile(resnet, deployment, testbed)
        job = JobMetadata("resnet", Architecture.PS_WORKER, num_workers=4)
        extracted = extract_features(metadata, job)
        expected = features_for(resnet, deployment)
        assert extracted.weight_traffic_bytes == pytest.approx(
            expected.weight_traffic_bytes, rel=0.01
        )

    def test_single_gpu_has_no_traffic(self, resnet, testbed):
        metadata = profile(resnet, Deployment(Architecture.SINGLE, 1), testbed)
        job = JobMetadata("resnet", Architecture.SINGLE, num_workers=1)
        extracted = extract_features(metadata, job)
        assert extracted.weight_traffic_bytes == 0.0


class TestWeightByMedium:
    def test_ps_traffic_crosses_both_hops(self, resnet, testbed):
        metadata = profile(resnet, Deployment(Architecture.PS_WORKER, 4), testbed)
        volumes = extract_weight_traffic_by_medium(metadata)
        assert set(volumes) == {"Ethernet", "PCIe"}
        # The same logical volume crosses each hop once.
        assert volumes["Ethernet"] == pytest.approx(volumes["PCIe"])

    def test_allreduce_uses_nvlink(self, resnet, testbed):
        metadata = profile(
            resnet, Deployment(Architecture.ALLREDUCE_LOCAL, 8), testbed
        )
        volumes = extract_weight_traffic_by_medium(metadata)
        assert set(volumes) == {"NVLink"}


class TestAtRestSizes:
    def test_supplied_from_job_metadata(self, resnet, testbed):
        metadata = profile(resnet, Deployment(Architecture.SINGLE, 1), testbed)
        job = JobMetadata("resnet", Architecture.SINGLE, num_workers=1)
        extracted = extract_features(
            metadata, job, dense_weight_bytes=204e6
        )
        assert extracted.dense_weight_bytes == 204e6
