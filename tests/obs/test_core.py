"""Spans, events, sinks and the process-wide context."""

import io
import json

import pytest

from repro.obs import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    JsonLinesSink,
    MemorySink,
    Observability,
    StderrSink,
    configure,
    get_obs,
    reset_obs,
)


@pytest.fixture(autouse=True)
def fresh_global_obs():
    reset_obs()
    yield
    reset_obs()


def memory_obs():
    sink = MemorySink()
    return Observability(sinks=[sink]), sink


class TestEvents:
    def test_event_carries_ts_kind_level_and_fields(self):
        obs, sink = memory_obs()
        obs.event("cache.hit", level=DEBUG, key="abc")
        (event,) = sink.events
        assert event["kind"] == "cache.hit"
        assert event["level"] == "debug"
        assert event["key"] == "abc"
        assert event["ts"] > 0

    def test_log_levels(self):
        obs, sink = memory_obs()
        obs.debug("d")
        obs.info("i")
        obs.warning("w")
        obs.error("e")
        assert [e["level"] for e in sink.events] == [
            "debug",
            "info",
            "warning",
            "error",
        ]

    def test_no_sinks_is_a_noop(self):
        Observability(sinks=[]).event("anything")  # must not raise


class TestSpans:
    def test_trace_records_wall_and_cpu_durations(self):
        obs, sink = memory_obs()
        with obs.trace("work", id="x"):
            sum(range(1000))
        (span,) = sink.of_kind("span")
        assert span["name"] == "work"
        assert span["id"] == "x"
        assert span["status"] == "ok"
        assert span["wall_s"] >= 0.0
        assert span["cpu_s"] >= 0.0

    def test_nesting_depth(self):
        obs, sink = memory_obs()
        with obs.trace("outer"):
            with obs.trace("inner"):
                pass
        spans = {s["name"]: s for s in sink.of_kind("span")}
        assert spans["outer"]["depth"] == 0
        assert spans["inner"]["depth"] == 1

    def test_exception_marks_span_error_and_propagates(self):
        obs, sink = memory_obs()
        with pytest.raises(RuntimeError):
            with obs.trace("doomed"):
                raise RuntimeError("boom")
        (span,) = sink.of_kind("span")
        assert span["status"] == "error"

    def test_span_observes_a_timer(self):
        obs, _ = memory_obs()
        with obs.trace("work"):
            pass
        assert obs.metrics.timer("span.work").count == 1


class TestStderrSink:
    def test_filters_below_threshold(self):
        stream = io.StringIO()
        obs = Observability(sinks=[StderrSink(WARNING, stream=stream)])
        obs.info("hidden")
        obs.warning("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output
        assert "WARNING" in output

    def test_span_line_is_indented_by_depth(self):
        stream = io.StringIO()
        obs = Observability(sinks=[StderrSink(DEBUG, stream=stream)])
        with obs.trace("outer"):
            with obs.trace("inner"):
                pass
        lines = stream.getvalue().splitlines()
        # inner is one level deep: two extra spaces before "span".
        assert any("DEBUG   span inner" in line for line in lines)
        assert any("DEBUG span outer" in line for line in lines)


class TestJsonLinesSink:
    def test_writes_one_valid_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs = Observability(sinks=[JsonLinesSink(path)])
        obs.event("a", n=1)
        with obs.trace("t"):
            pass
        obs.close()
        lines = path.read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert [e["kind"] for e in events] == ["a", "span"]

    def test_appends_across_reopens(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for n in range(2):
            obs = Observability(sinks=[JsonLinesSink(path)])
            obs.event("tick", n=n)
            obs.close()
        assert len(path.read_text().splitlines()) == 2

    def test_records_all_levels_unfiltered(self, tmp_path):
        path = tmp_path / "events.jsonl"
        obs = Observability(sinks=[JsonLinesSink(path)])
        obs.debug("fine-grained")
        obs.close()
        assert "fine-grained" in path.read_text()


class TestGlobalContext:
    def test_get_obs_returns_one_instance(self):
        assert get_obs() is get_obs()

    def test_default_is_warnings_only_stderr(self):
        (sink,) = get_obs().sinks
        assert isinstance(sink, StderrSink)
        assert sink.min_level == WARNING

    def test_configure_levels(self, tmp_path):
        obs = configure(verbose=True)
        assert obs.sinks[0].min_level == DEBUG
        obs = configure(quiet=True)
        assert obs.sinks[0].min_level == ERROR
        obs = configure()
        assert obs.sinks[0].min_level == INFO

    def test_configure_adds_json_sink(self, tmp_path):
        path = tmp_path / "e.jsonl"
        obs = configure(json_path=path)
        obs.event("x")
        obs.close()
        assert path.exists()

    def test_configure_rejects_verbose_and_quiet(self):
        with pytest.raises(ValueError):
            configure(verbose=True, quiet=True)

    def test_emit_summary_carries_metric_snapshot(self):
        obs = get_obs()
        sink = obs.add_sink(MemorySink())
        obs.metrics.counter("cache.hit").inc(2)
        obs.emit_summary()
        (summary,) = sink.of_kind("summary")
        assert summary["metrics"]["counters"]["cache.hit"] == 2
