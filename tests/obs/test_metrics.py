"""Counters, gauges, timers and the registry."""

import pytest

from repro.obs import MetricRegistry, render_summary_table


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricRegistry()
        counter = registry.counter("hits")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_same_name_same_metric(self):
        registry = MetricRegistry()
        registry.counter("hits").inc()
        assert registry.counter("hits").value == 1

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("hits").inc(-1)


class TestGauge:
    def test_tracks_value_and_extremes(self):
        gauge = MetricRegistry().gauge("depth")
        for value in (3, 10, 2):
            gauge.set(value)
        assert gauge.value == 2
        assert gauge.max_value == 10
        assert gauge.min_value == 2

    def test_untouched_gauges_are_omitted_from_snapshots(self):
        registry = MetricRegistry()
        registry.gauge("idle")
        assert registry.snapshot()["gauges"] == {}


class TestTimer:
    def test_aggregates_observations(self):
        timer = MetricRegistry().timer("step")
        timer.observe(0.1)
        timer.observe(0.3)
        assert timer.count == 2
        assert timer.total_s == pytest.approx(0.4)
        assert timer.mean_s == pytest.approx(0.2)
        assert timer.min_s == pytest.approx(0.1)
        assert timer.max_s == pytest.approx(0.3)

    def test_time_context_manager(self):
        registry = MetricRegistry()
        with registry.time("block"):
            pass
        timer = registry.timer("block")
        assert timer.count == 1
        assert timer.total_s >= 0.0


class TestRegistry:
    def test_snapshot_is_json_native(self):
        import json

        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1.5)
        registry.timer("t").observe(0.2)
        json.dumps(registry.snapshot())

    def test_reset_drops_everything(self):
        registry = MetricRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.counter("c").value == 0

    def test_summary_table_lists_every_metric(self):
        registry = MetricRegistry()
        registry.counter("cache.hit").inc(12)
        registry.gauge("pool.workers").set(4)
        registry.timer("experiment").observe(1.0)
        table = render_summary_table(registry)
        assert "cache.hit" in table
        assert "12" in table
        assert "pool.workers" in table
        assert "experiment" in table

    def test_empty_summary_table(self):
        assert "no metrics" in render_summary_table(MetricRegistry())
