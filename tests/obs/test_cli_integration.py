"""The CLI wires obs flags through and leaves stdout untouched."""

import json

import pytest

from repro.analysis.cli import build_parser, main
from repro.analysis.result import ExperimentResult
from repro.obs import reset_obs


@pytest.fixture(autouse=True)
def fresh_obs():
    reset_obs()
    yield
    reset_obs()


@pytest.fixture()
def toy_suite(monkeypatch):
    import repro.analysis.registry as registry_module

    def toy(experiment_id):
        return lambda: ExperimentResult(
            experiment=experiment_id, title="toy", rows=[{"v": 1}]
        )

    monkeypatch.setattr(
        registry_module,
        "EXPERIMENTS",
        {"alpha": toy("alpha"), "beta": toy("beta")},
    )


class TestParser:
    def test_obs_flags_on_all_report_trace(self):
        parser = build_parser()
        for argv in (
            ["all", "-v", "--log-json", "e.jsonl"],
            ["report", "-q"],
            ["trace", "--log-json", "e.jsonl"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "log_json")

    def test_verbose_and_quiet_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["all", "-v", "-q"])


class TestAllCommand:
    def test_log_json_captures_spans_and_summary(
        self, toy_suite, tmp_path, capsys
    ):
        events_path = tmp_path / "events.jsonl"
        rc = main(
            ["all", "--jobs", "1", "--no-cache", "--log-json", str(events_path)]
        )
        assert rc == 0
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        spans = [
            e
            for e in events
            if e["kind"] == "span" and e.get("name") == "experiment"
        ]
        assert {s["id"] for s in spans} == {"alpha", "beta"}
        (summary,) = [e for e in events if e["kind"] == "summary"]
        assert summary["metrics"]["counters"]["experiments.ok"] == 2

    def test_summary_table_goes_to_stderr_not_stdout(
        self, toy_suite, capsys
    ):
        assert main(["all", "--jobs", "1", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "run summary:" in captured.err
        assert "run summary:" not in captured.out

    def test_quiet_suppresses_the_summary_table(self, toy_suite, capsys):
        assert main(["all", "--jobs", "1", "--no-cache", "-q"]) == 0
        assert "run summary:" not in capsys.readouterr().err

    def test_cache_counters_reach_the_event_log(
        self, toy_suite, tmp_path, capsys
    ):
        events_path = tmp_path / "events.jsonl"
        cache_args = [
            "all",
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(cache_args) == 0
        reset_obs()
        assert main(cache_args + ["--log-json", str(events_path)]) == 0
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        (summary,) = [e for e in events if e["kind"] == "summary"]
        counters = summary["metrics"]["counters"]
        assert counters["cache.hit"] == 2
        spans = [
            e
            for e in events
            if e["kind"] == "span" and e.get("name") == "experiment"
        ]
        assert all(s["cached"] for s in spans)

    def test_warm_stdout_is_byte_identical_to_cold(
        self, toy_suite, tmp_path, capsys
    ):
        args = [
            "all",
            "--jobs",
            "1",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--log-json",
            str(tmp_path / "events.jsonl"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        reset_obs()
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert warm == cold
