"""Property-based invariants of the extension modules."""

import json

import pytest

from hypothesis import given
from hypothesis import strategies as st

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.hardware import pai_default_hardware
from repro.core.recommend import recommend_architecture
from repro.core.timemodel import estimate_breakdown
from repro.optim.overlap import OverlapSchedule, overlapped_step_time
from repro.trace.schema import JobRecord
from repro.trace.serialization import job_from_dict, job_to_dict

HARDWARE = pai_default_hardware()

positive = st.floats(min_value=1.0, max_value=1e14, allow_nan=False)


@st.composite
def jobs(draw):
    architecture = draw(
        st.sampled_from(
            [
                Architecture.SINGLE,
                Architecture.LOCAL_CENTRALIZED,
                Architecture.PS_WORKER,
                Architecture.ALLREDUCE_LOCAL,
                Architecture.PEARL,
            ]
        )
    )
    max_cnodes = min(architecture.max_local_cnodes, 128)
    traffic = (
        0.0 if architecture is Architecture.SINGLE else draw(positive)
    )
    features = WorkloadFeatures(
        name=draw(st.text(min_size=1, max_size=20)),
        architecture=architecture,
        num_cnodes=draw(st.integers(1 if architecture is Architecture.SINGLE else 2, max_cnodes))
        if architecture is not Architecture.SINGLE
        else 1,
        batch_size=draw(st.integers(1, 4096)),
        flop_count=draw(positive),
        memory_access_bytes=draw(positive),
        input_bytes=draw(positive),
        weight_traffic_bytes=traffic,
        dense_weight_bytes=draw(positive),
        embedding_weight_bytes=draw(st.floats(0.0, 1e12)),
    )
    return JobRecord(
        job_id=draw(st.integers(0, 10**9)),
        features=features,
        submit_day=draw(st.integers(0, 50)),
        user_group=draw(st.text(min_size=1, max_size=12)),
    )


class TestSerializationProperties:
    @given(job=jobs())
    def test_round_trip_identity(self, job):
        assert job_from_dict(job_to_dict(job)) == job

    @given(job=jobs())
    def test_survives_real_json(self, job):
        payload = json.loads(json.dumps(job_to_dict(job)))
        assert job_from_dict(payload) == job


class TestOverlapProperties:
    @given(
        job=jobs(),
        fraction=st.floats(0.0, 1.0),
        tail=st.floats(0.0, 1.0),
    )
    def test_always_between_the_extremes(self, job, fraction, tail):
        breakdown = estimate_breakdown(job.features, HARDWARE)
        overlapped = overlapped_step_time(
            job.features,
            HARDWARE,
            OverlapSchedule(overlap_fraction=fraction, tail_fraction=tail),
        )
        assert breakdown.total_ideal_overlap - 1e-9 <= overlapped
        assert overlapped <= breakdown.total + 1e-9


class TestRecommendProperties:
    @given(job=jobs())
    def test_at_least_one_feasible_plan(self, job):
        # PS/Worker hosts anything, so recommendations are never empty.
        assert recommend_architecture(job.features, HARDWARE)

    @given(job=jobs())
    def test_ranking_sorted_by_throughput(self, job):
        ranked = recommend_architecture(job.features, HARDWARE)
        throughputs = [r.throughput for r in ranked]
        assert throughputs == sorted(throughputs, reverse=True)

    @given(job=jobs())
    def test_recommended_deployments_are_valid_features(self, job):
        for recommendation in recommend_architecture(job.features, HARDWARE):
            deployed = job.features.with_architecture(
                recommendation.plan.architecture,
                num_cnodes=recommendation.plan.num_cnodes,
            )
            assert estimate_breakdown(deployed, HARDWARE).total > 0


class TestClassifyProperties:
    @given(job=jobs())
    def test_label_matches_dominant_component(self, job):
        from repro.core.classify import Bottleneck, classify

        labeled = classify(job.features, HARDWARE)
        if labeled.label is not Bottleneck.BALANCED:
            expected = {
                "weight": Bottleneck.COMMUNICATION,
                "compute_bound": Bottleneck.COMPUTE,
                "memory_bound": Bottleneck.MEMORY,
                "data_io": Bottleneck.INPUT_IO,
            }[labeled.dominant_component]
            assert labeled.label is expected
            assert labeled.dominant_share >= 0.5
        else:
            assert labeled.dominant_share < 0.5

    @given(job=jobs())
    def test_dominant_share_is_the_max_fraction(self, job):
        from repro.core.classify import classify

        labeled = classify(job.features, HARDWARE)
        fractions = estimate_breakdown(job.features, HARDWARE).fractions()
        assert labeled.dominant_share == pytest.approx(max(fractions.values()))
