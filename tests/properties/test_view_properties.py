"""Property tests: lazy ``FeatureView`` rows are bit-identical twins.

A :class:`~repro.core.population.FeatureView` must be indistinguishable
from the eager :class:`~repro.core.features.WorkloadFeatures` it
shadows -- every schema field, every derived property, equality in both
directions, and hashing (so views and records interchange as dict
keys).  Hypothesis drives arbitrary valid feature tuples through both
backing sources: columns packed from objects
(:meth:`FeatureArrays.from_workloads`) and columns decoded from an
on-disk columnar store.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import Architecture
from repro.core.features import FEATURE_FIELDS, WorkloadFeatures
from repro.core.population import FeatureArrays, FeatureView
from repro.trace.columnar import ColumnarTrace, write_columnar
from repro.trace.schema import JobRecord

positive = st.floats(min_value=1.0, max_value=1e15)
non_negative = st.floats(min_value=0.0, max_value=1e12)


@st.composite
def workload(draw):
    architecture = draw(st.sampled_from(list(Architecture)))
    num_cnodes = draw(
        st.integers(
            min_value=1, max_value=min(architecture.max_local_cnodes, 128)
        )
    )
    if architecture is Architecture.SINGLE:
        weight_traffic = 0.0
        embedding_traffic = 0.0
    else:
        weight_traffic = draw(positive)
        embedding_traffic = draw(
            st.floats(min_value=0.0, max_value=weight_traffic)
        )
    return WorkloadFeatures(
        name=draw(st.text(min_size=1, max_size=24)),
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=draw(st.integers(min_value=1, max_value=65536)),
        flop_count=draw(positive),
        memory_access_bytes=draw(positive),
        input_bytes=draw(non_negative),
        weight_traffic_bytes=weight_traffic,
        embedding_traffic_bytes=embedding_traffic,
        dense_weight_bytes=draw(non_negative),
        embedding_weight_bytes=draw(non_negative),
    )


def _assert_view_is_twin(view, features):
    # Every schema field, bit for bit (floats compared by equality,
    # which for the columnar round trip means identical bits).
    for field_name in FEATURE_FIELDS:
        assert getattr(view, field_name) == getattr(features, field_name), (
            field_name
        )
        observed = getattr(view, field_name)
        assert type(observed) is type(getattr(features, field_name)), (
            field_name
        )
    # Derived properties route through the same columns.
    assert view.weight_bytes == features.weight_bytes
    assert view.dense_traffic_bytes == features.dense_traffic_bytes
    assert view.local_cnodes_per_server == features.local_cnodes_per_server
    # Equality is symmetric across the type boundary, and hashes agree
    # so views and eager tuples interchange as dict keys.
    assert view == features
    assert features == view
    assert not view != features
    assert hash(view) == hash(features)
    assert {features: "eager"}[view] == "eager"
    # Materialization reconstructs the exact frozen dataclass.
    materialized = view.materialize()
    assert type(materialized) is WorkloadFeatures
    assert materialized == features


@settings(max_examples=40, deadline=None)
@given(st.lists(workload(), min_size=1, max_size=30))
def test_views_over_object_packed_columns(population):
    arrays = FeatureArrays.from_workloads(population)
    views = list(arrays.iter_views())
    assert len(views) == len(population)
    for view, features in zip(views, population):
        assert isinstance(view, FeatureView)
        _assert_view_is_twin(view, features)


@settings(max_examples=15, deadline=None)
@given(st.lists(workload(), min_size=1, max_size=30))
def test_views_over_columnar_store(tmp_path_factory, population):
    path = tmp_path_factory.mktemp("views") / "trace.columnar"
    records = [
        JobRecord(job_id=i, features=f, submit_day=i % 5)
        for i, f in enumerate(population)
    ]
    write_columnar(records, path, shard_rows=7)
    store = ColumnarTrace.open(path)
    views = list(store.feature_arrays().iter_views())
    assert len(views) == len(population)
    for view, features in zip(views, population):
        _assert_view_is_twin(view, features)
    # Full job views too: scheduling metadata plus feature equality.
    for job_view, record in zip(store.iter_views(), records):
        assert job_view == record
        assert record == job_view
        assert hash(job_view) == hash(record)
        assert job_view.workload_type is record.workload_type
        assert job_view.num_cnodes == record.num_cnodes


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_view_gather_rebuilds_identical_columns(data):
    """``from_workloads`` over views (the fast gather path) must equal
    the arrays built from the eager objects, column for column."""
    import dataclasses

    import numpy as np

    population = data.draw(st.lists(workload(), min_size=1, max_size=20))
    order = data.draw(st.permutations(range(len(population))))
    arrays = FeatureArrays.from_workloads(population)
    views = [arrays.view(i) for i in order]
    gathered = FeatureArrays.from_workloads(views)
    eager = FeatureArrays.from_workloads([population[i] for i in order])
    for field in dataclasses.fields(FeatureArrays):
        ours = np.asarray(getattr(gathered, field.name))
        theirs = np.asarray(getattr(eager, field.name))
        assert ours.dtype == theirs.dtype, field.name
        assert ours.tobytes() == theirs.tobytes(), field.name
