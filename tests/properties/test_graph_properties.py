"""Property-based invariants of the op/graph substrate and passes."""

from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.graph import ModelGraph
from repro.graphs.ops import (
    backward_ops,
    conv2d_op,
    conv2d_output_hw,
    elementwise_op,
    embedding_lookup_op,
    matmul_op,
)
from repro.optim.mixed_precision import mixed_precision_pass
from repro.optim.xla import xla_fusion_pass
from repro.sim.collectives import (
    allgatherv_time,
    reduce_scatter_time,
    ring_allreduce_time,
)

dims = st.integers(min_value=1, max_value=512)


class TestOpMath:
    @given(m=dims, k=dims, n=dims, batch=st.integers(1, 64))
    def test_matmul_flops_linear_in_batch(self, m, k, n, batch):
        single = matmul_op("a", m, k, n, batch=1)
        batched = matmul_op("a", m, k, n, batch=batch)
        assert batched.flops == single.flops * batch

    @given(
        hw=st.integers(4, 256),
        kernel=st.sampled_from([1, 3, 5, 7]),
        stride=st.sampled_from([1, 2]),
    )
    def test_conv_output_never_larger(self, hw, kernel, stride):
        out_h, out_w = conv2d_output_hw(hw, hw, kernel, stride)
        assert 1 <= out_h <= hw
        assert out_h == (hw + stride - 1) // stride

    @given(
        elements=st.floats(min_value=1, max_value=1e9),
        reads=st.integers(1, 5),
        writes=st.integers(1, 3),
    )
    def test_elementwise_access_formula(self, elements, reads, writes):
        op = elementwise_op("e", elements, reads=reads, writes=writes)
        assert op.memory_access_bytes == elements * (reads + writes) * 4

    @given(vocab=st.integers(10, 10**8), dim=dims, lookups=st.integers(1, 10**6))
    def test_embedding_access_independent_of_vocab(self, vocab, dim, lookups):
        small = embedding_lookup_op("e", vocab, dim, lookups)
        large = embedding_lookup_op("e", vocab * 2, dim, lookups)
        assert small.memory_access_bytes == large.memory_access_bytes
        assert large.param_bytes == 2 * small.param_bytes


class TestBackward:
    @given(m=dims, k=dims, n=dims)
    def test_backward_never_cheaper(self, m, k, n):
        forward = [matmul_op("mm", m, k, n)]
        grads = backward_ops(forward)
        assert grads[0].flops >= forward[0].flops


def graph_of(ops):
    return ModelGraph(
        name="prop",
        domain="test",
        forward=tuple(ops),
        batch_size=1,
        input_bytes_per_sample=1.0,
    )


@st.composite
def random_graphs(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    ops = []
    for index in range(count):
        kind = draw(st.sampled_from(["matmul", "conv", "elementwise"]))
        if kind == "matmul":
            ops.append(
                matmul_op(
                    f"mm{index}",
                    draw(dims),
                    draw(dims),
                    draw(dims),
                )
            )
        elif kind == "conv":
            ops.append(
                conv2d_op(
                    f"c{index}",
                    batch=1,
                    height=draw(st.integers(4, 64)),
                    width=draw(st.integers(4, 64)),
                    in_channels=draw(st.integers(1, 16)),
                    out_channels=draw(st.integers(1, 16)),
                    kernel=draw(st.sampled_from([1, 3])),
                )
            )
        else:
            ops.append(
                elementwise_op(
                    f"e{index}",
                    draw(st.floats(min_value=1, max_value=1e6)),
                    reads=draw(st.integers(1, 3)),
                )
            )
    return graph_of(ops)


class TestPassInvariants:
    @given(graph=random_graphs())
    def test_xla_never_increases_memory_traffic(self, graph):
        fused = xla_fusion_pass(graph)
        assert fused.memory_access_bytes <= graph.memory_access_bytes + 1e-6

    @given(graph=random_graphs())
    def test_xla_never_increases_op_count(self, graph):
        fused = xla_fusion_pass(graph)
        assert len(fused.forward) <= len(graph.forward)

    @given(graph=random_graphs())
    def test_xla_preserves_params(self, graph):
        fused = xla_fusion_pass(graph)
        assert abs(
            fused.dense_trainable_bytes - graph.dense_trainable_bytes
        ) < 1e-6

    @given(graph=random_graphs())
    def test_mp_preserves_flops_and_halves_matmul_traffic(self, graph):
        transformed = mixed_precision_pass(graph)
        assert transformed.flop_count == graph.flop_count
        for original, new in zip(graph.forward, transformed.forward):
            assert new.memory_access_bytes <= original.memory_access_bytes

    @given(graph=random_graphs())
    def test_passes_commute_on_totals(self, graph):
        mp_then_xla = xla_fusion_pass(mixed_precision_pass(graph))
        xla_then_mp = mixed_precision_pass(xla_fusion_pass(graph))
        assert mp_then_xla.flop_count == xla_then_mp.flop_count
        assert abs(
            mp_then_xla.memory_access_bytes - xla_then_mp.memory_access_bytes
        ) <= 1e-6 * max(mp_then_xla.memory_access_bytes, 1.0)


class TestCollectiveBounds:
    @given(
        num_bytes=st.floats(min_value=1, max_value=1e12),
        nodes=st.integers(min_value=2, max_value=1024),
    )
    def test_ring_volume_bounded_by_2s(self, num_bytes, nodes):
        cost = ring_allreduce_time(num_bytes, nodes, 1e9, efficiency=1.0)
        assert cost.volume_per_node <= 2 * num_bytes
        assert cost.volume_per_node >= num_bytes  # at least S for n >= 2

    @given(
        num_bytes=st.floats(min_value=1, max_value=1e12),
        nodes=st.integers(min_value=2, max_value=64),
    )
    def test_mesh_never_slower_than_ring(self, num_bytes, nodes):
        ring = allgatherv_time(num_bytes, nodes, 1e9, topology="ring")
        mesh = allgatherv_time(num_bytes, nodes, 1e9, topology="mesh")
        assert mesh.seconds <= ring.seconds
        ring_rs = reduce_scatter_time(num_bytes, nodes, 1e9, topology="ring")
        mesh_rs = reduce_scatter_time(num_bytes, nodes, 1e9, topology="mesh")
        assert mesh_rs.seconds <= ring_rs.seconds
