"""Safety invariants of the repro.sched engine, property-tested.

For arbitrary job mixes and any policy: no job starts before it
arrives, the fleet's per-server GPU capacity is never exceeded at any
instant, preemption conserves every job's work, and the whole schedule
is deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.sched import (
    BackfillPolicy,
    FifoPolicy,
    Fleet,
    PriorityPolicy,
    SjfPolicy,
    run_schedule,
)
from repro.trace.schema import JobRecord

GPUS_PER_SERVER = 8
NUM_SERVERS = 3

POLICIES = [FifoPolicy(), SjfPolicy(), BackfillPolicy(), PriorityPolicy()]


@st.composite
def job_lists(draw):
    count = draw(st.integers(min_value=1, max_value=25))
    jobs = []
    for index in range(count):
        architecture = draw(
            st.sampled_from(
                [
                    Architecture.SINGLE,
                    Architecture.LOCAL_CENTRALIZED,
                    Architecture.ALLREDUCE_LOCAL,
                    Architecture.ALLREDUCE_CLUSTER,
                    Architecture.PS_WORKER,
                ]
            )
        )
        if architecture is Architecture.SINGLE:
            cnodes = 1
        elif architecture.is_local:
            cnodes = draw(st.integers(2, GPUS_PER_SERVER))
        elif architecture is Architecture.PS_WORKER:
            cnodes = draw(st.integers(2, NUM_SERVERS))
        else:
            cnodes = draw(st.integers(2, NUM_SERVERS * GPUS_PER_SERVER))
        features = WorkloadFeatures(
            name=f"job-{index}",
            architecture=architecture,
            num_cnodes=cnodes,
            batch_size=32,
            flop_count=1e9,
            memory_access_bytes=1e6,
            input_bytes=1e3,
            weight_traffic_bytes=0.0
            if architecture is Architecture.SINGLE
            else 1e6,
            dense_weight_bytes=1e6,
        )
        jobs.append(
            JobRecord(
                job_id=index,
                features=features,
                submit_day=draw(st.integers(0, 3)),
            )
        )
    durations = {
        job.job_id: draw(
            st.floats(min_value=0.1, max_value=30.0, allow_nan=False)
        )
        for job in jobs
    }
    policy = draw(st.sampled_from(POLICIES))
    return jobs, durations, policy


def run(jobs, durations, policy):
    return run_schedule(
        jobs, Fleet(NUM_SERVERS, GPUS_PER_SERVER), policy, durations=durations
    )


@given(job_lists())
@settings(max_examples=60, deadline=None)
def test_no_job_starts_before_arrival(case):
    jobs, durations, policy = case
    outcome = run(jobs, durations, policy)
    for job_outcome in outcome.outcomes:
        assert job_outcome.first_start_hour >= job_outcome.arrival_hour - 1e-9
        previous_end = None
        for segment in job_outcome.segments:
            assert segment.end_hour >= segment.start_hour
            if previous_end is not None:
                # Segments never overlap or run backwards in time.
                assert segment.start_hour >= previous_end - 1e-9
            previous_end = segment.end_hour


@given(job_lists())
@settings(max_examples=60, deadline=None)
def test_capacity_never_exceeded(case):
    jobs, durations, policy = case
    outcome = run(jobs, durations, policy)
    segments = [
        segment
        for job_outcome in outcome.outcomes
        for segment in job_outcome.segments
    ]
    boundaries = sorted({segment.start_hour for segment in segments})
    for instant in boundaries:
        per_server = [0] * NUM_SERVERS
        for segment in segments:
            if segment.start_hour <= instant < segment.end_hour:
                for index, count in enumerate(segment.placement.gpus_by_server):
                    per_server[index] += count
        assert all(count <= GPUS_PER_SERVER for count in per_server)


@given(job_lists())
@settings(max_examples=60, deadline=None)
def test_work_is_conserved(case):
    jobs, durations, policy = case
    outcome = run(jobs, durations, policy)
    # Placed + rejected partitions the trace, and every placed job runs
    # exactly its service time across all its segments -- preemption
    # pauses work but never loses or duplicates it.
    assert len(outcome.outcomes) + len(outcome.rejected) == len(jobs)
    for job_outcome in outcome.outcomes:
        assert job_outcome.executed_hours == (
            pytest.approx(durations[job_outcome.job.job_id])
        )


@given(job_lists())
@settings(max_examples=25, deadline=None)
def test_schedule_is_deterministic(case):
    jobs, durations, policy = case
    first = run(jobs, durations, policy)
    second = run(jobs, durations, policy)
    assert first.outcomes == second.outcomes
    assert first.rejected == second.rejected
    assert first.telemetry == second.telemetry
