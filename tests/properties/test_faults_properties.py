"""Determinism of the fault-injection pipeline, property-tested.

For *any* suite seed: generating the scenario, injecting it, capturing
its telemetry and grading the diagnosis is a pure function of the seed
-- the canonical event streams and the graded scores are identical
across repeated runs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    canonical_events,
    capture,
    events_digest,
    run_scenario,
    scenario_specs,
)
from repro.faults.scenarios import _run_sched_scenario, _run_sim_scenario

seeds = st.integers(min_value=0, max_value=2**31 - 1)
# scenario_id mod 5 selects the fault kind, so 0..4 covers all five.
scenario_ids = st.integers(min_value=0, max_value=4)


def _capture_stream(spec):
    with capture() as sink:
        if spec.is_sched:
            _run_sched_scenario(spec)
        else:
            _run_sim_scenario(spec)
    return canonical_events(sink.events), events_digest(sink.events)


@settings(max_examples=10, deadline=None)
@given(seed=seeds, scenario_id=scenario_ids)
def test_event_stream_is_a_pure_function_of_the_seed(seed, scenario_id):
    spec = scenario_specs(scenario_id + 1, seed=seed)[scenario_id]
    first_events, first_digest = _capture_stream(spec)
    second_events, second_digest = _capture_stream(spec)
    assert first_events == second_events
    assert first_digest == second_digest
    assert len(first_events) > 0


@settings(max_examples=10, deadline=None)
@given(seed=seeds, scenario_id=scenario_ids)
def test_scores_reproduce_for_any_seed(seed, scenario_id):
    spec = scenario_specs(scenario_id + 1, seed=seed)[scenario_id]
    assert run_scenario(spec) == run_scenario(spec)


@settings(max_examples=25, deadline=None)
@given(seed=seeds, count=st.integers(min_value=1, max_value=8))
def test_specs_reproduce_and_validate_for_any_seed(seed, count):
    first = scenario_specs(count, seed=seed)
    second = scenario_specs(count, seed=seed)
    assert first == second
    for spec in first:
        fault = spec.fault
        # Construction re-runs FaultSpec validation; the window is live.
        assert fault.active_at(fault.onset)
        assert not fault.active_at(fault.onset + fault.duration)
