"""Property: the columnar batch path matches the scalar time model.

The vectorized evaluation in :mod:`repro.core.population` mirrors
:func:`repro.core.timemodel.estimate_breakdown` term by term, so every
component of every job must agree to within 1e-9 relative -- across all
architectures, cluster sizes and feature magnitudes hypothesis throws
at it.
"""

import math

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.hardware import pai_default_hardware
from repro.core.population import (
    FeatureArrays,
    batch_breakdowns,
    batch_projection_speedups,
    batch_step_times,
)
from repro.core.projection import projection_speedups
from repro.core.timemodel import estimate_breakdown

HARDWARE = pai_default_hardware()

RTOL = 1e-9

positive = st.floats(min_value=1.0, max_value=1e14, allow_nan=False)


@st.composite
def workloads(draw):
    architecture = draw(
        st.sampled_from(
            [
                Architecture.SINGLE,
                Architecture.LOCAL_CENTRALIZED,
                Architecture.PS_WORKER,
                Architecture.ALLREDUCE_LOCAL,
                Architecture.PEARL,
            ]
        )
    )
    max_cnodes = min(architecture.max_local_cnodes, 128)
    traffic = (
        0.0 if architecture is Architecture.SINGLE else draw(positive)
    )
    # Embedding traffic is a subset of the total sync volume.
    embedding_traffic = (
        traffic * draw(st.floats(min_value=0.0, max_value=1.0))
        if architecture is Architecture.PEARL
        else 0.0
    )
    return WorkloadFeatures(
        name="prop",
        architecture=architecture,
        num_cnodes=draw(st.integers(min_value=1, max_value=max_cnodes)),
        batch_size=draw(st.integers(min_value=1, max_value=4096)),
        flop_count=draw(positive),
        memory_access_bytes=draw(positive),
        input_bytes=draw(positive),
        weight_traffic_bytes=traffic,
        dense_weight_bytes=traffic,
        embedding_weight_bytes=embedding_traffic,
        embedding_traffic_bytes=embedding_traffic,
    )


def assert_close(vectorized, scalar):
    assert math.isclose(vectorized, scalar, rel_tol=RTOL, abs_tol=1e-12)


@settings(max_examples=60, deadline=None)
@given(st.lists(workloads(), min_size=1, max_size=8))
def test_batch_breakdowns_match_scalar_model(population):
    batch = batch_breakdowns(population, HARDWARE)
    for i, features in enumerate(population):
        scalar = estimate_breakdown(features, HARDWARE)
        assert_close(batch.data_io[i], scalar.data_io)
        assert_close(batch.compute_flops[i], scalar.compute_flops)
        assert_close(batch.compute_memory[i], scalar.compute_memory)
        for medium, volume in scalar.weight_comm.items():
            assert_close(batch.weight_comm[medium][i], volume)
        assert_close(batch.total[i], scalar.total)
        assert_close(batch.total_ideal_overlap[i], scalar.total_ideal_overlap)


@settings(max_examples=40, deadline=None)
@given(st.lists(workloads(), min_size=1, max_size=8))
def test_batch_step_times_match_scalar_totals(population):
    times = batch_step_times(population, HARDWARE)
    for i, features in enumerate(population):
        assert_close(times[i], estimate_breakdown(features, HARDWARE).total)


@settings(max_examples=40, deadline=None)
@given(st.lists(workloads(), min_size=1, max_size=8))
def test_batch_fractions_match_scalar_fractions(population):
    batch = batch_breakdowns(population, HARDWARE)
    fractions = batch.fractions()
    for i, features in enumerate(population):
        scalar = estimate_breakdown(features, HARDWARE).fractions()
        for component, value in scalar.items():
            assert_close(fractions[component][i], value)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.integers(min_value=1, max_value=512), min_size=1, max_size=8
    ),
    st.data(),
)
def test_batch_projection_matches_scalar_projection(cnode_counts, data):
    population = [
        data.draw(workloads()).with_architecture(
            Architecture.PS_WORKER, num_cnodes=n
        )
        for n in cnode_counts
    ]
    target = Architecture.ALLREDUCE_LOCAL
    batch = batch_projection_speedups(population, target, HARDWARE)
    for i, features in enumerate(population):
        scalar = projection_speedups(features, target, HARDWARE)
        assert_close(
            batch.single_cnode_speedup[i], scalar.single_cnode_speedup
        )
        assert_close(batch.throughput_speedup[i], scalar.throughput_speedup)


@settings(max_examples=40, deadline=None)
@given(st.lists(workloads(), min_size=1, max_size=8))
def test_feature_arrays_round_trip_is_stable(population):
    arrays = FeatureArrays.from_workloads(population)
    assert len(arrays) == len(population)
    again = FeatureArrays.coerce(arrays)
    assert again is arrays
