"""Property-based JSONL <-> columnar round-trip equality.

Hypothesis generates arbitrary valid job records (every architecture,
including PEARL's sparse split) and checks that the columnar store is a
lossless encoding: records round-trip exactly, the JSONL conversion in
both directions is byte-identical, and the analysis-ready
:class:`FeatureArrays` built straight from the columns -- including the
integer architecture codes and the derived ``dense_traffic_bytes`` --
match the object path field by field.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.core.population import FeatureArrays
from repro.trace.columnar import (
    ColumnarTrace,
    columnar_to_jsonl,
    jsonl_to_columnar,
    write_columnar,
)
from repro.trace.schema import JobRecord
from repro.trace.serialization import save_trace

positive = st.floats(min_value=1.0, max_value=1e15)
non_negative = st.floats(min_value=0.0, max_value=1e12)


@st.composite
def jobs(draw):
    architecture = draw(st.sampled_from(list(Architecture)))
    max_cnodes = min(architecture.max_local_cnodes, 128)
    num_cnodes = draw(st.integers(min_value=1, max_value=max_cnodes))
    if architecture is Architecture.SINGLE:
        weight_traffic = 0.0
        embedding_traffic = 0.0
    else:
        weight_traffic = draw(positive)
        embedding_traffic = draw(
            st.floats(min_value=0.0, max_value=weight_traffic)
        )
    features = WorkloadFeatures(
        name=draw(st.text(min_size=1, max_size=20)),
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=draw(st.integers(min_value=1, max_value=65536)),
        flop_count=draw(positive),
        memory_access_bytes=draw(positive),
        input_bytes=draw(non_negative),
        weight_traffic_bytes=weight_traffic,
        embedding_traffic_bytes=embedding_traffic,
        dense_weight_bytes=draw(non_negative),
        embedding_weight_bytes=draw(non_negative),
    )
    return JobRecord(
        job_id=draw(st.integers(min_value=0, max_value=10**9)),
        features=features,
        submit_day=draw(st.integers(min_value=0, max_value=50)),
        user_group=draw(st.text(min_size=1, max_size=12)),
    )


@settings(max_examples=30, deadline=None)
@given(st.lists(jobs(), min_size=1, max_size=40))
def test_records_round_trip_through_columnar(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("prop") / "trace.columnar"
    write_columnar(records, path, shard_rows=7)
    assert list(ColumnarTrace.open(path).iter_records()) == records


@settings(max_examples=20, deadline=None)
@given(st.lists(jobs(), min_size=1, max_size=40))
def test_jsonl_conversions_are_byte_identical(tmp_path_factory, records):
    tmp = tmp_path_factory.mktemp("prop")
    jsonl = tmp / "trace.jsonl"
    save_trace(records, jsonl)
    store = tmp / "trace.columnar"
    jsonl_to_columnar(jsonl, store, shard_rows=11)
    back = tmp / "back.jsonl"
    columnar_to_jsonl(store, back)
    assert back.read_bytes() == jsonl.read_bytes()


@settings(max_examples=30, deadline=None)
@given(st.lists(jobs(), min_size=1, max_size=40))
def test_feature_arrays_match_per_field(tmp_path_factory, records):
    """from_columnar == from_workloads on every field, bit for bit.

    Covers the integer architecture codes (store order differs from the
    enum order) and the derived ``dense_traffic_bytes`` column, which
    the store does not persist but reconstructs as
    ``weight_traffic - embedding_traffic``.
    """
    path = tmp_path_factory.mktemp("prop") / "trace.columnar"
    write_columnar(records, path, shard_rows=13)
    from_store = ColumnarTrace.open(path).feature_arrays()
    from_objects = FeatureArrays.from_workloads(
        record.features for record in records
    )
    for field in dataclasses.fields(FeatureArrays):
        ours = np.asarray(getattr(from_store, field.name))
        theirs = np.asarray(getattr(from_objects, field.name))
        assert ours.dtype == theirs.dtype, field.name
        assert ours.tobytes() == theirs.tobytes(), field.name
    expected_codes = [record.features.architecture for record in records]
    decoded = [
        record.features.architecture
        for record in ColumnarTrace.open(path).iter_records()
    ]
    assert decoded == expected_codes
    dense = (
        from_store.weight_traffic_bytes - from_store.embedding_traffic_bytes
    )
    assert np.array_equal(from_store.dense_traffic_bytes, dense)
