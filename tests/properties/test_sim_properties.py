"""Property-based invariants of the simulator resources."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.resources import Channel, Device

volumes = st.lists(
    st.floats(min_value=1.0, max_value=1e10), min_size=1, max_size=30
)


class TestChannelFIFO:
    @given(transfers=volumes)
    def test_completions_monotone_in_request_order(self, transfers):
        channel = Channel("c", bandwidth=1e9, efficiency=1.0)
        ends = [
            channel.reserve(0.0, volume, f"t{i}", "input")
            for i, volume in enumerate(transfers)
        ]
        assert ends == sorted(ends)

    @given(transfers=volumes)
    def test_total_time_is_sum_of_durations(self, transfers):
        channel = Channel("c", bandwidth=1e9, efficiency=1.0)
        last = 0.0
        for i, volume in enumerate(transfers):
            last = channel.reserve(0.0, volume, f"t{i}", "input")
        assert abs(last - sum(transfers) / 1e9) < 1e-6 * max(last, 1.0)

    @given(transfers=volumes)
    def test_records_never_overlap(self, transfers):
        channel = Channel("c", bandwidth=1e9, efficiency=1.0)
        for i, volume in enumerate(transfers):
            channel.reserve(0.0, volume, f"t{i}", "input")
        records = sorted(channel.records, key=lambda r: r.start)
        for earlier, later in zip(records, records[1:]):
            assert later.start >= earlier.end - 1e-12


class TestDeviceSerial:
    @given(kernels=volumes)
    def test_device_executes_serially(self, kernels):
        gpu = Device(
            "g",
            peak_flops=1e12,
            memory_bandwidth=1e12,
            compute_efficiency=1.0,
            memory_efficiency=1.0,
            launch_overhead=0.0,
        )
        last = 0.0
        for i, seconds in enumerate(k / 1e10 for k in kernels):
            last = gpu.run_kernel(0.0, f"k{i}", seconds, "compute")
        assert abs(last - sum(k / 1e10 for k in kernels)) < 1e-9 * max(last, 1.0)

    @given(
        kernels=volumes,
        overhead=st.floats(min_value=0.0, max_value=1e-3),
    )
    def test_overhead_adds_per_kernel(self, kernels, overhead):
        def total(launch):
            gpu = Device(
                "g",
                peak_flops=1e12,
                memory_bandwidth=1e12,
                launch_overhead=launch,
            )
            last = 0.0
            for i, volume in enumerate(kernels):
                last = gpu.run_kernel(0.0, f"k{i}", volume / 1e12, "compute")
            return last

        difference = total(overhead) - total(0.0)
        assert abs(difference - overhead * len(kernels)) < 1e-9
