"""Property-based invariants of the analytical model."""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import Architecture
from repro.core.efficiency import uniform_efficiency
from repro.core.features import WorkloadFeatures
from repro.core.hardware import pai_default_hardware
from repro.core.projection import (
    project_to_allreduce_cluster,
    project_to_allreduce_local,
)
from repro.core.sensitivity import eq3_weight_bound_speedup
from repro.core.throughput import job_throughput
from repro.core.timemodel import (
    PAPER_MODEL_OPTIONS,
    estimate_breakdown,
    estimate_step_time,
)

HARDWARE = pai_default_hardware()

positive = st.floats(min_value=1.0, max_value=1e15, allow_nan=False)
non_negative = st.floats(min_value=0.0, max_value=1e15, allow_nan=False)
architectures = st.sampled_from(
    [
        Architecture.LOCAL_CENTRALIZED,
        Architecture.PS_WORKER,
        Architecture.ALLREDUCE_LOCAL,
        Architecture.ALLREDUCE_CLUSTER,
    ]
)


@st.composite
def workloads(draw, architecture=None):
    if architecture is None:
        architecture = draw(architectures)
    max_cnodes = min(architecture.max_local_cnodes, 256)
    num_cnodes = draw(st.integers(min_value=2, max_value=max_cnodes))
    return WorkloadFeatures(
        name="prop",
        architecture=architecture,
        num_cnodes=num_cnodes,
        batch_size=draw(st.integers(min_value=1, max_value=8192)),
        flop_count=draw(positive),
        memory_access_bytes=draw(positive),
        input_bytes=draw(non_negative),
        weight_traffic_bytes=draw(positive),
        dense_weight_bytes=draw(positive),
    )


class TestBreakdownInvariants:
    @given(features=workloads())
    def test_components_non_negative(self, features):
        breakdown = estimate_breakdown(features, HARDWARE)
        assert breakdown.data_io >= 0
        assert breakdown.compute_flops >= 0
        assert breakdown.compute_memory >= 0
        assert breakdown.weight_total >= 0

    @given(features=workloads())
    def test_fractions_sum_to_one(self, features):
        fractions = estimate_breakdown(features, HARDWARE).fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    @given(features=workloads())
    def test_hardware_shares_sum_to_one(self, features):
        shares = estimate_breakdown(features, HARDWARE).hardware_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    @given(features=workloads())
    def test_ideal_overlap_never_slower(self, features):
        breakdown = estimate_breakdown(features, HARDWARE)
        assert breakdown.total_ideal_overlap <= breakdown.total + 1e-12

    @given(features=workloads())
    def test_ideal_overlap_at_least_a_third(self, features):
        # max of three non-negative terms is at least their mean.
        breakdown = estimate_breakdown(features, HARDWARE)
        assert breakdown.total_ideal_overlap >= breakdown.total / 3 - 1e-12


class TestMonotonicity:
    @given(
        features=workloads(),
        resource=st.sampled_from(
            ["ethernet", "pcie", "nvlink", "gpu_flops", "gpu_memory"]
        ),
        factor=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_upgrading_any_resource_never_slows(self, features, resource, factor):
        base_value = {
            "ethernet": HARDWARE.ethernet.bandwidth,
            "pcie": HARDWARE.pcie.bandwidth,
            "nvlink": HARDWARE.nvlink.bandwidth,
            "gpu_flops": HARDWARE.gpu.peak_flops,
            "gpu_memory": HARDWARE.gpu.memory_bandwidth,
        }[resource]
        upgraded = HARDWARE.with_resource(resource, base_value * factor)
        before = estimate_step_time(features, HARDWARE)
        after = estimate_step_time(features, upgraded)
        assert after <= before * (1 + 1e-9)

    @given(
        features=workloads(),
        efficiency=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_higher_efficiency_never_slows(self, features, efficiency):
        slow = estimate_step_time(
            features, HARDWARE, uniform_efficiency(efficiency / 2)
        )
        fast = estimate_step_time(
            features, HARDWARE, uniform_efficiency(efficiency)
        )
        assert fast <= slow * (1 + 1e-9)

    @given(features=workloads())
    def test_uniform_efficiency_scales_linearly(self, features):
        at_70 = estimate_step_time(features, HARDWARE, uniform_efficiency(0.7))
        at_35 = estimate_step_time(features, HARDWARE, uniform_efficiency(0.35))
        assert abs(at_35 - 2 * at_70) < 1e-9 * max(at_35, 1.0)


class TestProjectionInvariants:
    @given(features=workloads(architecture=Architecture.PS_WORKER))
    def test_local_projection_caps_cnodes(self, features):
        projected = project_to_allreduce_local(features)
        assert projected.num_cnodes == min(features.num_cnodes, 8)

    @given(features=workloads(architecture=Architecture.PS_WORKER))
    def test_projection_preserves_fundamentals(self, features):
        for projected in (
            project_to_allreduce_local(features),
            project_to_allreduce_cluster(features),
        ):
            assert projected.flop_count == features.flop_count
            assert projected.memory_access_bytes == features.memory_access_bytes
            assert projected.input_bytes == features.input_bytes
            assert projected.weight_traffic_bytes == features.weight_traffic_bytes

    @given(features=workloads(architecture=Architecture.PS_WORKER))
    def test_local_projection_speedup_below_eq3(self, features):
        # No job can beat the pure weight-bound ratio of Eq. 3.
        projected = project_to_allreduce_local(features)
        speedup = estimate_step_time(features, HARDWARE) / estimate_step_time(
            projected, HARDWARE
        )
        assert speedup <= eq3_weight_bound_speedup(HARDWARE) + 1e-6


class TestThroughput:
    @given(features=workloads(), factor=st.integers(min_value=2, max_value=8))
    def test_batch_scaling(self, features, factor):
        bigger = dataclasses.replace(
            features, batch_size=features.batch_size * factor
        )
        assert job_throughput(bigger, HARDWARE) > job_throughput(
            features, HARDWARE
        )


class TestOptionInvariants:
    @given(features=workloads())
    def test_paper_options_reproducible(self, features):
        first = estimate_breakdown(features, HARDWARE, options=PAPER_MODEL_OPTIONS)
        second = estimate_breakdown(features, HARDWARE, options=PAPER_MODEL_OPTIONS)
        assert first == second
