"""Property-based invariants of the statistics toolkit."""

from hypothesis import given
from hypothesis import strategies as st

from repro.trace.statistics import (
    EmpiricalCDF,
    StreamingCDF,
    fraction_above,
    fraction_below,
)

samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestEmpiricalCDF:
    @given(data=samples)
    def test_cumulative_monotone_and_normalized(self, data):
        cdf = EmpiricalCDF.from_samples(data)
        assert list(cdf.cumulative) == sorted(cdf.cumulative)
        assert abs(cdf.cumulative[-1] - 1.0) < 1e-9

    @given(data=samples)
    def test_values_sorted(self, data):
        cdf = EmpiricalCDF.from_samples(data)
        assert list(cdf.values) == sorted(cdf.values)

    @given(data=samples, x=st.floats(allow_nan=False, min_value=-2e9, max_value=2e9))
    def test_probability_bounds(self, data, x):
        cdf = EmpiricalCDF.from_samples(data)
        assert 0.0 <= cdf.probability_at(x) <= 1.0

    @given(data=samples, q=st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_is_a_sample(self, data, q):
        cdf = EmpiricalCDF.from_samples(data)
        assert cdf.quantile(q) in cdf.values

    @given(data=samples)
    def test_quantile_probability_galois(self, data):
        """P(X <= quantile(q)) >= q for every sample q on the grid."""
        cdf = EmpiricalCDF.from_samples(data)
        for q in (0.1, 0.5, 0.9):
            assert cdf.probability_at(cdf.quantile(q)) >= q - 1e-9

    @given(data=samples)
    def test_extremes(self, data):
        cdf = EmpiricalCDF.from_samples(data)
        assert cdf.probability_at(min(data) - 1.0) == 0.0
        assert cdf.probability_at(max(data) + 1.0) == 1.0

    @given(
        data=samples,
        weights_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_weighted_cdf_normalized(self, data, weights_seed):
        import numpy as np

        rng = np.random.default_rng(weights_seed)
        weights = rng.uniform(0.1, 10.0, size=len(data)).tolist()
        cdf = EmpiricalCDF.from_samples(data, weights)
        assert abs(cdf.cumulative[-1] - 1.0) < 1e-9


class TestMergedVsBatch:
    """Splitting a population and merging equals one-shot construction."""

    @given(data=samples, split=st.integers(min_value=0, max_value=200))
    def test_cdf_merge_equals_batch(self, data, split):
        split = min(split, len(data))
        parts = [part for part in (data[:split], data[split:]) if part]
        merged = EmpiricalCDF.merge(
            [EmpiricalCDF.from_samples(part) for part in parts],
            total_weights=[len(part) for part in parts],
        )
        batch = EmpiricalCDF.from_samples(data)
        assert abs(merged.cumulative[-1] - 1.0) < 1e-12
        for q in (0.01, 0.25, 0.5, 0.75, 0.9, 0.99):
            got, want = merged.quantile(q), batch.quantile(q)
            assert abs(got - want) <= 1e-9 * max(1.0, abs(want)), (
                q, got, want,
            )

    @given(data=samples, split=st.integers(min_value=0, max_value=200))
    def test_streaming_merge_equals_batch_under_capacity(self, data, split):
        split = min(split, len(data))
        left, right = StreamingCDF(capacity=256), StreamingCDF(capacity=256)
        left.update_many(data[:split])
        right.update_many(data[split:])
        merged = left.merge(right)
        assert merged.count == len(data)
        batch = EmpiricalCDF.from_samples(data)
        # Population fits the sketch: the merged CDF is exact.
        assert abs(merged.to_cdf().cumulative[-1] - 1.0) < 1e-12
        for q in (0.05, 0.5, 0.95):
            assert merged.quantile(q) == batch.quantile(q)

    @given(data=st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=40,
        max_size=200,
    ))
    def test_compacted_sketch_bounds_rank_error(self, data):
        sketch = StreamingCDF(capacity=16)
        sketch.update_many(data)
        batch = EmpiricalCDF.from_samples(data)
        cdf = sketch.to_cdf()
        assert abs(cdf.cumulative[-1] - 1.0) < 1e-12
        # Every sketched quantile sits within a few rank slots of truth;
        # under ties a value's rank is an interval, so bound both sides.
        slack = (3.0 / 16) * len(data) + 1
        for q in (0.25, 0.5, 0.75):
            value = sketch.quantile(q)
            at_most = sum(1 for sample in data if sample <= value)
            at_least = sum(1 for sample in data if sample >= value)
            assert at_most >= q * len(data) - slack, (q, value)
            assert at_least >= (1.0 - q) * len(data) - slack, (q, value)

    @given(data=samples)
    def test_streaming_extremes_are_exact(self, data):
        sketch = StreamingCDF(capacity=8)
        sketch.update_many(data)
        assert sketch.quantile(0.0) == min(data)
        assert sketch.quantile(1.0) == max(data)


class TestFractions:
    @given(data=samples, threshold=st.floats(allow_nan=False, min_value=-2e9, max_value=2e9))
    def test_partition(self, data, threshold):
        below = fraction_below(data, threshold)
        above = fraction_above(data, threshold)
        at = sum(1 for s in data if s == threshold) / len(data)
        assert abs(below + above + at - 1.0) < 1e-9
