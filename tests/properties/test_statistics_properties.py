"""Property-based invariants of the statistics toolkit."""

from hypothesis import given
from hypothesis import strategies as st

from repro.trace.statistics import EmpiricalCDF, fraction_above, fraction_below

samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestEmpiricalCDF:
    @given(data=samples)
    def test_cumulative_monotone_and_normalized(self, data):
        cdf = EmpiricalCDF.from_samples(data)
        assert list(cdf.cumulative) == sorted(cdf.cumulative)
        assert abs(cdf.cumulative[-1] - 1.0) < 1e-9

    @given(data=samples)
    def test_values_sorted(self, data):
        cdf = EmpiricalCDF.from_samples(data)
        assert list(cdf.values) == sorted(cdf.values)

    @given(data=samples, x=st.floats(allow_nan=False, min_value=-2e9, max_value=2e9))
    def test_probability_bounds(self, data, x):
        cdf = EmpiricalCDF.from_samples(data)
        assert 0.0 <= cdf.probability_at(x) <= 1.0

    @given(data=samples, q=st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_is_a_sample(self, data, q):
        cdf = EmpiricalCDF.from_samples(data)
        assert cdf.quantile(q) in cdf.values

    @given(data=samples)
    def test_quantile_probability_galois(self, data):
        """P(X <= quantile(q)) >= q for every sample q on the grid."""
        cdf = EmpiricalCDF.from_samples(data)
        for q in (0.1, 0.5, 0.9):
            assert cdf.probability_at(cdf.quantile(q)) >= q - 1e-9

    @given(data=samples)
    def test_extremes(self, data):
        cdf = EmpiricalCDF.from_samples(data)
        assert cdf.probability_at(min(data) - 1.0) == 0.0
        assert cdf.probability_at(max(data) + 1.0) == 1.0

    @given(
        data=samples,
        weights_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_weighted_cdf_normalized(self, data, weights_seed):
        import numpy as np

        rng = np.random.default_rng(weights_seed)
        weights = rng.uniform(0.1, 10.0, size=len(data)).tolist()
        cdf = EmpiricalCDF.from_samples(data, weights)
        assert abs(cdf.cumulative[-1] - 1.0) < 1e-9


class TestFractions:
    @given(data=samples, threshold=st.floats(allow_nan=False, min_value=-2e9, max_value=2e9))
    def test_partition(self, data, threshold):
        below = fraction_below(data, threshold)
        above = fraction_above(data, threshold)
        at = sum(1 for s in data if s == threshold) / len(data)
        assert abs(below + above + at - 1.0) < 1e-9
