"""Scheduler safety invariants, property-tested.

The central guarantee of the multi-job scheduler: at no instant does
the placed GPU count exceed the cluster capacity, for *any* job mix.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.architectures import Architecture
from repro.core.features import WorkloadFeatures
from repro.sim.multijob import ClusterScheduler
from repro.trace.schema import JobRecord


@st.composite
def job_lists(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    jobs = []
    for index in range(count):
        architecture = draw(
            st.sampled_from(
                [
                    Architecture.SINGLE,
                    Architecture.LOCAL_CENTRALIZED,
                    Architecture.ALLREDUCE_LOCAL,
                    Architecture.ALLREDUCE_CLUSTER,
                ]
            )
        )
        if architecture is Architecture.SINGLE:
            cnodes = 1
        elif architecture.is_local:
            cnodes = draw(st.integers(2, 8))
        else:
            cnodes = draw(st.integers(2, 40))
        features = WorkloadFeatures(
            name=f"job-{index}",
            architecture=architecture,
            num_cnodes=cnodes,
            batch_size=32,
            flop_count=1e9,
            memory_access_bytes=1e6,
            input_bytes=1e3,
            weight_traffic_bytes=0.0
            if architecture is Architecture.SINGLE
            else 1e6,
            dense_weight_bytes=1e6,
        )
        jobs.append(
            JobRecord(
                job_id=index,
                features=features,
                submit_day=draw(st.integers(0, 5)),
            )
        )
    return jobs


def gpu_usage_at(executions, instant):
    return sum(
        e.job.num_cnodes
        for e in executions
        if e.start_hour <= instant < e.end_hour
    )


class TestSchedulerSafety:
    @settings(max_examples=40, deadline=None)
    @given(jobs=job_lists(), seed=st.integers(0, 100))
    def test_never_oversubscribed(self, jobs, seed):
        scheduler = ClusterScheduler(num_servers=6, gpus_per_server=8)
        durations = {j.job_id: 1.0 + (j.job_id % 5) for j in jobs}
        result = scheduler.schedule(jobs, durations)
        # Check occupancy at every start instant (usage only changes there).
        for execution in result.executions:
            usage = gpu_usage_at(result.executions, execution.start_hour)
            assert usage <= scheduler.total_gpus

    @settings(max_examples=40, deadline=None)
    @given(jobs=job_lists())
    def test_every_job_placed_or_rejected(self, jobs):
        scheduler = ClusterScheduler(num_servers=6, gpus_per_server=8)
        durations = {j.job_id: 2.0 for j in jobs}
        result = scheduler.schedule(jobs, durations)
        assert len(result.executions) + len(result.rejected) == len(jobs)

    @settings(max_examples=40, deadline=None)
    @given(jobs=job_lists())
    def test_no_job_starts_before_arrival(self, jobs):
        scheduler = ClusterScheduler(num_servers=6, gpus_per_server=8)
        durations = {j.job_id: 0.5 for j in jobs}
        result = scheduler.schedule(jobs, durations)
        for execution in result.executions:
            assert execution.start_hour >= execution.arrival_hour - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(jobs=job_lists())
    def test_deterministic(self, jobs):
        durations = {j.job_id: 1.5 for j in jobs}
        first = ClusterScheduler(6, 8).schedule(jobs, durations)
        second = ClusterScheduler(6, 8).schedule(jobs, durations)
        assert first.executions == second.executions
