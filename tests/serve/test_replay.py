"""Trace replay: day-grouped batches on a simulated clock."""

import pytest

from repro.serve import TraceReplayer


class FakeClock:
    """A manual clock whose sleep() just advances time, recording calls."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestBatching:
    def test_delivers_every_job_in_order(self, small_trace):
        delivered = []
        replayer = TraceReplayer(small_trace, batch_size=64)
        count = replayer.replay(delivered.extend)
        assert count == len(small_trace)
        assert delivered == list(small_trace)
        assert replayer.delivered == len(small_trace)

    def test_batches_never_span_days(self, small_trace):
        batches = []
        TraceReplayer(small_trace, batch_size=10_000).replay(batches.append)
        for batch in batches:
            assert len({job.submit_day for job in batch}) == 1

    def test_batches_respect_size_bound(self, small_trace):
        batches = []
        TraceReplayer(small_trace, batch_size=7).replay(batches.append)
        assert all(len(batch) <= 7 for batch in batches)

    def test_accepts_a_generator(self, small_trace):
        delivered = []
        replayer = TraceReplayer(iter(small_trace), batch_size=50)
        assert replayer.replay(delivered.extend) == len(small_trace)
        assert delivered == list(small_trace)


class TestSimulatedClock:
    def test_zero_speed_never_sleeps(self, small_trace):
        clock = FakeClock()
        TraceReplayer(
            small_trace, seconds_per_day=0.0, clock=clock, sleep=clock.sleep
        ).replay(lambda jobs: None)
        assert clock.sleeps == []

    def test_paces_batches_by_submit_day(self, small_trace):
        clock = FakeClock()
        arrivals = []

        def sink(jobs):
            arrivals.append((clock.now, jobs[0].submit_day))

        ordered = sorted(small_trace, key=lambda job: job.submit_day)
        TraceReplayer(
            ordered,
            batch_size=10_000,
            seconds_per_day=2.0,
            clock=clock,
            sleep=clock.sleep,
        ).replay(sink)
        first_day = arrivals[0][1]
        for now, day in arrivals:
            # Each day's first batch lands exactly on its schedule slot.
            assert now == pytest.approx(2.0 * (day - first_day))

    def test_ingest_slower_than_schedule_does_not_sleep(self, small_trace):
        clock = FakeClock()

        def slow_sink(jobs):
            clock.now += 100.0  # ingestion far behind the schedule

        TraceReplayer(
            small_trace,
            batch_size=10_000,
            seconds_per_day=0.5,
            clock=clock,
            sleep=clock.sleep,
        ).replay(slow_sink)
        assert clock.sleeps == []


class TestStop:
    def test_stop_mid_replay_finishes_current_batch(self, small_trace):
        delivered = []
        replayer = TraceReplayer(small_trace, batch_size=25)

        def sink(jobs):
            delivered.extend(jobs)
            if len(delivered) >= 50:
                replayer.stop()

        count = replayer.replay(sink)
        assert replayer.stopped
        assert count == len(delivered) < len(small_trace)
        # Batches are never torn: delivery stopped on a batch boundary.
        assert delivered == list(small_trace[: len(delivered)])

    def test_stop_before_replay_delivers_nothing(self, small_trace):
        replayer = TraceReplayer(small_trace)
        replayer.stop()
        assert replayer.replay(lambda jobs: None) == 0


class TestValidation:
    def test_rejects_bad_batch_size(self, small_trace):
        with pytest.raises(ValueError, match="batch_size"):
            TraceReplayer(small_trace, batch_size=0)

    def test_rejects_negative_speed(self, small_trace):
        with pytest.raises(ValueError, match="seconds_per_day"):
            TraceReplayer(small_trace, seconds_per_day=-1.0)
