"""The HTTP query API: endpoints, validation, caching, lifecycle."""

import json
import math

import pytest

from repro.runtime import ResultCache
from repro.serve import (
    CDF_METRICS,
    ServeClient,
    ServiceError,
    ShardedState,
    TraceService,
    batch_reference,
    serialize_jobs,
)


@pytest.fixture()
def service(small_trace):
    state = ShardedState(num_shards=3)
    state.ingest(small_trace)
    service = TraceService(state=state)
    service.start()
    yield service
    service.stop()


@pytest.fixture()
def client(service):
    return ServeClient(service.url)


class TestEndpoints:
    def test_healthz(self, client, small_trace):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["jobs"] == len(small_trace)
        assert health["shards"] == 3
        assert health["ingest_complete"] is True
        assert health["uptime_s"] >= 0.0

    def test_stats_matches_batch_reference(self, client, small_trace):
        reference = batch_reference(small_trace)
        stats = client.stats()
        assert stats["jobs"] == reference["jobs"]
        assert stats["cnodes"] == pytest.approx(reference["cnodes"])
        assert stats["architectures"] == reference["architectures"]
        for level in ("job", "cnode"):
            for key, want in reference["fractions"][level].items():
                assert stats["fractions"][level][key] == pytest.approx(
                    want, rel=1e-9
                )
            for key, want in reference["hardware_shares"][level].items():
                assert stats["hardware_shares"][level][key] == pytest.approx(
                    want, rel=1e-9
                )

    def test_census_matches_batch_reference(self, client, small_trace):
        reference = batch_reference(small_trace)
        census = client.census()
        for level in ("job", "cnode"):
            for label, want in reference["census"][level].items():
                assert census["census"][level][label] == pytest.approx(
                    want, rel=1e-9, abs=1e-12
                )

    def test_cdf_quantiles_match_batch_reference(self, client, small_trace):
        reference = batch_reference(small_trace)
        for metric in CDF_METRICS:
            payload = client.cdf(metric, points=25)
            assert payload["metric"] == metric
            assert len(payload["series"]) > 0
            for quantile, want in reference["quantiles"][metric].items():
                assert payload["quantiles"][quantile] == pytest.approx(
                    want, rel=1e-9, abs=1e-12
                )

    def test_cdf_series_is_a_distribution(self, client):
        series = client.cdf("step_time", points=30)["series"]
        probabilities = [probability for _, probability in series]
        assert probabilities == sorted(probabilities)
        assert math.isclose(probabilities[-1], 1.0, rel_tol=1e-9)

    def test_cdf_cnode_level(self, client):
        job_level = client.cdf("weight", level="job")
        cnode_level = client.cdf("weight", level="cnode")
        assert job_level["quantiles"] != cnode_level["quantiles"]

    def test_ingest_grows_the_population(self, service, client, small_trace):
        before = client.stats()["jobs"]
        outcome = client.ingest(small_trace[:25])
        assert outcome["ingested"] == 25
        assert outcome["jobs"] == before + 25
        assert client.stats()["jobs"] == before + 25


class TestValidation:
    def test_unknown_metric_is_400(self, client):
        with pytest.raises(ServiceError) as failure:
            client.cdf("bogus")
        assert failure.value.status == 400

    def test_unknown_level_is_400(self, client):
        with pytest.raises(ServiceError) as failure:
            client.cdf("step_time", level="bogus")
        assert failure.value.status == 400

    def test_bad_points_is_400(self, client):
        for points in ("zero", 1):
            with pytest.raises(ServiceError) as failure:
                client.cdf("step_time", points=points)
            assert failure.value.status == 400

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as failure:
            client._request("/nope")
        assert failure.value.status == 404

    def test_post_to_read_endpoint_is_404(self, client):
        with pytest.raises(ServiceError) as failure:
            client._request("/stats", body={"jobs": []})
        assert failure.value.status == 404

    def test_ingest_rejects_malformed_bodies(self, client):
        for body in ({"nope": 1}, {"jobs": "not-a-list"}):
            with pytest.raises(ServiceError) as failure:
                client._request("/ingest", body=body)
            assert failure.value.status == 400

    def test_ingest_reports_bad_record_index(self, client, small_trace):
        body = serialize_jobs(small_trace[:2])
        body["jobs"][1] = {"garbage": True}
        with pytest.raises(ServiceError, match="index 1") as failure:
            client._request("/ingest", body=body)
        assert failure.value.status == 400

    def test_malformed_content_length_is_400(self, service):
        import http.client

        for bad_length in ("abc", "-5"):
            conn = http.client.HTTPConnection(
                service.host, service.port, timeout=10
            )
            try:
                conn.putrequest("POST", "/ingest")
                conn.putheader("Content-Length", bad_length)
                conn.endheaders()
                response = conn.getresponse()
                assert response.status == 400
                payload = json.loads(response.read().decode("utf-8"))
                assert "Content-Length" in payload["error"]
            finally:
                conn.close()


class TestQueryCache:
    def test_repeat_queries_hit_the_cache(self, small_trace, tmp_path):
        state = ShardedState(num_shards=2)
        state.ingest(small_trace)
        service = TraceService(state=state, cache=ResultCache(tmp_path))
        service.start()
        try:
            client = ServeClient(service.url)
            cold = client.stats()
            assert list(tmp_path.iterdir()), "no cache entry written"
            assert client.stats() == cold
            # The cached payload round-trips through JSON identically.
            assert json.loads(json.dumps(cold)) == cold
        finally:
            service.stop()

    def test_cache_entries_are_population_specific(
        self, small_trace, tmp_path
    ):
        state = ShardedState(num_shards=2)
        state.ingest(small_trace[:100])
        service = TraceService(state=state, cache=ResultCache(tmp_path))
        service.start()
        try:
            client = ServeClient(service.url)
            before = client.stats()
            client.ingest(small_trace[100:150])
            after = client.stats()
            assert after["jobs"] == before["jobs"] + 50
        finally:
            service.stop()

    def test_shared_cache_dir_isolates_different_traces(
        self, small_trace, tmp_path
    ):
        # Two service runs over *different* data whose shards reach the
        # same batch counts must not alias in a shared persistent cache
        # dir: the key hashes the ingested jobs, not just batch counts.
        def serve_stats(jobs):
            state = ShardedState(num_shards=2)
            state.ingest(jobs)
            service = TraceService(state=state, cache=ResultCache(tmp_path))
            service.start()
            try:
                return ServeClient(service.url).stats()
            finally:
                service.stop()

        first = serve_stats(small_trace[:100])
        second = serve_stats(small_trace[100:250])
        assert first["jobs"] == 100
        assert second["jobs"] == 150

    def test_superseded_entries_are_evicted(self, small_trace, tmp_path):
        state = ShardedState(num_shards=2)
        state.ingest(small_trace[:50])
        service = TraceService(state=state, cache=ResultCache(tmp_path))
        service.start()
        try:
            client = ServeClient(service.url)
            for start in range(50, 250, 50):
                client.ingest(small_trace[start : start + 50])
                client.stats()
            # Five generations of /stats were rendered, but each store
            # evicted the entry it superseded: one live file remains.
            assert len(list(tmp_path.glob("*.json"))) == 1
            assert client.stats()["jobs"] == 250
        finally:
            service.stop()


class TestContentDigests:
    def test_digests_identify_content_not_batch_counts(self, small_trace):
        # The review scenario: identical shard/batch structure over
        # different jobs must yield different snapshot identities.
        first = ShardedState(num_shards=2)
        second = ShardedState(num_shards=2)
        first.ingest(small_trace[:100])
        second.ingest(small_trace[100:200])
        assert first.snapshot().versions == second.snapshot().versions
        assert first.snapshot().digests != second.snapshot().digests

    def test_digests_are_batching_independent(self, small_trace):
        whole = ShardedState(num_shards=3)
        split = ShardedState(num_shards=3)
        whole.ingest(small_trace[:120])
        for start in range(0, 120, 40):
            split.ingest(small_trace[start : start + 40])
        assert whole.snapshot().digests == split.snapshot().digests

    def test_same_content_same_digests(self, small_trace):
        first = ShardedState(num_shards=2)
        second = ShardedState(num_shards=2)
        first.ingest(small_trace[:80])
        second.ingest(small_trace[:80])
        assert first.snapshot().digests == second.snapshot().digests


class TestLifecycle:
    def test_stop_is_idempotent(self, small_trace):
        service = TraceService(state=ShardedState(num_shards=1))
        service.start()
        service.stop()
        service.stop()

    def test_url_requires_start(self):
        service = TraceService(state=ShardedState(num_shards=1))
        with pytest.raises(RuntimeError, match="not started"):
            service.url

    def test_double_start_rejected(self):
        service = TraceService(state=ShardedState(num_shards=1))
        service.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                service.start()
        finally:
            service.stop()

    def test_serialize_jobs_round_trips(self, small_trace):
        from repro.trace.serialization import job_from_dict

        payload = json.loads(json.dumps(serialize_jobs(small_trace[:5])))
        decoded = [job_from_dict(record) for record in payload["jobs"]]
        assert decoded == list(small_trace[:5])
