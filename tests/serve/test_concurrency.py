"""Ingestion racing readers: consistent snapshots, graceful shutdown."""

import math
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import (
    ServeClient,
    ShardedState,
    TraceReplayer,
    TraceService,
    batch_reference,
)

SRC = Path(__file__).resolve().parent.parent.parent / "src"


def consistent(stats_payload):
    """Internal-consistency invariants of one /stats response."""
    jobs = stats_payload["jobs"]
    assert sum(stats_payload["architectures"].values()) == jobs
    if jobs:
        fractions = stats_payload["fractions"]["job"]
        assert all(0.0 <= share <= 1.0 + 1e-9 for share in fractions.values())
    return jobs


class TestReadersDuringIngestion:
    def test_snapshots_are_monotone_and_untorn(self, small_trace):
        state = ShardedState(num_shards=3)
        service = TraceService(state=state)
        service.start()
        stop = threading.Event()
        failures = []
        floors = []

        def reader(slot):
            client = ServeClient(service.url)
            floor = 0
            reads = 0
            try:
                while not stop.is_set():
                    payload = client.stats()
                    jobs = consistent(payload)
                    assert jobs >= floor, "job count went backwards"
                    floor = jobs
                    census = client.census()
                    if census["jobs"]:
                        shares = census["census"]["job"].values()
                        assert math.isclose(
                            sum(shares), 1.0, rel_tol=1e-9
                        ), "torn census"
                    reads += 1
            except Exception as error:
                failures.append((slot, error))
            finally:
                floors.append((floor, reads))

        try:
            readers = [
                threading.Thread(target=reader, args=(slot,), daemon=True)
                for slot in range(4)
            ]
            for thread in readers:
                thread.start()
            # Many small batches so readers race many shard-version bumps.
            service.start_replay(TraceReplayer(small_trace, batch_size=20))
            assert service.wait_for_ingest(timeout=60)
            time.sleep(0.05)  # one more read round at the final population
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
            assert not failures, failures
            assert all(reads > 0 for _, reads in floors)
        finally:
            stop.set()
            service.stop()
        # After the drain every reader converged on the full population.
        assert service.state.job_count == len(small_trace)

    def test_final_state_matches_batch_path(self, small_trace):
        state = ShardedState(num_shards=3)
        service = TraceService(state=state)
        service.start()
        try:
            service.start_replay(TraceReplayer(small_trace, batch_size=33))
            assert service.wait_for_ingest(timeout=60)
            reference = batch_reference(small_trace)
            served = state.snapshot().stats.reference_payload()
            assert served["jobs"] == reference["jobs"]
            for level in ("job", "cnode"):
                for key, want in reference["fractions"][level].items():
                    assert served["fractions"][level][key] == pytest.approx(
                        want, rel=1e-9
                    )
        finally:
            service.stop()

    def test_concurrent_writers_through_http(self, small_trace):
        state = ShardedState(num_shards=4)
        service = TraceService(state=state)
        service.start()
        chunk = len(small_trace) // 4
        failures = []

        def writer(slot):
            try:
                client = ServeClient(service.url)
                start = slot * chunk
                client.ingest(small_trace[start : start + chunk])
            except Exception as error:
                failures.append((slot, error))

        try:
            writers = [
                threading.Thread(target=writer, args=(slot,), daemon=True)
                for slot in range(4)
            ]
            for thread in writers:
                thread.start()
            for thread in writers:
                thread.join(timeout=60)
            assert not failures, failures
            assert state.job_count == chunk * 4
        finally:
            service.stop()


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """The CLI service drains in-flight work on SIGTERM and exits 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.analysis.cli",
                "serve",
                "--port",
                "0",
                "--shards",
                "2",
                "-n",
                "300",
                "--no-cache",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=tmp_path,
        )
        try:
            banner = process.stdout.readline().strip()
            assert banner.startswith("serving on "), banner
            url = banner.removeprefix("serving on ")
            client = ServeClient(url)
            client.wait_until_ingested(timeout=60)
            assert client.stats()["jobs"] == 300
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, stderr
            assert "shut down cleanly" in stdout
            assert "served 300 jobs" in stdout
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
