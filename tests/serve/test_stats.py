"""Mergeable shard statistics equal the one-shot batch path."""

import math

import pytest

from repro.core import testbed_v100_hardware as v100_hardware
from repro.serve import ShardStats, batch_reference, payload_leaves
from repro.serve.stats import AGGREGATION_LEVELS, CDF_METRICS


def assert_payloads_close(got, want, rel_tol=1e-9):
    got_leaves = payload_leaves(got)
    want_leaves = payload_leaves(want)
    assert [path for path, _ in got_leaves] == [
        path for path, _ in want_leaves
    ]
    for (path, value), (_, reference) in zip(got_leaves, want_leaves):
        if isinstance(reference, float):
            assert math.isclose(
                value, reference, rel_tol=rel_tol, abs_tol=1e-12
            ), (path, value, reference)
        else:
            assert value == reference, (path, value, reference)


class TestSingleShardEquivalence:
    def test_one_batch_matches_batch_reference(self, small_trace):
        stats = ShardStats()
        assert stats.observe(small_trace) == len(small_trace)
        assert_payloads_close(
            stats.reference_payload(), batch_reference(small_trace)
        )

    def test_many_batches_match_one_batch(self, small_trace):
        streamed = ShardStats()
        for start in range(0, len(small_trace), 37):
            streamed.observe(small_trace[start : start + 37])
        whole = ShardStats()
        whole.observe(small_trace)
        assert_payloads_close(
            streamed.reference_payload(), whole.reference_payload()
        )

    def test_empty_batch_is_a_noop(self, small_trace):
        stats = ShardStats()
        stats.observe(small_trace)
        before = stats.reference_payload()
        assert stats.observe([]) == 0
        assert stats.reference_payload() == before


class TestMerging:
    def test_merged_shards_match_whole_population(self, small_trace):
        shards = [ShardStats() for _ in range(3)]
        for index, job in enumerate(small_trace):
            shards[index % 3].observe([job])
        merged = ShardStats.merged(shards)
        assert_payloads_close(
            merged.reference_payload(), batch_reference(small_trace)
        )

    def test_merge_does_not_mutate_sources(self, small_trace):
        half = len(small_trace) // 2
        left, right = ShardStats(), ShardStats()
        left.observe(small_trace[:half])
        right.observe(small_trace[half:])
        left_before = left.reference_payload()
        right_before = right.reference_payload()
        ShardStats.merged([left, right])
        assert left.reference_payload() == left_before
        assert right.reference_payload() == right_before

    def test_merge_rejects_different_configurations(self, small_trace):
        default = ShardStats()
        testbed = ShardStats(hardware=v100_hardware())
        default.observe(small_trace[:10])
        testbed.observe(small_trace[10:20])
        with pytest.raises(ValueError, match="different model"):
            default.update_from(testbed)

    def test_merge_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="zero shards"):
            ShardStats.merged([])


class TestReadSide:
    def test_empty_population_raises(self):
        stats = ShardStats()
        with pytest.raises(ValueError, match="empty"):
            stats.average_fractions()
        with pytest.raises(ValueError, match="empty"):
            stats.census()

    def test_unknown_metric_and_level_raise(self, small_trace):
        stats = ShardStats()
        stats.observe(small_trace[:20])
        with pytest.raises(KeyError, match="metric"):
            stats.cdf("nope")
        with pytest.raises(KeyError, match="level"):
            stats.cdf("step_time", "nope")
        with pytest.raises(KeyError, match="level"):
            stats.average_fractions("nope")

    def test_census_shares_sum_to_one(self, small_trace):
        stats = ShardStats()
        stats.observe(small_trace)
        for level in AGGREGATION_LEVELS:
            assert math.isclose(
                sum(stats.census(level).values()), 1.0, rel_tol=1e-9
            )

    def test_every_metric_has_a_cdf_at_every_level(self, small_trace):
        stats = ShardStats()
        stats.observe(small_trace)
        for metric in CDF_METRICS:
            for level in AGGREGATION_LEVELS:
                cdf = stats.cdf(metric, level)
                assert abs(cdf.cumulative[-1] - 1.0) < 1e-12


class TestPayloadLeaves:
    def test_flattens_nested_dicts_sorted(self):
        leaves = payload_leaves({"b": {"y": 2.0, "x": 1.0}, "a": 0.0})
        assert leaves == [("a", 0.0), ("b.x", 1.0), ("b.y", 2.0)]
