"""ServeClient transport robustness: timeouts, retries, backoff."""

import http.server
import threading

import pytest

from repro.serve import TRANSIENT_ERRORS, ServeClient, ServiceError


class FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Replays a scripted sequence of behaviors, one per request.

    ``server.script`` is a list of ``"drop"`` (close the connection
    without responding), ``"500"``, ``"404"`` or ``"ok"``; once the
    script is exhausted every request succeeds.
    """

    def do_GET(self):
        with self.server.lock:
            self.server.requests += 1
            action = (
                self.server.script.pop(0) if self.server.script else "ok"
            )
        if action == "drop":
            self.close_connection = True
            return
        if action in ("500", "404"):
            self.send_response(int(action))
            body = b'{"error": "scripted failure"}'
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        body = b'{"status": "ok"}'
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        pass


@pytest.fixture()
def flaky_server():
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), FlakyHandler)
    server.script = []
    server.requests = 0
    server.lock = threading.Lock()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


def make_client(server, **kwargs):
    sleeps = []
    kwargs.setdefault("sleep", sleeps.append)
    client = ServeClient(
        f"http://127.0.0.1:{server.server_address[1]}", **kwargs
    )
    return client, sleeps


class TestRetries:
    def test_retries_past_5xx(self, flaky_server):
        flaky_server.script[:] = ["500", "500"]
        client, sleeps = make_client(flaky_server, retries=3)
        assert client.healthz() == {"status": "ok"}
        assert flaky_server.requests == 3
        assert len(sleeps) == 2

    def test_retries_past_dropped_connection(self, flaky_server):
        flaky_server.script[:] = ["drop"]
        client, sleeps = make_client(flaky_server, retries=2)
        assert client.healthz() == {"status": "ok"}
        assert flaky_server.requests == 2
        assert len(sleeps) == 1

    def test_4xx_is_not_retried(self, flaky_server):
        flaky_server.script[:] = ["404"]
        client, sleeps = make_client(flaky_server, retries=3)
        with pytest.raises(ServiceError) as exc_info:
            client.healthz()
        assert exc_info.value.status == 404
        assert not exc_info.value.transient
        assert flaky_server.requests == 1
        assert sleeps == []

    def test_budget_exhaustion_raises_last_error(self, flaky_server):
        flaky_server.script[:] = ["500"] * 5
        client, sleeps = make_client(flaky_server, retries=2)
        with pytest.raises(ServiceError) as exc_info:
            client.healthz()
        assert exc_info.value.status == 500
        assert exc_info.value.transient
        assert flaky_server.requests == 3
        assert len(sleeps) == 2

    def test_retries_zero_disables_retrying(self, flaky_server):
        flaky_server.script[:] = ["drop"]
        client, sleeps = make_client(flaky_server, retries=0)
        with pytest.raises(TRANSIENT_ERRORS):
            client.healthz()
        assert flaky_server.requests == 1
        assert sleeps == []

    def test_connection_refused_is_transient(self):
        # Bind then close a socket so the port is reliably refused.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sleeps = []
        client = ServeClient(
            f"http://127.0.0.1:{port}", retries=2, sleep=sleeps.append
        )
        with pytest.raises(ConnectionRefusedError):
            client.healthz()
        assert len(sleeps) == 2


class TestBackoff:
    def test_backoff_grows_exponentially_and_caps(self):
        client = ServeClient(
            "http://127.0.0.1:1",
            backoff_base=0.1,
            backoff_cap=0.5,
            jitter_seed=7,
        )
        delays = [client.backoff_delay(k) for k in range(5)]
        # Base schedule 0.1, 0.2, 0.4, 0.5, 0.5 with up to +25% jitter.
        for delay, base in zip(delays, [0.1, 0.2, 0.4, 0.5, 0.5]):
            assert base <= delay <= base * 1.25

    def test_backoff_is_seeded(self):
        first = ServeClient("http://127.0.0.1:1", jitter_seed=3)
        second = ServeClient("http://127.0.0.1:1", jitter_seed=3)
        assert [first.backoff_delay(k) for k in range(4)] == [
            second.backoff_delay(k) for k in range(4)
        ]


class TestConfiguration:
    def test_timeout_kwarg_sets_both_phases(self):
        client = ServeClient("http://127.0.0.1:1", timeout=7.5)
        assert client.connect_timeout == 7.5
        assert client.read_timeout == 7.5

    def test_split_timeouts(self):
        client = ServeClient(
            "http://127.0.0.1:1", connect_timeout=0.5, read_timeout=9.0
        )
        assert client.connect_timeout == 0.5
        assert client.read_timeout == 9.0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            ServeClient("http://127.0.0.1:1", retries=-1)
        with pytest.raises(ValueError):
            ServeClient("http://127.0.0.1:1", backoff_base=0.0)
        with pytest.raises(ValueError):
            ServeClient("ftp://127.0.0.1:1")
