"""Extension study: scheduling policies and the fleet what-if."""

import pytest

from conftest import report

from repro.analysis.sched_policies import run as run_policies_experiment
from repro.analysis.sched_whatif import run as run_whatif_experiment
from repro.sched import Fleet, FifoPolicy, ModelRuntimePredictor, run_schedule


def test_sched_policies(benchmark):
    result = benchmark.pedantic(
        run_policies_experiment, rounds=1, iterations=1
    )
    report(result)
    by_policy = {row["policy"]: row for row in result.rows}
    # Knowing predicted runtimes pays: SJF and EASY backfill beat FIFO
    # on mean queueing delay.
    assert by_policy["sjf"]["mean_wait_h"] < by_policy["fifo"]["mean_wait_h"]
    assert (
        by_policy["backfill"]["mean_wait_h"] < by_policy["fifo"]["mean_wait_h"]
    )


def test_sched_whatif(benchmark):
    result = benchmark.pedantic(run_whatif_experiment, rounds=1, iterations=1)
    report(result)
    baseline, projected = result.rows
    assert projected["mean_wait_h"] <= baseline["mean_wait_h"]
    assert projected["gpu_hours"] < baseline["gpu_hours"]


@pytest.mark.slow
def test_fifo_engine_at_fleet_scale(benchmark, jobs):
    """The engine chews through an 8000-job trace on a 512-server fleet."""
    trace = list(jobs)
    predictor = ModelRuntimePredictor()
    durations = predictor.durations(trace)

    def schedule():
        return run_schedule(
            trace, Fleet(512), FifoPolicy(), durations=durations
        )

    outcome = benchmark.pedantic(schedule, rounds=1, iterations=1)
    placed = len(outcome.outcomes)
    print(
        f"\n{placed} jobs placed, {len(outcome.rejected)} rejected; "
        f"mean wait {outcome.mean_queueing_delay_hours:.2f} h, "
        f"utilization {outcome.utilization():.2f}, "
        f"energy {outcome.telemetry.energy_kwh() / 1000:.1f} MWh"
    )
    assert placed + len(outcome.rejected) == len(trace)
