"""Fig. 16 / Eq. 3: the overlap assumption."""

from conftest import report

from repro.analysis import fig16_overlap


def test_fig16(benchmark, jobs):
    result = benchmark(fig16_overlap.run, jobs)
    report(result)
    by_mode = {row["composition"]: row for row in result.rows}
    non = by_mode["non-overlap"]["not_sped_up"]
    ideal = by_mode["ideal overlap"]["not_sped_up"]
    # Paper: 22.6% vs 20.2% -- the conclusion does not flip.
    assert abs(non - ideal) < 0.08
    assert any("21" in note for note in result.notes)
