"""Self-consistency of the Fig. 4 profile->extract->estimate loop."""

from conftest import report

from repro.analysis.pipeline_check import run


def test_pipeline_check(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result)
    assert all(row["closure_error"] < 0.10 for row in result.rows)
