"""Calibration robustness: the targets must hold beyond one lucky seed."""

from repro.trace import evaluate_targets, generate_trace


def test_calibration_across_seeds(benchmark):
    def pass_counts():
        counts = []
        for seed in (20190501, 7, 99):
            jobs = generate_trace(num_jobs=6000, seed=seed)
            checks = evaluate_targets(jobs)
            counts.append(sum(1 for c in checks if c["ok"]))
        return counts

    counts = benchmark.pedantic(pass_counts, rounds=1, iterations=1)
    print(f"\ncalibration targets passing per seed: {counts} / 20")
    # The default seed passes everything; other seeds may drop at most a
    # couple of noisy tail statistics at this trace size.
    assert counts[0] == 20
    assert all(count >= 17 for count in counts)
