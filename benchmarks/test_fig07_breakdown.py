"""Fig. 7: average execution-time breakdown."""

from conftest import report

from repro.analysis import fig07_breakdown


def test_fig7(benchmark, jobs):
    result = benchmark(fig07_breakdown.run, jobs)
    report(result)
    all_cnode = next(
        r for r in result.rows
        if r["population"] == "all" and r["level"] == "cNode"
    )
    # Paper (Sec. III-D): weight ~62%, compute-bound 13%, memory 22%.
    assert abs(all_cnode["weight"] - 0.62) < 0.07
    assert all_cnode["memory_bound"] > all_cnode["compute_bound"]
    all_job = next(
        r for r in result.rows
        if r["population"] == "all" and r["level"] == "job"
    )
    assert abs(all_job["weight"] - 0.22) < 0.05
