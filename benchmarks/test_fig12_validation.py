"""Fig. 12: estimated vs measured time breakdown."""

from conftest import report

from repro.analysis.case_studies import run_fig12


def test_fig12(benchmark):
    result = benchmark(run_fig12)
    report(result)
    by_model = {row["model"]: row for row in result.rows}
    # Paper shape: small differences everywhere except Speech, whose 3%
    # GDDR efficiency breaks the 70% assumption.
    others = [
        abs(row["difference"])
        for name, row in by_model.items()
        if name != "Speech"
    ]
    assert max(others) < 0.17
    assert abs(by_model["Speech"]["difference"]) > 0.35
