"""Fig. 5: constitution of workloads."""

from conftest import report

from repro.analysis import fig05_composition


def test_fig5(benchmark, jobs):
    result = benchmark(fig05_composition.run, jobs)
    report(result)
    by_type = {row["type"]: row for row in result.rows}
    # Paper: PS/Worker is 29% of jobs but 81% of cNodes.
    assert abs(by_type["PS/Worker"]["job_share"] - 0.29) < 0.02
    assert abs(by_type["PS/Worker"]["cnode_share"] - 0.81) < 0.06
    # 1w1g dominates job counts.
    assert by_type["1w1g"]["job_share"] == max(
        row["job_share"] for row in result.rows
    )
