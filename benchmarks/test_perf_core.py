"""Performance of the library itself: the analytical model must stay
cheap enough for 10^4-job collective analyses."""

from repro.analysis.context import trace_features
from repro.core import (
    PAPER_DEFAULT_EFFICIENCY,
    analyze_population,
    estimate_breakdown,
)
from repro.trace import generate_trace


def test_perf_single_estimate(benchmark, jobs, hardware):
    features = trace_features(jobs)[0]
    breakdown = benchmark(estimate_breakdown, features, hardware)
    assert breakdown.total > 0


def test_perf_population_analysis(benchmark, jobs, hardware):
    population = trace_features(jobs)[:2000]
    analyzed = benchmark(analyze_population, population, hardware)
    assert len(analyzed) == 2000


def test_perf_trace_generation(benchmark):
    jobs = benchmark.pedantic(
        generate_trace, kwargs={"num_jobs": 2000, "seed": 3}, rounds=3
    )
    assert len(jobs) == 2000
