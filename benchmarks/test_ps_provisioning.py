"""Extension study: parameter-server fleet provisioning."""

from repro.core import pai_default_hardware
from repro.sim.ps import ps_scaling_curve, recommended_ps_count


def test_ps_provisioning(benchmark, hardware):
    # A GCN-class job: 3 GB of round-trip traffic per worker, 32 workers.
    rows = benchmark(
        ps_scaling_curve, 3e9, 32, hardware, [1, 2, 4, 8, 16, 32]
    )
    print("\nPS provisioning (3 GB/worker/step, 32 workers):")
    for row in rows:
        flag = "PS-bound" if row["ps_bound"] else "worker-bound"
        print(
            f"  {row['num_ps']:3d} PS nodes: {row['sync_time_s']:7.2f}s "
            f"per step  ({flag}, load factor {row['ps_load_factor']:.1f}x)"
        )
    # One PS shard per worker removes the PS-side bottleneck.
    assert recommended_ps_count(32) == 32
    assert rows[0]["sync_time_s"] > 10 * rows[-1]["sync_time_s"]
