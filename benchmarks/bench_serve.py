"""Benchmark the repro.serve resident service under concurrent load.

Measures the two numbers the serve layer claims, and writes them to a
BENCH JSON file (CI uploads the quick variant as an artifact):

* ``ingest_jobs_per_s`` -- trace-replay throughput into the sharded
  state with no query load;
* ``query.p50_ms`` / ``query.p99_ms`` -- per-request latency seen by
  ``--clients`` concurrent HTTP clients (at least 8) hammering every
  read endpoint *while a throttled replay is still ingesting*, plus
  how many of those queries landed mid-ingestion.

Every response is checked for internal consistency (job counts never
move backwards for any client), and after the replay drains the served
aggregates are compared leaf-by-leaf against the one-shot batch path on
the same trace -- the benchmark fails loudly on drift.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py              # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick      # CI
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
import time
from pathlib import Path

#: Trace size of ``--quick`` mode (CI smoke); full mode replays 20000.
QUICK_TRACE_JOBS = 2000
FULL_TRACE_JOBS = 20000

#: How long the throttled replay should stay live while clients query.
TARGET_REPLAY_S = 3.0

#: Quantile drift allowed when sketches have compacted (population
#: above the per-sketch capacity); exact-mode drift bound is 1e-9.
SKETCH_RTOL = 0.02


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def bench_ingest(jobs, shards: int) -> dict:
    """Unthrottled replay throughput into the sharded state."""
    from repro.serve import ShardedState, TraceReplayer

    state = ShardedState(num_shards=shards)
    replayer = TraceReplayer(jobs, batch_size=500)
    start = time.perf_counter()
    delivered = replayer.replay(state.ingest)
    elapsed = time.perf_counter() - start
    if delivered != len(jobs):
        raise RuntimeError(f"replay delivered {delivered}/{len(jobs)} jobs")
    return {
        "jobs": delivered,
        "wall_s": round(elapsed, 4),
        "ingest_jobs_per_s": round(delivered / elapsed, 1),
    }


def bench_queries(jobs, shards: int, clients: int) -> dict:
    """Concurrent query latency during a live, throttled replay."""
    from repro.serve import (
        CDF_METRICS,
        ServeClient,
        ShardedState,
        TraceReplayer,
        TraceService,
    )

    day_span = max(job.submit_day for job in jobs) - min(
        job.submit_day for job in jobs
    )
    state = ShardedState(num_shards=shards)
    service = TraceService(state=state)
    service.start()
    stop = threading.Event()
    latencies = [[] for _ in range(clients)]
    during_ingest = [0] * clients
    failures = []

    def worker(slot: int) -> None:
        client = ServeClient(service.url)
        endpoints = [
            lambda: client.stats(),
            lambda: client.census(),
            lambda: client.cdf("step_time", points=20),
            lambda: client.cdf(CDF_METRICS[slot % len(CDF_METRICS)]),
            lambda: client.healthz(),
        ]
        floor = 0
        turn = 0
        try:
            while not stop.is_set():
                begin = time.perf_counter()
                payload = endpoints[turn % len(endpoints)]()
                latencies[slot].append(time.perf_counter() - begin)
                jobs_seen = payload.get("jobs", floor)
                if jobs_seen < floor:
                    raise RuntimeError(
                        f"job count went backwards: {jobs_seen} < {floor}"
                    )
                floor = jobs_seen
                if not payload.get("ingest_complete", jobs_seen >= len(jobs)):
                    during_ingest[slot] += 1
                turn += 1
        except Exception as error:  # surfaced after join
            failures.append((slot, error))

    try:
        service.start_replay(
            TraceReplayer(
                jobs,
                batch_size=250,
                seconds_per_day=TARGET_REPLAY_S / max(day_span, 1),
            )
        )
        threads = [
            threading.Thread(target=worker, args=(slot,), daemon=True)
            for slot in range(clients)
        ]
        for thread in threads:
            thread.start()
        if not service.wait_for_ingest(timeout=300):
            raise RuntimeError("replay did not finish within 300s")
        # One more full round against the final population, then stop.
        time.sleep(0.1)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        if failures:
            raise RuntimeError(f"client failures: {failures!r}")
        verify_against_batch(jobs, state)
    finally:
        stop.set()
        service.stop()

    flat = [sample for per_client in latencies for sample in per_client]
    if not flat:
        raise RuntimeError("no queries completed")
    return {
        "clients": clients,
        "queries": len(flat),
        "queries_during_ingest": sum(during_ingest),
        "p50_ms": round(_percentile(flat, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(flat, 0.99) * 1e3, 3),
        "max_ms": round(max(flat) * 1e3, 3),
    }


def verify_against_batch(jobs, state) -> None:
    """Drained service vs one-shot batch path, leaf by leaf."""
    from repro.serve import batch_reference, payload_leaves
    from repro.serve.stats import DEFAULT_SKETCH_CAPACITY

    served = state.snapshot().stats.reference_payload()
    reference = batch_reference(jobs)
    exact = len(jobs) <= DEFAULT_SKETCH_CAPACITY
    for (path, got), (ref_path, want) in zip(
        payload_leaves(served), payload_leaves(reference)
    ):
        if path != ref_path:
            raise RuntimeError(f"payload shapes differ: {path} vs {ref_path}")
        sketched = path.startswith("quantiles.") and not exact
        tolerance = SKETCH_RTOL if sketched else 1e-9
        if isinstance(want, float) and not math.isclose(
            got, want, rel_tol=tolerance, abs_tol=1e-12
        ):
            raise RuntimeError(
                f"serve/batch drift at {path}: {got!r} vs {want!r}"
            )
        if not isinstance(want, float) and got != want:
            raise RuntimeError(
                f"serve/batch mismatch at {path}: {got!r} vs {want!r}"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: {QUICK_TRACE_JOBS}-job trace",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="BENCH JSON path (default: print to stdout only)",
    )
    parser.add_argument(
        "--clients", type=int, default=8, help="concurrent query clients"
    )
    parser.add_argument(
        "--shards", type=int, default=4, help="population shard count"
    )
    args = parser.parse_args(argv)
    if args.clients < 8:
        parser.error("--clients must be at least 8")

    from repro import __version__
    from repro.trace.generator import generate_trace

    num_jobs = QUICK_TRACE_JOBS if args.quick else FULL_TRACE_JOBS
    jobs = generate_trace(num_jobs=num_jobs, seed=20190501)
    payload = {
        "bench": "serve",
        "version": __version__,
        "quick": args.quick,
        "trace_jobs": num_jobs,
        "shards": args.shards,
        "ingest": bench_ingest(jobs, args.shards),
        "query": bench_queries(jobs, args.shards, args.clients),
    }
    text = json.dumps(payload, indent=2) + "\n"
    print(text, end="")
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
    return 0


if __name__ == "__main__":
    sys.exit(main())
