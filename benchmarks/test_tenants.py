"""Extension study: tenant-level resource skew."""

from conftest import report

from repro.analysis.tenants import run
from repro.trace.groups import resource_concentration


def test_tenants(benchmark, jobs):
    result = benchmark(run, jobs)
    report(result)
    concentration = resource_concentration(list(jobs), top_fraction=0.2)
    # Production tenants dominate (Zipf-skewed assignment).
    assert concentration > 0.7
