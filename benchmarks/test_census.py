"""Extension study: bottleneck-label census and the projection shift."""

from conftest import report

from repro.analysis.census import run


def test_census(benchmark, jobs):
    result = benchmark(run, jobs)
    report(result)
    rows = {row["population"]: row for row in result.rows}
    before = rows["PS/Worker"]
    after = rows["PS/Worker -> AllReduce-Local"]
    # The Sec. III-C1 bottleneck shift as label migration.
    assert before["communication"] > 0.5
    assert after["communication"] < 0.2
    assert after["io"] > before["io"]
