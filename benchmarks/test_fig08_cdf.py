"""Fig. 8: component-share CDFs."""

from conftest import report

from repro.analysis import fig08_cdf


def test_fig8(benchmark, jobs):
    result = benchmark(fig08_cdf.run, jobs)
    report(result)
    assert len(result.rows) == 24
    # The >40%-of-PS-jobs-above-80%-communication marker.
    assert any(">80%" in note for note in result.notes)
