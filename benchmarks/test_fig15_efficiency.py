"""Fig. 15: weight-share sensitivity to the efficiency assumption."""

from conftest import report

from repro.analysis import fig15_efficiency


def test_fig15(benchmark, jobs):
    result = benchmark(fig15_efficiency.run, jobs)
    report(result)
    medians = {row["scenario"]: row["p50"] for row in result.rows}
    assert medians["Communication eff. 50%"] > medians["All eff. 70%"]
    assert medians["Computation eff. 25%"] < medians["All eff. 70%"]
    # Even at 25% computation efficiency, weight traffic stays dominant
    # on average (Sec. V-A).
    means = {row["scenario"]: row["mean"] for row in result.rows}
    assert means["Computation eff. 25%"] > 0.35
