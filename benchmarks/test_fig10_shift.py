"""Fig. 10: bottleneck shift after AllReduce-Local projection."""

from conftest import report

from repro.analysis import fig10_shift


def test_fig10(benchmark, jobs):
    result = benchmark(fig10_shift.run, jobs)
    report(result)
    by_component = {row["component"]: row for row in result.rows}
    # Weight traffic collapses; data I/O rises the most (paper text).
    assert by_component["weight"]["delta"] < -0.3
    biggest = max(result.rows, key=lambda r: r["delta"])
    assert biggest["component"] == "data_io"
