"""Shared inputs for the benchmark harness.

Each benchmark regenerates one paper table/figure (printing the rows it
reports) and times the regeneration with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.analysis.context import default_trace
from repro.core import pai_default_hardware, testbed_v100_hardware


@pytest.fixture(scope="session")
def jobs():
    """The calibrated synthetic trace used by the Sec. III benches."""
    return default_trace(8000)


@pytest.fixture(scope="session")
def hardware():
    return pai_default_hardware()


@pytest.fixture(scope="session")
def testbed():
    return testbed_v100_hardware()


def report(result) -> None:
    """Print a regenerated table/figure (visible with ``-s``)."""
    print()
    print(result.render())
