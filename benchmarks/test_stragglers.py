"""Extension study: straggler penalty vs replica count."""

from repro.core import Architecture, WorkloadFeatures
from repro.sim.stragglers import JitterModel, synchronization_penalty_curve


def test_straggler_penalty(benchmark, hardware):
    features = WorkloadFeatures(
        name="ps-job",
        architecture=Architecture.PS_WORKER,
        num_cnodes=16,
        batch_size=128,
        flop_count=2e12,
        memory_access_bytes=20e9,
        input_bytes=10e6,
        weight_traffic_bytes=500e6,
        dense_weight_bytes=500e6,
    )
    rows = benchmark(
        synchronization_penalty_curve,
        features,
        hardware,
        [1, 8, 64, 256],
        JitterModel(sigma=0.1),
    )
    print("\nstraggler penalty (10% per-replica compute jitter):")
    for row in rows:
        print(
            f"  {row['num_cnodes']:4d} cNodes: barrier factor "
            f"{row['straggler_factor']:.3f}, step inflation "
            f"{row['step_inflation']:.3f}x"
        )
    assert rows[-1]["step_inflation"] > rows[0]["step_inflation"]
