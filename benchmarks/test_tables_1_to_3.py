"""Tables I-III: configuration tables."""

from conftest import report

from repro.analysis.tables import run_table1, run_table2, run_table3


def test_table1_system_settings(benchmark):
    result = benchmark(run_table1)
    report(result)
    values = {row["setting"]: row["value"] for row in result.rows}
    assert values["GPU FLOPs"] == "11 TFLOPs"
    assert values["Ethernet"] == "25 Gb/s"


def test_table2_taxonomy(benchmark):
    result = benchmark(run_table2)
    report(result)
    media = {row["type"]: row["weight_movement"] for row in result.rows}
    assert media["PS/Worker"] == "Ethernet & PCIe"
    assert media["AllReduce-Local"] == "NVLink"


def test_table3_variations(benchmark):
    result = benchmark(run_table3)
    report(result)
    assert len(result.rows) == 4
