"""Tables IV-VI: case-study scales, features, efficiencies."""

from conftest import report

from repro.analysis.case_studies import run_table4, run_table5, run_table6


def test_table4_model_scales(benchmark):
    result = benchmark(run_table4)
    report(result)
    for row in result.rows:
        if row["paper_dense_GB"] > 0:
            assert abs(row["dense_GB"] - row["paper_dense_GB"]) <= (
                0.15 * row["paper_dense_GB"]
            )


def test_table5_workload_features(benchmark):
    result = benchmark(run_table5)
    report(result)
    for row in result.rows:
        assert abs(row["flops_G"] - row["paper_flops_G"]) <= (
            0.15 * row["paper_flops_G"]
        )
        assert abs(row["traffic_MB"] - row["paper_traffic_MB"]) <= (
            0.15 * row["paper_traffic_MB"]
        )


def test_table6_efficiencies(benchmark):
    result = benchmark(run_table6)
    report(result)
    rows = {row["model"]: row for row in result.rows}
    assert rows["Speech"]["gddr"] == 0.031
