"""Fig. 6: workload-scale CDFs."""

from conftest import report

from repro.analysis import fig06_scale


def test_fig6(benchmark, jobs):
    result = benchmark(fig06_scale.run, jobs)
    report(result)
    ps = next(r for r in result.rows if r["type"] == "PS/Worker")
    # Paper: about half of PS jobs beyond 8 cNodes; models reach 100+ GB.
    assert 4 <= ps["cnodes_p50"] <= 12
    assert ps["weight_p99"] > 10e9
    single = next(r for r in result.rows if r["type"] == "1w1g")
    assert single["weight_p50"] < 10e9
