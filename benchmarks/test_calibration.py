"""The synthetic-trace calibration report (all Sec. III statistics)."""

from conftest import report

from repro.analysis.calibration_report import run


def test_calibration(benchmark, jobs):
    result = benchmark(run, jobs)
    report(result)
    assert all(row["ok"] for row in result.rows)
