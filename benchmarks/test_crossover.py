"""Extension study: break-even Ethernet bandwidth per PS job."""

from repro.analysis.context import ps_worker_features
from repro.core import crossover_distribution


def test_crossover_distribution(benchmark, jobs, hardware):
    population = ps_worker_features(jobs)[:300]
    results = benchmark.pedantic(
        crossover_distribution, args=(population, hardware), rounds=1,
        iterations=1,
    )
    always = sum(1 for r in results if r.always_better)
    finite = [r for r in results if r.has_crossover]
    print(
        f"\ncrossover regimes over {len(results)} PS jobs: "
        f"{always} prefer NVLink at ANY fabric speed, "
        f"{len(finite)} have a finite break-even"
    )
    if finite:
        values = sorted(r.value * 8 / 1e9 for r in finite)  # Gbps
        print(
            f"break-even fabric speeds: p50 {values[len(values)//2]:.0f} "
            f"Gbps, p90 {values[int(0.9 * len(values))]:.0f} Gbps"
        )
    # The paper's porting recommendation is robust: a majority of jobs
    # prefer NVLink regardless of Ethernet investments.
    assert always > len(results) / 2
