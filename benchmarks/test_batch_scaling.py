"""Extension study: batch-size scaling of the case-study models."""

from conftest import report

from repro.analysis.batch_scaling import run


def test_batch_scaling(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report(result)
    resnet = [r for r in result.rows if r["model"] == "ResNet50"]
    multi = [r for r in result.rows if r["model"] == "Multi-Interests"]
    # Dense models amortize the fixed sync volume...
    assert resnet[-1]["comm_share"] < resnet[0]["comm_share"] / 3
    # ...embedding-dominated models cannot (traffic scales with batch).
    assert multi[-1]["comm_share"] > multi[0]["comm_share"] * 0.8
