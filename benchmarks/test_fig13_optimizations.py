"""Fig. 13: MP / XLA / configuration / PEARL effectiveness."""

from conftest import report

from repro.analysis.fig13_optimizations import (
    run_panel_a,
    run_panel_b,
    run_panel_c,
    run_panel_d,
)


def test_fig13a_mp_xla(benchmark):
    result = benchmark(run_panel_a)
    report(result)
    by_config = {row["configuration"]: row for row in result.rows}
    assert abs(by_config["MP"]["speedup"] - 1.44) < 0.15  # paper: 1.44x
    assert by_config["XLA"]["speedup"] > 1.3  # paper: 1.76x
    assert by_config["MP+XLA"]["speedup"] > 1.8  # paper: 2.0x


def test_fig13b_speech_xla(benchmark):
    result = benchmark(run_panel_b)
    report(result)
    default, xla = result.rows
    elementwise = default["elementwise_s"] / xla["elementwise_s"]
    assert abs(elementwise - 3.43) < 0.5  # paper: 3.43x
    assert default["step_s"] / xla["step_s"] > 1.25  # paper: 1.83x


def test_fig13c_multi_interests_configs(benchmark):
    result = benchmark(run_panel_c)
    report(result)
    rows = result.rows
    # The bottleneck composition varies materially across configs.
    compute = [row["compute_share"] for row in rows]
    assert max(compute) > 1.5 * min(compute)


def test_fig13d_pearl(benchmark):
    result = benchmark(run_panel_d)
    report(result)
    rows = {row["deployment"]: row for row in result.rows}
    # Paper: PS/Worker ~95% comm vs PEARL ~25%.
    assert rows["PS/Worker (estimated)"]["comm_share"] > 0.9
    assert rows["PEARL (measured)"]["comm_share"] < 0.45
