"""Fig. 9: AllReduce projection speedups."""

from conftest import report

from repro.analysis import fig09_allreduce


def test_fig9(benchmark, jobs):
    result = benchmark(fig09_allreduce.run, jobs)
    report(result)
    by_curve = {row["curve"]: row for row in result.rows}
    local_single = by_curve["AllReduce-Local single-cNode"]
    local_tp = by_curve["AllReduce-Local throughput"]
    cluster = by_curve["AllReduce-Cluster all workloads"]
    # Paper markers: 22.6%, 40.2%, 32.1%.
    assert abs(local_single["not_sped_up"] - 0.226) < 0.06
    assert abs(local_tp["not_sped_up"] - 0.402) < 0.07
    assert abs(cluster["not_sped_up"] - 0.321) < 0.08
    # Cluster speedups are limited (~1.2x max for weight-bound jobs).
    assert cluster["p90_speedup"] < 1.3
