"""The Sec. III-D key observations, regenerated end to end."""

from conftest import report

from repro.analysis.observations import run


def test_observations(benchmark, jobs):
    result = benchmark.pedantic(run, args=(jobs,), rounds=1, iterations=1)
    report(result)
    rows = {row["observation"]: row for row in result.rows}
    share = float(
        rows["distributed training resource share (Sec. II-A2)"][
            "measured"
        ].rstrip("%")
    )
    assert share > 85.0  # paper: "more than 85%"
