"""Inference characterization (future-work extension)."""

from conftest import report

from repro.analysis.inference_report import run


def test_inference(benchmark):
    result = benchmark(run)
    report(result)
    by_model = {row["model"]: row for row in result.rows}
    # The giant-embedding recommender mirrors the PEARL story.
    assert not by_model["Multi-Interests"]["fits_one_gpu"]
    assert by_model["ResNet50"]["bottleneck"] == "compute_bound"
