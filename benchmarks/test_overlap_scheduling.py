"""Ablation: wait-free gradient-push overlap scheduling (Sec. V-B)."""

from repro.analysis.context import ps_worker_features
from repro.optim import OverlapSchedule, overlapped_step_time
from repro.core import estimate_step_time


def test_overlap_scheduling(benchmark, jobs, hardware):
    population = ps_worker_features(jobs)[:800]

    def total_overlapped():
        schedule = OverlapSchedule(overlap_fraction=0.9, tail_fraction=0.1)
        return sum(
            overlapped_step_time(f, hardware, schedule) for f in population
        )

    overlapped = benchmark(total_overlapped)
    baseline = sum(estimate_step_time(f, hardware) for f in population)
    print(
        f"\noverlap scheduling: {baseline:.1f}s (non-overlap) -> "
        f"{overlapped:.1f}s (wait-free push), {baseline / overlapped:.2f}x"
    )
    # Comm-heavy population: the scheduler helps, but cannot beat the
    # ideal-overlap bound of ~3x.
    assert 1.02 < baseline / overlapped < 3.0
