"""Fig. 11: hardware-evolution sweeps."""

from conftest import report

from repro.analysis import fig11_hardware


def test_fig11(benchmark, jobs):
    result = benchmark(fig11_hardware.run, jobs)
    report(result)
    note = result.notes[0]
    # Paper: 1w1g -> GPU memory, 1wng -> PCIe, PS/Worker -> Ethernet,
    # projected AllReduce-Local -> GPU memory.
    assert "1w1g: gpu_memory" in note
    assert "1wng: pcie" in note
    assert "PS/Worker: ethernet" in note
    assert "AllReduce-Local: gpu_memory" in note
    eth100 = next(
        r for r in result.rows
        if r["panel"] == "PS/Worker" and r["resource"] == "ethernet"
        and abs(r["normalized"] - 4.0) < 1e-9
    )
    assert abs(eth100["avg_speedup"] - 1.7) < 0.2  # paper: 1.7x
