"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one modeling decision and quantifies how the
headline conclusions move.
"""

import dataclasses

from repro.analysis.context import ps_worker_features
from repro.core import (
    Architecture,
    PAPER_MODEL_OPTIONS,
    TABLE_VI_EFFICIENCIES,
    estimate_step_time,
    projection_speedups,
)
from repro.core.timemodel import OverlapMode
from repro.graphs import Deployment, build_gcn
from repro.sim import simulate_step


def _not_sped_up(population, hardware, options):
    results = [
        projection_speedups(
            f, Architecture.ALLREDUCE_LOCAL, hardware, options=options
        )
        for f in population
    ]
    return sum(1 for r in results if r.single_cnode_speedup <= 1.0) / len(results)


def test_ablation_input_contention(benchmark, jobs, hardware):
    """Without PCIe input contention the not-sped-up cohort vanishes --
    contention is the load-bearing mechanism behind Fig. 9's 22.6%."""
    population = ps_worker_features(jobs)[:1500]
    no_contention = dataclasses.replace(
        PAPER_MODEL_OPTIONS, input_pcie_contention=False
    )
    with_contention = benchmark(
        _not_sped_up, population, hardware, PAPER_MODEL_OPTIONS
    )
    without = _not_sped_up(population, hardware, no_contention)
    print(
        f"\nablation[input contention]: not-sped-up "
        f"{with_contention:.1%} (on) vs {without:.1%} (off)"
    )
    assert with_contention > 0.12
    assert without < 0.02


def test_ablation_ring_traffic_factor(benchmark, jobs, hardware):
    """The ring 2(n-1)/n factor vs the paper's flat S_w/B_w: a bounded
    (< 2x) shift in AllReduce weight time, same winner."""
    population = [
        f.with_architecture(Architecture.ALLREDUCE_LOCAL, num_cnodes=8)
        for f in ps_worker_features(jobs)[:1000]
    ]
    ringed = dataclasses.replace(
        PAPER_MODEL_OPTIONS, allreduce_ring_factor=True
    )

    def total_time(options):
        return sum(
            estimate_step_time(f, hardware, options=options)
            for f in population
        )

    flat = benchmark(total_time, PAPER_MODEL_OPTIONS)
    with_ring = total_time(ringed)
    print(
        f"\nablation[ring factor]: total step time {flat:.1f}s (flat) vs "
        f"{with_ring:.1f}s (ring)"
    )
    assert with_ring <= flat  # (n-1)/n < 1 shrinks traffic
    assert with_ring > 0.5 * flat


def test_ablation_overlap_composition(benchmark, jobs, hardware):
    """Sum vs max composition: totals shrink, bottleneck ranking holds."""
    population = ps_worker_features(jobs)[:1000]
    ideal = dataclasses.replace(PAPER_MODEL_OPTIONS, overlap=OverlapMode.IDEAL)

    def totals(options):
        return sum(
            estimate_step_time(f, hardware, options=options)
            for f in population
        )

    non_overlap = benchmark(totals, PAPER_MODEL_OPTIONS)
    overlapped = totals(ideal)
    print(
        f"\nablation[overlap]: {non_overlap:.1f}s (sum) vs "
        f"{overlapped:.1f}s (max)"
    )
    assert non_overlap / 3 <= overlapped <= non_overlap


def test_ablation_pearl_sparse_awareness(benchmark, testbed):
    """Dense PEARL (no partitioned-gather parallelism) vs sparse-aware:
    the sparse-awareness is where most of the PEARL win comes from."""
    gcn = build_gcn()
    deployment = Deployment(Architecture.PEARL, 8)
    eff = TABLE_VI_EFFICIENCIES["GCN"]

    def pearl_step():
        return simulate_step(gcn, deployment, testbed, eff).serial_total

    sparse_aware = benchmark(pearl_step)
    dense_features_time = simulate_step(
        gcn, Deployment(Architecture.PS_WORKER, 8), testbed, eff
    ).serial_total
    print(
        f"\nablation[PEARL]: sparse-aware {sparse_aware * 1e3:.1f}ms vs "
        f"PS dense path {dense_features_time * 1e3:.1f}ms"
    )
    assert sparse_aware < dense_features_time / 5


def test_ablation_efficiency_scheme(benchmark, testbed):
    """Uniform 70% vs Table VI per-workload efficiencies on Speech:
    the scheme choice is exactly the Fig. 12 outlier."""
    from repro.graphs import build_speech
    from repro.core import PAPER_DEFAULT_EFFICIENCY

    speech = build_speech()
    deployment = Deployment(Architecture.SINGLE, 1)

    def uniform():
        return simulate_step(
            speech, deployment, testbed, PAPER_DEFAULT_EFFICIENCY
        ).serial_total

    at_70 = benchmark(uniform)
    measured = simulate_step(
        speech, deployment, testbed, TABLE_VI_EFFICIENCIES["Speech"]
    ).serial_total
    print(
        f"\nablation[efficiency scheme]: {at_70:.2f}s (uniform 70%) vs "
        f"{measured:.2f}s (Table VI)"
    )
    assert measured > 1.5 * at_70
