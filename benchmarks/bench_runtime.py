"""Benchmark the repro.runtime execution layer end to end.

Measures the three wins this layer claims, and writes them to a BENCH
JSON file (committed as ``benchmarks/BENCH.json``; CI uploads the quick
variant as an artifact):

* ``cold_serial_s`` / ``cold_parallel_s`` -- full-suite runs with an
  empty result cache, in-process and with worker processes;
* ``warm_cached_s`` / ``warm_speedup`` -- the same suite served from
  the on-disk cache, plus whether the warm report is byte-identical;
* ``scalar_loop_s`` / ``vectorized_s`` / ``vectorized_speedup`` -- the
  per-job Python-loop evaluation the figure experiments used before the
  columnar path, replayed on the same populations the suite analyzes,
  against the batch path;
* ``populations`` -- per-size rows (20k / 200k / 1M full, smaller for
  ``--quick``) timing scalar vs vectorized analysis and JSONL parsing
  vs columnar-mmap loading, with a byte-identity check on the Fig. 7
  statistics both load paths produce;
* ``sched`` -- per-size rows replaying columnar traces through the
  scheduling engine (FIFO, model-predicted durations): the day-batched
  engine at every size up to one million jobs, against the per-event
  reference (with a whole-outcome identity check) where the reference
  is affordable.

The payload is stamped with the package version (read from
``repro.__version__``, never hardcoded) and, when ``--output`` is
given, also written to a ``BENCH_<version>.json`` trajectory sibling;
``tools/bench_gate.py`` compares a fresh quick run against the
committed trajectory entry and fails CI on >25% speedup regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py              # full
    PYTHONPATH=src python benchmarks/bench_runtime.py --quick      # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

#: Trace size of ``--quick`` mode (CI smoke); full mode uses the
#: suite default of 20000.
QUICK_TRACE_JOBS = 2000

#: Population sizes for the per-size scalar/vectorized/columnar rows.
#: Quick mode still includes 20000 so the regression gate can compare
#: speedup ratios against the committed full-mode baseline.
FULL_POPULATION_SIZES = (20_000, 200_000, 1_000_000)
QUICK_POPULATION_SIZES = (QUICK_TRACE_JOBS, 20_000)

#: Sched-engine rows: the trace's submission window stretches with job
#: count so the arrival rate -- and hence the absorbing fleet -- stays
#: constant and replay cost stays linear in trace size.
SCHED_ARRIVALS_PER_DAY = 400
#: The per-event reference engine replays alongside the day engine
#: only up to this size.  Beyond it the reference costs minutes while
#: saying nothing new about equivalence (the tier-1 20k tests pin
#: byte-identity across every bundled policy).
SCHED_EVENT_MAX_JOBS = 200_000
#: Fleet sizing for the sched rows: headroom over the trace's own
#: peak-day GPU demand, so each day's batch is absorbed and the rows
#: measure engine throughput rather than queueing pathology.
SCHED_FLEET_HEADROOM = 1.5


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_suite(parallel_jobs: int) -> dict:
    """Cold/warm full-suite timings through repro.runtime."""
    from repro.analysis.context import clear_caches
    from repro.analysis.report import render_outcomes
    from repro.runtime import ResultCache, failed_ids, run_suite

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        clear_caches()
        cold_serial_s, cold = _time(lambda: run_suite(jobs=1, cache=cache))
        if failed_ids(cold):
            raise RuntimeError(f"suite failures: {failed_ids(cold)}")
        warm_cached_s, warm = _time(lambda: run_suite(jobs=1, cache=cache))
        byte_identical = render_outcomes(warm) == render_outcomes(cold)
        if not all(outcome.cached for outcome in warm):
            raise RuntimeError("warm run was not fully cache-served")
    clear_caches()
    cold_parallel_s, parallel = _time(
        lambda: run_suite(jobs=parallel_jobs, cache=None)
    )
    if failed_ids(parallel):
        raise RuntimeError(f"suite failures: {failed_ids(parallel)}")
    return {
        "experiments": len(cold),
        "cold_serial_s": round(cold_serial_s, 4),
        "cold_parallel_s": round(cold_parallel_s, 4),
        "parallel_jobs": parallel_jobs,
        "warm_cached_s": round(warm_cached_s, 4),
        "warm_speedup": round(cold_serial_s / warm_cached_s, 1),
        "byte_identical": byte_identical,
    }


def bench_vectorization() -> dict:
    """Per-job scalar loop vs the columnar batch path, same populations."""
    from repro.analysis.context import default_hardware, default_trace
    from repro.core.architectures import Architecture
    from repro.core.population import (
        FeatureArrays,
        analyze_population,
        average_fractions,
        batch_breakdowns,
        batch_projection_speedups,
    )
    from repro.core.projection import projection_speedups
    from repro.core.sweep import sweep_resource
    from repro.core.timemodel import estimate_breakdown
    from repro.core.units import gbps

    jobs = default_trace()
    hardware = default_hardware()
    everyone = [job.features for job in jobs]
    ps_jobs = [
        job.features
        for job in jobs
        if job.features.architecture is Architecture.PS_WORKER
    ]
    ethernet_candidates = [gbps(50), gbps(100), gbps(400)]

    def scalar_loop():
        analyzed = analyze_population(everyone, hardware)
        fractions = average_fractions(analyzed, cnode_level=True)
        speedups = [
            projection_speedups(
                f, Architecture.ALLREDUCE_LOCAL, hardware
            ).throughput_speedup
            for f in ps_jobs
        ]
        # The pre-columnar sweep loop (Fig. 11's dominant cost): one
        # scalar model evaluation per job per candidate value.
        base = [estimate_breakdown(f, hardware).total for f in ps_jobs]
        sweeps = []
        for value in ethernet_candidates:
            varied = hardware.with_resource("ethernet", value)
            new = [estimate_breakdown(f, varied).total for f in ps_jobs]
            sweeps.append(
                sum(b / n for b, n in zip(base, new)) / len(base)
            )
        return fractions, speedups, sweeps

    def vectorized():
        analyzed = batch_breakdowns(
            FeatureArrays.from_workloads(everyone), hardware
        )
        fractions = analyzed.average_fractions(cnode_level=True)
        ps_arrays = FeatureArrays.from_workloads(ps_jobs)
        speedups = batch_projection_speedups(
            ps_arrays, Architecture.ALLREDUCE_LOCAL, hardware
        ).throughput_speedup
        sweeps = [
            point.average_speedup
            for point in sweep_resource(
                ps_arrays, "ethernet", ethernet_candidates, hardware
            ).points
        ]
        return fractions, speedups, sweeps

    scalar_loop_s, (scalar_fracs, _, scalar_sweeps) = _time(scalar_loop)
    vectorized_s, (batch_fracs, _, batch_sweeps) = _time(vectorized)
    drift = max(
        max(abs(scalar_fracs[k] - batch_fracs[k]) for k in scalar_fracs),
        max(abs(s - b) for s, b in zip(scalar_sweeps, batch_sweeps)),
    )
    if drift > 1e-9:
        raise RuntimeError(f"scalar/vector drift {drift:.3e} exceeds 1e-9")
    return {
        "population": len(everyone),
        "scalar_loop_s": round(scalar_loop_s, 4),
        "vectorized_s": round(vectorized_s, 4),
        "vectorized_speedup": round(scalar_loop_s / vectorized_s, 1),
    }


def bench_populations(sizes) -> list:
    """Per-size rows: scalar vs vectorized analysis, JSONL vs columnar.

    For each population size this generates one calibrated trace and
    measures, on identical jobs:

    * ``scalar_analysis_s`` -- the per-job Python loop producing the
      Fig. 7 cNode-weighted averages;
    * ``vectorized_analysis_s`` -- the columnar batch path on the same
      population;
    * ``jsonl_load_s`` -- parsing the trace from JSONL into an
      analysis-ready :class:`FeatureArrays`;
    * ``columnar_load_s`` -- the same endpoint via the memory-mapped
      columnar store (no per-job objects);
    * ``stats_identical`` -- whether both load paths produce
      byte-identical Fig. 7 statistics.
    """
    from repro.analysis.context import DEFAULT_TRACE_SEED, default_hardware
    from repro.core.population import (
        FeatureArrays,
        analyze_population,
        average_fractions,
        batch_breakdowns,
    )
    from repro.trace.columnar import ColumnarTrace, write_columnar
    from repro.trace.generator import generate_trace
    from repro.trace.serialization import load_trace, save_trace

    hardware = default_hardware()
    rows = []
    for size in sizes:
        jobs = generate_trace(num_jobs=size, seed=DEFAULT_TRACE_SEED)
        with tempfile.TemporaryDirectory() as tmp:
            jsonl_path = Path(tmp) / "trace.jsonl"
            store_path = Path(tmp) / "trace.columnar"
            save_trace(jobs, jsonl_path)
            write_columnar(jobs, store_path)

            def load_jsonl():
                records = load_trace(jsonl_path)
                return FeatureArrays.from_workloads(
                    record.features for record in records
                )

            def load_columnar():
                return ColumnarTrace.open(store_path).feature_arrays()

            jsonl_load_s, from_jsonl = _time(load_jsonl)
            columnar_load_s, from_columnar = _time(load_columnar)
            jsonl_stats = batch_breakdowns(
                from_jsonl, hardware
            ).average_fractions(cnode_level=True)
            columnar_stats = batch_breakdowns(
                from_columnar, hardware
            ).average_fractions(cnode_level=True)
            stats_identical = jsonl_stats == columnar_stats

        features = [job.features for job in jobs]
        del jobs
        scalar_analysis_s, scalar_stats = _time(
            lambda: average_fractions(
                analyze_population(features, hardware), cnode_level=True
            )
        )
        vectorized_analysis_s, batch_stats = _time(
            lambda: batch_breakdowns(
                FeatureArrays.from_workloads(features), hardware
            ).average_fractions(cnode_level=True)
        )
        drift = max(
            abs(scalar_stats[key] - batch_stats[key]) for key in scalar_stats
        )
        if drift > 1e-9:
            raise RuntimeError(
                f"scalar/vector drift {drift:.3e} exceeds 1e-9 at {size}"
            )
        rows.append(
            {
                "jobs": size,
                "scalar_analysis_s": round(scalar_analysis_s, 4),
                "vectorized_analysis_s": round(vectorized_analysis_s, 4),
                "vectorized_speedup": round(
                    scalar_analysis_s / vectorized_analysis_s, 1
                ),
                "jsonl_load_s": round(jsonl_load_s, 4),
                "columnar_load_s": round(columnar_load_s, 4),
                "columnar_load_speedup": round(
                    jsonl_load_s / columnar_load_s, 1
                ),
                "stats_identical": stats_identical,
            }
        )
    return rows


def bench_sched(sizes) -> list:
    """Per-size rows: day-batched vs per-event scheduling replays.

    Each row generates a calibrated trace, writes it to a columnar
    store, and replays the store's lazy job views through
    ``sched.run_schedule`` under FIFO with model-predicted durations
    (the Sec. II-B analytical model, resolved per admission day on the
    vectorized path).  Durations are clamped to 24 hours so occupancy
    carries over at most one day and the peak-day-sized fleet stays
    absorbing.  Up to ``SCHED_EVENT_MAX_JOBS`` the per-event reference
    engine replays the identical trace and the two
    :class:`ScheduleOutcome` values are compared whole
    (``outcomes_identical``).
    """
    import numpy as np

    from repro.analysis.context import DEFAULT_TRACE_SEED
    from repro.sched import Fleet, FifoPolicy, ModelRuntimePredictor
    from repro.sched import run_schedule
    from repro.trace.columnar import ColumnarTrace, write_columnar
    from repro.trace.generator import TraceConfig, generate_trace

    gpus_per_server = 8
    rows = []
    for size in sizes:
        days = max(51, size // SCHED_ARRIVALS_PER_DAY)
        jobs = generate_trace(
            config=TraceConfig(
                num_jobs=size, seed=DEFAULT_TRACE_SEED, trace_days=days
            )
        )
        with tempfile.TemporaryDirectory() as tmp:
            store_path = Path(tmp) / "trace.columnar"
            write_columnar(jobs, store_path)
            del jobs
            store = ColumnarTrace.open(store_path)
            demand = np.bincount(
                store.column("submit_day"),
                weights=store.column("num_cnodes"),
            )
            servers = max(
                64,
                int(SCHED_FLEET_HEADROOM * demand.max() / gpus_per_server),
            )
            trace = list(store.iter_views())

            def replay(engine):
                return run_schedule(
                    trace,
                    Fleet(servers, gpus_per_server=gpus_per_server),
                    FifoPolicy(),
                    predictor=ModelRuntimePredictor(max_hours=24.0),
                    engine=engine,
                    collect_telemetry=False,
                )

            day_s, day_outcome = _time(lambda: replay("day"))
            row = {
                "jobs": size,
                "policy": "fifo",
                "trace_days": days,
                "servers": servers,
                "completed": len(day_outcome.outcomes),
                "rejected": len(day_outcome.rejected),
                "day_s": round(day_s, 4),
                "event_s": None,
                "day_speedup": None,
                "outcomes_identical": None,
            }
            if size <= SCHED_EVENT_MAX_JOBS:
                event_s, event_outcome = _time(lambda: replay("event"))
                row["event_s"] = round(event_s, 4)
                row["day_speedup"] = round(event_s / day_s, 2)
                row["outcomes_identical"] = event_outcome == day_outcome
            rows.append(row)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: {QUICK_TRACE_JOBS}-job trace",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="BENCH JSON path (default: print to stdout only)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=max(os.cpu_count() or 1, 2),
        help="worker count for the parallel cold run",
    )
    args = parser.parse_args(argv)

    if args.quick:
        os.environ["PAI_REPRO_TRACE_JOBS"] = str(QUICK_TRACE_JOBS)

    from repro import __version__
    from repro.analysis.context import default_trace_config

    sizes = QUICK_POPULATION_SIZES if args.quick else FULL_POPULATION_SIZES
    payload = {
        "bench": "runtime",
        "version": __version__,
        "quick": args.quick,
        "trace_jobs": default_trace_config().num_jobs,
        "suite": bench_suite(args.parallel),
        "vectorization": bench_vectorization(),
        "populations": bench_populations(sizes),
        "sched": bench_sched(sizes),
    }
    text = json.dumps(payload, indent=2) + "\n"
    print(text, end="")
    if args.output:
        output = Path(args.output)
        output.write_text(text, encoding="utf-8")
        trajectory = output.with_name(f"BENCH_{__version__}.json")
        trajectory.write_text(text, encoding="utf-8")
        print(f"trajectory entry: {trajectory}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
