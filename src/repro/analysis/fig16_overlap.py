"""Fig. 16 / Eq. 3: the computation-communication overlap assumption."""

from __future__ import annotations

from ..core.sensitivity import compare_overlap_assumptions, eq3_weight_bound_speedup
from ..trace.statistics import EmpiricalCDF
from .context import default_hardware, default_trace, ps_worker_features
from .paper_constants import FIG16
from .result import ExperimentResult

__all__ = ["run"]


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate the Fig. 16 comparison and check Eq. 3."""
    if jobs is None:
        jobs = default_trace()
    hardware = default_hardware()
    comparison = compare_overlap_assumptions(
        ps_worker_features(jobs), hardware
    )
    eq3 = eq3_weight_bound_speedup(hardware)
    ideal_cdf = EmpiricalCDF.from_samples(comparison.ideal_overlap_speedups)
    non_cdf = EmpiricalCDF.from_samples(comparison.non_overlap_speedups)
    rows = [
        {
            "composition": "non-overlap",
            "not_sped_up": comparison.non_overlap_not_sped_up,
            "paper_not_sped_up": FIG16["non_overlap_not_sped_up"],
            "p50_speedup": non_cdf.median,
            "p90_speedup": non_cdf.quantile(0.90),
        },
        {
            "composition": "ideal overlap",
            "not_sped_up": comparison.ideal_overlap_not_sped_up,
            "paper_not_sped_up": FIG16["ideal_overlap_not_sped_up"],
            "p50_speedup": ideal_cdf.median,
            "p90_speedup": ideal_cdf.quantile(0.90),
        },
    ]
    at_21x = comparison.fraction_at_speedup(eq3, tolerance=0.05)
    notes = [
        f"Eq. 3 weight-bound speedup: {eq3:.4g}x (paper: exactly 21x)",
        f"ideal-overlap jobs pinned at ~21x: {at_21x:.1%} "
        f"(paper: {FIG16['weight_bound_fraction']:.1%})",
        "the overlap assumption changes the speedup distribution but not "
        "the fundamental-bottleneck conclusion (Sec. V-B)",
    ]
    return ExperimentResult(
        experiment="fig16",
        title="Overlap-assumption sensitivity (Fig. 16)",
        rows=rows,
        notes=notes,
    )
