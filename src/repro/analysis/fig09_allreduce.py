"""Fig. 9: speedups from projecting PS/Worker jobs onto AllReduce."""

from __future__ import annotations

from ..core.architectures import Architecture
from ..core.population import ProjectionArrays, batch_projection_speedups
from ..trace.statistics import EmpiricalCDF
from .context import default_hardware, trace_feature_arrays
from .paper_constants import FIG9
from .result import ExperimentResult

__all__ = ["run", "project_all"]


def project_all(jobs: tuple, target: Architecture) -> ProjectionArrays:
    """Project the whole PS/Worker population onto one target."""
    return batch_projection_speedups(
        trace_feature_arrays(jobs, Architecture.PS_WORKER),
        target,
        default_hardware(),
    )


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate the Fig. 9 speedup CDFs and their markers."""
    local = project_all(jobs, Architecture.ALLREDUCE_LOCAL)
    cluster = project_all(jobs, Architecture.ALLREDUCE_CLUSTER)

    single_cdf = EmpiricalCDF.from_samples(local.single_cnode_speedup)
    throughput_cdf = EmpiricalCDF.from_samples(local.throughput_speedup)
    cluster_cdf = EmpiricalCDF.from_samples(cluster.throughput_speedup)
    rescued = cluster.throughput_speedup[local.throughput_speedup <= 1.0]
    rescue_cdf = EmpiricalCDF.from_samples(rescued)

    rows = [
        {
            "curve": "AllReduce-Local single-cNode",
            "not_sped_up": single_cdf.probability_at(1.0),
            "p50_speedup": single_cdf.median,
            "p90_speedup": single_cdf.quantile(0.90),
            "paper_not_sped_up": FIG9["local_single_not_sped_up"],
        },
        {
            "curve": "AllReduce-Local throughput",
            "not_sped_up": throughput_cdf.probability_at(1.0),
            "p50_speedup": throughput_cdf.median,
            "p90_speedup": throughput_cdf.quantile(0.90),
            "paper_not_sped_up": FIG9["local_throughput_not_sped_up"],
        },
        {
            "curve": "AllReduce-Cluster all workloads",
            "not_sped_up": cluster_cdf.probability_at(1.0),
            "p50_speedup": cluster_cdf.median,
            "p90_speedup": cluster_cdf.quantile(0.90),
            "paper_not_sped_up": FIG9["cluster_not_sped_up"],
        },
        {
            "curve": "AllReduce-Cluster on local failures",
            "not_sped_up": rescue_cdf.probability_at(1.0),
            "p50_speedup": rescue_cdf.median,
            "p90_speedup": rescue_cdf.quantile(0.90),
            "paper_not_sped_up": FIG9["cluster_rescue_not_sped_up"],
        },
    ]
    sped_up = 1.0 - throughput_cdf.probability_at(1.0)
    notes = [
        f"{sped_up:.1%} of PS/Worker jobs gain throughput on "
        "AllReduce-Local (paper: ~60%)",
        "AllReduce-Cluster speedups top out near 1.2x (Ethernet still "
        "dominates the path)",
    ]
    return ExperimentResult(
        experiment="fig9",
        title="AllReduce projection speedups (Fig. 9)",
        rows=rows,
        notes=notes,
    )
