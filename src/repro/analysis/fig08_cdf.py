"""Fig. 8: CDFs of execution-time component shares.

Panel (a) aggregates per hardware component (GPU FLOPs, GPU memory,
PCIe, Ethernet); panels (b)-(d) show per-type CDFs of the four logical
components, at both job and cNode level.
"""

from __future__ import annotations

from typing import Dict

from ..core.architectures import Architecture
from ..core.population import COMPONENT_KEYS, HARDWARE_KEYS, batch_breakdowns
from ..trace.statistics import EmpiricalCDF
from .context import default_hardware, trace_feature_arrays
from .result import ExperimentResult

__all__ = ["run", "component_cdfs", "hardware_cdfs"]


def component_cdfs(
    jobs: tuple, architecture: Architecture, cnode_level: bool = False
) -> Dict[str, EmpiricalCDF]:
    """Panels (b)-(d): per-component share CDFs for one type."""
    analyzed = batch_breakdowns(
        trace_feature_arrays(jobs, architecture), default_hardware()
    )
    weights = analyzed.cnode_weights() if cnode_level else None
    return {
        component: EmpiricalCDF.from_samples(
            analyzed.fraction_samples(component), weights
        )
        for component in COMPONENT_KEYS
    }


def hardware_cdfs(jobs: tuple, cnode_level: bool = False) -> Dict[str, EmpiricalCDF]:
    """Panel (a): per-hardware-component share CDFs, all workloads."""
    analyzed = batch_breakdowns(trace_feature_arrays(jobs), default_hardware())
    weights = analyzed.cnode_weights() if cnode_level else None
    return {
        component: EmpiricalCDF.from_samples(
            analyzed.hardware_share_samples(component), weights
        )
        for component in HARDWARE_KEYS
        if component != "NVLink"  # no NVLink traffic in the trace types
    }


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate the Fig. 8 quantile summaries and markers."""
    rows = []
    for arch in (
        Architecture.SINGLE,
        Architecture.LOCAL_CENTRALIZED,
        Architecture.PS_WORKER,
    ):
        for cnode_level in (False, True):
            cdfs = component_cdfs(jobs, arch, cnode_level)
            for component, cdf in cdfs.items():
                rows.append(
                    {
                        "type": str(arch),
                        "level": "cNode" if cnode_level else "job",
                        "component": component,
                        "p50": cdf.median,
                        "p90": cdf.quantile(0.90),
                    }
                )
    ps = batch_breakdowns(
        trace_feature_arrays(jobs, Architecture.PS_WORKER), default_hardware()
    )
    above80 = ps.weighted_fraction_exceeding("weight", 0.80, cnode_level=True)
    single = batch_breakdowns(
        trace_feature_arrays(jobs, Architecture.SINGLE), default_hardware()
    )
    data50 = single.weighted_fraction_exceeding("data_io", 0.50)
    notes = [
        f"PS/Worker spending >80% time on weight traffic: {above80:.1%} "
        "(paper: >40%)",
        f"1w1g spending >50% time on input I/O: {data50:.1%} (paper: ~5%)",
    ]
    return ExperimentResult(
        experiment="fig8",
        title="Component-share CDFs (Fig. 8)",
        rows=rows,
        notes=notes,
    )
