"""Common experiment-result container and text rendering.

Every experiment module returns an :class:`ExperimentResult`: a list of
row dicts (the regenerated table / figure series) plus notes comparing
against the paper's reported values.  The benchmark harness and the CLI
render these with :func:`render_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["ExperimentResult", "render_table", "format_value"]


@dataclass
class ExperimentResult:
    """The regenerated rows/series of one paper table or figure."""

    experiment: str
    title: str
    rows: List[Dict[str, object]]
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ValueError("experiment id must be non-empty")

    def columns(self) -> List[str]:
        """Union of row keys, in first-seen order."""
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def render(self) -> str:
        """Human-readable report: title, table, notes."""
        lines = [f"== {self.experiment}: {self.title} =="]
        if self.rows:
            lines.append(render_table(self.rows, self.columns()))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def format_value(value: object) -> str:
    """Render one cell: floats get 4 significant digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(rows: Sequence[Dict[str, object]], columns: List[str]) -> str:
    """Fixed-width text table."""
    if not rows:
        return "(no rows)"
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(width) for col, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in cells
    ]
    return "\n".join([header, separator] + body)
