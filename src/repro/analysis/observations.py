"""Sec. III-D "Summary of Key Observations", regenerated as one table.

Also covers the Sec. II-A2 operational claim ("more than 85% of
computation resources are used by distributed training"), checked via
the multi-job cluster-occupancy simulation.
"""

from __future__ import annotations

from ..core.architectures import Architecture
from ..core.population import batch_breakdowns, batch_projection_speedups
from ..core.sweep import sweep_resource
from ..core.units import gbps, gigabytes
from ..sim.multijob import ClusterScheduler
from .context import default_hardware, default_trace, trace_feature_arrays
from .result import ExperimentResult

__all__ = ["run"]


def _distributed_resource_share(jobs) -> float:
    scheduler = ClusterScheduler(num_servers=512, gpus_per_server=8)
    placeable = [
        j
        for j in jobs
        if not (
            j.workload_type is Architecture.PS_WORKER and j.num_cnodes > 512
        )
    ][:1500]
    return scheduler.schedule(placeable).distributed_resource_share()


def run(jobs: tuple = None) -> ExperimentResult:
    """Check every Sec. III-D bullet against the synthetic trace."""
    if jobs is None:
        jobs = default_trace()
    hardware = default_hardware()
    ps_arrays = trace_feature_arrays(jobs, Architecture.PS_WORKER)
    all_analyzed = batch_breakdowns(trace_feature_arrays(jobs), hardware)
    ps_analyzed = batch_breakdowns(ps_arrays, hardware)
    cnode_fractions = all_analyzed.average_fractions(cnode_level=True)

    total_cnodes = sum(j.num_cnodes for j in jobs)
    ps_cnodes = sum(
        j.num_cnodes for j in jobs
        if j.workload_type is Architecture.PS_WORKER
    )
    small_models = sum(
        1 for j in jobs if j.features.weight_bytes < gigabytes(10)
    ) / len(jobs)

    local_results = batch_projection_speedups(
        ps_arrays, Architecture.ALLREDUCE_LOCAL, hardware
    )
    throughput_improved = float(
        (local_results.throughput_speedup > 1.0).mean()
    )

    ethernet = sweep_resource(
        ps_arrays, "ethernet", [gbps(100)], hardware
    ).points[0].average_speedup

    rows = [
        {
            "observation": "distributed training resource share (Sec. II-A2)",
            "paper": "> 85%",
            "measured": f"{_distributed_resource_share(list(jobs)):.1%}",
        },
        {
            "observation": "PS/Worker share of cNodes",
            "paper": "81%",
            "measured": f"{ps_cnodes / total_cnodes:.1%}",
        },
        {
            "observation": "models below 10 GB",
            "paper": "90%",
            "measured": f"{small_models:.1%}",
        },
        {
            "observation": "weight/gradient share of execution time (cNode)",
            "paper": "~62%",
            "measured": f"{cnode_fractions['weight']:.1%}",
        },
        {
            "observation": "compute-bound share (cNode)",
            "paper": "13%",
            "measured": f"{cnode_fractions['compute_bound']:.1%}",
        },
        {
            "observation": "memory-bound share (cNode)",
            "paper": "22%",
            "measured": f"{cnode_fractions['memory_bound']:.1%}",
        },
        {
            "observation": "PS jobs > 80% communication (cNode level)",
            "paper": "> 40%",
            "measured": f"{ps_analyzed.weighted_fraction_exceeding('weight', 0.8, cnode_level=True):.1%}",
        },
        {
            "observation": "PS jobs improved by AllReduce-Local (throughput)",
            "paper": "60%",
            "measured": f"{throughput_improved:.1%}",
        },
        {
            "observation": "average speedup at 100 Gbps Ethernet",
            "paper": "1.7x",
            "measured": f"{ethernet:.2f}x",
        },
    ]
    return ExperimentResult(
        experiment="observations",
        title="Key observations (Sec. III-D + Sec. II-A2)",
        rows=rows,
    )
