"""The Fig. 4 pipeline, closed end-to-end for every case-study model.

Simulate a step, profile it (RunMetadata), extract features, re-apply
the analytical model, and compare against the measured breakdown.  With
both sides at the same 70% efficiency, the loop should close tightly --
this experiment is the self-consistency check of the whole framework.
"""

from __future__ import annotations

from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY
from ..core.timemodel import estimate_breakdown
from ..graphs import all_case_studies, case_study_deployments
from ..profiling import JobMetadata, RunMetadata, extract_features
from ..sim.executor import SimulationOptions, simulate_step
from .context import testbed_hardware
from .result import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    """Profile -> extract -> estimate, for the six case studies."""
    hardware = testbed_hardware()
    deployments = case_study_deployments()
    rows = []
    for name, graph in all_case_studies().items():
        deployment = deployments[name]
        measurement = simulate_step(
            graph,
            deployment,
            hardware,
            PAPER_DEFAULT_EFFICIENCY,
            options=SimulationOptions(launch_overhead=0.0, check_memory=False),
        )
        metadata = RunMetadata.from_measurement(measurement)
        job = JobMetadata(
            name,
            deployment.architecture,
            num_workers=deployment.num_cnodes,
            batch_size=graph.batch_size,
        )
        extracted = extract_features(metadata, job)
        estimate = estimate_breakdown(extracted, hardware)
        measured = measurement.breakdown()
        closure = (
            abs(estimate.total - measured.total) / measured.total
            if measured.total
            else 0.0
        )
        rows.append(
            {
                "model": name,
                "profiled_ops": len(metadata.entries),
                "measured_s": measured.total,
                "reestimated_s": estimate.total,
                "closure_error": closure,
            }
        )
    worst = max(rows, key=lambda r: r["closure_error"])
    notes = [
        f"worst closure error: {worst['closure_error']:.1%} "
        f"({worst['model']}) -- the pipeline is self-consistent",
        "both sides use the 70% efficiency and zero overhead, so any "
        "residual is collective-model vs flat-S_w accounting",
    ]
    return ExperimentResult(
        experiment="pipeline",
        title="Fig. 4 pipeline self-consistency check",
        rows=rows,
        notes=notes,
    )
