"""Shared inputs for the experiment modules.

Trace-based experiments (Figs. 5-11, 15, 16) consume the default
calibrated synthetic trace; case-study experiments (Tables IV-VI,
Figs. 12-13) consume the six model builders on the V100 testbed.  Both
are cached so running the full experiment suite generates them once.
"""

from __future__ import annotations

import functools
from typing import List

from ..core.architectures import Architecture
from ..core.features import WorkloadFeatures
from ..core.hardware import HardwareConfig, pai_default_hardware, testbed_v100_hardware
from ..trace.generator import generate_trace
from ..trace.schema import features_of_type

__all__ = [
    "DEFAULT_TRACE_JOBS",
    "default_trace",
    "default_hardware",
    "testbed_hardware",
    "trace_features",
    "ps_worker_features",
]

#: Trace size for the experiment suite: large enough for stable tail
#: statistics, small enough to generate in under a second.
DEFAULT_TRACE_JOBS = 20000


@functools.lru_cache(maxsize=4)
def default_trace(num_jobs: int = DEFAULT_TRACE_JOBS) -> tuple:
    """The calibrated synthetic trace (cached, deterministic)."""
    return tuple(generate_trace(num_jobs=num_jobs))


def default_hardware() -> HardwareConfig:
    """Table I settings."""
    return pai_default_hardware()


def testbed_hardware() -> HardwareConfig:
    """The Sec. IV V100 testbed."""
    return testbed_v100_hardware()


def trace_features(
    jobs: tuple = None, architecture: Architecture = None
) -> List[WorkloadFeatures]:
    """Feature tuples from the default trace, optionally one type."""
    if jobs is None:
        jobs = default_trace()
    if architecture is None:
        return [job.features for job in jobs]
    return features_of_type(list(jobs), architecture)


def ps_worker_features(jobs: tuple = None) -> List[WorkloadFeatures]:
    """The PS/Worker population (the Sec. III-C projection subjects)."""
    return trace_features(jobs, Architecture.PS_WORKER)
