"""Shared inputs for the experiment modules.

Trace-based experiments (Figs. 5-11, 15, 16) consume the default
calibrated synthetic trace; case-study experiments (Tables IV-VI,
Figs. 12-13) consume the six model builders on the V100 testbed.  Both
are cached so running the full experiment suite generates them once.

The trace cache is keyed on the **full generator configuration** (the
:class:`repro.trace.generator.TraceConfig` dataclass), not just the job
count: any calibration, seed or marginal-distribution change produces a
different key, so a stale trace can never be served.  Tests that mutate
the environment can reset everything through :func:`clear_caches`.
"""

from __future__ import annotations

import functools
import hashlib
import os
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple

from ..core.architectures import Architecture
from ..core.features import WorkloadFeatures
from ..core.hardware import HardwareConfig, pai_default_hardware, testbed_v100_hardware
from ..core.population import FeatureArrays
from ..trace.columnar import MANIFEST_NAME, ColumnarTrace, is_columnar_store
from ..trace.generator import TraceConfig, generate_trace
from ..trace.schema import features_of_type
from ..trace.serialization import load_trace

__all__ = [
    "DEFAULT_TRACE_JOBS",
    "DEFAULT_TRACE_SEED",
    "TRACE_JOBS_ENV_VAR",
    "TRACE_PATH_ENV_VAR",
    "default_trace_config",
    "default_trace",
    "default_hardware",
    "testbed_hardware",
    "external_trace_path",
    "trace_source_identity",
    "trace_features",
    "trace_feature_arrays",
    "ps_worker_features",
    "clear_caches",
]

#: Trace size for the experiment suite: large enough for stable tail
#: statistics, small enough to generate in under a second.
DEFAULT_TRACE_JOBS = 20000

#: Seed of the calibrated default trace.
DEFAULT_TRACE_SEED = 20190501

#: Environment override for the suite's trace size (used by the quick
#: benchmark mode and CI smoke runs).  The value participates in the
#: trace config, and therefore in result-cache fingerprints.
TRACE_JOBS_ENV_VAR = "PAI_REPRO_TRACE_JOBS"

#: Environment override pointing the whole suite at an on-disk trace
#: instead of the synthetic generator: either a JSONL file or a
#: columnar store directory (:mod:`repro.trace.columnar`).  Columnar
#: stores feed the vectorized experiments straight from memory-mapped
#: columns, so figs 7-11 run against million-job populations without
#: materializing per-job records.  The trace's content digest
#: participates in result-cache fingerprints.
TRACE_PATH_ENV_VAR = "PAI_REPRO_TRACE_PATH"


def external_trace_path() -> Optional[str]:
    """The :data:`TRACE_PATH_ENV_VAR` override, if set and non-empty."""
    return os.environ.get(TRACE_PATH_ENV_VAR) or None


def _manifest_digest(path: str) -> str:
    """Content hash of a columnar store's manifest (its commit point).

    The manifest carries every shard's SHA-256, so hashing its bytes
    identifies the store *contents*; it is a few KB, so re-reading it
    on every cache probe is what makes in-process rewrites visible.
    """
    payload = (Path(path) / MANIFEST_NAME).read_bytes()
    return hashlib.sha256(payload).hexdigest()


def _external_trace_token(path: str) -> tuple:
    """Content-identity token of the trace at ``path``, probed fresh.

    JSONL traces are identified by ``(size, mtime_ns)``; columnar
    stores by their manifest digest (re-checked on every call).  The
    caches below key on ``(path, token)``, so rewriting the file at
    :data:`TRACE_PATH_ENV_VAR` mid-process invalidates them instead of
    serving the old records under the new fingerprint.
    """
    if is_columnar_store(path):
        return ("columnar", _manifest_digest(path))
    stat = os.stat(path)
    return ("jsonl", stat.st_size, stat.st_mtime_ns)


@functools.lru_cache(maxsize=2)
def _columnar_store_for(path: str, manifest_digest: str) -> ColumnarTrace:
    del manifest_digest  # cache key only: re-open when contents change
    return ColumnarTrace.open(path)


def _external_columnar_store(path: str) -> ColumnarTrace:
    """The columnar store at ``path``, re-opened when its content changes."""
    return _columnar_store_for(path, _manifest_digest(path))


@functools.lru_cache(maxsize=2)
def _cached_external_trace(path: str, token: tuple) -> tuple:
    del token  # cache key only: content identity of the trace
    if is_columnar_store(path):
        return tuple(_external_columnar_store(path).iter_records())
    return tuple(load_trace(path))


@functools.lru_cache(maxsize=4)
def _jsonl_digest(path: str, size: int, mtime_ns: int) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def trace_source_identity() -> Optional[dict]:
    """Content identity of the external trace override, or ``None``.

    Result-cache fingerprints include this, so pointing
    :data:`TRACE_PATH_ENV_VAR` at a different trace (or rewriting the
    same path) can never serve a stale cached result.  Columnar stores
    identify by their manifest digest; JSONL traces hash their bytes
    (re-hashed whenever size or mtime changes).  The record and column
    caches key on the same identity, so a fingerprint can never pair a
    fresh digest with stale cached data.
    """
    path = external_trace_path()
    if path is None:
        return None
    if is_columnar_store(path):
        return {
            "format": "columnar",
            "digest": _external_columnar_store(path).digest(),
        }
    stat = os.stat(path)
    return {
        "format": "jsonl",
        "digest": _jsonl_digest(path, stat.st_size, stat.st_mtime_ns),
    }


def default_trace_config(num_jobs: Optional[int] = None) -> TraceConfig:
    """The suite's trace-generator configuration.

    ``num_jobs`` defaults to :data:`DEFAULT_TRACE_JOBS`, overridable via
    the :data:`TRACE_JOBS_ENV_VAR` environment variable.
    """
    if num_jobs is None:
        num_jobs = int(os.environ.get(TRACE_JOBS_ENV_VAR, DEFAULT_TRACE_JOBS))
    return TraceConfig(num_jobs=num_jobs, seed=DEFAULT_TRACE_SEED)


@functools.lru_cache(maxsize=4)
def _cached_trace(config: TraceConfig) -> tuple:
    return tuple(generate_trace(config=config))


def default_trace(
    num_jobs: Optional[int] = None, config: Optional[TraceConfig] = None
) -> tuple:
    """The suite's trace (cached, deterministic).

    By default this is the calibrated synthetic trace; with
    :data:`TRACE_PATH_ENV_VAR` set (and no explicit ``num_jobs`` or
    ``config``) it is the on-disk trace at that path instead --
    materialized as records here, while the vectorized experiments
    bypass this entirely via :func:`trace_feature_arrays`.

    The synthetic cache key is the complete :class:`TraceConfig` -- two
    calls with the same job count but different seeds or calibration
    parameters are distinct entries, never a silently shared stale
    trace.
    """
    if num_jobs is None and config is None:
        path = external_trace_path()
        if path is not None:
            return _cached_external_trace(path, _external_trace_token(path))
    if config is None:
        config = default_trace_config(num_jobs)
    elif num_jobs is not None and config.num_jobs != num_jobs:
        raise ValueError(
            "pass either num_jobs or an explicit TraceConfig, not a "
            "conflicting combination"
        )
    return _cached_trace(config)


def default_hardware() -> HardwareConfig:
    """Table I settings."""
    return pai_default_hardware()


def testbed_hardware() -> HardwareConfig:
    """The Sec. IV V100 testbed."""
    return testbed_v100_hardware()


def trace_features(
    jobs: tuple = None, architecture: Architecture = None
) -> List[WorkloadFeatures]:
    """Feature tuples from the default trace, optionally one type.

    Columns-first: when :data:`TRACE_PATH_ENV_VAR` points at a columnar
    store (and no explicit ``jobs`` are passed), the result is a list
    of lazy row views over the memory-mapped columns -- bit-identical
    attribute access without materializing a single record.  Explicit
    ``jobs`` iterables keep the per-record escape hatch.
    """
    if jobs is None:
        path = external_trace_path()
        if path is not None and is_columnar_store(path):
            arrays = trace_feature_arrays()
            if architecture is not None:
                arrays = arrays.of_architecture(architecture)
            return list(arrays.iter_views())
        jobs = default_trace()
    if architecture is None:
        return [job.features for job in jobs]
    return features_of_type(list(jobs), architecture)


#: Columnar-extraction memo: (trace identity, architecture) -> arrays.
#: Keyed on object identity with the trace kept alive in the value, so a
#: recycled ``id`` can never alias a different trace.
_FEATURE_ARRAYS: "OrderedDict[Tuple[int, Optional[Architecture]], Tuple[tuple, FeatureArrays]]" = (
    OrderedDict()
)
_FEATURE_ARRAYS_MAX = 16


def trace_feature_arrays(
    jobs: tuple = None, architecture: Architecture = None
) -> FeatureArrays:
    """Columnar features of (a slice of) a trace, extracted once.

    Population columns feed the vectorized batch-evaluation path
    (:mod:`repro.core.population`); experiments sharing a population
    (Figs. 7-11, calibration, observations) share one extraction.

    When :data:`TRACE_PATH_ENV_VAR` points at a columnar store and no
    explicit ``jobs`` are passed, the columns come straight off the
    memory-mapped shards (:meth:`ColumnarTrace.feature_arrays`) --
    no ``JobRecord`` objects exist at any point, which is what lets
    the figure experiments run against 1M+ job populations.
    """
    if jobs is None:
        path = external_trace_path()
        if path is not None and is_columnar_store(path):
            store = _external_columnar_store(path)
            skey = (id(store), architecture)
            hit = _FEATURE_ARRAYS.get(skey)
            if hit is not None and hit[0] is store:
                _FEATURE_ARRAYS.move_to_end(skey)  # repro: ignore[fork-safety] per-process memo
                return hit[1]
            arrays = store.feature_arrays(architecture)
            _FEATURE_ARRAYS[skey] = (store, arrays)  # repro: ignore[fork-safety] per-process memo
            while len(_FEATURE_ARRAYS) > _FEATURE_ARRAYS_MAX:
                _FEATURE_ARRAYS.popitem(last=False)  # repro: ignore[fork-safety] per-process memo
            return arrays
        jobs = default_trace()
    key = (id(jobs), architecture)
    hit = _FEATURE_ARRAYS.get(key)
    if hit is not None and hit[0] is jobs:
        _FEATURE_ARRAYS.move_to_end(key)  # repro: ignore[fork-safety] per-process memo
        return hit[1]
    arrays = FeatureArrays.from_workloads(trace_features(jobs, architecture))
    _FEATURE_ARRAYS[key] = (jobs, arrays)  # repro: ignore[fork-safety] per-process memo
    while len(_FEATURE_ARRAYS) > _FEATURE_ARRAYS_MAX:
        _FEATURE_ARRAYS.popitem(last=False)  # repro: ignore[fork-safety] per-process memo
    return arrays


def ps_worker_features(jobs: tuple = None) -> List[WorkloadFeatures]:
    """The PS/Worker population (the Sec. III-C projection subjects)."""
    return trace_features(jobs, Architecture.PS_WORKER)


def clear_caches() -> None:
    """Drop every cached trace and feature extraction (test hook)."""
    _cached_trace.cache_clear()
    _cached_external_trace.cache_clear()
    _columnar_store_for.cache_clear()
    _jsonl_digest.cache_clear()
    _FEATURE_ARRAYS.clear()  # repro: ignore[fork-safety] test hook
