"""Batch-size scaling study for the case-study models.

Fig. 13(c) hints at the theme (larger batches amortize communication);
this experiment makes it systematic: per-step time and throughput as
the per-replica batch grows, for every Table IV model under its own
deployment.  The saturation point -- where throughput stops improving
-- is where the per-step fixed costs (weight sync, framework overhead)
are fully amortized.
"""

from __future__ import annotations

from typing import List

from ..core.efficiency import TABLE_VI_EFFICIENCIES
from ..graphs import all_case_studies, case_study_deployments
from ..sim.executor import simulate_step
from .context import testbed_hardware
from .result import ExperimentResult

__all__ = ["run", "BATCH_FACTORS"]

#: Per-replica batch relative to the model's Table V batch size.
BATCH_FACTORS: List[float] = [0.25, 0.5, 1.0, 2.0, 4.0]


def run(models: List[str] = None) -> ExperimentResult:
    """Throughput vs batch factor for the case-study models."""
    hardware = testbed_hardware()
    graphs = all_case_studies()
    deployments = case_study_deployments()
    if models is None:
        models = ["ResNet50", "BERT", "Multi-Interests", "GCN"]
    rows = []
    for name in models:
        graph = graphs[name]
        deployment = deployments[name]
        efficiency = TABLE_VI_EFFICIENCIES[name]
        base_batch = graph.batch_size
        for factor in BATCH_FACTORS:
            batch = max(1, int(round(base_batch * factor)))
            scaled = graph.with_batch_size(batch)
            measurement = simulate_step(
                scaled, deployment, hardware, efficiency
            )
            step = measurement.serial_total
            rows.append(
                {
                    "model": name,
                    "batch": batch,
                    "step_s": step,
                    "samples_per_s": deployment.num_cnodes * batch / step,
                    "comm_share": measurement.weight_time / step,
                }
            )
    notes = [
        "per-step synchronization volume is batch-independent for dense "
        "models, so larger batches amortize it (comm share falls)",
        "embedding-dominated models gain less: their traffic is the "
        "accessed rows, which scale with the batch",
    ]
    return ExperimentResult(
        experiment="batch_scaling",
        title="Batch-size scaling of the case-study models",
        rows=rows,
        notes=notes,
    )
