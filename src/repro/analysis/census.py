"""Bottleneck census: the cluster-health view of the trace.

Labels every job by its dominant execution-time component and reports
the population shares -- before and after the AllReduce-Local
projection, making the Sec. III-C1 bottleneck shift visible as label
migrations rather than averaged percentages.
"""

from __future__ import annotations

from ..core.classify import Bottleneck, bottleneck_census, classify_population
from ..core.projection import project_to_allreduce_local
from .context import default_hardware, default_trace, ps_worker_features, trace_features
from .result import ExperimentResult

__all__ = ["run"]


def run(jobs: tuple = None) -> ExperimentResult:
    """Label census for the whole trace and for the projected PS jobs."""
    if jobs is None:
        jobs = default_trace()
    hardware = default_hardware()
    populations = {
        "all jobs": trace_features(jobs),
        "PS/Worker": ps_worker_features(jobs),
        "PS/Worker -> AllReduce-Local": [
            project_to_allreduce_local(f) for f in ps_worker_features(jobs)
        ],
    }
    rows = []
    for name, population in populations.items():
        census = bottleneck_census(
            classify_population(population, hardware), cnode_level=False
        )
        rows.append(
            {
                "population": name,
                "communication": census[Bottleneck.COMMUNICATION],
                "compute": census[Bottleneck.COMPUTE],
                "memory": census[Bottleneck.MEMORY],
                "io": census[Bottleneck.INPUT_IO],
                "balanced": census[Bottleneck.BALANCED],
            }
        )
    before = rows[1]
    after = rows[2]
    notes = [
        f"projection moves communication-bound jobs "
        f"{before['communication']:.1%} -> {after['communication']:.1%} "
        f"and exposes I/O-bound jobs {before['io']:.1%} -> {after['io']:.1%}",
        "labels use a 50% dominance threshold; 'balanced' has no majority "
        "component",
    ]
    return ExperimentResult(
        experiment="census",
        title="Bottleneck census (label view of Figs. 7/10)",
        rows=rows,
        notes=notes,
    )
