"""Fig. 5: constitution of workloads, job-level and cNode-level."""

from __future__ import annotations

from ..core.architectures import Architecture
from .context import default_trace
from .paper_constants import FIG5
from .result import ExperimentResult

__all__ = ["run"]

_TYPES = (
    Architecture.SINGLE,
    Architecture.LOCAL_CENTRALIZED,
    Architecture.PS_WORKER,
    Architecture.ALLREDUCE_LOCAL,
)


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate the Fig. 5 pie shares."""
    if jobs is None:
        jobs = default_trace()
    total_jobs = len(jobs)
    total_cnodes = sum(job.num_cnodes for job in jobs)
    rows = []
    for arch in _TYPES:
        of_type = [job for job in jobs if job.workload_type is arch]
        cnodes = sum(job.num_cnodes for job in of_type)
        rows.append(
            {
                "type": str(arch),
                "job_share": len(of_type) / total_jobs,
                "cnode_share": cnodes / total_cnodes,
            }
        )
    ps_row = next(r for r in rows if r["type"] == "PS/Worker")
    notes = [
        f"paper Fig. 5: PS/Worker job share {FIG5['ps_job_share']:.0%} "
        f"(measured {ps_row['job_share']:.1%}), cNode share "
        f"{FIG5['ps_cnode_share']:.0%} (measured {ps_row['cnode_share']:.1%})",
        "1w1g dominates job counts; PS/Worker dominates resources",
    ]
    return ExperimentResult(
        experiment="fig5",
        title="Constitution of workloads (Fig. 5)",
        rows=rows,
        notes=notes,
    )
