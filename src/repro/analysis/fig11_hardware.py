"""Fig. 11: average speedup under hardware-configuration variations.

Four panels: 1w1g, 1wng, PS/Worker, and the PS/Worker population
projected onto AllReduce-Local; each sweeps the Table III candidates of
every resource.
"""

from __future__ import annotations

from typing import Dict

from ..core.architectures import Architecture
from ..core.sweep import SweepSeries, sweep_all_resources
from .context import default_hardware, trace_feature_arrays
from .result import ExperimentResult

__all__ = ["run", "panel"]

_PANEL_RESOURCES = {
    "1w1g": ("pcie", "gpu_flops", "gpu_memory"),
    "1wng": ("pcie", "gpu_flops", "gpu_memory"),
    "PS/Worker": ("ethernet", "pcie", "gpu_flops", "gpu_memory"),
    "AllReduce-Local": ("pcie", "gpu_flops", "gpu_memory"),
}


def panel(jobs: tuple, name: str) -> Dict[str, SweepSeries]:
    """One Fig. 11 panel: sweep series for one workload population."""
    hardware = default_hardware()
    if name == "1w1g":
        population = trace_feature_arrays(jobs, Architecture.SINGLE)
    elif name == "1wng":
        population = trace_feature_arrays(jobs, Architecture.LOCAL_CENTRALIZED)
    elif name == "PS/Worker":
        population = trace_feature_arrays(jobs, Architecture.PS_WORKER)
    elif name == "AllReduce-Local":
        population = trace_feature_arrays(
            jobs, Architecture.PS_WORKER
        ).project_ps_to(Architecture.ALLREDUCE_LOCAL)
    else:
        raise KeyError(f"unknown panel: {name!r}")
    series = sweep_all_resources(population, hardware)
    return {
        resource: series[resource] for resource in _PANEL_RESOURCES[name]
    }


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate all four Fig. 11 panels."""
    rows = []
    most_sensitive = {}
    for name in _PANEL_RESOURCES:
        panel_series = panel(jobs, name)
        for resource, series in panel_series.items():
            for point in series.points:
                rows.append(
                    {
                        "panel": name,
                        "resource": resource,
                        "normalized": point.normalized_value,
                        "avg_speedup": point.average_speedup,
                    }
                )
        most_sensitive[name] = max(
            panel_series, key=lambda r: panel_series[r].sensitivity
        )
    ps_eth = next(
        r
        for r in rows
        if r["panel"] == "PS/Worker"
        and r["resource"] == "ethernet"
        and abs(r["normalized"] - 4.0) < 1e-9
    )
    notes = [
        "most sensitive resource per panel: "
        + ", ".join(f"{k}: {v}" for k, v in most_sensitive.items()),
        f"PS/Worker at 100 Gbps Ethernet: {ps_eth['avg_speedup']:.2f}x "
        "(paper: ~1.7x)",
        "paper: 1w1g most sensitive to GPU memory, 1wng to PCIe, "
        "PS/Worker to Ethernet; after projection, GPU memory matters most",
    ]
    return ExperimentResult(
        experiment="fig11",
        title="Hardware-evolution sweeps (Fig. 11)",
        rows=rows,
        notes=notes,
    )
