"""Extension study: telemetry-only root-cause analysis under injection.

The paper characterizes healthy workloads; production PAI-era clusters
were multi-tenant and failure-prone, and large-scale GPU-datacenter
studies report that anomalies dominate operational behavior.  This
experiment runs the :mod:`repro.faults` scored scenario suite -- 25
seeded scenarios cycling through all five fault kinds, injected into
the step simulator and the scheduling engine -- and grades whether the
detection pipeline localizes each root cause (kind + target + onset)
from :mod:`repro.obs` telemetry alone.

The headline row is the overall localization accuracy; the suite is
fully seeded, so the scores (and the telemetry digests behind them)
are byte-identical across runs.
"""

from __future__ import annotations

from ..faults import ScenarioReport, score_suite
from ..faults.scenarios import DEFAULT_SEED
from .result import ExperimentResult

__all__ = ["run", "SUITE_SCENARIOS"]

#: Committed suite size: >= 5 scenarios per fault kind.
SUITE_SCENARIOS = 25


def run() -> ExperimentResult:
    """Run the committed scenario suite and tabulate per-kind accuracy."""
    report: ScenarioReport = score_suite(SUITE_SCENARIOS, DEFAULT_SEED)
    rows = []
    for kind, (localized, total) in sorted(report.by_kind().items()):
        rows.append(
            {
                "fault_kind": kind,
                "scenarios": total,
                "localized": localized,
                "accuracy": localized / total if total else 0.0,
            }
        )
    rows.append(
        {
            "fault_kind": "overall",
            "scenarios": len(report.results),
            "localized": sum(r.localized for r in report.results),
            "accuracy": report.accuracy,
        }
    )
    return ExperimentResult(
        experiment="faults_scenarios",
        title="Telemetry-only fault localization across injected scenarios",
        rows=rows,
        notes=[
            f"suite seed {report.seed}; onset accuracy "
            f"{report.onset_accuracy:.0%}; report digest "
            f"{report.digest[:16]}",
            "detector sees obs telemetry only (never the FaultPlan); "
            "acceptance bar is >= 80% kind+target localization",
        ],
    )
