"""Calibration report: every Sec. III statistic, paper vs synthetic."""

from __future__ import annotations

from ..trace.calibration import evaluate_targets
from .context import default_trace
from .result import ExperimentResult

__all__ = ["run"]


def run(jobs: tuple = None) -> ExperimentResult:
    """Check every calibration target against the default trace."""
    if jobs is None:
        jobs = default_trace()
    checks = evaluate_targets(list(jobs))
    rows = [
        {
            "target": check["name"],
            "paper": check["paper"],
            "measured": check["measured"],
            "tolerance": check["tolerance"],
            "ok": check["ok"],
        }
        for check in checks
    ]
    failed = [check["name"] for check in checks if not check["ok"]]
    notes = (
        [f"FAILED targets: {', '.join(failed)}"]
        if failed
        else ["all calibration targets within tolerance"]
    )
    return ExperimentResult(
        experiment="calibration",
        title="Synthetic-trace calibration vs Sec. III statistics",
        rows=rows,
        notes=notes,
    )
