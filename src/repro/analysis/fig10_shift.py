"""Fig. 10: bottleneck shift after projecting onto AllReduce-Local.

Once the weight traffic moves to NVLink, its share collapses and the
input-I/O share (now contended on PCIe) rises the most.
"""

from __future__ import annotations

from ..core.architectures import Architecture
from ..core.population import batch_breakdowns
from .context import default_hardware, trace_feature_arrays
from .result import ExperimentResult

__all__ = ["run"]


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate the Fig. 10 before/after breakdown."""
    hardware = default_hardware()
    originals = trace_feature_arrays(jobs, Architecture.PS_WORKER)
    projected = originals.project_ps_to(Architecture.ALLREDUCE_LOCAL)

    before = batch_breakdowns(originals, hardware).average_fractions()
    after = batch_breakdowns(projected, hardware).average_fractions()
    rows = []
    for component in ("data_io", "weight", "compute_bound", "memory_bound"):
        rows.append(
            {
                "component": component,
                "ps_worker_share": before[component],
                "allreduce_local_share": after[component],
                "delta": after[component] - before[component],
            }
        )
    data_row = next(r for r in rows if r["component"] == "data_io")
    weight_row = next(r for r in rows if r["component"] == "weight")
    biggest_gain = max(rows, key=lambda r: r["delta"])
    notes = [
        f"weight share collapses {weight_row['ps_worker_share']:.1%} -> "
        f"{weight_row['allreduce_local_share']:.1%}",
        f"data I/O share rises {data_row['ps_worker_share']:.1%} -> "
        f"{data_row['allreduce_local_share']:.1%} "
        "(paper: 'the portion of data I/O via PCIe increases the most')",
        f"largest increase: {biggest_gain['component']}",
    ]
    return ExperimentResult(
        experiment="fig10",
        title="Bottleneck shift under AllReduce-Local (Fig. 10)",
        rows=rows,
        notes=notes,
    )
