"""Every number the paper reports, for paper-vs-measured comparison.

Grouped by table/figure.  Values are in base units (bytes, FLOPs,
bytes/s, fractions in [0, 1]).
"""

from __future__ import annotations

from ..core.units import gbps, gigabytes, gigabytes_per_second, megabytes
from ..core.units import kilobytes, teraflops, terabytes_per_second, gigaflops

__all__ = [
    "TABLE_I",
    "TABLE_IV",
    "TABLE_V",
    "FIG5",
    "FIG7",
    "FIG9",
    "FIG12_DIFF_BOUND",
    "FIG13",
    "FIG16",
    "SEC3_OBSERVATIONS",
]

#: Table I: system settings of the trace cluster.
TABLE_I = {
    "gpu_flops": teraflops(11),
    "gpu_memory_bandwidth": terabytes_per_second(1),
    "ethernet": gbps(25),
    "pcie": gigabytes_per_second(10),
    "nvlink": gigabytes_per_second(50),
}

#: Table IV: case-study model scales (at-rest weights incl. optimizer).
TABLE_IV = {
    "ResNet50": {
        "domain": "CV",
        "dense": megabytes(204),
        "embedding": 0.0,
        "architecture": "AllReduce-Local",
    },
    "NMT": {
        "domain": "Translation",
        "dense": megabytes(706),
        "embedding": megabytes(819),
        "architecture": "AllReduce-Local",
    },
    "BERT": {
        "domain": "QA",
        "dense": gigabytes(1),
        "embedding": megabytes(284),
        "architecture": "AllReduce-Local",
    },
    "Speech": {
        "domain": "Speech recognition",
        "dense": megabytes(416),
        "embedding": 0.0,
        "architecture": "1w1g",
    },
    "Multi-Interests": {
        "domain": "Recommender",
        "dense": megabytes(1.19),
        "embedding": 239.45e9,
        "architecture": "PS/Worker",
    },
    "GCN": {
        "domain": "Recommender",
        "dense": megabytes(207),
        "embedding": gigabytes(54),
        "architecture": "PEARL",
    },
}

#: Table V: basic workload features (per training step).
TABLE_V = {
    "Multi-Interests": {
        "batch_size": 2048,
        "flop_count": gigaflops(105.8),
        "memory_access": 100.4e9,
        "pcie_copy": megabytes(261),
        "network_traffic": megabytes(122),
    },
    "ResNet50": {
        "batch_size": 64,
        "flop_count": teraflops(1.56),
        "memory_access": 31.9e9,
        "pcie_copy": megabytes(38),
        "network_traffic": megabytes(357),
    },
    "NMT": {
        "batch_size": 6144,
        "flop_count": teraflops(2.5),
        "memory_access": 101.6e9,
        "pcie_copy": kilobytes(22),
        "network_traffic": 1.33e9,
    },
    "BERT": {
        "batch_size": 12,
        "flop_count": teraflops(2.1),
        "memory_access": 107.3e9,
        "pcie_copy": kilobytes(46),
        "network_traffic": 1.5e9,
    },
    "Speech": {
        "batch_size": 32,
        "flop_count": teraflops(7.9),
        "memory_access": 20.4e9,
        "pcie_copy": megabytes(804),
        "network_traffic": megabytes(728),
    },
    "GCN": {
        "batch_size": 512,
        "flop_count": gigaflops(330.7),
        "memory_access": 25.79e9,
        "pcie_copy": megabytes(1.2),
        "network_traffic": gigabytes(3),
    },
}

#: Fig. 5: workload constitution.
FIG5 = {
    "ps_job_share": 0.29,
    "ps_cnode_share": 0.81,
    "allreduce_job_share": 0.01,
}

#: Fig. 7 / Sec. III-D averages.
FIG7 = {
    "weight_share_job_level": 0.22,
    "weight_share_cnode_level": 0.62,
    "compute_bound_share_cnode_level": 0.13,
    "memory_bound_share_cnode_level": 0.22,
    "data_io_share_1w1g": 0.10,
    "data_io_share_distributed": 0.03,
}

#: Fig. 9 markers.
FIG9 = {
    "local_single_not_sped_up": 0.226,
    "local_throughput_not_sped_up": 0.402,
    "cluster_not_sped_up": 0.321,
    "cluster_rescue_not_sped_up": 0.622,  # 37.8% of local failures rescued
}

#: Fig. 12: estimation error is below ~10-15% except Speech (>66%).
FIG12_DIFF_BOUND = {
    "typical": 0.17,
    "speech_min": 0.35,
}

#: Fig. 13 reported optimization gains.
FIG13 = {
    "bert_mp_end_to_end": 1.44,
    "bert_mp_matmul": 2.8,
    "bert_xla_end_to_end": 1.76,
    "bert_mp_xla_end_to_end": 2.0,
    "speech_xla_elementwise": 3.43,
    "speech_xla_end_to_end": 1.83,
    "gcn_pearl_comm_share": 0.25,
    "gcn_ps_comm_share": 0.95,
}

#: Fig. 16 / Eq. 3.
FIG16 = {
    "non_overlap_not_sped_up": 0.226,
    "ideal_overlap_not_sped_up": 0.202,
    "weight_bound_speedup": 21.0,
    "weight_bound_fraction": 0.234,
}

#: Sec. III-D key-observation bullets (fractions).
SEC3_OBSERVATIONS = {
    "ps_resource_share": 0.81,
    "small_models_below_10gb": 0.90,
    "weight_comm_share": 0.62,
    "ps_comm_above_80": 0.40,
    "throughput_improved_by_local": 0.60,
    "ethernet_100g_speedup": 1.7,
}
