"""Tenant-level cluster analytics (multi-tenant view of the trace)."""

from __future__ import annotations

from .context import default_trace
from ..trace.groups import group_profiles, resource_concentration
from .result import ExperimentResult

__all__ = ["run"]


def run(jobs: tuple = None, top: int = 8) -> ExperimentResult:
    """Per-tenant submission/consumption profile of the trace."""
    if jobs is None:
        jobs = default_trace()
    profiles = group_profiles(jobs)
    total_cnodes = sum(p.cnode_total for p in profiles)
    rows = [
        {
            "group": profile.group,
            "jobs": profile.job_count,
            "cnode_share": profile.cnode_total / total_cnodes,
            "dominant_type": str(profile.dominant_type),
            "median_model_MB": profile.median_weight_bytes / 1e6,
        }
        for profile in profiles[:top]
    ]
    concentration = resource_concentration(list(jobs), top_fraction=0.2)
    notes = [
        f"top 20% of tenants hold {concentration:.1%} of cNodes",
        "multi-tenant GPU clusters typically show heavy per-tenant skew "
        "(cf. Jeon et al., cited by the paper)",
    ]
    return ExperimentResult(
        experiment="tenants",
        title="Tenant-level resource consumption",
        rows=rows,
        notes=notes,
    )
