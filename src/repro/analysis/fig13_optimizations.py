"""Fig. 13: effectiveness of the Sec. IV-D optimization techniques.

Four panels:

* (a) the BERT-class dense model under default / MP / XLA / MP+XLA;
* (b) the Speech model under XLA;
* (c) the Multi-Interests model under three (batch, attention-layer)
  configurations -- the bottleneck moves with the configuration;
* (d) GCN under PEARL vs the estimated PS/Worker deployment.
"""

from __future__ import annotations

from ..core.architectures import Architecture
from ..core.efficiency import TABLE_VI_EFFICIENCIES
from ..core.timemodel import estimate_breakdown
from ..graphs import (
    build_bert,
    build_gcn,
    build_multi_interests,
    build_speech,
)
from ..graphs.features_from_graph import Deployment, features_for
from ..optim import apply_passes, mixed_precision_pass, xla_fusion_pass
from ..sim.executor import simulate_step
from .context import testbed_hardware
from .paper_constants import FIG13
from .result import ExperimentResult

__all__ = [
    "run",
    "run_panel_a",
    "run_panel_b",
    "run_panel_c",
    "run_panel_d",
]


def _measure(graph, deployment, name):
    return simulate_step(
        graph, deployment, testbed_hardware(), TABLE_VI_EFFICIENCIES[name]
    )


def run_panel_a() -> ExperimentResult:
    """Panel (a): MP and XLA on the BERT-class dense model."""
    graph = build_bert()
    deployment = Deployment(
        Architecture.ALLREDUCE_LOCAL, num_cnodes=8, embedding_sync_dense=True
    )
    base = _measure(graph, deployment, "BERT")
    mp = _measure(mixed_precision_pass(graph), deployment, "BERT")
    xla = _measure(xla_fusion_pass(graph), deployment, "BERT")
    both = _measure(
        apply_passes(graph, [mixed_precision_pass, xla_fusion_pass]),
        deployment,
        "BERT",
    )
    matmul_speedup = base.compute_time / mp.compute_time
    rows = [
        {
            "configuration": "default",
            "step_s": base.serial_total,
            "speedup": 1.0,
            "paper_speedup": 1.0,
        },
        {
            "configuration": "MP",
            "step_s": mp.serial_total,
            "speedup": base.serial_total / mp.serial_total,
            "paper_speedup": FIG13["bert_mp_end_to_end"],
        },
        {
            "configuration": "XLA",
            "step_s": xla.serial_total,
            "speedup": base.serial_total / xla.serial_total,
            "paper_speedup": FIG13["bert_xla_end_to_end"],
        },
        {
            "configuration": "MP+XLA",
            "step_s": both.serial_total,
            "speedup": base.serial_total / both.serial_total,
            "paper_speedup": FIG13["bert_mp_xla_end_to_end"],
        },
    ]
    notes = [
        f"MatMul kernel speedup under MP: {matmul_speedup:.2f}x "
        f"(paper: {FIG13['bert_mp_matmul']}x)",
    ]
    return ExperimentResult(
        experiment="fig13a",
        title="MP/XLA on the dense BERT-class model (Fig. 13a)",
        rows=rows,
        notes=notes,
    )


def run_panel_b() -> ExperimentResult:
    """Panel (b): XLA on the Speech model."""
    graph = build_speech()
    deployment = Deployment(Architecture.SINGLE, num_cnodes=1)
    base = _measure(graph, deployment, "Speech")
    xla = _measure(xla_fusion_pass(graph), deployment, "Speech")
    rows = [
        {
            "configuration": "default",
            "step_s": base.serial_total,
            "elementwise_s": base.memory_time,
        },
        {
            "configuration": "XLA",
            "step_s": xla.serial_total,
            "elementwise_s": xla.memory_time,
        },
    ]
    notes = [
        f"element-wise speedup: {base.memory_time / xla.memory_time:.2f}x "
        f"(paper: {FIG13['speech_xla_elementwise']}x)",
        f"end-to-end speedup: {base.serial_total / xla.serial_total:.2f}x "
        f"(paper: {FIG13['speech_xla_end_to_end']}x)",
    ]
    return ExperimentResult(
        experiment="fig13b",
        title="XLA on the Speech model (Fig. 13b)",
        rows=rows,
        notes=notes,
    )


#: The three Fig. 13(c) training configurations (batch, attention layers).
PANEL_C_CONFIGS = ((2048, 2), (8192, 2), (2048, 6))


def run_panel_c() -> ExperimentResult:
    """Panel (c): Multi-Interests under three configurations."""
    deployment = Deployment(Architecture.PS_WORKER, num_cnodes=32)
    rows = []
    for batch, layers in PANEL_C_CONFIGS:
        graph = build_multi_interests(batch_size=batch, attention_layers=layers)
        measurement = _measure(graph, deployment, "Multi-Interests")
        total = measurement.serial_total
        rows.append(
            {
                "batch": batch,
                "attention_layers": layers,
                "step_s": total,
                "elementwise_share": measurement.memory_time / total,
                "comm_share": measurement.weight_time / total,
                "compute_share": measurement.compute_time / total,
            }
        )
    notes = [
        "the bottleneck composition varies significantly across "
        "configurations (paper's claim): larger batches keep element-wise "
        "ops dominant; deeper attention roughly doubles the compute share",
        "deviation: the paper's third configuration is communication-"
        "bound; with our per-sample-calibrated features the extra "
        "attention layers shift time toward compute instead (see "
        "EXPERIMENTS.md)",
    ]
    return ExperimentResult(
        experiment="fig13c",
        title="Multi-Interests configurations (Fig. 13c)",
        rows=rows,
        notes=notes,
    )


def run_panel_d() -> ExperimentResult:
    """Panel (d): GCN under PEARL vs estimated PS/Worker."""
    graph = build_gcn()
    pearl = _measure(graph, Deployment(Architecture.PEARL, num_cnodes=8), "GCN")
    # The PS/Worker bar of Fig. 13(d) is the analytical estimate.
    ps_features = features_for(
        graph, Deployment(Architecture.PS_WORKER, num_cnodes=8)
    )
    ps_estimate = estimate_breakdown(ps_features, testbed_hardware())
    pearl_comm = pearl.weight_time / pearl.serial_total
    ps_comm = ps_estimate.fractions()["weight"]
    rows = [
        {
            "deployment": "PEARL (measured)",
            "step_s": pearl.serial_total,
            "comm_share": pearl_comm,
            "paper_comm_share": FIG13["gcn_pearl_comm_share"],
        },
        {
            "deployment": "PS/Worker (estimated)",
            "step_s": ps_estimate.total,
            "comm_share": ps_comm,
            "paper_comm_share": FIG13["gcn_ps_comm_share"],
        },
    ]
    notes = [
        f"PEARL cuts the communication share from {ps_comm:.0%} to "
        f"{pearl_comm:.0%} by moving partitioned-embedding exchange to "
        "NVLink (paper: 95% -> 25%)",
    ]
    return ExperimentResult(
        experiment="fig13d",
        title="GCN: PEARL vs PS/Worker (Fig. 13d)",
        rows=rows,
        notes=notes,
    )


def run() -> ExperimentResult:
    """All four panels concatenated."""
    panels = [run_panel_a(), run_panel_b(), run_panel_c(), run_panel_d()]
    rows = []
    notes = []
    for panel in panels:
        for row in panel.rows:
            rows.append({"panel": panel.experiment, **row})
        notes.extend(f"[{panel.experiment}] {n}" for n in panel.notes)
    return ExperimentResult(
        experiment="fig13",
        title="Optimization-technique effectiveness (Fig. 13)",
        rows=rows,
        notes=notes,
    )
