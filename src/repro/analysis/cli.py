"""Command-line entry point: regenerate paper tables and figures.

Usage::

    pai-repro list                     # show available experiments
    pai-repro run fig9                 # regenerate one table/figure
    pai-repro all                      # regenerate everything
    pai-repro all -v --log-json e.jsonl
                                       # ...with debug telemetry on stderr
                                       # and a JSON-lines event log
    pai-repro report -o report.md      # write the full markdown report
    pai-repro trace -o trace.jsonl -n 20000 --seed 7
                                       # generate & save a synthetic trace
    pai-repro advise --flops 1.56T --memory 31.9GB --input 38MB \
                     --traffic 357MB --weights 204MB --cnodes 16
                                       # rank deployments for one job
    pai-repro serve --trace trace.jsonl --seconds-per-day 0.1
                                       # resident analytics service:
                                       # stream the trace in, answer
                                       # /stats /census /cdf queries
    pai-repro faults -n 25 -o faults.json --events events.jsonl
                                       # scored fault-injection suite:
                                       # inject, detect, localize, grade
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .registry import experiment_ids, run_experiment

__all__ = ["main", "build_parser"]


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``all``, ``report`` and ``trace``."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug-level telemetry on stderr (spans, cache traffic)",
    )
    group.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="errors only on stderr; suppresses the run summary",
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="append machine-readable JSON-lines telemetry events to PATH",
    )


def _add_suite_options(parser: argparse.ArgumentParser) -> None:
    """Execution-layer flags shared by ``all`` and ``report``."""
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=os.cpu_count() or 1,
        help="worker processes (default: CPU count; 1 = in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every experiment, ignoring the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache directory (default: $PAI_REPRO_CACHE_DIR "
        "or ~/.cache/pai-repro)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-run each failed experiment up to N extra times "
        "(default: 0; the suite is deterministic, so opt in only "
        "for flaky externals)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pai-repro",
        description=(
            "Reproduce the tables and figures of 'Characterizing Deep "
            "Learning Training Workloads on Alibaba-PAI' (IISWC 2019)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument(
        "experiment", choices=experiment_ids(), help="experiment id"
    )

    all_parser = subparsers.add_parser(
        "all", help="run the full experiment suite"
    )
    _add_suite_options(all_parser)
    _add_obs_options(all_parser)

    report_parser = subparsers.add_parser(
        "report", help="write the full suite as a markdown report"
    )
    report_parser.add_argument(
        "-o", "--output", default="report.md", help="output path"
    )
    _add_suite_options(report_parser)
    _add_obs_options(report_parser)

    trace_parser = subparsers.add_parser(
        "trace", help="generate a calibrated synthetic trace"
    )
    trace_parser.add_argument(
        "-o", "--output", default="trace.jsonl", help="output path"
    )
    trace_parser.add_argument(
        "-n", "--num-jobs", type=int, default=20000, help="job count"
    )
    trace_parser.add_argument(
        "--seed", type=int, default=20190501, help="generator seed"
    )
    trace_parser.add_argument(
        "--format",
        choices=("jsonl", "columnar"),
        default="jsonl",
        dest="trace_format",
        help="on-disk format: line-oriented JSON, or the sharded "
        "columnar store (mmap-loadable; use for 200k+ jobs)",
    )
    trace_parser.add_argument(
        "--check",
        action="store_true",
        help="also run the calibration targets against the trace",
    )
    _add_obs_options(trace_parser)

    convert_parser = subparsers.add_parser(
        "convert",
        help="convert a trace between JSONL and the columnar store "
        "(direction auto-detected from the input)",
    )
    convert_parser.add_argument("input", help="existing trace path")
    convert_parser.add_argument("output", help="converted trace path")
    convert_parser.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        help="rows per columnar shard (JSONL->columnar only)",
    )
    _add_obs_options(convert_parser)

    advise_parser = subparsers.add_parser(
        "advise", help="rank feasible deployments for one workload"
    )
    advise_parser.add_argument("--name", default="workload")
    advise_parser.add_argument(
        "--flops", required=True, help="per-step compute, e.g. 1.56T"
    )
    advise_parser.add_argument(
        "--memory", required=True, help="per-step memory access, e.g. 31.9GB"
    )
    advise_parser.add_argument(
        "--input", required=True, dest="input_bytes", help="e.g. 38MB"
    )
    advise_parser.add_argument(
        "--traffic", required=True, help="per-step sync volume, e.g. 357MB"
    )
    advise_parser.add_argument(
        "--weights", required=True, help="dense weights at rest, e.g. 204MB"
    )
    advise_parser.add_argument(
        "--embedding", default="0B", help="embedding weights at rest"
    )
    advise_parser.add_argument("--cnodes", type=int, default=8)
    advise_parser.add_argument("--batch", type=int, default=64)
    advise_parser.add_argument(
        "--no-nvlink", action="store_true", help="cluster lacks NVLink"
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the resident trace-analytics service"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve_parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--shards", type=int, default=4, help="population shard count"
    )
    source = serve_parser.add_mutually_exclusive_group()
    source.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream this trace in -- a JSONL file or a columnar store "
        "directory, auto-detected (default: start empty and accept "
        "POST /ingest)",
    )
    source.add_argument(
        "-n",
        "--num-jobs",
        type=int,
        default=None,
        help="stream a generated synthetic trace of this many jobs",
    )
    serve_parser.add_argument(
        "--seed", type=int, default=20190501, help="generator seed for -n"
    )
    serve_parser.add_argument(
        "--batch-size", type=int, default=500, help="replay batch size"
    )
    serve_parser.add_argument(
        "--seconds-per-day",
        type=float,
        default=0.0,
        help="wall-clock seconds per simulated trace day (0 = as fast "
        "as ingestion allows)",
    )
    serve_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed query cache",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        help="query-cache directory (default: $PAI_REPRO_CACHE_DIR "
        "or ~/.cache/pai-repro)",
    )
    _add_obs_options(serve_parser)

    faults_parser = subparsers.add_parser(
        "faults", help="run the scored fault-injection scenario suite"
    )
    faults_parser.add_argument(
        "-n",
        "--scenarios",
        type=int,
        default=25,
        help="scenario count (kinds cycle round-robin; >= 5 covers all)",
    )
    faults_parser.add_argument(
        "--seed", type=int, default=20190501, help="suite seed"
    )
    faults_parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="write the full JSON scenario report to PATH",
    )
    faults_parser.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="write the canonical telemetry stream (JSONL) to PATH",
    )
    faults_parser.add_argument(
        "--min-accuracy",
        type=float,
        default=0.8,
        help="exit non-zero if localization accuracy falls below this",
    )
    _add_obs_options(faults_parser)
    return parser


def _command_trace(args: argparse.Namespace) -> int:
    from ..trace import evaluate_targets, generate_trace, save_trace
    from ..trace.columnar import write_columnar

    jobs = generate_trace(num_jobs=args.num_jobs, seed=args.seed)
    if args.trace_format == "columnar":
        count = write_columnar(jobs, args.output)
    else:
        count = save_trace(jobs, args.output)
    print(f"wrote {count} jobs to {args.output} ({args.trace_format})")
    if args.check:
        failures = [
            check for check in evaluate_targets(jobs) if not check["ok"]
        ]
        if failures:
            for check in failures:
                print(
                    f"FAIL {check['name']}: measured {check['measured']:.4g} "
                    f"vs paper {check['paper']:.4g}"
                )
            return 1
        print("all calibration targets within tolerance")
    return 0


def _command_convert(args: argparse.Namespace) -> int:
    """Convert between JSONL and the columnar store, either direction."""
    from ..trace.columnar import (
        DEFAULT_SHARD_ROWS,
        columnar_to_jsonl,
        is_columnar_store,
        jsonl_to_columnar,
    )

    if is_columnar_store(args.input):
        if args.shard_rows is not None:
            print(
                "--shard-rows applies only when converting to columnar",
                file=sys.stderr,
            )
            return 2
        count = columnar_to_jsonl(args.input, args.output)
        direction = "columnar -> jsonl"
    else:
        count = jsonl_to_columnar(
            args.input,
            args.output,
            shard_rows=args.shard_rows or DEFAULT_SHARD_ROWS,
        )
        direction = "jsonl -> columnar"
    print(f"converted {count} jobs ({direction}) to {args.output}")
    return 0


def _command_advise(args: argparse.Namespace) -> int:
    from ..core import (
        Architecture,
        WorkloadFeatures,
        pai_default_hardware,
        recommend_architecture,
    )
    from ..core.units import parse_flops, parse_size

    embedding = parse_size(args.embedding)
    features = WorkloadFeatures(
        name=args.name,
        architecture=Architecture.PS_WORKER,
        num_cnodes=args.cnodes,
        batch_size=args.batch,
        flop_count=parse_flops(args.flops),
        memory_access_bytes=parse_size(args.memory),
        input_bytes=parse_size(args.input_bytes),
        weight_traffic_bytes=parse_size(args.traffic),
        dense_weight_bytes=parse_size(args.weights),
        embedding_weight_bytes=embedding,
        embedding_traffic_bytes=0.0,
    )
    ranked = recommend_architecture(
        features, pai_default_hardware(), has_nvlink=not args.no_nvlink
    )
    print(f"deployments for {args.name!r}, best first:")
    for rank, rec in enumerate(ranked, start=1):
        print(
            f"  {rank}. {str(rec.plan.architecture):18s} "
            f"x{rec.plan.num_cnodes:<4d} {rec.throughput:14.0f} samples/s  "
            f"step {rec.step_time * 1e3:9.2f} ms  bottleneck: {rec.bottleneck}"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Run the resident service until SIGTERM/SIGINT, then drain."""
    import signal

    from ..serve import ShardedState, TraceReplayer, TraceService

    state = ShardedState(num_shards=args.shards)
    service = TraceService(state=state, cache=_suite_cache(args))
    service.start(host=args.host, port=args.port)

    def _on_signal(signum, frame):
        service.request_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    if args.trace is not None:
        from ..trace import iter_trace
        from ..trace.columnar import ColumnarTrace, is_columnar_store

        if is_columnar_store(args.trace):
            # Lazy rows: the service ingests straight off the mapped
            # columns without materializing JobRecord objects.
            jobs = ColumnarTrace.open(args.trace).iter_views()
        else:
            jobs = iter_trace(args.trace)
    elif args.num_jobs is not None:
        from ..trace import generate_trace

        jobs = generate_trace(num_jobs=args.num_jobs, seed=args.seed)
    else:
        jobs = None
    if jobs is not None:
        service.start_replay(
            TraceReplayer(
                jobs,
                batch_size=args.batch_size,
                seconds_per_day=args.seconds_per_day,
            )
        )
    print(f"serving on {service.url}", flush=True)
    try:
        service.wait_for_shutdown()
    finally:
        service.stop()
    print(
        f"served {state.job_count} jobs "
        f"(generation {state.generation}); shut down cleanly"
    )
    return 0


def _command_faults(args: argparse.Namespace) -> int:
    """Run the scored fault-injection suite; grade telemetry-only RCA."""
    import json
    from pathlib import Path

    from ..faults import canonical_events, capture, score_suite

    with capture() as sink:
        report = score_suite(args.scenarios, args.seed)
    localized = sum(r.localized for r in report.results)
    for kind, (kind_localized, total) in sorted(report.by_kind().items()):
        print(f"  {kind:20s} {kind_localized}/{total} localized")
    print(
        f"localization accuracy {report.accuracy:.0%} "
        f"({localized}/{len(report.results)} scenarios), "
        f"onset accuracy {report.onset_accuracy:.0%}, "
        f"digest {report.digest[:16]}"
    )
    if args.output is not None:
        path = Path(args.output)
        path.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")
    if args.events is not None:
        path = Path(args.events)
        with path.open("w", encoding="utf-8") as handle:
            for event in canonical_events(sink.events):
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        print(f"wrote {path}")
    if report.accuracy < args.min_accuracy:
        print(
            f"accuracy {report.accuracy:.0%} is below the required "
            f"{args.min_accuracy:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


def _suite_cache(args: argparse.Namespace):
    from ..runtime import ResultCache

    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _report_failures(outcomes) -> int:
    """Print a per-failure summary; returns the count."""
    failed = [o for o in outcomes if not o.ok]
    for outcome in failed:
        print(f"FAILED {outcome.experiment_id}:", file=sys.stderr)
        print(outcome.error, file=sys.stderr)
    if failed:
        ids = ", ".join(o.experiment_id for o in failed)
        print(
            f"{len(failed)} of {len(outcomes)} experiments failed: {ids}",
            file=sys.stderr,
        )
    return len(failed)


def _command_all(args: argparse.Namespace) -> int:
    from ..runtime import run_suite

    outcomes = run_suite(
        jobs=args.jobs, cache=_suite_cache(args), retries=args.retries
    )
    for outcome in outcomes:
        if outcome.ok:
            print(outcome.result.render())
            print()
    return 1 if _report_failures(outcomes) else 0


def _command_report(args: argparse.Namespace) -> int:
    from ..runtime import run_suite
    from .report import render_outcomes

    from pathlib import Path

    outcomes = run_suite(
        jobs=args.jobs, cache=_suite_cache(args), retries=args.retries
    )
    path = Path(args.output)
    path.write_text(render_outcomes(outcomes), encoding="utf-8")
    print(f"wrote {path}")
    return 1 if _report_failures(outcomes) else 0


def _run_observed(args: argparse.Namespace, command) -> int:
    """Run a command under a configured obs context, then summarize.

    The summary table and all telemetry go to stderr / the JSON-lines
    log, never stdout -- report output stays byte-identical with obs
    enabled.
    """
    from ..obs import configure

    obs = configure(
        verbose=args.verbose, quiet=args.quiet, json_path=args.log_json
    )
    try:
        return command(args)
    finally:
        obs.emit_summary()
        if not args.quiet:
            print(obs.summary_table(), file=sys.stderr)
        obs.close()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "run":
        print(run_experiment(args.experiment).render())
        return 0
    if args.command == "all":
        return _run_observed(args, _command_all)
    if args.command == "report":
        return _run_observed(args, _command_report)
    if args.command == "trace":
        return _run_observed(args, _command_trace)
    if args.command == "convert":
        return _run_observed(args, _command_convert)
    if args.command == "advise":
        return _command_advise(args)
    if args.command == "serve":
        return _run_observed(args, _command_serve)
    if args.command == "faults":
        return _run_observed(args, _command_faults)
    return 1


if __name__ == "__main__":
    sys.exit(main())
