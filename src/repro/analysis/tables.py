"""Tables I-III: system settings, taxonomy, hardware variations."""

from __future__ import annotations

from ..core.architectures import Architecture
from ..core.hardware import TABLE_III_VARIATIONS
from ..core.units import GIGA, TERA, format_bandwidth
from .context import default_hardware
from .result import ExperimentResult

__all__ = ["run_table1", "run_table2", "run_table3"]


def run_table1() -> ExperimentResult:
    """Table I: the base system settings."""
    hardware = default_hardware()
    rows = [
        {"setting": "GPU FLOPs", "value": f"{hardware.gpu.peak_flops / TERA:g} TFLOPs"},
        {
            "setting": "GPU memory bandwidth",
            "value": format_bandwidth(hardware.gpu.memory_bandwidth),
        },
        {
            "setting": "Ethernet",
            "value": f"{hardware.ethernet.bandwidth * 8 / GIGA:g} Gb/s",
        },
        {"setting": "PCIe", "value": format_bandwidth(hardware.pcie.bandwidth)},
        {"setting": "NVLink", "value": format_bandwidth(hardware.nvlink.bandwidth)},
    ]
    return ExperimentResult(
        experiment="table1",
        title="System settings (Table I)",
        rows=rows,
        notes=["paper: 11 TFLOPs, 1 TB/s, 25 Gb/s, 10 GB/s, 50 GB/s"],
    )


def run_table2() -> ExperimentResult:
    """Table II: the five workload types and their weight media."""
    rows = []
    for arch in Architecture:
        if arch is Architecture.PEARL:
            continue  # PEARL is the paper's addition, shown separately
        rows.append(
            {
                "type": str(arch),
                "system_architecture": (
                    "-"
                    if arch is Architecture.SINGLE
                    else ("Centralized" if arch.is_centralized else "Decentralized")
                ),
                "configuration": "Local" if arch.is_local else "Cluster",
                "weight_movement": " & ".join(arch.weight_media) or "-",
            }
        )
    rows.append(
        {
            "type": "PEARL",
            "system_architecture": "Hybrid (partitioned + replicated)",
            "configuration": "Local/Cluster",
            "weight_movement": " & ".join(Architecture.PEARL.weight_media),
        }
    )
    return ExperimentResult(
        experiment="table2",
        title="Workload-type taxonomy (Table II)",
        rows=rows,
    )


def run_table3() -> ExperimentResult:
    """Table III: hardware configuration candidates."""
    rows = []
    hardware = default_hardware()
    for resource in TABLE_III_VARIATIONS.resources():
        candidates = TABLE_III_VARIATIONS.candidates(resource)
        rows.append(
            {
                "resource": resource,
                "candidates": ", ".join(
                    format_bandwidth(v)
                    if resource != "gpu_flops"
                    else f"{v / TERA:g}T"
                    for v in candidates
                ),
                "normalized": ", ".join(
                    f"{hardware.normalized_resource(resource, v):g}"
                    for v in candidates
                ),
            }
        )
    return ExperimentResult(
        experiment="table3",
        title="Hardware configuration variations (Table III)",
        rows=rows,
        notes=[
            "paper: Ethernet {10,25,100} Gbps; PCIe {10,50} GB/s; "
            "GPU {8,16,32,64} TFLOPs; memory {1,2,4} TB/s"
        ],
    )
