"""Extension study: fleet-wide effect of the AllReduce projection.

Section III-C projects individual PS/Worker jobs onto AllReduce and
reports per-job speedups (Fig. 9).  This experiment closes the loop at
the cluster level: every profitably projectable PS/Worker job in a
stressed trace slice is re-deployed as AllReduce-Local (faster steps,
at most 8 GPUs on one server), and both deployments are scheduled onto
identical fleets under FIFO.  Because each job keeps its training-step
budget, any change in queueing delay, completion time or GPU-hours is
attributable to the architecture shift alone.
"""

from __future__ import annotations

from .context import default_hardware, default_trace
from .result import ExperimentResult
from ..sched import ModelRuntimePredictor, WhatIfReport, run_projection_what_if
from .sched_policies import NUM_SERVERS, TRACE_JOBS, _stressed_trace

__all__ = ["run", "run_what_if"]


def run_what_if(jobs: tuple = None) -> WhatIfReport:
    """The projection what-if on the stressed trace slice."""
    if jobs is None:
        jobs = default_trace(TRACE_JOBS)
    hardware = default_hardware()
    return run_projection_what_if(
        _stressed_trace(jobs),
        num_servers=NUM_SERVERS,
        hardware=hardware,
        predictor=ModelRuntimePredictor(hardware=hardware),
    )


def run(jobs: tuple = None) -> ExperimentResult:
    """Schedule the trace before and after the PS->AllReduce shift."""
    report = run_what_if(jobs)
    rows = []
    for scenario, outcome in (
        ("PS/Worker as-is", report.baseline),
        ("projected to AllReduce-Local", report.projected),
    ):
        rows.append(
            {
                "scenario": scenario,
                "jobs": len(outcome.outcomes),
                "rejected": len(outcome.rejected),
                "mean_wait_h": outcome.mean_queueing_delay_hours,
                "p90_wait_h": outcome.p90_queueing_delay_hours,
                "mean_jct_h": outcome.mean_completion_time_hours,
                "utilization": outcome.utilization(),
                "gpu_hours": sum(o.gpu_hours for o in outcome.outcomes),
                "energy_mwh": outcome.telemetry.energy_kwh() / 1000.0,
            }
        )
    notes = [
        f"projected {report.projected_jobs} of {report.considered_jobs} "
        "PS/Worker jobs (model fits one GPU and throughput improves)",
        f"fleet-wide mean queueing delay drops "
        f"{100.0 * report.queueing_delay_reduction:.1f}%; "
        f"{report.gpu_hours_saved:.0f} GPU-hours freed",
        "same per-job step budgets in both runs: deltas are due to the "
        "architecture shift alone",
    ]
    return ExperimentResult(
        experiment="sched_whatif",
        title="Fleet what-if: projecting PS/Worker to AllReduce-Local",
        rows=rows,
        notes=notes,
    )
