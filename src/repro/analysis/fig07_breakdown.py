"""Fig. 7: average execution-time breakdown per workload type."""

from __future__ import annotations

from ..core.architectures import Architecture
from ..core.population import batch_breakdowns
from .context import default_hardware, trace_feature_arrays
from .paper_constants import FIG7
from .result import ExperimentResult

__all__ = ["run"]

_TYPES = (
    None,  # all workloads
    Architecture.SINGLE,
    Architecture.LOCAL_CENTRALIZED,
    Architecture.PS_WORKER,
)


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate the Fig. 7 stacked-bar averages (both columns).

    ``jobs=None`` stays ``None`` all the way into
    :func:`trace_feature_arrays`, whose columnar fast path never
    materializes records for on-disk columnar traces.
    """
    hardware = default_hardware()
    rows = []
    for arch in _TYPES:
        analyzed = batch_breakdowns(trace_feature_arrays(jobs, arch), hardware)
        for cnode_level in (False, True):
            fractions = analyzed.average_fractions(cnode_level)
            rows.append(
                {
                    "population": "all" if arch is None else str(arch),
                    "level": "cNode" if cnode_level else "job",
                    "data_io": fractions["data_io"],
                    "weight": fractions["weight"],
                    "compute_bound": fractions["compute_bound"],
                    "memory_bound": fractions["memory_bound"],
                }
            )
    all_cnode = next(
        r for r in rows if r["population"] == "all" and r["level"] == "cNode"
    )
    all_job = next(
        r for r in rows if r["population"] == "all" and r["level"] == "job"
    )
    notes = [
        f"weight share, cNode level: {all_cnode['weight']:.1%} "
        f"(paper: ~{FIG7['weight_share_cnode_level']:.0%})",
        f"weight share, job level: {all_job['weight']:.1%} "
        f"(paper: ~{FIG7['weight_share_job_level']:.0%})",
        f"compute-bound {all_cnode['compute_bound']:.1%} / memory-bound "
        f"{all_cnode['memory_bound']:.1%} at cNode level (paper: 13% / 22%)",
        "memory-bound computation exceeds compute-bound in every type",
    ]
    return ExperimentResult(
        experiment="fig7",
        title="Average execution-time breakdown (Fig. 7)",
        rows=rows,
        notes=notes,
    )
