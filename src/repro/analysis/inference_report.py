"""Inference characterization report (the Sec. VIII future work).

Per-model serving latency breakdowns at batch 1 and the batching
trade-off, using the same methodology as the training-side analysis.
"""

from __future__ import annotations

from ..core.units import GB
from ..graphs import all_case_studies
from ..inference import batch_sweep, estimate_latency, inference_features_for
from .context import testbed_hardware
from .result import ExperimentResult

__all__ = ["run"]


def run() -> ExperimentResult:
    """Serving characterization for the six case-study models."""
    hardware = testbed_hardware()
    rows = []
    for name, graph in all_case_studies().items():
        serving = inference_features_for(graph, batch_size=1)
        if serving.resident_weight_bytes > hardware.gpu.memory_capacity:
            rows.append(
                {
                    "model": name,
                    "fits_one_gpu": False,
                    "weights_GB": serving.resident_weight_bytes / GB,
                }
            )
            continue
        breakdown = estimate_latency(serving, hardware)
        sweep = batch_sweep(serving, hardware, batches=[1, 16, 128])
        rows.append(
            {
                "model": name,
                "fits_one_gpu": True,
                "weights_GB": serving.resident_weight_bytes / GB,
                "latency_ms_b1": breakdown.total * 1e3,
                "bottleneck": breakdown.bottleneck,
                "throughput_b128": sweep[-1]["throughput_rps"],
            }
        )
    notes = [
        "forward-only, no weight synchronization, optimizer slots dropped",
        "giant-embedding recommenders need partitioned serving, mirroring "
        "the PEARL story on the training side",
    ]
    return ExperimentResult(
        experiment="inference",
        title="Inference characterization (Sec. VIII future work)",
        rows=rows,
        notes=notes,
    )
