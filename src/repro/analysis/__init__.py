"""Per-table/figure experiment modules, registry and CLI."""

from .registry import EXPERIMENTS, experiment_ids, run_all, run_experiment
from .result import ExperimentResult, format_value, render_table

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "experiment_ids",
    "format_value",
    "render_table",
    "run_all",
    "run_experiment",
]
