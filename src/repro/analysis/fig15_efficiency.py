"""Fig. 15: weight-traffic share under hardware-efficiency shifts."""

from __future__ import annotations

from ..core.sensitivity import FIG15_SCENARIOS, weight_share_scenarios
from ..trace.statistics import EmpiricalCDF
from .context import default_hardware, default_trace, ps_worker_features
from .result import ExperimentResult

__all__ = ["run"]


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate the Fig. 15 scenario CDFs (quantile summary)."""
    if jobs is None:
        jobs = default_trace()
    population = ps_worker_features(jobs)
    scenarios = weight_share_scenarios(population, default_hardware())
    rows = []
    medians = {}
    for scenario in FIG15_SCENARIOS:
        shares = scenarios[scenario.name]
        cdf = EmpiricalCDF.from_samples(shares)
        medians[scenario.name] = cdf.median
        rows.append(
            {
                "scenario": scenario.name,
                "p25": cdf.quantile(0.25),
                "p50": cdf.median,
                "p75": cdf.quantile(0.75),
                "mean": sum(shares) / len(shares),
                "above_50pct": 1.0 - cdf.probability_at(0.5),
            }
        )
    notes = [
        "lower communication efficiency raises the weight-traffic share; "
        "lower computation efficiency lowers it",
        f"even at computation efficiency 25%, the median weight share is "
        f"{medians['Computation eff. 25%']:.1%} -- weight traffic remains "
        "the dominant time consumer on average (Sec. V-A)",
    ]
    return ExperimentResult(
        experiment="fig15",
        title="Efficiency-assumption sensitivity (Fig. 15)",
        rows=rows,
        notes=notes,
    )
