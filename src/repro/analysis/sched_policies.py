"""Extension study: scheduling-policy comparison on the trace.

The paper characterizes workloads; this experiment asks what its
calibrated trace implies for the *scheduler*.  A stressed slice of the
synthetic trace (the arrival window compressed 4x to create
contention) is replayed through :mod:`repro.sched` under all four
policies -- FIFO, shortest-predicted-job-first, EASY backfill, and
priority-with-preemption -- with per-job runtimes predicted by the
analytical step-time model.  The headline: knowing predicted runtimes
(SJF, backfill) collapses mean queueing delay relative to FIFO, which
is exactly why the paper's performance model is operationally useful.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from ..sched import (
    BackfillPolicy,
    FifoPolicy,
    Fleet,
    ModelRuntimePredictor,
    PriorityPolicy,
    ScheduleOutcome,
    SjfPolicy,
    run_schedule,
)
from .context import default_hardware, default_trace
from .result import ExperimentResult

__all__ = ["run", "run_policies"]

#: Trace slice and fleet geometry: small enough to regenerate in
#: seconds, loaded enough (4x-compressed arrivals) that policy choice
#: matters.
TRACE_JOBS = 1200
ARRIVAL_COMPRESSION = 4
NUM_SERVERS = 24


def _stressed_trace(jobs: tuple) -> List:
    """Compress the 50-day arrival window to stress the fleet."""
    return [
        replace(job, submit_day=job.submit_day // ARRIVAL_COMPRESSION)
        for job in jobs
    ]


def run_policies(jobs: tuple = None) -> List[Tuple[str, ScheduleOutcome]]:
    """Schedule the stressed trace under every policy."""
    if jobs is None:
        jobs = default_trace(TRACE_JOBS)
    trace = _stressed_trace(jobs)
    predictor = ModelRuntimePredictor(hardware=default_hardware())
    durations = predictor.durations(trace)
    results = []
    for policy in (FifoPolicy(), SjfPolicy(), BackfillPolicy(), PriorityPolicy()):
        outcome = run_schedule(
            trace, Fleet(NUM_SERVERS), policy, durations=durations
        )
        results.append((policy.name, outcome))
    return results


def run(jobs: tuple = None) -> ExperimentResult:
    """Compare the four policies on the stressed calibrated trace."""
    results = run_policies(jobs)
    rows = []
    for name, outcome in results:
        telemetry = outcome.telemetry
        rows.append(
            {
                "policy": name,
                "jobs": len(outcome.outcomes),
                "rejected": len(outcome.rejected),
                "mean_wait_h": outcome.mean_queueing_delay_hours,
                "p90_wait_h": outcome.p90_queueing_delay_hours,
                "mean_jct_h": outcome.mean_completion_time_hours,
                "bounded_slowdown": outcome.mean_bounded_slowdown(),
                "utilization": outcome.utilization(),
                "peak_queue": telemetry.peak_queue_depth,
                "preemptions": outcome.total_preemptions,
                "energy_mwh": telemetry.energy_kwh() / 1000.0,
            }
        )
    by_name = {name: outcome for name, outcome in results}
    fifo = by_name["fifo"].mean_queueing_delay_hours
    sjf = by_name["sjf"].mean_queueing_delay_hours
    backfill = by_name["backfill"].mean_queueing_delay_hours
    notes = [
        f"{TRACE_JOBS}-job trace slice, arrivals compressed "
        f"{ARRIVAL_COMPRESSION}x onto {NUM_SERVERS} 8-GPU servers",
        "runtimes predicted by the analytical step-time model "
        "(log-normal step budget per job)",
        f"model-predicted SJF cuts mean queueing delay "
        f"{fifo / max(sjf, 1e-9):.1f}x vs FIFO; EASY backfill "
        f"{fifo / max(backfill, 1e-9):.1f}x",
        "priority policy favors wide gangs via work-conserving "
        f"preemption ({by_name['priority'].total_preemptions} evictions)",
    ]
    return ExperimentResult(
        experiment="sched_policies",
        title="Scheduling policies on the calibrated trace",
        rows=rows,
        notes=notes,
    )
