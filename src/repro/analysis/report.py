"""Full-report generation: every experiment, one markdown document.

``write_report`` regenerates the complete experiment suite through the
:mod:`repro.runtime` execution layer (parallel workers, result cache,
per-experiment error isolation) and writes a self-contained markdown
file -- the artifact a reproduction reviewer reads.  Used by
``pai-repro report``.

A failing experiment no longer aborts the run: its traceback lands in a
"Failed experiments" section and every other table still renders.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from .result import ExperimentResult, format_value

__all__ = [
    "render_markdown",
    "render_outcomes",
    "write_report",
]


def _markdown_table(result: ExperimentResult) -> str:
    columns = result.columns()
    if not result.rows:
        return "*(no rows)*"
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| "
        + " | ".join(format_value(row.get(column, "")) for column in columns)
        + " |"
        for row in result.rows
    ]
    return "\n".join([header, separator] + body)


def render_markdown(
    results: List[ExperimentResult],
    failures: Sequence[Tuple[str, str]] = (),
) -> str:
    """Render experiment results as one markdown document.

    ``failures`` are ``(experiment_id, traceback)`` pairs; when present
    they are listed in the contents and detailed in a final "Failed
    experiments" section.
    """
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write(
        "Regenerated tables and figures for *Characterizing Deep Learning "
        "Training Workloads on Alibaba-PAI* (IISWC 2019).\n\n"
    )
    out.write("## Contents\n\n")
    for result in results:
        out.write(f"- [{result.experiment}](#{result.experiment}): {result.title}\n")
    for experiment_id, _ in failures:
        out.write(f"- [{experiment_id}](#failed-experiments): **FAILED**\n")
    out.write("\n")
    for result in results:
        out.write(f"## {result.experiment}\n\n")
        out.write(f"**{result.title}**\n\n")
        out.write(_markdown_table(result))
        out.write("\n")
        for note in result.notes:
            out.write(f"\n> {note}\n")
        out.write("\n")
    if failures:
        out.write("## Failed experiments\n\n")
        out.write(
            f"{len(failures)} experiment(s) raised; the rest of the suite "
            "ran to completion.\n\n"
        )
        for experiment_id, error in failures:
            out.write(f"### {experiment_id}\n\n")
            out.write("```\n")
            out.write(error if error.endswith("\n") else error + "\n")
            out.write("```\n\n")
    return out.getvalue()


def render_outcomes(outcomes: Sequence) -> str:
    """Render :class:`~repro.runtime.ExperimentOutcome` objects."""
    results = [o.result for o in outcomes if o.ok]
    failures = [(o.experiment_id, o.error) for o in outcomes if not o.ok]
    return render_markdown(results, failures)


def write_report(
    path: Union[str, Path],
    *,
    jobs: int = 1,
    cache: Optional[object] = None,
) -> Path:
    """Run the full suite and write the markdown report; returns the path.

    Experiment failures are recorded in the report rather than raised;
    callers needing an exit code should use
    :func:`repro.runtime.run_suite` directly (as the CLI does).
    """
    from ..runtime import run_suite

    path = Path(path)
    outcomes = run_suite(jobs=jobs, cache=cache)
    path.write_text(render_outcomes(outcomes), encoding="utf-8")
    return path
