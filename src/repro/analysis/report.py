"""Full-report generation: every experiment, one markdown document.

``write_report`` regenerates the complete experiment suite and writes a
self-contained markdown file -- the artifact a reproduction reviewer
reads.  Used by ``pai-repro report``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Union

from .registry import run_all
from .result import ExperimentResult, format_value

__all__ = ["render_markdown", "write_report"]


def _markdown_table(result: ExperimentResult) -> str:
    columns = result.columns()
    if not result.rows:
        return "*(no rows)*"
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| "
        + " | ".join(format_value(row.get(column, "")) for column in columns)
        + " |"
        for row in result.rows
    ]
    return "\n".join([header, separator] + body)


def render_markdown(results: List[ExperimentResult]) -> str:
    """Render experiment results as one markdown document."""
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write(
        "Regenerated tables and figures for *Characterizing Deep Learning "
        "Training Workloads on Alibaba-PAI* (IISWC 2019).\n\n"
    )
    out.write("## Contents\n\n")
    for result in results:
        out.write(f"- [{result.experiment}](#{result.experiment}): {result.title}\n")
    out.write("\n")
    for result in results:
        out.write(f"## {result.experiment}\n\n")
        out.write(f"**{result.title}**\n\n")
        out.write(_markdown_table(result))
        out.write("\n")
        for note in result.notes:
            out.write(f"\n> {note}\n")
        out.write("\n")
    return out.getvalue()


def write_report(path: Union[str, Path]) -> Path:
    """Run the full suite and write the markdown report; returns the path."""
    path = Path(path)
    path.write_text(render_markdown(run_all()), encoding="utf-8")
    return path
