"""Tables IV-VI and Fig. 12: the case-study models and validation."""

from __future__ import annotations

from ..core.efficiency import TABLE_VI_EFFICIENCIES
from ..core.timemodel import estimate_breakdown
from ..core.units import GB, GIGA, MB
from ..graphs import all_case_studies, case_study_deployments, case_study_features
from ..graphs.features_from_graph import Deployment, sync_traffic
from ..core.architectures import Architecture
from ..sim.executor import simulate_step
from .context import testbed_hardware
from .paper_constants import TABLE_IV, TABLE_V
from .result import ExperimentResult

__all__ = ["run_table4", "run_table5", "run_table6", "run_fig12"]


def run_table4() -> ExperimentResult:
    """Table IV: model scales (dense / embedding weights, architecture)."""
    graphs = all_case_studies()
    deployments = case_study_deployments()
    rows = []
    for name, graph in graphs.items():
        paper = TABLE_IV[name]
        rows.append(
            {
                "model": name,
                "domain": graph.domain,
                "dense_GB": graph.dense_weight_bytes / GB,
                "paper_dense_GB": paper["dense"] / GB,
                "embedding_GB": graph.embedding_weight_bytes / GB,
                "paper_embedding_GB": paper["embedding"] / GB,
                "architecture": str(deployments[name].architecture),
            }
        )
    return ExperimentResult(
        experiment="table4",
        title="Case-study model scales (Table IV)",
        rows=rows,
        notes=["weights include optimizer slots (momentum 2x, Adam 3x)"],
    )


def run_table5() -> ExperimentResult:
    """Table V: basic workload features, paper vs built models."""
    graphs = all_case_studies()
    deployments = case_study_deployments()
    rows = []
    for name, graph in graphs.items():
        paper = TABLE_V[name]
        deployment = deployments[name]
        if deployment.architecture is Architecture.SINGLE:
            # Table V reports the reference ring-sync volume at n=8 even
            # for the 1w1g Speech deployment.
            traffic, _ = sync_traffic(
                graph, Deployment(Architecture.ALLREDUCE_LOCAL, num_cnodes=8)
            )
        else:
            traffic, _ = sync_traffic(graph, deployment)
        rows.append(
            {
                "model": name,
                "batch": graph.batch_size,
                "flops_G": graph.flop_count / GIGA,
                "paper_flops_G": paper["flop_count"] / GIGA,
                "memory_GB": graph.memory_access_bytes / GB,
                "paper_memory_GB": paper["memory_access"] / GB,
                "pcie_copy_MB": graph.input_bytes / MB,
                "paper_pcie_MB": paper["pcie_copy"] / MB,
                "traffic_MB": traffic / MB,
                "paper_traffic_MB": paper["network_traffic"] / MB,
            }
        )
    return ExperimentResult(
        experiment="table5",
        title="Basic workload features (Table V)",
        rows=rows,
    )


def run_table6() -> ExperimentResult:
    """Table VI: measured per-workload hardware efficiencies."""
    rows = []
    for name, eff in TABLE_VI_EFFICIENCIES.items():
        rows.append(
            {
                "model": name,
                "gpu_tops": eff.compute,
                "gddr": eff.memory,
                "pcie": eff.pcie,
                "network": eff.network,
            }
        )
    return ExperimentResult(
        experiment="table6",
        title="Measured resource efficiencies (Table VI)",
        rows=rows,
        notes=["70% is about the average level (Sec. V-A)"],
    )


def run_fig12() -> ExperimentResult:
    """Fig. 12: estimated vs measured time-breakdown comparison.

    The estimate applies the Sec. II-B model with the uniform 70 %
    efficiency; the measurement simulates the step with the Table VI
    per-workload efficiencies plus framework overheads.  The reported
    percentage is ``(T_predict - T_actual) / T_actual``.
    """
    hardware = testbed_hardware()
    graphs = all_case_studies()
    deployments = case_study_deployments()
    features = case_study_features()
    rows = []
    for name, graph in graphs.items():
        measurement = simulate_step(
            graph, deployments[name], hardware, TABLE_VI_EFFICIENCIES[name]
        )
        estimate = estimate_breakdown(features[name], hardware)
        actual = measurement.serial_total
        predicted = estimate.total
        rows.append(
            {
                "model": name,
                "estimated_s": predicted,
                "measured_s": actual,
                "difference": (predicted - actual) / actual,
                "est_weight_share": estimate.fractions()["weight"],
                "meas_weight_share": measurement.weight_time / actual,
            }
        )
    speech = next(r for r in rows if r["model"] == "Speech")
    others = [abs(r["difference"]) for r in rows if r["model"] != "Speech"]
    notes = [
        f"max |difference| outside Speech: {max(others):.1%} "
        "(paper: below ~10% in most cases)",
        f"Speech difference: {speech['difference']:+.1%} (paper: >66.7% "
        "magnitude, caused by the 3% GDDR efficiency)",
    ]
    return ExperimentResult(
        experiment="fig12",
        title="Model validation: estimated vs measured (Fig. 12)",
        rows=rows,
        notes=notes,
    )
