"""Registry mapping experiment ids to their runner functions."""

from __future__ import annotations

from typing import Callable, Dict, List

from . import (
    case_studies,
    fig05_composition,
    fig06_scale,
    fig07_breakdown,
    fig08_cdf,
    fig09_allreduce,
    fig10_shift,
    fig11_hardware,
    fig13_optimizations,
    fig15_efficiency,
    fig16_overlap,
    tables,
)
from .batch_scaling import run as run_batch_scaling
from .calibration_report import run as run_calibration
from .census import run as run_census
from .faults_scenarios import run as run_faults_scenarios
from .inference_report import run as run_inference
from .observations import run as run_observations
from .pipeline_check import run as run_pipeline
from .sched_policies import run as run_sched_policies
from .sched_whatif import run as run_sched_whatif
from .tenants import run as run_tenants
from .result import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "experiment_ids"]

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "table3": tables.run_table3,
    "fig5": fig05_composition.run,
    "fig6": fig06_scale.run,
    "fig7": fig07_breakdown.run,
    "fig8": fig08_cdf.run,
    "fig9": fig09_allreduce.run,
    "fig10": fig10_shift.run,
    "fig11": fig11_hardware.run,
    "table4": case_studies.run_table4,
    "table5": case_studies.run_table5,
    "table6": case_studies.run_table6,
    "fig12": case_studies.run_fig12,
    "fig13": fig13_optimizations.run,
    "fig13a": fig13_optimizations.run_panel_a,
    "fig13b": fig13_optimizations.run_panel_b,
    "fig13c": fig13_optimizations.run_panel_c,
    "fig13d": fig13_optimizations.run_panel_d,
    "fig15": fig15_efficiency.run,
    "fig16": fig16_overlap.run,
    "calibration": run_calibration,
    "observations": run_observations,
    "inference": run_inference,
    "tenants": run_tenants,
    "batch_scaling": run_batch_scaling,
    "census": run_census,
    "pipeline": run_pipeline,
    "sched_policies": run_sched_policies,
    "sched_whatif": run_sched_whatif,
    "faults_scenarios": run_faults_scenarios,
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, in presentation order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        ) from None
    return runner()


def run_all() -> List[ExperimentResult]:
    """Run the full suite (skipping the fig13 panel aliases)."""
    skip = {"fig13a", "fig13b", "fig13c", "fig13d"}
    return [
        runner()
        for experiment_id, runner in EXPERIMENTS.items()
        if experiment_id not in skip
    ]
