"""Fig. 6: workload-scale distributions (cNode count, weight size)."""

from __future__ import annotations

from ..core.architectures import Architecture
from ..core.units import gigabytes
from ..trace.statistics import EmpiricalCDF
from .context import default_trace
from .result import ExperimentResult

__all__ = ["run", "cnode_cdf", "weight_cdf"]


def cnode_cdf(jobs: tuple, architecture: Architecture) -> EmpiricalCDF:
    """Fig. 6(a): CDF of cNode counts for one workload type."""
    samples = [
        float(job.num_cnodes)
        for job in jobs
        if job.workload_type is architecture
    ]
    return EmpiricalCDF.from_samples(samples)


def weight_cdf(jobs: tuple, architecture: Architecture) -> EmpiricalCDF:
    """Fig. 6(b): CDF of at-rest model sizes for one workload type."""
    samples = [
        job.features.weight_bytes
        for job in jobs
        if job.workload_type is architecture
    ]
    return EmpiricalCDF.from_samples(samples)


def run(jobs: tuple = None) -> ExperimentResult:
    """Regenerate the Fig. 6 scale statistics."""
    if jobs is None:
        jobs = default_trace()
    rows = []
    for arch in (
        Architecture.SINGLE,
        Architecture.LOCAL_CENTRALIZED,
        Architecture.PS_WORKER,
    ):
        weights = weight_cdf(jobs, arch)
        row = {
            "type": str(arch),
            "weight_p50": weights.median,
            "weight_p90": weights.quantile(0.90),
            "weight_p99": weights.quantile(0.99),
        }
        if arch is not Architecture.SINGLE:
            cnodes = cnode_cdf(jobs, arch)
            row["cnodes_p50"] = cnodes.median
            row["cnodes_p90"] = cnodes.quantile(0.90)
            row["cnodes_max"] = cnodes.values[-1]
        rows.append(row)

    all_weights = [job.features.weight_bytes for job in jobs]
    small = sum(1 for w in all_weights if w < gigabytes(10)) / len(all_weights)
    huge_jobs = sum(1 for job in jobs if job.num_cnodes > 128) / len(jobs)
    total_cnodes = sum(job.num_cnodes for job in jobs)
    huge_resources = (
        sum(job.num_cnodes for job in jobs if job.num_cnodes > 128) / total_cnodes
    )
    notes = [
        f"models below 10 GB: {small:.1%} (paper: ~90%)",
        f"jobs beyond 128 cNodes: {huge_jobs:.2%} (paper: 0.7%), "
        f"consuming {huge_resources:.1%} of resources (paper: >16%)",
        "largest models reach the 100-300 GB range (paper: 100-300 GB)",
    ]
    return ExperimentResult(
        experiment="fig6",
        title="Workload scale distributions (Fig. 6)",
        rows=rows,
        notes=notes,
    )
