"""Job-level throughput (Eq. 2) and speedup computation.

The overall throughput of a data-parallel training job is::

    throughput = (#cNode / T_total) * batch_size          (Eq. 2)

i.e. the number of steps all cNodes jointly complete per unit time,
multiplied by the (per-replica, unchanged) batch size.  Architecture
projections can change *both* the single-node step time and the cNode
count (AllReduce-Local caps the job at 8 GPUs), so the paper reports
both single-cNode speedup and throughput speedup (Fig. 9(a)).
"""

from __future__ import annotations

from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import HardwareConfig
from .timemodel import PAPER_MODEL_OPTIONS, ModelOptions, estimate_step_time

__all__ = ["job_throughput", "step_speedup", "throughput_speedup"]


def job_throughput(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> float:
    """Samples per second across the whole job (Eq. 2)."""
    step_time = estimate_step_time(features, hardware, efficiency, options)
    if step_time <= 0:
        raise ValueError("workload has zero estimated step time")
    return features.num_cnodes / step_time * features.batch_size


def step_speedup(
    baseline: WorkloadFeatures,
    candidate: WorkloadFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> float:
    """Single-cNode step-time speedup of ``candidate`` over ``baseline``.

    Values above 1 mean the candidate deployment finishes a step faster.
    """
    base = estimate_step_time(baseline, hardware, efficiency, options)
    cand = estimate_step_time(candidate, hardware, efficiency, options)
    if cand <= 0:
        raise ValueError("candidate workload has zero estimated step time")
    return base / cand


def throughput_speedup(
    baseline: WorkloadFeatures,
    candidate: WorkloadFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> float:
    """Job-throughput speedup of ``candidate`` over ``baseline`` (Eq. 2)."""
    base = job_throughput(baseline, hardware, efficiency, options)
    cand = job_throughput(candidate, hardware, efficiency, options)
    return cand / base
