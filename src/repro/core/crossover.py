"""Crossover analysis: where does the architecture choice flip?

Fig. 9 shows that AllReduce-Local beats PS/Worker for most jobs *at
25 Gbps Ethernet*.  But the comparison is bandwidth-dependent: a fast
enough network closes PS/Worker's gap (its weight path rides Ethernet;
the AllReduce-Local port does not).  This module finds, per job, the
resource value at which the two deployments break even -- the number a
capacity planner actually needs ("how fast would the fabric have to be
before porting stops paying off?").

The search is a monotone bisection over the resource value; for
PS-vs-AllReduce-Local over Ethernet the crossover also has a closed
form, which the tests use to validate the bisection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .architectures import Architecture
from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import HardwareConfig
from .projection import projection_speedups
from .timemodel import PAPER_MODEL_OPTIONS, ModelOptions

__all__ = [
    "CrossoverResult",
    "ethernet_crossover",
    "crossover_distribution",
]

_BISECTION_STEPS = 60


@dataclass(frozen=True)
class CrossoverResult:
    """The break-even resource value for one job.

    ``value`` is None when no crossover exists inside the searched
    range: the job either always or never benefits from the projection.
    """

    features: WorkloadFeatures
    resource: str
    value: Optional[float]
    always_better: bool  # projection wins across the whole range

    @property
    def has_crossover(self) -> bool:
        return self.value is not None


def _projection_speedup_at(
    features: WorkloadFeatures,
    target: Architecture,
    hardware: HardwareConfig,
    resource: str,
    value: float,
    efficiency: EfficiencyModel,
    options: ModelOptions,
) -> float:
    adjusted = hardware.with_resource(resource, value)
    return projection_speedups(
        features, target, adjusted, efficiency, options
    ).single_cnode_speedup


def ethernet_crossover(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    target: Architecture = Architecture.ALLREDUCE_LOCAL,
    low: float = None,
    high: float = None,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> CrossoverResult:
    """Ethernet bandwidth at which the projection stops paying off.

    Raising Ethernet bandwidth helps the PS/Worker baseline but not the
    NVLink-backed AllReduce-Local port, so the projection speedup is
    monotonically decreasing in Ethernet bandwidth: bisection applies.
    """
    if low is None:
        low = hardware.ethernet.bandwidth / 10
    if high is None:
        high = hardware.ethernet.bandwidth * 1000
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")

    def speedup(value: float) -> float:
        return _projection_speedup_at(
            features, target, hardware, "ethernet", value, efficiency, options
        )

    at_low = speedup(low)
    at_high = speedup(high)
    if at_low <= 1.0:
        # Even a dismal fabric doesn't make the port worthwhile.
        return CrossoverResult(features, "ethernet", None, always_better=False)
    if at_high > 1.0:
        # Even an absurdly fast fabric doesn't save PS/Worker.
        return CrossoverResult(features, "ethernet", None, always_better=True)
    lo, hi = low, high
    for _ in range(_BISECTION_STEPS):
        mid = (lo + hi) / 2
        if speedup(mid) > 1.0:
            lo = mid
        else:
            hi = mid
    return CrossoverResult(
        features, "ethernet", (lo + hi) / 2, always_better=False
    )


def crossover_distribution(
    workloads: Iterable[WorkloadFeatures],
    hardware: HardwareConfig,
    target: Architecture = Architecture.ALLREDUCE_LOCAL,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> List[CrossoverResult]:
    """Per-job Ethernet crossovers over a PS/Worker population."""
    results = []
    for features in workloads:
        if features.architecture is not Architecture.PS_WORKER:
            continue
        results.append(
            ethernet_crossover(
                features, hardware, target, efficiency=efficiency, options=options
            )
        )
    return results
