"""The five training-system architectures of Table II, plus PEARL.

Each architecture determines *where* weights/gradients move (the media on
the synchronization path), whether input data I/O contends for PCIe with
sibling GPUs on the same server, and how many cNodes may share a server.

============== ============= ============= =========================
Workload type  Sys. arch.    Configuration Weight movement
============== ============= ============= =========================
1w1g           --            Local         -- (no synchronization)
1wng           Centralized   Local         PCIe
PS/Worker      Centralized   Cluster       Ethernet & PCIe
AllReduceLocal Decentralized Local         NVLink
AllReduceClust Decentralized Cluster       Ethernet & NVLink
PEARL          Hybrid        Local/Cluster NVLink (sparse-aware)
============== ============= ============= =========================
"""

from __future__ import annotations

import enum
from typing import Tuple

__all__ = ["Architecture", "MEDIA_GPU_FLOPS", "MEDIA_GPU_MEMORY"]

# Pseudo-media names used when attributing computation time to hardware
# components (the Fig. 8(a) view).
MEDIA_GPU_FLOPS = "GPU_FLOPs"
MEDIA_GPU_MEMORY = "GPU_memory"


class Architecture(enum.Enum):
    """A data-parallel training architecture (Sec. II-A2)."""

    SINGLE = "1w1g"
    LOCAL_CENTRALIZED = "1wng"
    PS_WORKER = "PS/Worker"
    ALLREDUCE_LOCAL = "AllReduce-Local"
    ALLREDUCE_CLUSTER = "AllReduce-Cluster"
    PEARL = "PEARL"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def from_label(cls, label: str) -> "Architecture":
        """Look an architecture up by its paper label (``"PS/Worker"``)."""
        for member in cls:
            if member.value.lower() == label.lower():
                return member
        raise KeyError(f"unknown architecture label: {label!r}")

    @property
    def is_distributed(self) -> bool:
        """Whether more than one cNode participates."""
        return self is not Architecture.SINGLE

    @property
    def is_local(self) -> bool:
        """Whether all cNodes live on one physical server."""
        return self in (
            Architecture.SINGLE,
            Architecture.LOCAL_CENTRALIZED,
            Architecture.ALLREDUCE_LOCAL,
        )

    @property
    def is_centralized(self) -> bool:
        """Whether parameters are managed by central nodes (PS-style)."""
        return self in (
            Architecture.LOCAL_CENTRALIZED,
            Architecture.PS_WORKER,
        )

    @property
    def weight_media(self) -> Tuple[str, ...]:
        """Media traversed by weight/gradient traffic, per Table II.

        Multi-hop paths (PS/Worker, AllReduce-Cluster) are serialized: the
        analytical model adds ``S_w / B`` once per medium on the path, which
        is what makes Eq. 3's 21x speedup exact.
        """
        if self is Architecture.SINGLE:
            return ()
        if self is Architecture.LOCAL_CENTRALIZED:
            return ("PCIe",)
        if self is Architecture.PS_WORKER:
            return ("Ethernet", "PCIe")
        if self is Architecture.ALLREDUCE_LOCAL:
            return ("NVLink",)
        if self is Architecture.ALLREDUCE_CLUSTER:
            return ("Ethernet", "NVLink")
        if self is Architecture.PEARL:
            return ("NVLink",)
        raise AssertionError(f"unhandled architecture: {self!r}")

    @property
    def input_contends_for_pcie(self) -> bool:
        """Whether sibling GPUs on a server share PCIe for input data.

        In multi-GPU-per-server architectures every GPU's input batch
        crosses the same host PCIe complex simultaneously (Sec. III-C1:
        "... slow-down of input data I/O, due to the competition for
        PCIe bandwidth"), so the per-cNode effective input bandwidth is
        divided by the number of co-located cNodes.  PS/Worker places
        each worker on a separate server and suffers no contention;
        AllReduce-Cluster packs servers with 8 GPUs (NVLink within,
        Ethernet across) and does.
        """
        return self in (
            Architecture.LOCAL_CENTRALIZED,
            Architecture.ALLREDUCE_LOCAL,
            Architecture.ALLREDUCE_CLUSTER,
            Architecture.PEARL,
        )

    @property
    def max_local_cnodes(self) -> int:
        """Upper bound on cNodes for local architectures (8 GPUs/server)."""
        if self is Architecture.SINGLE:
            return 1
        if self.is_local:
            return 8
        return 1 << 20  # effectively unbounded for cluster architectures

    @property
    def requires_nvlink(self) -> bool:
        """Whether the architecture depends on NVLink-equipped servers."""
        return self in (
            Architecture.ALLREDUCE_LOCAL,
            Architecture.ALLREDUCE_CLUSTER,
            Architecture.PEARL,
        )

    @property
    def supports_partitioned_weights(self) -> bool:
        """Whether weights larger than one GPU's memory are trainable.

        AllReduce in representative frameworks supports only the
        weight-replica mode, so the entire model must fit in a single
        GPU's memory; PS/Worker partitions variables across parameter
        servers in host memory and PEARL partitions embeddings across
        worker GPUs.
        """
        return self in (
            Architecture.LOCAL_CENTRALIZED,
            Architecture.PS_WORKER,
            Architecture.PEARL,
        )
