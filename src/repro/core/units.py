"""Physical quantities used throughout the analytical model.

The paper (Table I) mixes unit conventions freely: Ethernet bandwidth is
quoted in gigabits per second (``25 Gb/s``) while PCIe and NVLink are in
gigabytes per second (``10 GB/s``, ``50 GB/s``), GPU compute in teraFLOPs
and memory bandwidth in terabytes per second.  Getting a single factor of
eight wrong silently changes every conclusion (for example the exact 21x
speedup of Eq. 3 depends on 25 Gb/s == 3.125 GB/s).  This module therefore
provides explicit constructors and parsers so that every quantity in the
code base states its unit at the point of creation.

All quantities are stored in base SI-ish units:

* data sizes in **bytes**
* bandwidths in **bytes per second**
* compute rates in **FLOPs per second**
* compute amounts in **FLOPs**
* times in **seconds**

The module deliberately exposes plain ``float`` values rather than wrapper
classes: the analytical model is a large amount of simple arithmetic, and
wrapper types would make it noisy.  The constructors and the parser are the
type boundary.
"""

from __future__ import annotations

import re

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "KILO",
    "MEGA",
    "GIGA",
    "TERA",
    "bits",
    "kilobytes",
    "megabytes",
    "gigabytes",
    "terabytes",
    "gbps",
    "gigabytes_per_second",
    "terabytes_per_second",
    "teraflops",
    "gigaflops",
    "parse_size",
    "parse_bandwidth",
    "parse_flops",
    "format_size",
    "format_bandwidth",
    "format_time",
]

# Decimal multipliers.  The paper uses vendor-style decimal units (a
# "25 Gbps" NIC moves 25e9 bits per second), so decimal is the default
# throughout; binary multipliers are provided for data-size parsing only.
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12

KB = KILO
MB = MEGA
GB = GIGA
TB = TERA

KIB = 1024.0
MIB = 1024.0**2
GIB = 1024.0**3
TIB = 1024.0**4

_BITS_PER_BYTE = 8.0


def bits(n: float) -> float:
    """Convert a number of bits to bytes."""
    return float(n) / _BITS_PER_BYTE


def kilobytes(n: float) -> float:
    """``n`` kilobytes expressed in bytes."""
    return float(n) * KB


def megabytes(n: float) -> float:
    """``n`` megabytes expressed in bytes."""
    return float(n) * MB


def gigabytes(n: float) -> float:
    """``n`` gigabytes expressed in bytes."""
    return float(n) * GB


def terabytes(n: float) -> float:
    """``n`` terabytes expressed in bytes."""
    return float(n) * TB


def gbps(n: float) -> float:
    """``n`` gigabits per second expressed in bytes per second.

    This is the unit of the Ethernet rows in Table I and Table III.
    """
    return float(n) * GIGA / _BITS_PER_BYTE


def gigabytes_per_second(n: float) -> float:
    """``n`` GB/s expressed in bytes per second (PCIe/NVLink rows)."""
    return float(n) * GB


def terabytes_per_second(n: float) -> float:
    """``n`` TB/s expressed in bytes per second (GPU memory row)."""
    return float(n) * TB


def teraflops(n: float) -> float:
    """``n`` TFLOPs expressed in FLOPs (or TFLOP/s in FLOP/s)."""
    return float(n) * TERA


def gigaflops(n: float) -> float:
    """``n`` GFLOPs expressed in FLOPs (or GFLOP/s in FLOP/s)."""
    return float(n) * GIGA


_SIZE_PATTERN = re.compile(
    r"^\s*(?P<value>[0-9]*\.?[0-9]+)\s*(?P<unit>[KMGTP]?i?B|B)\s*$",
    re.IGNORECASE,
)

_SIZE_MULTIPLIERS = {
    "b": 1.0,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "pb": 1e15,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "tib": TIB,
    "pib": 1024.0**5,
}


def parse_size(text: str) -> float:
    """Parse a human-readable data size (``"204MB"``, ``"1.5 GiB"``) to bytes.

    >>> parse_size("204MB")
    204000000.0
    >>> parse_size("3 GB")
    3000000000.0
    """
    match = _SIZE_PATTERN.match(text)
    if match is None:
        raise ValueError(f"unparseable data size: {text!r}")
    value = float(match.group("value"))
    unit = match.group("unit").lower()
    return value * _SIZE_MULTIPLIERS[unit]


_BANDWIDTH_PATTERN = re.compile(
    r"^\s*(?P<value>[0-9]*\.?[0-9]+)\s*(?P<unit>[KMGT]?)(?P<kind>bps|b/s|B/s|Bps)\s*$"
)

_PREFIX_MULTIPLIERS = {"": 1.0, "k": KILO, "m": MEGA, "g": GIGA, "t": TERA}


def parse_bandwidth(text: str) -> float:
    """Parse a bandwidth string to bytes per second.

    The ``kind`` suffix is case-sensitive in the conventional way: a lower
    case ``b`` means bits, an upper case ``B`` means bytes.

    >>> parse_bandwidth("25Gbps")
    3125000000.0
    >>> parse_bandwidth("10GB/s")
    10000000000.0
    """
    match = _BANDWIDTH_PATTERN.match(text)
    if match is None:
        raise ValueError(f"unparseable bandwidth: {text!r}")
    value = float(match.group("value"))
    prefix = match.group("unit").lower()
    kind = match.group("kind")
    rate = value * _PREFIX_MULTIPLIERS[prefix]
    if kind in ("bps", "b/s"):
        rate /= _BITS_PER_BYTE
    return rate


_FLOPS_PATTERN = re.compile(
    r"^\s*(?P<value>[0-9]*\.?[0-9]+)\s*(?P<unit>[KMGTP]?)\s*(?:FLOPs?(?:/s)?)?\s*$",
    re.IGNORECASE,
)


def parse_flops(text: str) -> float:
    """Parse a FLOP count / rate string (``"1.56T"``, ``"105.8 GFLOPs"``).

    >>> parse_flops("1.56T")
    1560000000000.0
    """
    match = _FLOPS_PATTERN.match(text)
    if match is None:
        raise ValueError(f"unparseable FLOP quantity: {text!r}")
    value = float(match.group("value"))
    prefix = match.group("unit").lower()
    multipliers = dict(_PREFIX_MULTIPLIERS)
    multipliers["p"] = 1e15
    return value * multipliers[prefix]


def _format_with_scale(value: float, scales: list, suffixes: list) -> str:
    for scale, suffix in zip(scales, suffixes):
        if abs(value) >= scale:
            return f"{value / scale:.3g}{suffix}"
    return f"{value:.3g}{suffixes[-1]}"


def format_size(num_bytes: float) -> str:
    """Render bytes as a short human-readable string (decimal units)."""
    return _format_with_scale(
        float(num_bytes),
        [TB, GB, MB, KB, 1.0],
        ["TB", "GB", "MB", "KB", "B"],
    )


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth as a short human-readable string."""
    return format_size(bytes_per_second) + "/s"


def format_time(seconds: float) -> str:
    """Render a duration with an adaptive unit (s / ms / us)."""
    value = float(seconds)
    if abs(value) >= 1.0:
        return f"{value:.3g}s"
    if abs(value) >= 1e-3:
        return f"{value * 1e3:.3g}ms"
    return f"{value * 1e6:.3g}us"
