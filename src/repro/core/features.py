"""The workload feature schema (Fig. 4, "Workload Feature Extraction").

A :class:`WorkloadFeatures` record captures everything the analytical
model needs about one training job, per cNode and per training step:

* input data volume ``S_d`` (the "Memory Copy (PCIe)" column of Table V),
* compute-bound FLOP count (``#FLOPs``),
* memory-bound access volume ``S_mem_access``,
* weight/gradient traffic volume ``S_w`` (the "Network Traffic" column),
* model weight sizes at rest (dense vs embedding, Table IV), and
* the deployment: architecture and cNode count.

These records are produced either by the profiling pipeline
(:mod:`repro.profiling.extraction`), by the model-graph substrate
(:mod:`repro.graphs.features_from_graph`) or by the synthetic trace
generator (:mod:`repro.trace.generator`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from .architectures import Architecture

__all__ = ["FEATURE_FIELDS", "WorkloadFeatures"]

#: The schema's field names, in declaration order.  This is the shared
#: contract between the eager record below and the lazy columnar row
#: view (:class:`repro.core.population.FeatureView`): equality and
#: hashing on both sides reduce to the tuple of these attributes, so a
#: view can stand in for a record in dict keys and comparisons.
FEATURE_FIELDS: Tuple[str, ...] = (
    "name",
    "architecture",
    "num_cnodes",
    "batch_size",
    "flop_count",
    "memory_access_bytes",
    "input_bytes",
    "weight_traffic_bytes",
    "dense_weight_bytes",
    "embedding_weight_bytes",
    "embedding_traffic_bytes",
)


@dataclass(frozen=True)
class WorkloadFeatures:
    """Per-cNode, per-step resource requirements of one training job.

    Attributes:
        name: Human-readable identifier, used in reports.
        architecture: Deployment architecture (Table II taxonomy).
        num_cnodes: Number of computation nodes (GPU devices holding a
            model replica).  Always 1 for 1w1g.
        batch_size: Per-replica minibatch size.
        flop_count: FLOPs executed by compute-bound operations in one
            step on one cNode.
        memory_access_bytes: Bytes moved to/from GPU memory by
            memory-bound (element-wise) operations in one step.
        input_bytes: Input-sample bytes copied host-to-device (over PCIe)
            per step per cNode -- ``S_d`` in the model.
        weight_traffic_bytes: Weight/gradient bytes a cNode exchanges per
            step for synchronization -- ``S_w`` in the model.  Zero for
            1w1g.
        dense_weight_bytes: Dense parameter bytes at rest, including
            optimizer slots (Table IV "Dense weights").
        embedding_weight_bytes: Embedding parameter bytes at rest
            (Table IV "Embedding weights").
        embedding_traffic_bytes: The sparse *accessed* subset of
            ``weight_traffic_bytes`` that PEARL moves via AllGatherv
            instead of dense AllReduce.  Must not exceed
            ``weight_traffic_bytes``.
    """

    name: str
    architecture: Architecture
    num_cnodes: int
    batch_size: int
    flop_count: float
    memory_access_bytes: float
    input_bytes: float
    weight_traffic_bytes: float
    dense_weight_bytes: float = 0.0
    embedding_weight_bytes: float = 0.0
    embedding_traffic_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.num_cnodes < 1:
            raise ValueError("num_cnodes must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        for field in (
            "flop_count",
            "memory_access_bytes",
            "input_bytes",
            "weight_traffic_bytes",
            "dense_weight_bytes",
            "embedding_weight_bytes",
            "embedding_traffic_bytes",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")
        if self.architecture is Architecture.SINGLE:
            if self.num_cnodes != 1:
                raise ValueError("1w1g workloads use exactly one cNode")
            if self.weight_traffic_bytes != 0:
                raise ValueError("1w1g workloads exchange no weights")
        if self.architecture.is_local:
            if self.num_cnodes > self.architecture.max_local_cnodes:
                raise ValueError(
                    f"{self.architecture} supports at most "
                    f"{self.architecture.max_local_cnodes} cNodes, "
                    f"got {self.num_cnodes}"
                )
        if self.embedding_traffic_bytes > self.weight_traffic_bytes:
            raise ValueError(
                "embedding_traffic_bytes cannot exceed weight_traffic_bytes"
            )

    @property
    def weight_bytes(self) -> float:
        """Total model size at rest (dense + embedding weights)."""
        return self.dense_weight_bytes + self.embedding_weight_bytes

    @property
    def dense_traffic_bytes(self) -> float:
        """The dense share of the per-step synchronization traffic."""
        return self.weight_traffic_bytes - self.embedding_traffic_bytes

    @property
    def local_cnodes_per_server(self) -> int:
        """cNodes co-located on one server, for PCIe contention.

        Local architectures pack every cNode onto a single server.
        PS/Worker places one worker per server (Sec. II-A2), so no
        input-I/O contention arises; AllReduce-Cluster and PEARL pack
        8-GPU servers (NVLink within, Ethernet across).
        """
        if self.architecture in (
            Architecture.PEARL,
            Architecture.ALLREDUCE_CLUSTER,
        ):
            return min(self.num_cnodes, 8)
        if self.architecture.is_local:
            return self.num_cnodes
        return 1

    def with_architecture(
        self, architecture: Architecture, num_cnodes: int = None
    ) -> "WorkloadFeatures":
        """Re-deploy the same job under a different architecture.

        This is the primitive behind the Sec. III-C1 projections.  The
        fundamental per-step requirements (FLOPs, memory access, input
        volume, traffic volume) are properties of the model and batch
        size and therefore carry over unchanged; only the deployment
        fields are replaced.
        """
        replacement = {
            "architecture": architecture,
            "num_cnodes": self.num_cnodes if num_cnodes is None else num_cnodes,
        }
        if architecture is Architecture.SINGLE:
            replacement["weight_traffic_bytes"] = 0.0
            replacement["embedding_traffic_bytes"] = 0.0
        return dataclasses.replace(self, **replacement)
