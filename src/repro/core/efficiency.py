"""Hardware-efficiency assumptions (Sec. II-B and Sec. V-A).

The analytical model never assumes peak hardware rates are attainable:
Sec. II-B divides every capacity by a utilization efficiency, and the
paper's base assumption is a uniform 70 %.  Sec. V-A (Table VI) then
reports the *measured* per-workload efficiencies on the testbed, which is
what makes the estimated and measured breakdowns differ in Fig. 12 --
most dramatically for the Speech model whose GDDR efficiency is only 3 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .architectures import MEDIA_GPU_FLOPS, MEDIA_GPU_MEMORY

__all__ = [
    "EfficiencyModel",
    "PAPER_DEFAULT_EFFICIENCY",
    "full_efficiency",
    "uniform_efficiency",
    "TABLE_VI_EFFICIENCIES",
]


@dataclass(frozen=True)
class EfficiencyModel:
    """Attained fraction of peak capability, per hardware component.

    Every field is a fraction in ``(0, 1]``.  ``network`` covers whichever
    inter-node medium a workload uses (Ethernet or NVLink), mirroring the
    single "Network" column of Table VI.
    """

    compute: float = 0.7
    memory: float = 0.7
    pcie: float = 0.7
    network: float = 0.7

    def __post_init__(self) -> None:
        for field in ("compute", "memory", "pcie", "network"):
            value = getattr(self, field)
            if not 0 < value <= 1:
                raise ValueError(f"{field} efficiency must be in (0, 1], got {value}")

    def for_medium(self, medium: str) -> float:
        """Efficiency applied to a medium named as in Table II / Fig. 8(a)."""
        key = medium.lower()
        if key == "pcie":
            return self.pcie
        if key in ("ethernet", "nvlink"):
            return self.network
        if key == MEDIA_GPU_FLOPS.lower():
            return self.compute
        if key in (MEDIA_GPU_MEMORY.lower(), "gddr"):
            return self.memory
        raise KeyError(f"unknown medium: {medium!r}")

    def scaled(self, compute: float = 1.0, communication: float = 1.0) -> "EfficiencyModel":
        """Return a copy with compute-side and/or comm-side factors rescaled.

        Used by the Fig. 15 sensitivity analysis, which perturbs the
        computation efficiency (GPU compute + memory) and the
        communication efficiency (PCIe + network) independently.
        """
        return EfficiencyModel(
            compute=min(1.0, self.compute * compute),
            memory=min(1.0, self.memory * compute),
            pcie=min(1.0, self.pcie * communication),
            network=min(1.0, self.network * communication),
        )


def uniform_efficiency(value: float) -> EfficiencyModel:
    """An :class:`EfficiencyModel` with every component at ``value``."""
    return EfficiencyModel(compute=value, memory=value, pcie=value, network=value)


def full_efficiency() -> EfficiencyModel:
    """Peak-rate model (efficiency 1.0 everywhere); useful in tests."""
    return uniform_efficiency(1.0)


#: The paper's base assumption: "we use 70% of the actual capacities in
#: the denominators when computing Tc/Td/Tw" (Sec. II-B).
PAPER_DEFAULT_EFFICIENCY = EfficiencyModel()


#: Table VI: measured resource efficiency for each case-study workload.
#: Keys are the model names of Table IV ("Audio" in Table VI is the Speech
#: model; we index it under "Speech" for consistency with Tables IV/V).
TABLE_VI_EFFICIENCIES: Dict[str, EfficiencyModel] = {
    "Multi-Interests": EfficiencyModel(
        compute=0.3271, memory=0.95, pcie=0.8647, network=0.6921
    ),
    "ResNet50": EfficiencyModel(
        compute=0.8255, memory=0.789, pcie=0.351, network=0.494
    ),
    "NMT": EfficiencyModel(
        compute=0.828, memory=0.791, pcie=0.001, network=0.352
    ),
    "BERT": EfficiencyModel(
        compute=0.816, memory=0.95, pcie=0.0042, network=0.471
    ),
    "Speech": EfficiencyModel(
        compute=0.6086, memory=0.031, pcie=0.7773, network=0.405
    ),
    "GCN": EfficiencyModel(
        compute=0.882, memory=0.699, pcie=0.862, network=0.2735
    ),
}
