"""Assumption-sensitivity analyses of Sec. V (Figs. 15 and 16).

Two assumptions underpin the collective analysis:

* a uniform 70 % hardware efficiency in every denominator, and
* no overlap between computation and data transfer.

Sec. V-A perturbs the efficiencies (communication at 50 %, computation
at 50 % / 25 %) and inspects how the weight-traffic share of PS/Worker
jobs shifts (Fig. 15).  Sec. V-B recomputes the AllReduce-Local
projection under an ideal-overlap composition ``T = max{T_d, T_c, T_w}``
and shows the not-sped-up fraction barely changes (22.6 % -> 20.2 %)
while weight-bound jobs pin at the exact Eq. 3 speedup of 21x (Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .architectures import Architecture
from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import HardwareConfig
from .projection import projection_speedups
from .timemodel import (
    PAPER_MODEL_OPTIONS,
    ModelOptions,
    OverlapMode,
    estimate_breakdown,
)

__all__ = [
    "EfficiencyScenario",
    "FIG15_SCENARIOS",
    "weight_share_under_efficiency",
    "weight_share_scenarios",
    "OverlapComparison",
    "compare_overlap_assumptions",
    "eq3_weight_bound_speedup",
]


@dataclass(frozen=True)
class EfficiencyScenario:
    """A named (computation, communication) efficiency-scaling pair.

    Scales are applied multiplicatively to the 70 % baseline, e.g. a
    communication efficiency of 50 % is expressed as scale 50/70.
    """

    name: str
    compute_scale: float = 1.0
    communication_scale: float = 1.0

    def apply(self, base: EfficiencyModel) -> EfficiencyModel:
        return base.scaled(
            compute=self.compute_scale, communication=self.communication_scale
        )


#: The four curves of Fig. 15.
FIG15_SCENARIOS: Tuple[EfficiencyScenario, ...] = (
    EfficiencyScenario("All eff. 70%"),
    EfficiencyScenario("Communication eff. 50%", communication_scale=50 / 70),
    EfficiencyScenario("Computation eff. 50%", compute_scale=50 / 70),
    EfficiencyScenario("Computation eff. 25%", compute_scale=25 / 70),
)


def weight_share_under_efficiency(
    workloads: Iterable[WorkloadFeatures],
    hardware: HardwareConfig,
    efficiency: EfficiencyModel,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> List[float]:
    """Per-job weight-traffic share of total step time."""
    shares = []
    for features in workloads:
        breakdown = estimate_breakdown(features, hardware, efficiency, options)
        shares.append(breakdown.fractions()["weight"])
    return shares


def weight_share_scenarios(
    workloads: Iterable[WorkloadFeatures],
    hardware: HardwareConfig,
    scenarios: Sequence[EfficiencyScenario] = FIG15_SCENARIOS,
    base_efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> Dict[str, List[float]]:
    """Weight-traffic-share populations for each Fig. 15 scenario."""
    population = list(workloads)
    return {
        scenario.name: weight_share_under_efficiency(
            population, hardware, scenario.apply(base_efficiency), options
        )
        for scenario in scenarios
    }


@dataclass(frozen=True)
class OverlapComparison:
    """Fig. 16: the AllReduce-Local projection under both compositions."""

    non_overlap_speedups: Tuple[float, ...]
    ideal_overlap_speedups: Tuple[float, ...]
    non_overlap_weight_shares: Tuple[float, ...]
    ideal_overlap_weight_shares: Tuple[float, ...]

    @staticmethod
    def _not_sped_up_fraction(speedups: Sequence[float]) -> float:
        # Strictly slowed down: under the ideal-overlap composition,
        # compute-bound jobs land at exactly 1.0 (the max term does not
        # move) -- those are unaffected, not slowed.
        if not speedups:
            return 0.0
        return sum(1 for s in speedups if s < 1.0 - 1e-12) / len(speedups)

    @property
    def non_overlap_not_sped_up(self) -> float:
        """Fraction of jobs with no single-cNode gain, non-overlap model."""
        return self._not_sped_up_fraction(self.non_overlap_speedups)

    @property
    def ideal_overlap_not_sped_up(self) -> float:
        """Fraction of jobs with no single-cNode gain, ideal overlap."""
        return self._not_sped_up_fraction(self.ideal_overlap_speedups)

    def fraction_at_speedup(self, target: float, tolerance: float = 0.05) -> float:
        """Fraction of ideal-overlap jobs within ``tolerance`` of ``target``.

        Used for the "23.4 % of workloads achieve 21x" observation: jobs
        weight-bound both before and after projection pin at the Eq. 3
        ratio under ideal overlap.
        """
        speedups = self.ideal_overlap_speedups
        if not speedups:
            return 0.0
        hits = sum(1 for s in speedups if abs(s - target) / target <= tolerance)
        return hits / len(speedups)


def compare_overlap_assumptions(
    workloads: Iterable[WorkloadFeatures],
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> OverlapComparison:
    """Run the Fig. 16 comparison over a PS/Worker population.

    Workloads that are not PS/Worker are ignored, matching the paper's
    focus.
    """
    import dataclasses

    non_overlap_options = dataclasses.replace(options, overlap=OverlapMode.NONE)
    ideal_options = dataclasses.replace(options, overlap=OverlapMode.IDEAL)

    non_speedups: List[float] = []
    ideal_speedups: List[float] = []
    non_shares: List[float] = []
    ideal_shares: List[float] = []
    for features in workloads:
        if features.architecture is not Architecture.PS_WORKER:
            continue
        non_result = projection_speedups(
            features,
            Architecture.ALLREDUCE_LOCAL,
            hardware,
            efficiency,
            non_overlap_options,
        )
        ideal_result = projection_speedups(
            features,
            Architecture.ALLREDUCE_LOCAL,
            hardware,
            efficiency,
            ideal_options,
        )
        non_speedups.append(non_result.single_cnode_speedup)
        ideal_speedups.append(ideal_result.single_cnode_speedup)

        breakdown = estimate_breakdown(features, hardware, efficiency, options)
        non_shares.append(breakdown.fractions()["weight"])
        # Under ideal overlap the "share" of the weight part is its time
        # against the max-composition total, capped at 1.
        total = breakdown.total_ideal_overlap
        ideal_shares.append(breakdown.weight_total / total if total > 0 else 0.0)

    return OverlapComparison(
        non_overlap_speedups=tuple(non_speedups),
        ideal_overlap_speedups=tuple(ideal_speedups),
        non_overlap_weight_shares=tuple(non_shares),
        ideal_overlap_weight_shares=tuple(ideal_shares),
    )


def eq3_weight_bound_speedup(
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
) -> float:
    """The Eq. 3 speedup for weight-traffic-bound jobs.

    ``(S_w/(B_eth*eff) + S_w/(B_pcie*eff)) / (S_w/(B_nvlink*eff))`` --
    exactly 21 under the Table I settings, independent of S_w.
    """
    eth = hardware.ethernet.bandwidth * efficiency.network
    pcie = hardware.pcie.bandwidth * efficiency.pcie
    nvlink = hardware.nvlink.bandwidth * efficiency.network
    return (1.0 / eth + 1.0 / pcie) * nvlink
