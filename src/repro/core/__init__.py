"""The paper's analytical workload-characterization model (Sec. II-B).

This package is the primary contribution: a lightweight model that
decomposes a training step into input data I/O, computation and
weight/gradient traffic, and supports architecture projection, hardware
sweeps and assumption-sensitivity analysis on top of that decomposition.
"""

from .architectures import Architecture
from .classify import (
    Bottleneck,
    ClassifiedJob,
    bottleneck_census,
    classify,
    classify_population,
)
from .crossover import (
    CrossoverResult,
    crossover_distribution,
    ethernet_crossover,
)
from .efficiency import (
    EfficiencyModel,
    PAPER_DEFAULT_EFFICIENCY,
    TABLE_VI_EFFICIENCIES,
    full_efficiency,
    uniform_efficiency,
)
from .features import WorkloadFeatures
from .hardware import (
    GpuSpec,
    HardwareConfig,
    HardwareVariations,
    LinkSpec,
    ServerSpec,
    TABLE_III_VARIATIONS,
    pai_default_hardware,
    testbed_v100_hardware,
)
from .population import (
    AnalyzedJob,
    FeatureArrays,
    FeatureView,
    PopulationBreakdown,
    ProjectionArrays,
    analyze_population,
    average_fractions,
    average_hardware_shares,
    batch_breakdowns,
    batch_projection_speedups,
    batch_step_times,
    weighted_fraction_exceeding,
)
from .recommend import (
    DeploymentPlan,
    Recommendation,
    candidate_plans,
    feasible,
    recommend_architecture,
)
from .projection import (
    ALLREDUCE_LOCAL_MAX_CNODES,
    ProjectionResult,
    project_to_allreduce_cluster,
    project_to_allreduce_local,
    projection_speedups,
)
from .sensitivity import (
    EfficiencyScenario,
    FIG15_SCENARIOS,
    OverlapComparison,
    compare_overlap_assumptions,
    eq3_weight_bound_speedup,
    weight_share_scenarios,
)
from .sweep import SweepPoint, SweepSeries, sweep_all_resources, sweep_resource
from .throughput import job_throughput, step_speedup, throughput_speedup
from .timemodel import (
    ModelOptions,
    OverlapMode,
    PAPER_MODEL_OPTIONS,
    TimeBreakdown,
    estimate_breakdown,
    estimate_step_time,
    ring_allreduce_factor,
    weight_traffic_times,
)

__all__ = [
    "ALLREDUCE_LOCAL_MAX_CNODES",
    "AnalyzedJob",
    "Architecture",
    "Bottleneck",
    "FeatureArrays",
    "FeatureView",
    "PopulationBreakdown",
    "ProjectionArrays",
    "batch_breakdowns",
    "batch_projection_speedups",
    "batch_step_times",
    "ClassifiedJob",
    "CrossoverResult",
    "EfficiencyModel",
    "EfficiencyScenario",
    "FIG15_SCENARIOS",
    "GpuSpec",
    "HardwareConfig",
    "HardwareVariations",
    "LinkSpec",
    "ModelOptions",
    "OverlapComparison",
    "OverlapMode",
    "PAPER_DEFAULT_EFFICIENCY",
    "PAPER_MODEL_OPTIONS",
    "ProjectionResult",
    "Recommendation",
    "DeploymentPlan",
    "ServerSpec",
    "SweepPoint",
    "SweepSeries",
    "TABLE_III_VARIATIONS",
    "TABLE_VI_EFFICIENCIES",
    "TimeBreakdown",
    "WorkloadFeatures",
    "analyze_population",
    "bottleneck_census",
    "classify",
    "classify_population",
    "crossover_distribution",
    "average_fractions",
    "average_hardware_shares",
    "compare_overlap_assumptions",
    "eq3_weight_bound_speedup",
    "estimate_breakdown",
    "ethernet_crossover",
    "estimate_step_time",
    "full_efficiency",
    "job_throughput",
    "pai_default_hardware",
    "project_to_allreduce_cluster",
    "project_to_allreduce_local",
    "projection_speedups",
    "recommend_architecture",
    "candidate_plans",
    "feasible",
    "ring_allreduce_factor",
    "step_speedup",
    "sweep_all_resources",
    "sweep_resource",
    "testbed_v100_hardware",
    "throughput_speedup",
    "uniform_efficiency",
    "weight_share_scenarios",
    "weight_traffic_times",
    "weighted_fraction_exceeding",
]
