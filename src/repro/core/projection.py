"""Architecture projection: PS/Worker jobs onto AllReduce (Sec. III-C1).

The mapping rules follow the paper exactly:

* **AllReduce-Local** -- a local job can use at most 8 GPUs, so a
  PS/Worker job with more than 8 cNodes is reduced to 8; smaller jobs
  keep their cNode count.  Jobs whose model does not fit in a single
  GPU's memory cannot be projected at all (AllReduce frameworks only
  support the weight-replica mode).
* **AllReduce-Cluster** -- the original cNode count is retained.

The projection keeps the fundamental per-step requirements (S_d, FLOPs,
S_mem, S_w) and changes only the deployment, so the weight path switches
from Ethernet & PCIe to NVLink (local) or Ethernet & NVLink (cluster) and
input I/O picks up PCIe contention in the local case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .architectures import Architecture
from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import HardwareConfig
from .throughput import step_speedup, throughput_speedup
from .timemodel import PAPER_MODEL_OPTIONS, ModelOptions

__all__ = [
    "ALLREDUCE_LOCAL_MAX_CNODES",
    "ProjectionResult",
    "project_to_allreduce_local",
    "project_to_allreduce_cluster",
    "projection_speedups",
]

#: An AllReduce-Local job can have at most 8 cNodes (one 8-GPU server).
ALLREDUCE_LOCAL_MAX_CNODES = 8


def _fits_in_gpu_memory(
    features: WorkloadFeatures, hardware: HardwareConfig
) -> bool:
    """Whether the full replicated model fits a single GPU's memory."""
    return features.weight_bytes <= hardware.gpu.memory_capacity


def project_to_allreduce_local(
    features: WorkloadFeatures,
    hardware: Optional[HardwareConfig] = None,
) -> WorkloadFeatures:
    """Map a PS/Worker job onto AllReduce-Local.

    Args:
        features: The original PS/Worker deployment.
        hardware: When given, the GPU memory capacity is enforced; jobs
            whose model cannot be replicated on one GPU raise
            ``ValueError`` (the paper restricts the projection to "small
            to medium scale models that can fit into the GPU memory").

    Returns:
        The same workload deployed as AllReduce-Local with at most
        8 cNodes.
    """
    if features.architecture is not Architecture.PS_WORKER:
        raise ValueError(
            f"projection is defined for PS/Worker jobs, got {features.architecture}"
        )
    if hardware is not None and not _fits_in_gpu_memory(features, hardware):
        raise ValueError(
            f"model of {features.weight_bytes:.3g} bytes does not fit in "
            f"GPU memory ({hardware.gpu.memory_capacity:.3g} bytes)"
        )
    num_cnodes = min(features.num_cnodes, ALLREDUCE_LOCAL_MAX_CNODES)
    return features.with_architecture(
        Architecture.ALLREDUCE_LOCAL, num_cnodes=num_cnodes
    )


def project_to_allreduce_cluster(
    features: WorkloadFeatures,
    hardware: Optional[HardwareConfig] = None,
) -> WorkloadFeatures:
    """Map a PS/Worker job onto AllReduce-Cluster (cNode count retained)."""
    if features.architecture is not Architecture.PS_WORKER:
        raise ValueError(
            f"projection is defined for PS/Worker jobs, got {features.architecture}"
        )
    if hardware is not None and not _fits_in_gpu_memory(features, hardware):
        raise ValueError(
            f"model of {features.weight_bytes:.3g} bytes does not fit in "
            f"GPU memory ({hardware.gpu.memory_capacity:.3g} bytes)"
        )
    return features.with_architecture(Architecture.ALLREDUCE_CLUSTER)


@dataclass(frozen=True)
class ProjectionResult:
    """Speedups of one PS/Worker job under an AllReduce projection."""

    original: WorkloadFeatures
    projected: WorkloadFeatures
    single_cnode_speedup: float
    throughput_speedup: float

    @property
    def sped_up(self) -> bool:
        """Whether the projection improves overall job throughput."""
        return self.throughput_speedup > 1.0

    @property
    def single_cnode_sped_up(self) -> bool:
        """Whether the per-step time improves, ignoring cNode reduction."""
        return self.single_cnode_speedup > 1.0


def projection_speedups(
    features: WorkloadFeatures,
    target: Architecture,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> ProjectionResult:
    """Project one PS/Worker job and compute both Fig. 9 speedups."""
    if target is Architecture.ALLREDUCE_LOCAL:
        projected = project_to_allreduce_local(features)
    elif target is Architecture.ALLREDUCE_CLUSTER:
        projected = project_to_allreduce_cluster(features)
    else:
        raise ValueError(f"unsupported projection target: {target}")
    return ProjectionResult(
        original=features,
        projected=projected,
        single_cnode_speedup=step_speedup(
            features, projected, hardware, efficiency, options
        ),
        throughput_speedup=throughput_speedup(
            features, projected, hardware, efficiency, options
        ),
    )
