"""Hardware specifications: GPUs, interconnects, servers and clusters.

This module encodes Table I (the base system settings of the PAI cluster
where the workload traces were collected) and Table III (the hardware
configuration variations swept in Sec. III-C2), plus the testbed settings
of Sec. IV (64 servers, 8x V100 each, 25 Gbps Ethernet).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Tuple

from .units import (
    gbps,
    gigabytes_per_second,
    teraflops,
    terabytes_per_second,
)

__all__ = [
    "GpuSpec",
    "LinkSpec",
    "ServerSpec",
    "HardwareConfig",
    "HardwareVariations",
    "pai_default_hardware",
    "testbed_v100_hardware",
    "TABLE_III_VARIATIONS",
]


@dataclass(frozen=True)
class GpuSpec:
    """A GPU's compute and memory-access capabilities.

    Attributes:
        name: Marketing name, for reports only.
        peak_flops: Peak compute rate in FLOP/s (FP32 unless stated).
        memory_bandwidth: GDDR/HBM access bandwidth in bytes/s.
        memory_capacity: Device memory size in bytes; bounds which models
            fit for AllReduce weight-replica training.
        tensor_core_flops: Peak mixed-precision rate in FLOP/s, or 0.0 when
            the GPU has no TensorCore-like unit.
    """

    name: str
    peak_flops: float
    memory_bandwidth: float
    memory_capacity: float = 32e9
    tensor_core_flops: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be positive")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive")
        if self.memory_capacity <= 0:
            raise ValueError("memory_capacity must be positive")
        if self.tensor_core_flops < 0:
            raise ValueError("tensor_core_flops must be non-negative")


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point or bus interconnect.

    Attributes:
        name: Identifier such as ``"PCIe"`` or ``"Ethernet"``.
        bandwidth: Peak bandwidth in bytes/s (per direction).
        latency: Per-message latency in seconds; the analytical model of
            Sec. II-B ignores latency, the discrete-event simulator uses it.
    """

    name: str
    bandwidth: float
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(self, num_bytes: float, efficiency: float = 1.0) -> float:
        """Time to move ``num_bytes`` at ``efficiency`` fraction of peak."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        return self.latency + num_bytes / (self.bandwidth * efficiency)


@dataclass(frozen=True)
class ServerSpec:
    """A multi-GPU server (Fig. 1 of the paper).

    Attributes:
        gpus_per_server: GPU count; PAI servers host up to eight GPUs.
        has_nvlink: Whether GPUs are joined by the NVLink hybrid mesh
            (Fig. 1b) in addition to PCIe (Fig. 1a).
        cpu_cores: Host CPU core count (the testbed uses 96-core Xeons).
        host_memory: Host DRAM in bytes; parameter servers store large
            embedding tables here.
    """

    gpus_per_server: int = 8
    has_nvlink: bool = False
    cpu_cores: int = 96
    host_memory: float = 128e9

    def __post_init__(self) -> None:
        if self.gpus_per_server < 1:
            raise ValueError("gpus_per_server must be at least 1")
        if self.cpu_cores < 1:
            raise ValueError("cpu_cores must be at least 1")
        if self.host_memory <= 0:
            raise ValueError("host_memory must be positive")


@dataclass(frozen=True)
class HardwareConfig:
    """A complete system configuration against which workloads are modeled.

    This is the object every analytical-model entry point takes; Table I is
    the default instance (:func:`pai_default_hardware`), and the sweeps of
    Sec. III-C2 are produced by :meth:`with_resource`.
    """

    gpu: GpuSpec
    ethernet: LinkSpec
    pcie: LinkSpec
    nvlink: LinkSpec
    server: ServerSpec = ServerSpec()

    def bandwidth_of(self, medium: str) -> float:
        """Bandwidth in bytes/s of a medium named per Table II.

        Recognized media: ``"Ethernet"``, ``"PCIe"``, ``"NVLink"`` and
        ``"GPUMemory"`` (case-insensitive).
        """
        key = medium.lower()
        if key == "ethernet":
            return self.ethernet.bandwidth
        if key == "pcie":
            return self.pcie.bandwidth
        if key == "nvlink":
            return self.nvlink.bandwidth
        if key in ("gpumemory", "gpu_memory", "gddr"):
            return self.gpu.memory_bandwidth
        raise KeyError(f"unknown medium: {medium!r}")

    def with_resource(self, resource: str, value: float) -> "HardwareConfig":
        """Return a copy with one resource replaced (Table III sweeps).

        Args:
            resource: One of ``"ethernet"``, ``"pcie"``, ``"nvlink"``,
                ``"gpu_flops"``, ``"gpu_memory"``.
            value: The new capability in base units (bytes/s or FLOP/s).
        """
        key = resource.lower()
        if key == "ethernet":
            return dataclasses.replace(
                self, ethernet=dataclasses.replace(self.ethernet, bandwidth=value)
            )
        if key == "pcie":
            return dataclasses.replace(
                self, pcie=dataclasses.replace(self.pcie, bandwidth=value)
            )
        if key == "nvlink":
            return dataclasses.replace(
                self, nvlink=dataclasses.replace(self.nvlink, bandwidth=value)
            )
        if key == "gpu_flops":
            return dataclasses.replace(
                self, gpu=dataclasses.replace(self.gpu, peak_flops=value)
            )
        if key == "gpu_memory":
            return dataclasses.replace(
                self, gpu=dataclasses.replace(self.gpu, memory_bandwidth=value)
            )
        raise KeyError(f"unknown resource: {resource!r}")

    def normalized_resource(self, resource: str, value: float) -> float:
        """Express a candidate resource value relative to this config.

        Used for the x-axis of Fig. 11 ("normalized resources").
        """
        key = resource.lower()
        if key == "ethernet":
            base = self.ethernet.bandwidth
        elif key == "pcie":
            base = self.pcie.bandwidth
        elif key == "nvlink":
            base = self.nvlink.bandwidth
        elif key == "gpu_flops":
            base = self.gpu.peak_flops
        elif key == "gpu_memory":
            base = self.gpu.memory_bandwidth
        else:
            raise KeyError(f"unknown resource: {resource!r}")
        return value / base


def pai_default_hardware() -> HardwareConfig:
    """The base system settings of Table I.

    11 TFLOPs GPU with 1 TB/s memory; 25 Gbps Ethernet, 10 GB/s PCIe and
    50 GB/s NVLink interconnects.
    """
    return HardwareConfig(
        gpu=GpuSpec(
            name="PAI-base-GPU",
            peak_flops=teraflops(11),
            memory_bandwidth=terabytes_per_second(1),
        ),
        ethernet=LinkSpec("Ethernet", bandwidth=gbps(25), latency=10e-6),
        pcie=LinkSpec("PCIe", bandwidth=gigabytes_per_second(10), latency=2e-6),
        nvlink=LinkSpec("NVLink", bandwidth=gigabytes_per_second(50), latency=1e-6),
        server=ServerSpec(gpus_per_server=8, has_nvlink=False),
    )


def testbed_v100_hardware() -> HardwareConfig:
    """The Sec. IV testbed: 8x Tesla V100 servers with NVLink.

    V100 peak FP32 is ~15 TFLOPs (the ResNet50 validation example in
    Sec. IV-B divides by 15 TFLOPs) with 900 GB/s HBM2; TensorCore peak is
    ~8x the FP32 multiply-add rate (120 TFLOPs marketing figure).
    """
    return HardwareConfig(
        gpu=GpuSpec(
            name="Tesla-V100",
            peak_flops=teraflops(15),
            memory_bandwidth=terabytes_per_second(0.9),
            memory_capacity=32e9,
            tensor_core_flops=teraflops(120),
        ),
        ethernet=LinkSpec("Ethernet", bandwidth=gbps(25), latency=10e-6),
        pcie=LinkSpec("PCIe", bandwidth=gigabytes_per_second(10), latency=2e-6),
        nvlink=LinkSpec("NVLink", bandwidth=gigabytes_per_second(50), latency=1e-6),
        server=ServerSpec(gpus_per_server=8, has_nvlink=True),
    )


@dataclass(frozen=True)
class HardwareVariations:
    """The candidate hardware settings of Table III.

    Values are stored in base units (bytes/s, FLOP/s).  Iteration yields
    ``(resource, value)`` pairs covering the whole sweep space.
    """

    ethernet: Tuple[float, ...] = (gbps(10), gbps(25), gbps(100))
    pcie: Tuple[float, ...] = (
        gigabytes_per_second(10),
        gigabytes_per_second(50),
    )
    gpu_flops: Tuple[float, ...] = (
        teraflops(8),
        teraflops(16),
        teraflops(32),
        teraflops(64),
    )
    gpu_memory: Tuple[float, ...] = (
        terabytes_per_second(1),
        terabytes_per_second(2),
        terabytes_per_second(4),
    )

    def resources(self) -> Tuple[str, ...]:
        """The resource names being varied, in presentation order."""
        return ("ethernet", "pcie", "gpu_flops", "gpu_memory")

    def candidates(self, resource: str) -> Tuple[float, ...]:
        """Candidate values for one resource."""
        key = resource.lower()
        if key == "ethernet":
            return self.ethernet
        if key == "pcie":
            return self.pcie
        if key == "gpu_flops":
            return self.gpu_flops
        if key == "gpu_memory":
            return self.gpu_memory
        raise KeyError(f"unknown resource: {resource!r}")

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        for resource in self.resources():
            for value in self.candidates(resource):
                yield resource, value


TABLE_III_VARIATIONS = HardwareVariations()
