"""Architecture selection: the Sec. VI-A1 implication, made executable.

"Our simple analytical model can predict the time breakdown of jobs on
different architectures, facilitating system architecture selection."
This module does exactly that: given a workload's features and the
hardware, it enumerates every *feasible* deployment (respecting GPU
memory for weight-replica modes, NVLink availability, and the local
8-GPU cap), estimates throughput for each, and ranks them.

The feasibility rules encode the paper's placement constraints:

* AllReduce (local or cluster) requires the full model to fit in one
  GPU's memory (weight-replica mode only) and NVLink-equipped servers;
* PEARL requires NVLink and needs each embedding shard plus the dense
  replica to fit;
* PS/Worker always works (variables live in host memory on PS nodes);
* local architectures cap at 8 cNodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .architectures import Architecture
from .units import GB
from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import HardwareConfig
from .throughput import job_throughput
from .timemodel import (
    PAPER_MODEL_OPTIONS,
    ModelOptions,
    TimeBreakdown,
    estimate_breakdown,
)

__all__ = [
    "DeploymentPlan",
    "Recommendation",
    "feasible",
    "candidate_plans",
    "recommend_architecture",
]

#: Fraction of GPU memory available for weights (the rest holds
#: activations, workspace and the framework runtime).
WEIGHT_MEMORY_BUDGET = 0.8


@dataclass(frozen=True)
class DeploymentPlan:
    """One candidate deployment of a workload."""

    architecture: Architecture
    num_cnodes: int

    def __post_init__(self) -> None:
        if self.num_cnodes < 1:
            raise ValueError("num_cnodes must be at least 1")


@dataclass(frozen=True)
class Recommendation:
    """A ranked, estimated deployment."""

    plan: DeploymentPlan
    throughput: float
    breakdown: TimeBreakdown
    bottleneck: str

    @property
    def step_time(self) -> float:
        return self.breakdown.total


def feasible(
    plan: DeploymentPlan,
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    has_nvlink: bool = True,
) -> Tuple[bool, str]:
    """Whether a plan can run at all; returns (ok, reason-if-not)."""
    arch = plan.architecture
    if plan.num_cnodes > arch.max_local_cnodes:
        return False, f"{arch} supports at most {arch.max_local_cnodes} cNodes"
    if arch is Architecture.SINGLE and plan.num_cnodes != 1:
        return False, "1w1g uses exactly one GPU"
    if arch.requires_nvlink and not has_nvlink:
        return False, f"{arch} needs NVLink-equipped servers"
    budget = hardware.gpu.memory_capacity * WEIGHT_MEMORY_BUDGET
    if not arch.supports_partitioned_weights:
        # Weight-replica mode: the whole model on every GPU.
        if features.weight_bytes > budget:
            return False, (
                f"model ({features.weight_bytes / GB:.1f} GB) exceeds the "
                f"replica budget ({budget / GB:.1f} GB)"
            )
    elif arch is Architecture.PEARL:
        shard = features.embedding_weight_bytes / plan.num_cnodes
        if features.dense_weight_bytes + shard > budget:
            return False, (
                "dense replica + embedding shard exceeds the GPU memory "
                "budget"
            )
    return True, ""


def _dominant_component(breakdown: TimeBreakdown) -> str:
    fractions = breakdown.fractions()
    return max(fractions, key=fractions.get)


def candidate_plans(features: WorkloadFeatures) -> List[DeploymentPlan]:
    """Reasonable deployments to evaluate for a workload.

    Keeps the original cNode count where the architecture allows it and
    adds the local-capped variant.
    """
    n = features.num_cnodes
    local_n = min(n, 8)
    plans = [
        DeploymentPlan(Architecture.SINGLE, 1),
        DeploymentPlan(Architecture.LOCAL_CENTRALIZED, max(local_n, 2)),
        DeploymentPlan(Architecture.PS_WORKER, n),
        DeploymentPlan(Architecture.ALLREDUCE_LOCAL, max(local_n, 2)),
        DeploymentPlan(Architecture.ALLREDUCE_CLUSTER, max(n, 2)),
        DeploymentPlan(Architecture.PEARL, max(local_n, 2)),
    ]
    return plans


def recommend_architecture(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
    has_nvlink: bool = True,
    plans: Optional[List[DeploymentPlan]] = None,
) -> List[Recommendation]:
    """Rank the feasible deployments of a workload by throughput.

    Returns recommendations best-first; empty only if *no* architecture
    can host the model (which cannot happen while PS/Worker exists).
    """
    if plans is None:
        plans = candidate_plans(features)
    recommendations = []
    for plan in plans:
        ok, _ = feasible(plan, features, hardware, has_nvlink)
        if not ok:
            continue
        deployed = features.with_architecture(
            plan.architecture, num_cnodes=plan.num_cnodes
        )
        breakdown = estimate_breakdown(deployed, hardware, efficiency, options)
        recommendations.append(
            Recommendation(
                plan=plan,
                throughput=job_throughput(deployed, hardware, efficiency, options),
                breakdown=breakdown,
                bottleneck=_dominant_component(breakdown),
            )
        )
    recommendations.sort(key=lambda r: r.throughput, reverse=True)
    return recommendations
