"""The analytical execution-time model of Sec. II-B.

One training step is decomposed into three parts::

    T_total = T_d + T_c + T_w                      (non-overlap composition)
    T_total = max{T_d, T_c, T_w}                   (ideal-overlap, Sec. V-B)

    T_d = S_d / (B_d * eff)                        input data I/O
    T_w = sum over media m of S_w / (B_m * eff_m)  weight/gradient traffic
    T_c = #FLOPs / (peak_FLOPs * eff)
        + S_mem_access / (B_mem * eff)             computation

The media on the weight path come from the architecture (Table II); the
serialized multi-hop sum is what makes Eq. 3's exact 21x speedup for
weight-bound workloads:  (S_w/(25Gb*70%) + S_w/(10GB*70%)) /
(S_w/(50GB*70%)) = 21.

Two refinements beyond the bare equations are controlled by
:class:`ModelOptions`:

* **PCIe input contention** -- in local multi-GPU architectures all
  replicas load input through one host PCIe complex, so per-cNode input
  bandwidth is divided by the number of co-located cNodes (this produces
  the input-I/O slow-down observed when projecting PS/Worker jobs to
  AllReduce-Local in Sec. III-C1).
* **Collective traffic shaping** -- optionally apply the ring-AllReduce
  ``2(n-1)/n`` traffic factor and PEARL's partitioned-gather parallelism
  instead of the paper's flat ``S_w/B_w``.  Both default to the paper's
  simple model; the ablation benchmarks flip them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

from .architectures import MEDIA_GPU_FLOPS, MEDIA_GPU_MEMORY, Architecture
from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import HardwareConfig

__all__ = [
    "OverlapMode",
    "ModelOptions",
    "PAPER_MODEL_OPTIONS",
    "TimeBreakdown",
    "estimate_breakdown",
    "estimate_step_time",
    "weight_traffic_times",
    "ring_allreduce_factor",
]


class OverlapMode(enum.Enum):
    """How the three components compose into a step time (Sec. V-B)."""

    NONE = "non-overlap"
    IDEAL = "ideal-overlap"


@dataclass(frozen=True)
class ModelOptions:
    """Switches for the model refinements described in the module docs."""

    overlap: OverlapMode = OverlapMode.NONE
    input_pcie_contention: bool = True
    allreduce_ring_factor: bool = False
    pearl_partition_parallelism: bool = True


#: The assumptions used for the collective analysis of Sec. III.
PAPER_MODEL_OPTIONS = ModelOptions()


def ring_allreduce_factor(num_cnodes: int) -> float:
    """Per-node traffic of a ring AllReduce relative to the naive 2*S.

    A ring AllReduce of an S-byte buffer moves ``2*(n-1)/n * S`` bytes
    per node; the naive pull+push volume is ``2*S``, so the relative
    factor is ``(n-1)/n``.
    """
    if num_cnodes < 1:
        raise ValueError("num_cnodes must be at least 1")
    if num_cnodes == 1:
        return 0.0
    return (num_cnodes - 1) / num_cnodes


@dataclass(frozen=True)
class TimeBreakdown:
    """Execution-time composition of one training step on one cNode.

    ``weight_comm`` is keyed by medium name so the breakdown can be
    re-aggregated per hardware component (the Fig. 8(a) view) as well as
    per logical part (the Fig. 7 / Fig. 8(b-d) view).
    """

    data_io: float
    compute_flops: float
    compute_memory: float
    weight_comm: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("data_io", "compute_flops", "compute_memory"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        for medium, seconds in self.weight_comm.items():
            if seconds < 0:
                raise ValueError(f"weight_comm[{medium!r}] must be non-negative")

    @property
    def computation(self) -> float:
        """T_c: compute-bound plus memory-bound operation time."""
        return self.compute_flops + self.compute_memory

    @property
    def weight_total(self) -> float:
        """T_w: weight/gradient traffic time summed over path media."""
        return sum(self.weight_comm.values())

    @property
    def total(self) -> float:
        """T_total under the paper's non-overlap composition."""
        return self.data_io + self.computation + self.weight_total

    @property
    def total_ideal_overlap(self) -> float:
        """T_total when data, compute and weight traffic fully overlap."""
        return max(self.data_io, self.computation, self.weight_total)

    def total_for(self, overlap: OverlapMode) -> float:
        """Step time under either composition mode."""
        if overlap is OverlapMode.NONE:
            return self.total
        return self.total_ideal_overlap

    def fractions(self) -> Dict[str, float]:
        """Component shares of the non-overlap total (Fig. 7 rows).

        Returns a dict with keys ``data_io``, ``weight``,
        ``compute_bound`` and ``memory_bound`` summing to 1 (or all-zero
        for a degenerate zero-time breakdown).
        """
        total = self.total
        if total == 0:
            return {
                "data_io": 0.0,
                "weight": 0.0,
                "compute_bound": 0.0,
                "memory_bound": 0.0,
            }
        return {
            "data_io": self.data_io / total,
            "weight": self.weight_total / total,
            "compute_bound": self.compute_flops / total,
            "memory_bound": self.compute_memory / total,
        }

    def hardware_shares(self) -> Dict[str, float]:
        """Time shares attributed to hardware components (Fig. 8(a)).

        Input data I/O is PCIe traffic; weight traffic is attributed to
        each medium on its path; compute-bound time to ``GPU_FLOPs`` and
        memory-bound time to ``GPU_memory``.
        """
        total = self.total
        shares: Dict[str, float] = {
            MEDIA_GPU_FLOPS: self.compute_flops,
            MEDIA_GPU_MEMORY: self.compute_memory,
            "PCIe": self.data_io + self.weight_comm.get("PCIe", 0.0),
            "Ethernet": self.weight_comm.get("Ethernet", 0.0),
            "NVLink": self.weight_comm.get("NVLink", 0.0),
        }
        if total == 0:
            return {name: 0.0 for name in shares}
        return {name: seconds / total for name, seconds in shares.items()}

    def scaled(self, factor: float) -> "TimeBreakdown":
        """Uniformly scale every component (used by simulator overheads)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return TimeBreakdown(
            data_io=self.data_io * factor,
            compute_flops=self.compute_flops * factor,
            compute_memory=self.compute_memory * factor,
            weight_comm={m: s * factor for m, s in self.weight_comm.items()},
        )


def _effective_weight_volume(
    features: WorkloadFeatures, options: ModelOptions
) -> float:
    """Per-cNode traffic volume after collective traffic shaping."""
    architecture = features.architecture
    volume = features.weight_traffic_bytes
    if architecture is Architecture.PEARL and options.pearl_partition_parallelism:
        # Dense weights ride a (ring) AllReduce; partitioned embeddings
        # are gathered/scattered in parallel across the local GPUs, so
        # each GPU handles only its 1/n share of the sparse volume.
        local = max(features.local_cnodes_per_server, 1)
        dense = features.dense_traffic_bytes
        if options.allreduce_ring_factor:
            dense *= ring_allreduce_factor(features.num_cnodes)
        sparse = features.embedding_traffic_bytes / local
        return dense + sparse
    if (
        architecture
        in (Architecture.ALLREDUCE_LOCAL, Architecture.ALLREDUCE_CLUSTER)
        and options.allreduce_ring_factor
    ):
        return volume * ring_allreduce_factor(features.num_cnodes)
    return volume


def weight_traffic_times(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> Dict[str, float]:
    """T_w split per medium on the architecture's weight path."""
    volume = _effective_weight_volume(features, options)
    times: Dict[str, float] = {}
    for medium in features.architecture.weight_media:
        bandwidth = hardware.bandwidth_of(medium)
        times[medium] = volume / (bandwidth * efficiency.for_medium(medium))
    return times


def estimate_breakdown(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> TimeBreakdown:
    """Apply the Sec. II-B analytical model to one workload.

    Returns the per-cNode, per-step :class:`TimeBreakdown`.
    """
    gpu = hardware.gpu
    compute_flops = features.flop_count / (gpu.peak_flops * efficiency.compute)
    compute_memory = features.memory_access_bytes / (
        gpu.memory_bandwidth * efficiency.memory
    )

    contention = 1
    if options.input_pcie_contention and features.architecture.input_contends_for_pcie:
        contention = features.local_cnodes_per_server
    data_io = (features.input_bytes * contention) / (
        hardware.pcie.bandwidth * efficiency.pcie
    )

    return TimeBreakdown(
        data_io=data_io,
        compute_flops=compute_flops,
        compute_memory=compute_memory,
        weight_comm=weight_traffic_times(features, hardware, efficiency, options),
    )


def estimate_step_time(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> float:
    """T_total for one step under the configured overlap mode."""
    breakdown = estimate_breakdown(features, hardware, efficiency, options)
    return breakdown.total_for(options.overlap)
