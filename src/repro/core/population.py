"""Population-level aggregation of per-job breakdowns (Sec. III).

The paper reports two aggregation levels throughout Figs. 5, 7 and 8:

* **job-level** -- every job counts once;
* **cNode-level** -- every job is weighted by its cNode count, so the
  view reflects where the cluster's GPUs actually spend their time.

The cNode-level percentages of Fig. 7 are "computed as weighted sum of
the job-level percentages, with the weight being the cNode number of
each job over the overall cNode number".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import HardwareConfig
from .timemodel import (
    PAPER_MODEL_OPTIONS,
    ModelOptions,
    TimeBreakdown,
    estimate_breakdown,
)

__all__ = [
    "COMPONENT_KEYS",
    "HARDWARE_KEYS",
    "AnalyzedJob",
    "analyze_population",
    "average_fractions",
    "average_hardware_shares",
    "fraction_samples",
    "hardware_share_samples",
    "weighted_fraction_exceeding",
]

#: The four logical execution-time components (Figs. 7 and 8(b-d)).
COMPONENT_KEYS: Tuple[str, ...] = (
    "data_io",
    "weight",
    "compute_bound",
    "memory_bound",
)

#: The hardware components of the Fig. 8(a) view.
HARDWARE_KEYS: Tuple[str, ...] = (
    "GPU_FLOPs",
    "GPU_memory",
    "PCIe",
    "Ethernet",
    "NVLink",
)


@dataclass(frozen=True)
class AnalyzedJob:
    """A workload together with its analytical breakdown."""

    features: WorkloadFeatures
    breakdown: TimeBreakdown

    @property
    def weight(self) -> int:
        """cNode-level aggregation weight."""
        return self.features.num_cnodes


def analyze_population(
    workloads: Iterable[WorkloadFeatures],
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> List[AnalyzedJob]:
    """Apply the analytical model to every job in a population."""
    return [
        AnalyzedJob(
            features=features,
            breakdown=estimate_breakdown(features, hardware, efficiency, options),
        )
        for features in workloads
    ]


def _weights(jobs: Sequence[AnalyzedJob], cnode_level: bool) -> List[float]:
    if cnode_level:
        return [float(job.weight) for job in jobs]
    return [1.0] * len(jobs)


def average_fractions(
    jobs: Sequence[AnalyzedJob], cnode_level: bool = False
) -> Dict[str, float]:
    """Average component shares over a population (one Fig. 7 column)."""
    if not jobs:
        raise ValueError("population is empty")
    weights = _weights(jobs, cnode_level)
    total_weight = sum(weights)
    averages = {key: 0.0 for key in COMPONENT_KEYS}
    for job, weight in zip(jobs, weights):
        fractions = job.breakdown.fractions()
        for key in COMPONENT_KEYS:
            averages[key] += fractions[key] * weight
    return {key: value / total_weight for key, value in averages.items()}


def average_hardware_shares(
    jobs: Sequence[AnalyzedJob], cnode_level: bool = False
) -> Dict[str, float]:
    """Average per-hardware-component shares (the Fig. 8(a) summary)."""
    if not jobs:
        raise ValueError("population is empty")
    weights = _weights(jobs, cnode_level)
    total_weight = sum(weights)
    averages = {key: 0.0 for key in HARDWARE_KEYS}
    for job, weight in zip(jobs, weights):
        shares = job.breakdown.hardware_shares()
        for key in HARDWARE_KEYS:
            averages[key] += shares[key] * weight
    return {key: value / total_weight for key, value in averages.items()}


def fraction_samples(
    jobs: Sequence[AnalyzedJob], component: str
) -> List[float]:
    """Per-job shares of one component, for CDF plots (Fig. 8(b-d))."""
    if component not in COMPONENT_KEYS:
        raise KeyError(f"unknown component: {component!r}")
    return [job.breakdown.fractions()[component] for job in jobs]


def hardware_share_samples(
    jobs: Sequence[AnalyzedJob], hardware_component: str
) -> List[float]:
    """Per-job shares of one hardware component (Fig. 8(a) CDFs)."""
    if hardware_component not in HARDWARE_KEYS:
        raise KeyError(f"unknown hardware component: {hardware_component!r}")
    return [
        job.breakdown.hardware_shares()[hardware_component] for job in jobs
    ]


def weighted_fraction_exceeding(
    jobs: Sequence[AnalyzedJob],
    component: str,
    threshold: float,
    cnode_level: bool = False,
) -> float:
    """Population fraction whose component share exceeds ``threshold``.

    Backs observations such as "more than 40 % PS/Worker jobs spend more
    than 80 % time in communication" (Sec. III-B).
    """
    if not jobs:
        raise ValueError("population is empty")
    weights = _weights(jobs, cnode_level)
    total_weight = sum(weights)
    hit_weight = 0.0
    for job, weight in zip(jobs, weights):
        if job.breakdown.fractions()[component] > threshold:
            hit_weight += weight
    return hit_weight / total_weight
