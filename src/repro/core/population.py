"""Population-level aggregation of per-job breakdowns (Sec. III).

The paper reports two aggregation levels throughout Figs. 5, 7 and 8:

* **job-level** -- every job counts once;
* **cNode-level** -- every job is weighted by its cNode count, so the
  view reflects where the cluster's GPUs actually spend their time.

The cNode-level percentages of Fig. 7 are "computed as weighted sum of
the job-level percentages, with the weight being the cNode number of
each job over the overall cNode number".

Two evaluation paths are provided:

* the **scalar** path (:func:`analyze_population` and friends) applies
  :func:`repro.core.timemodel.estimate_breakdown` job by job and keeps
  per-job :class:`TimeBreakdown` objects around -- convenient for
  inspecting individual jobs;
* the **columnar** path (:class:`FeatureArrays`,
  :class:`PopulationBreakdown`, :func:`batch_breakdowns`,
  :func:`batch_step_times`, :func:`batch_projection_speedups`) evaluates
  the same equations over NumPy arrays, one vector operation per model
  term.  The figure experiments and hardware sweeps use it; on the 20k
  job trace it is two orders of magnitude faster than the per-job loop.

Both paths implement the identical arithmetic (the property tests in
``tests/properties`` pin them together to 1e-9 relative).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .architectures import MEDIA_GPU_FLOPS, MEDIA_GPU_MEMORY, Architecture
from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import FEATURE_FIELDS, WorkloadFeatures
from .hardware import HardwareConfig
from .timemodel import (
    PAPER_MODEL_OPTIONS,
    ModelOptions,
    OverlapMode,
    TimeBreakdown,
    estimate_breakdown,
    ring_allreduce_factor,
)

__all__ = [
    "COMPONENT_KEYS",
    "HARDWARE_KEYS",
    "AnalyzedJob",
    "analyze_population",
    "average_fractions",
    "average_hardware_shares",
    "fraction_samples",
    "hardware_share_samples",
    "weighted_fraction_exceeding",
    "FeatureArrays",
    "FeatureView",
    "PopulationBreakdown",
    "batch_breakdowns",
    "batch_step_times",
    "batch_projection_speedups",
]

#: The four logical execution-time components (Figs. 7 and 8(b-d)).
COMPONENT_KEYS: Tuple[str, ...] = (
    "data_io",
    "weight",
    "compute_bound",
    "memory_bound",
)

#: The hardware components of the Fig. 8(a) view.
HARDWARE_KEYS: Tuple[str, ...] = (
    "GPU_FLOPs",
    "GPU_memory",
    "PCIe",
    "Ethernet",
    "NVLink",
)


@dataclass(frozen=True)
class AnalyzedJob:
    """A workload together with its analytical breakdown."""

    features: WorkloadFeatures
    breakdown: TimeBreakdown

    @property
    def weight(self) -> int:
        """cNode-level aggregation weight."""
        return self.features.num_cnodes


def analyze_population(
    workloads: Iterable[WorkloadFeatures],
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> List[AnalyzedJob]:
    """Apply the analytical model to every job in a population."""
    return [
        AnalyzedJob(
            features=features,
            breakdown=estimate_breakdown(features, hardware, efficiency, options),
        )
        for features in workloads
    ]


def _weights(jobs: Sequence[AnalyzedJob], cnode_level: bool) -> List[float]:
    if cnode_level:
        return [float(job.weight) for job in jobs]
    return [1.0] * len(jobs)


def average_fractions(
    jobs: Union[Sequence[AnalyzedJob], "PopulationBreakdown"],
    cnode_level: bool = False,
) -> Dict[str, float]:
    """Average component shares over a population (one Fig. 7 column).

    Columns-first: given a :class:`PopulationBreakdown` the aggregate
    is one vector dot product.  The per-job :class:`AnalyzedJob` list
    remains the escape hatch for inspecting individual jobs.
    """
    if isinstance(jobs, PopulationBreakdown):
        return jobs.average_fractions(cnode_level)
    if not jobs:
        raise ValueError("population is empty")
    weights = _weights(jobs, cnode_level)
    total_weight = sum(weights)
    averages = {key: 0.0 for key in COMPONENT_KEYS}
    for job, weight in zip(jobs, weights):
        fractions = job.breakdown.fractions()
        for key in COMPONENT_KEYS:
            averages[key] += fractions[key] * weight
    return {key: value / total_weight for key, value in averages.items()}


def average_hardware_shares(
    jobs: Union[Sequence[AnalyzedJob], "PopulationBreakdown"],
    cnode_level: bool = False,
) -> Dict[str, float]:
    """Average per-hardware-component shares (the Fig. 8(a) summary)."""
    if isinstance(jobs, PopulationBreakdown):
        return jobs.average_hardware_shares(cnode_level)
    if not jobs:
        raise ValueError("population is empty")
    weights = _weights(jobs, cnode_level)
    total_weight = sum(weights)
    averages = {key: 0.0 for key in HARDWARE_KEYS}
    for job, weight in zip(jobs, weights):
        shares = job.breakdown.hardware_shares()
        for key in HARDWARE_KEYS:
            averages[key] += shares[key] * weight
    return {key: value / total_weight for key, value in averages.items()}


def fraction_samples(
    jobs: Union[Sequence[AnalyzedJob], "PopulationBreakdown"], component: str
) -> List[float]:
    """Per-job shares of one component, for CDF plots (Fig. 8(b-d))."""
    if isinstance(jobs, PopulationBreakdown):
        # repro: ignore[hot-path] figure API contract returns List[float]
        return jobs.fraction_samples(component).tolist()
    if component not in COMPONENT_KEYS:
        raise KeyError(f"unknown component: {component!r}")
    return [job.breakdown.fractions()[component] for job in jobs]


def hardware_share_samples(
    jobs: Union[Sequence[AnalyzedJob], "PopulationBreakdown"],
    hardware_component: str,
) -> List[float]:
    """Per-job shares of one hardware component (Fig. 8(a) CDFs)."""
    if isinstance(jobs, PopulationBreakdown):
        # repro: ignore[hot-path] figure API contract returns List[float]
        return jobs.hardware_share_samples(hardware_component).tolist()
    if hardware_component not in HARDWARE_KEYS:
        raise KeyError(f"unknown hardware component: {hardware_component!r}")
    return [
        job.breakdown.hardware_shares()[hardware_component] for job in jobs
    ]


def weighted_fraction_exceeding(
    jobs: Union[Sequence[AnalyzedJob], "PopulationBreakdown"],
    component: str,
    threshold: float,
    cnode_level: bool = False,
) -> float:
    """Population fraction whose component share exceeds ``threshold``.

    Backs observations such as "more than 40 % PS/Worker jobs spend more
    than 80 % time in communication" (Sec. III-B).
    """
    if isinstance(jobs, PopulationBreakdown):
        return jobs.weighted_fraction_exceeding(
            component, threshold, cnode_level
        )
    if not jobs:
        raise ValueError("population is empty")
    weights = _weights(jobs, cnode_level)
    total_weight = sum(weights)
    hit_weight = 0.0
    for job, weight in zip(jobs, weights):
        if job.breakdown.fractions()[component] > threshold:
            hit_weight += weight
    return hit_weight / total_weight


# ---------------------------------------------------------------------------
# Columnar (vectorized) evaluation path
# ---------------------------------------------------------------------------

#: Architectures in a fixed order so populations can be encoded as codes.
_ARCHITECTURES: Tuple[Architecture, ...] = tuple(Architecture)
_ARCH_CODE: Dict[Architecture, int] = {
    arch: code for code, arch in enumerate(_ARCHITECTURES)
}

# Per-architecture lookup tables (indexed by population arch code) for
# the deployment-derived columns.  They vectorize the corresponding
# ``WorkloadFeatures`` properties so a columnar store can become a
# population without instantiating a single record.
_ARCH_PACKS_SERVERS = np.array(
    [
        arch in (Architecture.PEARL, Architecture.ALLREDUCE_CLUSTER)
        for arch in _ARCHITECTURES
    ]
)
_ARCH_IS_LOCAL = np.array([arch.is_local for arch in _ARCHITECTURES])
_ARCH_CONTENDS = np.array(
    [arch.input_contends_for_pcie for arch in _ARCHITECTURES]
)
_ARCH_MAX_LOCAL = np.array(
    [arch.max_local_cnodes for arch in _ARCHITECTURES], dtype=np.int64
)
_GPUS_PER_SERVER = 8


@dataclass(frozen=True)
class FeatureArrays:
    """A workload population as columns (one NumPy array per feature).

    Extracting the columns costs one Python pass over the population;
    every subsequent model evaluation (a hardware sweep candidate, a
    projection, an efficiency perturbation) is pure array math.  All
    arrays share the same length and order as the source population.

    The three trailing columns (``names`` and the at-rest weight sizes)
    are not consumed by the analytical model; they exist so a row can be
    reconstructed losslessly as a :class:`FeatureView` (:meth:`view`,
    :meth:`iter_views`).  Both constructors populate them; hand-built
    instances may leave them ``None``, in which case :meth:`view`
    refuses rather than inventing field values.
    """

    arch_codes: np.ndarray
    num_cnodes: np.ndarray
    batch_size: np.ndarray
    flop_count: np.ndarray
    memory_access_bytes: np.ndarray
    input_bytes: np.ndarray
    weight_traffic_bytes: np.ndarray
    dense_traffic_bytes: np.ndarray
    embedding_traffic_bytes: np.ndarray
    local_cnodes: np.ndarray
    contends_for_pcie: np.ndarray
    names: Optional[np.ndarray] = field(default=None, repr=False)
    dense_weight_bytes: Optional[np.ndarray] = field(default=None, repr=False)
    embedding_weight_bytes: Optional[np.ndarray] = field(
        default=None, repr=False
    )

    @staticmethod
    def from_workloads(
        workloads: Iterable[WorkloadFeatures],
    ) -> "FeatureArrays":
        """Extract columns from a sequence of feature records.

        Accepts eager :class:`WorkloadFeatures` and lazy
        :class:`FeatureView` rows interchangeably.  When every element
        is a view over the *same* backing :class:`FeatureArrays`, the
        extraction collapses to one fancy-indexing gather per column --
        no per-row attribute access at all.
        """
        population = list(workloads)
        if not population:
            raise ValueError("workload population is empty")
        count = len(population)
        if isinstance(population[0], FeatureView):
            backing = population[0]._arrays
            if all(
                isinstance(f, FeatureView) and f._arrays is backing
                for f in population
            ):
                return backing.take(
                    np.fromiter(
                        (f._index for f in population),
                        dtype=np.int64,
                        count=count,
                    )
                )
        arch_codes = np.empty(count, dtype=np.int64)
        num_cnodes = np.empty(count, dtype=np.int64)
        batch_size = np.empty(count, dtype=np.int64)
        flop_count = np.empty(count, dtype=float)
        memory_access = np.empty(count, dtype=float)
        input_bytes = np.empty(count, dtype=float)
        weight_traffic = np.empty(count, dtype=float)
        embedding_traffic = np.empty(count, dtype=float)
        local_cnodes = np.empty(count, dtype=np.int64)
        contends = np.empty(count, dtype=bool)
        # repro: ignore[hot-path] job names are unbounded strings; a
        # unicode dtype would truncate them
        names = np.empty(count, dtype=object)
        dense_weight = np.empty(count, dtype=float)
        embedding_weight = np.empty(count, dtype=float)
        for i, features in enumerate(population):
            arch_codes[i] = _ARCH_CODE[features.architecture]
            num_cnodes[i] = features.num_cnodes
            batch_size[i] = features.batch_size
            flop_count[i] = features.flop_count
            memory_access[i] = features.memory_access_bytes
            input_bytes[i] = features.input_bytes
            weight_traffic[i] = features.weight_traffic_bytes
            embedding_traffic[i] = features.embedding_traffic_bytes
            local_cnodes[i] = features.local_cnodes_per_server
            contends[i] = features.architecture.input_contends_for_pcie
            names[i] = features.name.encode("utf-8") + b"\x01"
            dense_weight[i] = features.dense_weight_bytes
            embedding_weight[i] = features.embedding_weight_bytes
        # Fixed-width bytes with the columnar store's 0x01 terminator
        # (NumPy S dtypes strip trailing NULs), so either source yields
        # byte-identical name columns.
        name_width = max(max((len(n) for n in names), default=0), 1)
        names = names.astype(np.dtype(f"S{name_width}"))
        return FeatureArrays(
            arch_codes=arch_codes,
            num_cnodes=num_cnodes,
            batch_size=batch_size,
            flop_count=flop_count,
            memory_access_bytes=memory_access,
            input_bytes=input_bytes,
            weight_traffic_bytes=weight_traffic,
            dense_traffic_bytes=weight_traffic - embedding_traffic,
            embedding_traffic_bytes=embedding_traffic,
            local_cnodes=local_cnodes,
            contends_for_pcie=contends,
            names=names,
            dense_weight_bytes=dense_weight,
            embedding_weight_bytes=embedding_weight,
        )

    @staticmethod
    def from_columnar(
        columns: Dict[str, np.ndarray],
        architectures: Sequence[Architecture] = _ARCHITECTURES,
    ) -> "FeatureArrays":
        """Build a population directly from feature columns.

        The zero-materialization path for columnar trace stores
        (:mod:`repro.trace.columnar`): ``columns`` maps column names to
        equal-length arrays, with ``"architecture"`` holding integer
        codes into ``architectures`` (the store's label table).  No
        ``WorkloadFeatures`` objects are created; the per-record
        ``__post_init__`` invariants are enforced vectorized instead,
        and the derived columns (``dense_traffic_bytes``,
        ``local_cnodes``, ``contends_for_pcie``) are computed with the
        identical arithmetic as :meth:`from_workloads`, so both
        constructors produce byte-identical arrays for the same jobs.

        The optional ``name``, ``dense_weight_bytes`` and
        ``embedding_weight_bytes`` columns, when present, are carried
        through so rows can be materialized as :class:`FeatureView`
        objects without touching the store again.

        Columns may be memory-mapped; they are never written to.
        """
        required = (
            "architecture",
            "num_cnodes",
            "batch_size",
            "flop_count",
            "memory_access_bytes",
            "input_bytes",
            "weight_traffic_bytes",
            "embedding_traffic_bytes",
        )
        missing = [name for name in required if name not in columns]
        if missing:
            raise KeyError(f"missing columns: {', '.join(missing)}")
        store_codes = np.asarray(columns["architecture"], dtype=np.int64)
        count = int(store_codes.shape[0])
        if count == 0:
            raise ValueError("workload population is empty")
        for name in required:
            if np.asarray(columns[name]).shape[0] != count:
                raise ValueError(
                    f"column {name!r} has "
                    f"{np.asarray(columns[name]).shape[0]} rows, "
                    f"expected {count}"
                )
        translation = np.array(
            [_ARCH_CODE[arch] for arch in architectures], dtype=np.int64
        )
        if store_codes.min() < 0 or store_codes.max() >= len(translation):
            raise ValueError(
                "architecture code out of range for the given label table"
            )
        arch_codes = translation[store_codes]
        num_cnodes = np.asarray(columns["num_cnodes"], dtype=np.int64)
        batch_size = np.asarray(columns["batch_size"], dtype=np.int64)
        flop_count = np.asarray(columns["flop_count"], dtype=float)
        memory_access = np.asarray(columns["memory_access_bytes"], dtype=float)
        input_bytes = np.asarray(columns["input_bytes"], dtype=float)
        weight_traffic = np.asarray(
            columns["weight_traffic_bytes"], dtype=float
        )
        embedding_traffic = np.asarray(
            columns["embedding_traffic_bytes"], dtype=float
        )

        def _reject(mask: np.ndarray, message: str) -> None:
            if np.any(mask):
                raise ValueError(f"row {int(np.argmax(mask))}: {message}")

        _reject(num_cnodes < 1, "num_cnodes must be at least 1")
        _reject(batch_size < 1, "batch_size must be at least 1")
        names = columns.get("name")
        if names is not None:
            names = np.asarray(names)
            if names.dtype.kind != "S":
                # Normalize plain-string columns to the store's
                # sentinel-terminated bytes encoding (see the
                # ``names`` field docs) so row views decode uniformly.
                encoded = [str(n).encode("utf-8") + b"\x01" for n in names]
                width = max(max((len(n) for n in encoded), default=0), 1)
                names = np.asarray(encoded, dtype=np.dtype(f"S{width}"))
        dense_weight = columns.get("dense_weight_bytes")
        if dense_weight is not None:
            dense_weight = np.asarray(dense_weight, dtype=float)
        embedding_weight = columns.get("embedding_weight_bytes")
        if embedding_weight is not None:
            embedding_weight = np.asarray(embedding_weight, dtype=float)
        for name, column in (
            ("flop_count", flop_count),
            ("memory_access_bytes", memory_access),
            ("input_bytes", input_bytes),
            ("weight_traffic_bytes", weight_traffic),
            ("embedding_traffic_bytes", embedding_traffic),
            ("dense_weight_bytes", dense_weight),
            ("embedding_weight_bytes", embedding_weight),
        ):
            if column is None:
                continue
            _reject(column < 0, f"{name} must be non-negative")
        _reject(
            embedding_traffic > weight_traffic,
            "embedding_traffic_bytes cannot exceed weight_traffic_bytes",
        )
        single = arch_codes == _ARCH_CODE[Architecture.SINGLE]
        _reject(single & (num_cnodes != 1), "1w1g workloads use exactly one cNode")
        _reject(
            single & (weight_traffic != 0),
            "1w1g workloads exchange no weights",
        )
        _reject(
            num_cnodes > _ARCH_MAX_LOCAL[arch_codes],
            "num_cnodes exceeds the architecture's local-cNode bound",
        )
        local_cnodes = np.where(
            _ARCH_PACKS_SERVERS[arch_codes],
            np.minimum(num_cnodes, _GPUS_PER_SERVER),
            np.where(_ARCH_IS_LOCAL[arch_codes], num_cnodes, 1),
        )
        return FeatureArrays(
            arch_codes=arch_codes,
            num_cnodes=num_cnodes,
            batch_size=batch_size,
            flop_count=flop_count,
            memory_access_bytes=memory_access,
            input_bytes=input_bytes,
            weight_traffic_bytes=weight_traffic,
            dense_traffic_bytes=weight_traffic - embedding_traffic,
            embedding_traffic_bytes=embedding_traffic,
            local_cnodes=local_cnodes,
            contends_for_pcie=_ARCH_CONTENDS[arch_codes],
            names=names,
            dense_weight_bytes=dense_weight,
            embedding_weight_bytes=embedding_weight,
        )

    @staticmethod
    def coerce(
        workloads: Union["FeatureArrays", Iterable[WorkloadFeatures]],
    ) -> "FeatureArrays":
        """Pass through a :class:`FeatureArrays`, extract anything else."""
        if isinstance(workloads, FeatureArrays):
            return workloads
        return FeatureArrays.from_workloads(workloads)

    def __len__(self) -> int:
        return int(self.arch_codes.shape[0])

    def take(self, indices: np.ndarray) -> "FeatureArrays":
        """A row subset (or reordering) as a new population.

        ``indices`` is anything NumPy fancy indexing accepts (an index
        array or a boolean mask).  Values are copied, never recomputed,
        so the subset is byte-identical to extracting the same rows.
        """
        sel = np.asarray(indices)

        def pick(column: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if column is None else column[sel]

        return FeatureArrays(
            arch_codes=self.arch_codes[sel],
            num_cnodes=self.num_cnodes[sel],
            batch_size=self.batch_size[sel],
            flop_count=self.flop_count[sel],
            memory_access_bytes=self.memory_access_bytes[sel],
            input_bytes=self.input_bytes[sel],
            weight_traffic_bytes=self.weight_traffic_bytes[sel],
            dense_traffic_bytes=self.dense_traffic_bytes[sel],
            embedding_traffic_bytes=self.embedding_traffic_bytes[sel],
            local_cnodes=self.local_cnodes[sel],
            contends_for_pcie=self.contends_for_pcie[sel],
            names=pick(self.names),
            dense_weight_bytes=pick(self.dense_weight_bytes),
            embedding_weight_bytes=pick(self.embedding_weight_bytes),
        )

    def of_architecture(self, architecture: Architecture) -> "FeatureArrays":
        """The rows of one workload type, possibly empty."""
        return self.take(np.flatnonzero(self.mask_of(architecture)))

    def view(self, index: int) -> "FeatureView":
        """A lazy ``WorkloadFeatures``-compatible view of one row."""
        count = len(self)
        if not -count <= index < count:
            raise IndexError(
                f"row {index} out of range for {count}-job population"
            )
        if (
            self.names is None
            or self.dense_weight_bytes is None
            or self.embedding_weight_bytes is None
        ):
            raise ValueError(
                "this FeatureArrays carries no name/at-rest weight "
                "columns; build it via from_workloads/from_columnar to "
                "use row views"
            )
        return FeatureView(self, index if index >= 0 else index + count)

    def iter_views(self) -> Iterator["FeatureView"]:
        """Lazy row views over the whole population, in order."""
        if len(self):
            self.view(0)  # validate the row-view columns once
        # repro: ignore[hot-path] lazy per-row views are this API's point
        for index in range(len(self)):
            yield FeatureView(self, index)

    def architectures_present(self) -> List[Architecture]:
        """Distinct architectures in the population, in enum order."""
        return [
            _ARCHITECTURES[code]
            for code in (
                np.unique(self.arch_codes).tolist()  # repro: ignore[hot-path] tiny set (|architectures| <= 6)
            )
        ]

    def mask_of(self, architecture: Architecture) -> np.ndarray:
        """Boolean mask selecting one architecture's jobs."""
        return self.arch_codes == _ARCH_CODE[architecture]

    def project_ps_to(self, target: Architecture) -> "FeatureArrays":
        """Vectorized Sec. III-C1 projection of a PS/Worker population.

        Mirrors :func:`repro.core.projection.project_to_allreduce_local`
        / ``project_to_allreduce_cluster``: AllReduce-Local caps the job
        at 8 cNodes (one server), AllReduce-Cluster keeps the cNode
        count and packs 8-GPU servers.
        """
        if not np.all(self.arch_codes == _ARCH_CODE[Architecture.PS_WORKER]):
            raise ValueError("projection is defined for PS/Worker populations")
        if target is Architecture.ALLREDUCE_LOCAL:
            num_cnodes = np.minimum(self.num_cnodes, 8)
            local_cnodes = num_cnodes
        elif target is Architecture.ALLREDUCE_CLUSTER:
            num_cnodes = self.num_cnodes
            local_cnodes = np.minimum(self.num_cnodes, 8)
        else:
            raise ValueError(f"unsupported projection target: {target}")
        return FeatureArrays(
            arch_codes=np.full_like(self.arch_codes, _ARCH_CODE[target]),
            num_cnodes=num_cnodes,
            batch_size=self.batch_size,
            flop_count=self.flop_count,
            memory_access_bytes=self.memory_access_bytes,
            input_bytes=self.input_bytes,
            weight_traffic_bytes=self.weight_traffic_bytes,
            dense_traffic_bytes=self.dense_traffic_bytes,
            embedding_traffic_bytes=self.embedding_traffic_bytes,
            local_cnodes=local_cnodes,
            contends_for_pcie=np.full_like(
                self.contends_for_pcie, target.input_contends_for_pcie
            ),
            names=self.names,
            dense_weight_bytes=self.dense_weight_bytes,
            embedding_weight_bytes=self.embedding_weight_bytes,
        )


class FeatureView:
    """One population row with ``WorkloadFeatures``-compatible access.

    The lazy inverse of column extraction: nothing is computed until an
    attribute is read, and every attribute decodes straight out of the
    backing :class:`FeatureArrays` columns -- bit-identical to the
    eagerly constructed record (the property tests in
    ``tests/properties`` pin all eleven fields plus the derived
    properties).  Views hash and compare like the frozen dataclass
    (the tuple of :data:`~repro.core.features.FEATURE_FIELDS` values),
    so they interoperate in dict keys and equality checks; per-record
    ``__post_init__`` validation is skipped because the columnar
    constructors already enforced the same invariants vectorized.
    """

    __slots__ = ("_arrays", "_index")

    def __init__(self, arrays: FeatureArrays, index: int) -> None:
        self._arrays = arrays
        self._index = index

    # ---- the eleven schema fields ----------------------------------

    @property
    def name(self) -> str:
        raw = self._arrays.names[self._index]
        if isinstance(raw, bytes):
            # The name column is sentinel-terminated utf-8: a trailing
            # 0x01 byte guards real trailing NULs from the S dtype's
            # stripping.  Tolerate un-terminated bytes from hand-built
            # columns.
            if raw.endswith(b"\x01"):
                raw = raw[:-1]
            return raw.decode("utf-8")
        return str(raw)

    @property
    def architecture(self) -> Architecture:
        return _ARCHITECTURES[int(self._arrays.arch_codes[self._index])]

    @property
    def num_cnodes(self) -> int:
        return int(self._arrays.num_cnodes[self._index])

    @property
    def batch_size(self) -> int:
        return int(self._arrays.batch_size[self._index])

    @property
    def flop_count(self) -> float:
        return float(self._arrays.flop_count[self._index])

    @property
    def memory_access_bytes(self) -> float:
        return float(self._arrays.memory_access_bytes[self._index])

    @property
    def input_bytes(self) -> float:
        return float(self._arrays.input_bytes[self._index])

    @property
    def weight_traffic_bytes(self) -> float:
        return float(self._arrays.weight_traffic_bytes[self._index])

    @property
    def dense_weight_bytes(self) -> float:
        return float(self._arrays.dense_weight_bytes[self._index])

    @property
    def embedding_weight_bytes(self) -> float:
        return float(self._arrays.embedding_weight_bytes[self._index])

    @property
    def embedding_traffic_bytes(self) -> float:
        return float(self._arrays.embedding_traffic_bytes[self._index])

    # ---- derived properties (same arithmetic as the record) --------

    @property
    def weight_bytes(self) -> float:
        """Total model size at rest (dense + embedding weights)."""
        return self.dense_weight_bytes + self.embedding_weight_bytes

    @property
    def dense_traffic_bytes(self) -> float:
        """The dense share of the per-step synchronization traffic."""
        return float(self._arrays.dense_traffic_bytes[self._index])

    @property
    def local_cnodes_per_server(self) -> int:
        """cNodes co-located on one server, for PCIe contention."""
        return int(self._arrays.local_cnodes[self._index])

    # ---- record interoperability -----------------------------------

    def materialize(self) -> WorkloadFeatures:
        """The eager (validated) record for this row."""
        return WorkloadFeatures(
            **{field_name: getattr(self, field_name) for field_name in FEATURE_FIELDS}
        )

    def with_architecture(
        self, architecture: Architecture, num_cnodes: int = None
    ) -> WorkloadFeatures:
        """Re-deploy this row's job under a different architecture."""
        return self.materialize().with_architecture(architecture, num_cnodes)

    def _field_values(self) -> Tuple:
        return tuple(getattr(self, field_name) for field_name in FEATURE_FIELDS)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (FeatureView, WorkloadFeatures)):
            return self._field_values() == tuple(
                getattr(other, field_name) for field_name in FEATURE_FIELDS
            )
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Matches the frozen dataclass: hash of the field-value tuple.
        return hash(self._field_values())

    def __repr__(self) -> str:
        return (
            f"FeatureView(name={self.name!r}, "
            f"architecture={self.architecture}, row={self._index})"
        )


def _ring_factors(num_cnodes: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.core.timemodel.ring_allreduce_factor`."""
    n = num_cnodes.astype(float)
    return np.where(num_cnodes <= 1, 0.0, (n - 1.0) / np.maximum(n, 1.0))


def _effective_weight_volumes(
    features: FeatureArrays,
    architecture: Architecture,
    mask: np.ndarray,
    options: ModelOptions,
) -> np.ndarray:
    """Per-cNode traffic volumes after collective traffic shaping.

    Mirrors ``timemodel._effective_weight_volume`` for one architecture
    group of the population.
    """
    volume = features.weight_traffic_bytes[mask]
    if architecture is Architecture.PEARL and options.pearl_partition_parallelism:
        local = np.maximum(features.local_cnodes[mask], 1).astype(float)
        dense = features.dense_traffic_bytes[mask]
        if options.allreduce_ring_factor:
            dense = dense * _ring_factors(features.num_cnodes[mask])
        sparse = features.embedding_traffic_bytes[mask] / local
        return dense + sparse
    if (
        architecture
        in (Architecture.ALLREDUCE_LOCAL, Architecture.ALLREDUCE_CLUSTER)
        and options.allreduce_ring_factor
    ):
        return volume * _ring_factors(features.num_cnodes[mask])
    return volume


@dataclass(frozen=True)
class PopulationBreakdown:
    """Columnar per-job time breakdowns for one population.

    The vectorized counterpart of a ``List[AnalyzedJob]``: each
    component is an array over the population, and the aggregate
    helpers (:meth:`average_fractions`, :meth:`fraction_samples`,
    :meth:`weighted_fraction_exceeding`, ...) match the scalar
    module-level functions.
    """

    data_io: np.ndarray
    compute_flops: np.ndarray
    compute_memory: np.ndarray
    weight_comm: Dict[str, np.ndarray]
    features: FeatureArrays = field(repr=False)

    def __len__(self) -> int:
        return int(self.data_io.shape[0])

    # ---- per-job series --------------------------------------------

    @property
    def computation(self) -> np.ndarray:
        """T_c per job: compute-bound plus memory-bound time."""
        return self.compute_flops + self.compute_memory

    @property
    def weight_total(self) -> np.ndarray:
        """T_w per job: weight traffic summed over path media."""
        total = np.zeros_like(self.data_io)
        for seconds in self.weight_comm.values():
            total = total + seconds
        return total

    @property
    def total(self) -> np.ndarray:
        """T_total per job under the non-overlap composition."""
        return self.data_io + self.computation + self.weight_total

    @property
    def total_ideal_overlap(self) -> np.ndarray:
        """T_total per job when the three parts fully overlap."""
        return np.maximum(
            self.data_io, np.maximum(self.computation, self.weight_total)
        )

    def total_for(self, overlap: OverlapMode) -> np.ndarray:
        """Per-job step times under either composition mode."""
        if overlap is OverlapMode.NONE:
            return self.total
        return self.total_ideal_overlap

    def fractions(self) -> Dict[str, np.ndarray]:
        """Component shares per job (columns of the Fig. 7 view)."""
        total = self.total
        safe = total > 0
        out = {}
        for key, part in (
            ("data_io", self.data_io),
            ("weight", self.weight_total),
            ("compute_bound", self.compute_flops),
            ("memory_bound", self.compute_memory),
        ):
            out[key] = np.divide(
                part, total, out=np.zeros_like(part), where=safe
            )
        return out

    def hardware_shares(self) -> Dict[str, np.ndarray]:
        """Per-hardware-component shares per job (Fig. 8(a) view)."""
        zeros = np.zeros_like(self.data_io)
        seconds = {
            MEDIA_GPU_FLOPS: self.compute_flops,
            MEDIA_GPU_MEMORY: self.compute_memory,
            "PCIe": self.data_io + self.weight_comm.get("PCIe", zeros),
            "Ethernet": self.weight_comm.get("Ethernet", zeros),
            "NVLink": self.weight_comm.get("NVLink", zeros),
        }
        total = self.total
        safe = total > 0
        return {
            name: np.divide(part, total, out=np.zeros_like(part), where=safe)
            for name, part in seconds.items()
        }

    # ---- aggregates ------------------------------------------------

    def _weight_vector(self, cnode_level: bool) -> np.ndarray:
        if cnode_level:
            return self.features.num_cnodes.astype(float)
        return np.ones(len(self), dtype=float)

    def _require_jobs(self) -> None:
        if len(self) == 0:
            raise ValueError("population is empty")

    def average_fractions(self, cnode_level: bool = False) -> Dict[str, float]:
        """Average component shares (one Fig. 7 column)."""
        self._require_jobs()
        weights = self._weight_vector(cnode_level)
        total_weight = float(weights.sum())
        fractions = self.fractions()
        return {
            key: float(np.dot(fractions[key], weights) / total_weight)
            for key in COMPONENT_KEYS
        }

    def average_hardware_shares(
        self, cnode_level: bool = False
    ) -> Dict[str, float]:
        """Average per-hardware-component shares (Fig. 8(a) summary)."""
        self._require_jobs()
        weights = self._weight_vector(cnode_level)
        total_weight = float(weights.sum())
        shares = self.hardware_shares()
        return {
            key: float(np.dot(shares[key], weights) / total_weight)
            for key in HARDWARE_KEYS
        }

    def fraction_samples(self, component: str) -> np.ndarray:
        """Per-job shares of one component (CDF input, Fig. 8(b-d))."""
        if component not in COMPONENT_KEYS:
            raise KeyError(f"unknown component: {component!r}")
        return self.fractions()[component]

    def hardware_share_samples(self, hardware_component: str) -> np.ndarray:
        """Per-job shares of one hardware component (Fig. 8(a) CDFs)."""
        if hardware_component not in HARDWARE_KEYS:
            raise KeyError(
                f"unknown hardware component: {hardware_component!r}"
            )
        return self.hardware_shares()[hardware_component]

    def weighted_fraction_exceeding(
        self,
        component: str,
        threshold: float,
        cnode_level: bool = False,
    ) -> float:
        """Population fraction whose component share exceeds a bound."""
        self._require_jobs()
        weights = self._weight_vector(cnode_level)
        hits = self.fraction_samples(component) > threshold
        return float(weights[hits].sum() / weights.sum())

    def cnode_weights(self) -> np.ndarray:
        """Per-job cNode weights, for cNode-level CDFs."""
        return self.features.num_cnodes.astype(float)


def batch_breakdowns(
    workloads: Union[FeatureArrays, Iterable[WorkloadFeatures]],
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> PopulationBreakdown:
    """Vectorized :func:`repro.core.timemodel.estimate_breakdown`.

    Applies the Sec. II-B analytical model to a whole population with
    one array operation per model term, grouping jobs by architecture
    only where the synchronization path differs.
    """
    features = FeatureArrays.coerce(workloads)
    gpu = hardware.gpu
    compute_flops = features.flop_count / (gpu.peak_flops * efficiency.compute)
    compute_memory = features.memory_access_bytes / (
        gpu.memory_bandwidth * efficiency.memory
    )

    contention = np.ones(len(features), dtype=float)
    if options.input_pcie_contention:
        contention = np.where(
            features.contends_for_pcie,
            features.local_cnodes.astype(float),
            1.0,
        )
    data_io = (features.input_bytes * contention) / (
        hardware.pcie.bandwidth * efficiency.pcie
    )

    weight_comm: Dict[str, np.ndarray] = {}
    for architecture in features.architectures_present():
        media = architecture.weight_media
        if not media:
            continue
        mask = features.mask_of(architecture)
        volume = _effective_weight_volumes(
            features, architecture, mask, options
        )
        for medium in media:
            seconds = volume / (
                hardware.bandwidth_of(medium) * efficiency.for_medium(medium)
            )
            if medium not in weight_comm:
                weight_comm[medium] = np.zeros(len(features), dtype=float)
            weight_comm[medium][mask] = seconds
    return PopulationBreakdown(
        data_io=data_io,
        compute_flops=compute_flops,
        compute_memory=compute_memory,
        weight_comm=weight_comm,
        features=features,
    )


def batch_step_times(
    workloads: Union[FeatureArrays, Iterable[WorkloadFeatures]],
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> np.ndarray:
    """Vectorized :func:`repro.core.timemodel.estimate_step_time`."""
    breakdown = batch_breakdowns(workloads, hardware, efficiency, options)
    return breakdown.total_for(options.overlap)


@dataclass(frozen=True)
class ProjectionArrays:
    """Speedup arrays of a projected PS/Worker population (Fig. 9)."""

    single_cnode_speedup: np.ndarray
    throughput_speedup: np.ndarray


def batch_projection_speedups(
    workloads: Union[FeatureArrays, Iterable[WorkloadFeatures]],
    target: Architecture,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> ProjectionArrays:
    """Vectorized :func:`repro.core.projection.projection_speedups`."""
    base = FeatureArrays.coerce(workloads)
    projected = base.project_ps_to(target)
    base_times = batch_step_times(base, hardware, efficiency, options)
    new_times = batch_step_times(projected, hardware, efficiency, options)
    if np.any(new_times <= 0) or np.any(base_times <= 0):
        raise ValueError("workload has zero estimated step time")
    base_throughput = (
        base.num_cnodes.astype(float) / base_times * base.batch_size
    )
    new_throughput = (
        projected.num_cnodes.astype(float) / new_times * projected.batch_size
    )
    return ProjectionArrays(
        single_cnode_speedup=base_times / new_times,
        throughput_speedup=new_throughput / base_throughput,
    )
