"""Hardware-evolution sweeps (Sec. III-C2, Table III, Fig. 11).

For each resource (Ethernet, PCIe, GPU peak FLOPs, GPU memory bandwidth)
and each candidate value, every workload's step time is re-estimated with
only that resource changed; the figure reports the *average* speedup over
the workload population against the resource value normalized by the
Table I baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import TABLE_III_VARIATIONS, HardwareConfig, HardwareVariations
from .population import FeatureArrays, batch_step_times
from .timemodel import PAPER_MODEL_OPTIONS, ModelOptions

__all__ = ["SweepPoint", "SweepSeries", "sweep_resource", "sweep_all_resources"]


@dataclass(frozen=True)
class SweepPoint:
    """Average speedup at one candidate value of one resource."""

    resource: str
    value: float
    normalized_value: float
    average_speedup: float
    speedups: Tuple[float, ...]


@dataclass(frozen=True)
class SweepSeries:
    """All candidate points for one resource, in ascending value order."""

    resource: str
    points: Tuple[SweepPoint, ...]

    def speedup_at_normalized(self, normalized_value: float) -> float:
        """Average speedup at an exact normalized resource value."""
        for point in self.points:
            if abs(point.normalized_value - normalized_value) < 1e-9:
                return point.average_speedup
        raise KeyError(
            f"no sweep point at normalized value {normalized_value} "
            f"for resource {self.resource!r}"
        )

    @property
    def max_speedup(self) -> float:
        """Best average speedup over the candidate values."""
        return max(point.average_speedup for point in self.points)

    @property
    def sensitivity(self) -> float:
        """Average speedup gained per unit of normalized resource.

        Different resources are swept over different ranges (PCIe up to
        5x, GPU memory up to 4x), so comparing raw ``max_speedup``
        favors the widest sweep; the per-unit slope is the fair
        "which resource matters most" metric for Fig. 11.
        """
        best = 0.0
        for point in self.points:
            span = point.normalized_value - 1.0
            if span > 1e-9:
                best = max(best, (point.average_speedup - 1.0) / span)
        return best


def sweep_resource(
    workloads: Iterable[WorkloadFeatures],
    resource: str,
    candidates: Sequence[float],
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> SweepSeries:
    """Average-speedup series for one resource over its candidates.

    The population is evaluated through the columnar batch path
    (:func:`repro.core.population.batch_step_times`): feature columns
    are extracted once and every candidate costs one vector pass.
    """
    population = FeatureArrays.coerce(workloads)
    if len(population) == 0:
        raise ValueError("workload population is empty")
    base_times = batch_step_times(population, hardware, efficiency, options)
    points = []
    for value in sorted(candidates):
        new_hardware = hardware.with_resource(resource, value)
        new_times = batch_step_times(
            population, new_hardware, efficiency, options
        )
        speedups = base_times / new_times
        points.append(
            SweepPoint(
                resource=resource,
                value=value,
                normalized_value=hardware.normalized_resource(resource, value),
                average_speedup=float(speedups.sum() / len(speedups)),
                speedups=tuple(speedups.tolist()),
            )
        )
    return SweepSeries(resource=resource, points=tuple(points))


def sweep_all_resources(
    workloads: Iterable[WorkloadFeatures],
    hardware: HardwareConfig,
    variations: HardwareVariations = TABLE_III_VARIATIONS,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
) -> Dict[str, SweepSeries]:
    """One :class:`SweepSeries` per Table III resource (a Fig. 11 panel)."""
    population = FeatureArrays.coerce(workloads)
    return {
        resource: sweep_resource(
            population,
            resource,
            variations.candidates(resource),
            hardware,
            efficiency,
            options,
        )
        for resource in variations.resources()
    }
