"""Bottleneck classification: label each job by where its time goes.

The paper's breakdowns implicitly classify jobs (communication-bound
PS/Worker jobs, I/O-bound 1w1g jobs, ...); this module makes the label
explicit and auditable.  A job is *X-bound* when component X holds at
least :data:`DOMINANCE_THRESHOLD` of the step time; otherwise it is
*balanced*.  The census over a population is the cluster-health view a
platform team tracks release over release.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List

from .efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from .features import WorkloadFeatures
from .hardware import HardwareConfig
from .timemodel import PAPER_MODEL_OPTIONS, ModelOptions, estimate_breakdown

__all__ = [
    "Bottleneck",
    "DOMINANCE_THRESHOLD",
    "ClassifiedJob",
    "classify",
    "classify_population",
    "bottleneck_census",
]

#: Minimum share of the step a component needs to earn the job its label.
DOMINANCE_THRESHOLD = 0.5


class Bottleneck(enum.Enum):
    """What dominates a job's training step."""

    COMMUNICATION = "communication-bound"
    COMPUTE = "compute-bound"
    MEMORY = "memory-bound"
    INPUT_IO = "io-bound"
    BALANCED = "balanced"

    def __str__(self) -> str:
        return self.value


_COMPONENT_TO_LABEL = {
    "weight": Bottleneck.COMMUNICATION,
    "compute_bound": Bottleneck.COMPUTE,
    "memory_bound": Bottleneck.MEMORY,
    "data_io": Bottleneck.INPUT_IO,
}


@dataclass(frozen=True)
class ClassifiedJob:
    """A job with its dominant component and label."""

    features: WorkloadFeatures
    label: Bottleneck
    dominant_component: str
    dominant_share: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.dominant_share <= 1.0:
            raise ValueError("dominant_share must be in [0, 1]")


def classify(
    features: WorkloadFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
    threshold: float = DOMINANCE_THRESHOLD,
) -> ClassifiedJob:
    """Label one job by its dominant execution-time component."""
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    fractions = estimate_breakdown(
        features, hardware, efficiency, options
    ).fractions()
    dominant = max(fractions, key=fractions.get)
    share = fractions[dominant]
    label = (
        _COMPONENT_TO_LABEL[dominant] if share >= threshold else Bottleneck.BALANCED
    )
    return ClassifiedJob(
        features=features,
        label=label,
        dominant_component=dominant,
        dominant_share=share,
    )


def classify_population(
    workloads: Iterable[WorkloadFeatures],
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    options: ModelOptions = PAPER_MODEL_OPTIONS,
    threshold: float = DOMINANCE_THRESHOLD,
) -> List[ClassifiedJob]:
    """Classify every job in a population."""
    return [
        classify(features, hardware, efficiency, options, threshold)
        for features in workloads
    ]


def bottleneck_census(
    classified: Iterable[ClassifiedJob], cnode_level: bool = False
) -> Dict[Bottleneck, float]:
    """Population share of each label (optionally cNode-weighted)."""
    jobs = list(classified)
    if not jobs:
        raise ValueError("population is empty")
    weights = [
        float(job.features.num_cnodes) if cnode_level else 1.0 for job in jobs
    ]
    total = sum(weights)
    census = {label: 0.0 for label in Bottleneck}
    for job, weight in zip(jobs, weights):
        census[job.label] += weight
    return {label: value / total for label, value in census.items()}
