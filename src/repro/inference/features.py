"""Inference workload features (the paper's stated future work).

Sec. VIII: "As future work, we seek to characterize inference workloads
in our cluster using a similar methodology."  This package extends the
framework accordingly.  An inference request differs from a training
step in three ways:

* **forward only** -- no backward pass and no weight/gradient traffic;
* **latency-bound** -- the unit of interest is one request (or a small
  dynamic batch), not a throughput-maximizing step;
* **resident weights** -- the model is loaded once; per-request PCIe
  traffic is the input sample and the (usually tiny) output.

The same decomposition applies: ``T = T_in + T_c + T_out`` with
``T_c`` split into compute- and memory-bound parts, so all the Sec. II-B
machinery carries over.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..graphs.graph import ModelGraph

__all__ = ["InferenceFeatures", "inference_features_for"]


@dataclass(frozen=True)
class InferenceFeatures:
    """Per-request (or per-batch) serving requirements of one model.

    Attributes:
        name: Model identifier.
        batch_size: Requests served per forward execution.
        flop_count: Compute-bound FLOPs of one forward execution.
        memory_access_bytes: Memory-bound access of one forward
            execution.
        input_bytes: Host-to-device input volume per execution.
        output_bytes: Device-to-host result volume per execution.
        resident_weight_bytes: Model footprint held in GPU memory
            (no optimizer slots at serving time).
    """

    name: str
    batch_size: int
    flop_count: float
    memory_access_bytes: float
    input_bytes: float
    output_bytes: float
    resident_weight_bytes: float

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        for field in (
            "flop_count",
            "memory_access_bytes",
            "input_bytes",
            "output_bytes",
            "resident_weight_bytes",
        ):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")

    def with_batch_size(self, batch_size: int) -> "InferenceFeatures":
        """Rescale the per-execution quantities to a new batch size."""
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        factor = batch_size / self.batch_size
        return replace(
            self,
            batch_size=batch_size,
            flop_count=self.flop_count * factor,
            memory_access_bytes=self.memory_access_bytes * factor,
            input_bytes=self.input_bytes * factor,
            output_bytes=self.output_bytes * factor,
        )


def inference_features_for(
    graph: ModelGraph,
    batch_size: int = 1,
    output_bytes_per_sample: float = 4096.0,
) -> InferenceFeatures:
    """Derive serving features from a training graph.

    Inference runs the forward op list only; weights are held without
    optimizer slots.  Training graphs are built at their training batch
    size, so the forward quantities are rescaled to ``batch_size``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    scale = batch_size / graph.batch_size
    forward = graph.forward_totals
    return InferenceFeatures(
        name=graph.name,
        batch_size=batch_size,
        flop_count=forward.compute_bound_flops * scale,
        memory_access_bytes=forward.memory_bound_access_bytes * scale,
        input_bytes=graph.input_bytes_per_sample * batch_size,
        output_bytes=output_bytes_per_sample * batch_size,
        resident_weight_bytes=(
            graph.dense_trainable_bytes + graph.embedding_trainable_bytes
        ),
    )
