"""Inference-workload characterization (the paper's stated future work,
Sec. VIII), built with the same Sec. II-B methodology."""

from .features import InferenceFeatures, inference_features_for
from .model import (
    InferenceBreakdown,
    batch_sweep,
    estimate_latency,
    max_batch_within_slo,
    serving_throughput,
)

__all__ = [
    "InferenceBreakdown",
    "InferenceFeatures",
    "batch_sweep",
    "estimate_latency",
    "inference_features_for",
    "max_batch_within_slo",
    "serving_throughput",
]
