"""Analytical serving model: latency, throughput and batching.

Applies the Sec. II-B decomposition to inference requests::

    T_request = S_in / (B_pcie * eff)
              + FLOPs / (peak * eff) + S_mem / (B_mem * eff)
              + S_out / (B_pcie * eff)

and answers the serving questions: per-request latency at a batch size,
saturated throughput, and the largest batch that still meets a latency
SLO (the classic latency/throughput trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.hardware import HardwareConfig
from ..core.units import GB
from .features import InferenceFeatures

__all__ = [
    "InferenceBreakdown",
    "estimate_latency",
    "serving_throughput",
    "max_batch_within_slo",
    "batch_sweep",
]


@dataclass(frozen=True)
class InferenceBreakdown:
    """Latency composition of one forward execution."""

    input_io: float
    compute_flops: float
    compute_memory: float
    output_io: float

    @property
    def total(self) -> float:
        return (
            self.input_io
            + self.compute_flops
            + self.compute_memory
            + self.output_io
        )

    def fractions(self) -> dict:
        total = self.total
        if total == 0:
            return {
                "input_io": 0.0,
                "compute_bound": 0.0,
                "memory_bound": 0.0,
                "output_io": 0.0,
            }
        return {
            "input_io": self.input_io / total,
            "compute_bound": self.compute_flops / total,
            "memory_bound": self.compute_memory / total,
            "output_io": self.output_io / total,
        }

    @property
    def bottleneck(self) -> str:
        fractions = self.fractions()
        return max(fractions, key=fractions.get)


def estimate_latency(
    features: InferenceFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
) -> InferenceBreakdown:
    """Per-execution latency breakdown of a serving workload."""
    if features.resident_weight_bytes > hardware.gpu.memory_capacity:
        raise ValueError(
            f"model ({features.resident_weight_bytes / GB:.1f} GB) does "
            f"not fit the serving GPU "
            f"({hardware.gpu.memory_capacity / GB:.1f} GB)"
        )
    pcie = hardware.pcie.bandwidth * efficiency.pcie
    return InferenceBreakdown(
        input_io=features.input_bytes / pcie,
        compute_flops=features.flop_count
        / (hardware.gpu.peak_flops * efficiency.compute),
        compute_memory=features.memory_access_bytes
        / (hardware.gpu.memory_bandwidth * efficiency.memory),
        output_io=features.output_bytes / pcie,
    )


def serving_throughput(
    features: InferenceFeatures,
    hardware: HardwareConfig,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
) -> float:
    """Saturated requests/second at this batch size."""
    latency = estimate_latency(features, hardware, efficiency).total
    if latency <= 0:
        raise ValueError("workload has zero estimated latency")
    return features.batch_size / latency


def max_batch_within_slo(
    features: InferenceFeatures,
    hardware: HardwareConfig,
    latency_slo: float,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
    max_batch: int = 1 << 14,
) -> Optional[int]:
    """Largest power-of-two batch whose latency stays within the SLO.

    Returns None when even batch 1 misses the SLO.
    """
    if latency_slo <= 0:
        raise ValueError("latency_slo must be positive")
    best = None
    batch = 1
    while batch <= max_batch:
        candidate = features.with_batch_size(batch)
        latency = estimate_latency(candidate, hardware, efficiency).total
        if latency > latency_slo:
            break
        best = batch
        batch *= 2
    return best


def batch_sweep(
    features: InferenceFeatures,
    hardware: HardwareConfig,
    batches: Optional[List[int]] = None,
    efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
) -> List[dict]:
    """Latency/throughput rows across batch sizes (one report table)."""
    if batches is None:
        batches = [1, 2, 4, 8, 16, 32, 64, 128]
    rows = []
    for batch in batches:
        candidate = features.with_batch_size(batch)
        breakdown = estimate_latency(candidate, hardware, efficiency)
        rows.append(
            {
                "batch": batch,
                "latency_s": breakdown.total,
                "throughput_rps": batch / breakdown.total,
                "bottleneck": breakdown.bottleneck,
            }
        )
    return rows
