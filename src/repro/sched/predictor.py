"""Model-predicted job runtimes for the scheduler.

The trace stores no durations, so the scheduler needs a runtime
estimate per job.  Two sources are provided:

* :func:`sample_durations` -- the log-normal draw every production
  cluster study reports, deterministic per ``(seed, job_id)``.  This is
  what the legacy :mod:`repro.sim.multijob` client uses.
* :class:`ModelRuntimePredictor` -- couples the analytical performance
  model (:func:`repro.core.timemodel.estimate_step_time`) with a
  deterministic per-job step *count*: duration = predicted step time
  (a function of the job's workload features and the cluster hardware)
  times the number of training steps.  Two jobs with the same step
  budget but different architectures then get different predicted
  runtimes -- which is what makes shortest-job-first and what-if
  projections (:mod:`repro.sched.whatif`) meaningful.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..core.efficiency import PAPER_DEFAULT_EFFICIENCY, EfficiencyModel
from ..core.features import WorkloadFeatures
from ..core.hardware import HardwareConfig, pai_default_hardware
from ..core.population import FeatureArrays, batch_step_times
from ..core.timemodel import PAPER_MODEL_OPTIONS, ModelOptions, estimate_step_time
from ..trace.schema import JobRecord

__all__ = ["ModelRuntimePredictor", "sample_durations"]

_SECONDS_PER_HOUR = 3600.0


def sample_durations(
    jobs: Iterable[JobRecord],
    median_hours: float = 2.0,
    sigma: float = 1.2,
    seed: int = 7,
) -> Dict[int, float]:
    """Deterministic per-job log-normal runtimes, keyed by job id."""
    if median_hours <= 0:
        raise ValueError("median_hours must be positive")
    durations = {}
    for job in jobs:
        rng = np.random.default_rng((seed, job.job_id))
        durations[job.job_id] = float(
            rng.lognormal(mean=math.log(median_hours), sigma=sigma)
        )
    return durations


class ModelRuntimePredictor:
    """Predict job durations as step time x sampled step count.

    The per-step time comes from the paper's analytical model under the
    given hardware/efficiency assumptions; the step count is drawn
    log-normal per ``(seed, job_id)`` so that re-deploying the *same*
    job under a different architecture (a what-if projection) keeps its
    training-step budget while changing its speed.
    """

    def __init__(
        self,
        hardware: Optional[HardwareConfig] = None,
        efficiency: EfficiencyModel = PAPER_DEFAULT_EFFICIENCY,
        options: ModelOptions = PAPER_MODEL_OPTIONS,
        median_steps: float = 20000.0,
        sigma: float = 1.1,
        seed: int = 7,
        max_hours: Optional[float] = 168.0,
    ) -> None:
        if median_steps <= 0:
            raise ValueError("median_steps must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        if max_hours is not None and max_hours <= 0:
            raise ValueError("max_hours must be positive")
        self.hardware = hardware if hardware is not None else pai_default_hardware()
        self.efficiency = efficiency
        self.options = options
        self.median_steps = median_steps
        self.sigma = sigma
        self.seed = seed
        self.max_hours = max_hours
        self._step_time_cache: Dict[WorkloadFeatures, float] = {}

    def step_time_seconds(self, features: WorkloadFeatures) -> float:
        """Predicted per-step time of one job, in seconds."""
        cached = self._step_time_cache.get(features)
        if cached is None:
            cached = estimate_step_time(
                features, self.hardware, self.efficiency, self.options
            )
            self._step_time_cache[features] = cached
        return cached

    def num_steps(self, job_id: int) -> float:
        """The job's training-step budget (deterministic per job id)."""
        rng = np.random.default_rng((self.seed, job_id))
        return float(rng.lognormal(mean=math.log(self.median_steps), sigma=self.sigma))

    def duration_hours(self, job: JobRecord) -> float:
        """Predicted wall-clock duration of one job, in hours.

        Clamped to ``max_hours`` when set: production clusters bound
        job lifetimes (checkpoints plus kill policies), and the
        log-normal tail would otherwise let one straggler dominate the
        fleet makespan.
        """
        seconds = self.step_time_seconds(job.features) * self.num_steps(job.job_id)
        hours = seconds / _SECONDS_PER_HOUR
        if self.max_hours is not None:
            hours = min(hours, self.max_hours)
        return hours

    def durations(self, jobs: Iterable[JobRecord]) -> Dict[int, float]:
        """Predicted durations for a whole trace, keyed by job id."""
        return {job.job_id: self.duration_hours(job) for job in jobs}

    def batch_duration_hours(self, jobs: Sequence[JobRecord]) -> Dict[int, float]:
        """Predicted durations for one batch, via the vectorized model.

        Step times come from :func:`repro.core.population.batch_step_times`
        over the batch's feature columns -- one array-program evaluation
        instead of one :func:`~repro.core.timemodel.estimate_step_time`
        call per job.  The arithmetic downstream of the step time (step
        count draw, unit conversion, ``max_hours`` clamp) is written
        exactly as in :meth:`duration_hours`, and the vectorized model
        itself is pinned bit-identical to the scalar one, so this
        returns the same floats as the per-job path -- which is what
        lets the day-batched engine use it while staying byte-identical
        to the per-event engine.
        """
        jobs = list(jobs)
        if not jobs:
            return {}
        arrays = FeatureArrays.from_workloads([job.features for job in jobs])
        step_times = batch_step_times(
            arrays, self.hardware, self.efficiency, self.options
        )
        durations: Dict[int, float] = {}
        for index, job in enumerate(jobs):
            seconds = float(step_times[index]) * self.num_steps(job.job_id)
            hours = seconds / _SECONDS_PER_HOUR
            if self.max_hours is not None:
                hours = min(hours, self.max_hours)
            durations[job.job_id] = hours
        return durations
