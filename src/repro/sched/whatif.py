"""Fleet-level what-if studies coupling scheduling with projection.

Section III-C's projection asks how one PS/Worker job would fare as
AllReduce; this module asks the *fleet-wide* question: if the cluster
re-deployed its projectable PS/Worker jobs as AllReduce-Local (smaller
gangs, faster steps), would cluster-wide queueing delay shrink?  The
coupling is:

1. each PS/Worker job whose model fits one GPU and whose projected
   throughput improves is rewritten via
   :func:`repro.core.projection.project_to_allreduce_local`;
2. both the original and the projected trace are scheduled onto
   identical fleets under the same policy, with durations from the
   same :class:`~repro.sched.predictor.ModelRuntimePredictor` -- the
   per-job step *budget* is deterministic per job id, so a projected
   job keeps its training work but runs each step at the projected
   speed on fewer GPUs;
3. the two :class:`~repro.sched.outcomes.ScheduleOutcome` runs are
   compared on queueing delay, JCT and GPU-hours.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple

from ..core.architectures import Architecture
from ..core.hardware import HardwareConfig, pai_default_hardware
from ..core.projection import project_to_allreduce_local, projection_speedups
from ..trace.schema import JobRecord
from .engine import run_schedule
from .fleet import Fleet
from .outcomes import ScheduleOutcome
from .policies import FifoPolicy, Policy
from .predictor import ModelRuntimePredictor

__all__ = ["WhatIfReport", "project_trace", "run_projection_what_if"]


@dataclass(frozen=True)
class WhatIfReport:
    """Fleet outcomes before and after the AllReduce projection."""

    baseline: ScheduleOutcome
    projected: ScheduleOutcome
    considered_jobs: int
    projected_jobs: int

    @property
    def queueing_delay_reduction(self) -> float:
        """Relative drop in mean queueing delay (positive = better)."""
        base = self.baseline.mean_queueing_delay_hours
        if base <= 0:
            return 0.0
        return 1.0 - self.projected.mean_queueing_delay_hours / base

    @property
    def completion_time_reduction(self) -> float:
        """Relative drop in mean job completion time."""
        base = self.baseline.mean_completion_time_hours
        if base <= 0:
            return 0.0
        return 1.0 - self.projected.mean_completion_time_hours / base

    @property
    def gpu_hours_saved(self) -> float:
        """GPU-hours the projected deployment frees up."""
        base = sum(o.gpu_hours for o in self.baseline.outcomes)
        projected = sum(o.gpu_hours for o in self.projected.outcomes)
        return base - projected


def project_trace(
    jobs: Iterable[JobRecord],
    hardware: Optional[HardwareConfig] = None,
) -> Tuple[List[JobRecord], int, int]:
    """Rewrite every profitably projectable PS/Worker job.

    A job is rewritten when its model fits one GPU's memory *and* the
    analytical model predicts a throughput win (Fig. 9's criteria).

    Returns:
        The rewritten trace, the number of PS/Worker jobs considered,
        and the number actually projected.
    """
    if hardware is None:
        hardware = pai_default_hardware()
    rewritten: List[JobRecord] = []
    considered = 0
    projected = 0
    for job in jobs:
        if job.workload_type is not Architecture.PS_WORKER:
            rewritten.append(job)
            continue
        considered += 1
        try:
            features = project_to_allreduce_local(job.features, hardware)
        except ValueError:  # model does not fit one GPU
            rewritten.append(job)
            continue
        result = projection_speedups(
            job.features, Architecture.ALLREDUCE_LOCAL, hardware
        )
        if not result.sped_up:
            rewritten.append(job)
            continue
        rewritten.append(replace(job, features=features))
        projected += 1
    return rewritten, considered, projected


def run_projection_what_if(
    jobs: Iterable[JobRecord],
    num_servers: int,
    gpus_per_server: int = 8,
    policy: Optional[Policy] = None,
    hardware: Optional[HardwareConfig] = None,
    predictor: Optional[ModelRuntimePredictor] = None,
) -> WhatIfReport:
    """Schedule a trace before and after the AllReduce projection."""
    if hardware is None:
        hardware = pai_default_hardware()
    if policy is None:
        policy = FifoPolicy()
    if predictor is None:
        predictor = ModelRuntimePredictor(hardware=hardware)
    trace = list(jobs)
    rewritten, considered, projected = project_trace(trace, hardware)
    baseline = run_schedule(
        trace,
        Fleet(num_servers, gpus_per_server),
        policy,
        predictor=predictor,
    )
    after = run_schedule(
        rewritten,
        Fleet(num_servers, gpus_per_server),
        policy,
        predictor=predictor,
    )
    return WhatIfReport(
        baseline=baseline,
        projected=after,
        considered_jobs=considered,
        projected_jobs=projected,
    )
