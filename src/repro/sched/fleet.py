"""The fleet resource model: 8-GPU servers with shaped placement.

A :class:`Fleet` tracks per-server free-GPU counts for a homogeneous
cluster of multi-GPU servers (PAI's production fleet is built from
8-GPU machines).  Placement is *architecture shaped*, mirroring the
Table II deployment taxonomy:

* local architectures (1w1g, 1wng, AllReduce-Local) are gang-scheduled
  onto **one** server (first-fit over per-server free counts);
* PS/Worker spreads one worker GPU per server, so a wide PS job needs
  at least as many servers as workers;
* packed cluster architectures (AllReduce-Cluster, PEARL) fill servers
  greedily up to their GPU count.

Because local gangs need *contiguous* per-server capacity, a fleet can
hold many free GPUs yet be unable to start a job -- the fragmentation
the telemetry in :mod:`repro.sched.outcomes` tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.architectures import Architecture

__all__ = ["Fleet", "Placement"]


@dataclass(frozen=True)
class Placement:
    """GPUs held by one running job, as per-server counts."""

    gpus_by_server: Tuple[int, ...]

    @property
    def total_gpus(self) -> int:
        """GPUs held across all servers."""
        return sum(self.gpus_by_server)

    @property
    def servers_used(self) -> int:
        """Servers holding at least one of the job's GPUs."""
        return sum(1 for count in self.gpus_by_server if count > 0)


class Fleet:
    """Per-server free-GPU accounting for a homogeneous cluster."""

    def __init__(self, num_servers: int, gpus_per_server: int = 8) -> None:
        if num_servers < 1 or gpus_per_server < 1:
            raise ValueError("cluster dimensions must be positive")
        self.num_servers = num_servers
        self.gpus_per_server = gpus_per_server
        self._free: List[int] = [gpus_per_server] * num_servers

    # ---- capacity accounting -----------------------------------------

    @property
    def total_gpus(self) -> int:
        """GPUs in the fleet."""
        return self.num_servers * self.gpus_per_server

    @property
    def free_gpus(self) -> int:
        """Currently unallocated GPUs."""
        return sum(self._free)

    @property
    def busy_gpus(self) -> int:
        """Currently allocated GPUs."""
        return self.total_gpus - self.free_gpus

    @property
    def free_by_server(self) -> Tuple[int, ...]:
        """Free GPU count per server."""
        return tuple(self._free)

    @property
    def largest_free_block(self) -> int:
        """Largest single-server free block (bounds local gang size)."""
        return max(self._free)

    def utilization(self) -> float:
        """Fraction of GPUs currently allocated."""
        return self.busy_gpus / self.total_gpus

    def fragmentation(self) -> float:
        """How scattered the free capacity is, in [0, 1].

        Zero when every free GPU sits in one server block (a local gang
        as large as the free pool could start); approaches one when the
        free GPUs are spread one per server.  Zero on a fully busy
        fleet, where the notion is vacuous.
        """
        free = self.free_gpus
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def clone(self) -> "Fleet":
        """An independent copy, for trial placements."""
        copy = Fleet(self.num_servers, self.gpus_per_server)
        copy._free = list(self._free)
        return copy

    # ---- placement ---------------------------------------------------

    def _shape(self, architecture: Architecture, num_gpus: int) -> Optional[List[int]]:
        """Per-server counts for a placement, or ``None`` if it does
        not fit right now.  Does not mutate the fleet."""
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        taken = [0] * self.num_servers
        if architecture.is_local:
            for index, free in enumerate(self._free):
                if free >= num_gpus:
                    taken[index] = num_gpus
                    return taken
            return None
        per_server_cap = (
            1 if architecture is Architecture.PS_WORKER else self.gpus_per_server
        )
        remaining = num_gpus
        for index, free in enumerate(self._free):
            if remaining == 0:
                break
            grab = min(free, per_server_cap, remaining)
            taken[index] = grab
            remaining -= grab
        if remaining > 0:
            return None
        return taken

    def fits(self, architecture: Architecture, num_gpus: int) -> bool:
        """Whether the job could be placed on the fleet right now."""
        return self._shape(architecture, num_gpus) is not None

    def can_ever_place(self, architecture: Architecture, num_gpus: int) -> bool:
        """Whether the job fits an *empty* fleet of this geometry."""
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        if architecture.is_local:
            return num_gpus <= self.gpus_per_server
        if architecture is Architecture.PS_WORKER:
            return num_gpus <= self.num_servers
        return num_gpus <= self.total_gpus

    def try_place(
        self, architecture: Architecture, num_gpus: int
    ) -> Optional[Placement]:
        """Allocate GPUs in the architecture's shape, or return ``None``."""
        taken = self._shape(architecture, num_gpus)
        if taken is None:
            return None
        for index, grab in enumerate(taken):
            self._free[index] -= grab
        return Placement(gpus_by_server=tuple(taken))

    def release(self, placement: Placement) -> None:
        """Return a placement's GPUs to the free pool."""
        if len(placement.gpus_by_server) != self.num_servers:
            raise ValueError("placement does not match this fleet's geometry")
        for index, grab in enumerate(placement.gpus_by_server):
            new_free = self._free[index] + grab
            if new_free > self.gpus_per_server:
                raise ValueError("release would exceed server capacity")
            self._free[index] = new_free
