"""The fleet resource model: 8-GPU servers with shaped placement.

A :class:`Fleet` tracks per-server free-GPU counts for a homogeneous
cluster of multi-GPU servers (PAI's production fleet is built from
8-GPU machines).  Placement is *architecture shaped*, mirroring the
Table II deployment taxonomy:

* local architectures (1w1g, 1wng, AllReduce-Local) are gang-scheduled
  onto **one** server (first-fit over per-server free counts);
* PS/Worker spreads one worker GPU per server, so a wide PS job needs
  at least as many servers as workers;
* packed cluster architectures (AllReduce-Cluster, PEARL) fill servers
  greedily up to their GPU count.

Because local gangs need *contiguous* per-server capacity, a fleet can
hold many free GPUs yet be unable to start a job -- the fragmentation
the telemetry in :mod:`repro.sched.outcomes` tracks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.architectures import Architecture

__all__ = ["Fleet", "Placement"]


@dataclass(frozen=True)
class Placement:
    """GPUs held by one running job, as per-server counts."""

    gpus_by_server: Tuple[int, ...]

    @property
    def total_gpus(self) -> int:
        """GPUs held across all servers."""
        return sum(self.gpus_by_server)

    @property
    def servers_used(self) -> int:
        """Servers holding at least one of the job's GPUs."""
        return sum(1 for count in self.gpus_by_server if count > 0)


class Fleet:
    """Per-server free-GPU accounting for a homogeneous cluster.

    Free counts live in one ``int64`` array, so the placement scans --
    first-fit for local gangs, greedy left-to-right fill for cluster
    shapes -- are single NumPy operations rather than per-server Python
    loops.  On the multi-thousand-server fleets the scheduler
    experiments sweep, the scan is the scheduler's hot path.
    """

    def __init__(self, num_servers: int, gpus_per_server: int = 8) -> None:
        if num_servers < 1 or gpus_per_server < 1:
            raise ValueError("cluster dimensions must be positive")
        self.num_servers = num_servers
        self.gpus_per_server = gpus_per_server
        self._free: np.ndarray = np.full(
            num_servers, gpus_per_server, dtype=np.int64
        )

    # ---- capacity accounting -----------------------------------------

    @property
    def total_gpus(self) -> int:
        """GPUs in the fleet."""
        return self.num_servers * self.gpus_per_server

    @property
    def free_gpus(self) -> int:
        """Currently unallocated GPUs."""
        return int(self._free.sum())

    @property
    def busy_gpus(self) -> int:
        """Currently allocated GPUs."""
        return self.total_gpus - self.free_gpus

    @property
    def free_by_server(self) -> Tuple[int, ...]:
        """Free GPU count per server."""
        return tuple(int(free) for free in self._free)

    @property
    def largest_free_block(self) -> int:
        """Largest single-server free block (bounds local gang size)."""
        return int(self._free.max())

    def utilization(self) -> float:
        """Fraction of GPUs currently allocated."""
        return self.busy_gpus / self.total_gpus

    def fragmentation(self) -> float:
        """How scattered the free capacity is, in [0, 1].

        Zero when every free GPU sits in one server block (a local gang
        as large as the free pool could start); approaches one when the
        free GPUs are spread one per server.  Zero on a fully busy
        fleet, where the notion is vacuous.
        """
        free = self.free_gpus
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def clone(self) -> "Fleet":
        """An independent copy, for trial placements."""
        copy = Fleet(self.num_servers, self.gpus_per_server)
        copy._free = self._free.copy()
        return copy

    def feasibility_caps(self) -> Tuple[int, int, int]:
        """The three scalars that decide instantaneous placeability.

        One pass over the free array yields ``(largest_free_block,
        servers_with_any_free, free_gpus)``.  :meth:`fits` reduces
        exactly to these: a local gang fits iff its width is at most
        the largest single-server block, a PS/Worker job (one GPU per
        server) iff enough servers have any free GPU, and a packed
        cluster shape iff the total free pool covers it.  The
        day-batched engine screens a whole queue against these caps
        before invoking a policy, skipping the sort-and-trial-place
        round entirely when nothing can start.
        """
        free = self._free
        return (
            int(free.max()),
            int(np.count_nonzero(free)),
            int(free.sum()),
        )

    # ---- placement ---------------------------------------------------

    def _shape(
        self, architecture: Architecture, num_gpus: int
    ) -> Optional[np.ndarray]:
        """Per-server counts for a placement, or ``None`` if it does
        not fit right now.  Does not mutate the fleet.

        Both shapes reproduce the greedy left-to-right scan exactly:
        first-fit picks the lowest-indexed server with room, and the
        cluster fill takes ``min(free, cap)`` per server until the
        running total (a cumulative sum) reaches the request.
        """
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        if architecture.is_local:
            fits_here = self._free >= num_gpus
            if not fits_here.any():
                return None
            taken = np.zeros(self.num_servers, dtype=np.int64)
            taken[int(fits_here.argmax())] = num_gpus
            return taken
        per_server_cap = (
            1 if architecture is Architecture.PS_WORKER else self.gpus_per_server
        )
        grab_cap = np.minimum(self._free, per_server_cap)
        cumulative = np.cumsum(grab_cap)
        if cumulative[-1] < num_gpus:
            return None
        stop = int(np.searchsorted(cumulative, num_gpus))
        taken = np.zeros(self.num_servers, dtype=np.int64)
        taken[: stop + 1] = grab_cap[: stop + 1]
        taken[stop] -= int(cumulative[stop]) - num_gpus
        return taken

    def fits(self, architecture: Architecture, num_gpus: int) -> bool:
        """Whether the job could be placed on the fleet right now."""
        return self._shape(architecture, num_gpus) is not None

    def can_ever_place(self, architecture: Architecture, num_gpus: int) -> bool:
        """Whether the job fits an *empty* fleet of this geometry."""
        if num_gpus < 1:
            raise ValueError("num_gpus must be positive")
        if architecture.is_local:
            return num_gpus <= self.gpus_per_server
        if architecture is Architecture.PS_WORKER:
            return num_gpus <= self.num_servers
        return num_gpus <= self.total_gpus

    def try_place(
        self, architecture: Architecture, num_gpus: int
    ) -> Optional[Placement]:
        """Allocate GPUs in the architecture's shape, or return ``None``."""
        taken = self._shape(architecture, num_gpus)
        if taken is None:
            return None
        self._free -= taken
        return Placement(gpus_by_server=tuple(int(grab) for grab in taken))

    def release(self, placement: Placement) -> None:
        """Return a placement's GPUs to the free pool."""
        if len(placement.gpus_by_server) != self.num_servers:
            raise ValueError("placement does not match this fleet's geometry")
        released = self._free + np.asarray(
            placement.gpus_by_server, dtype=np.int64
        )
        if bool((released > self.gpus_per_server).any()):
            raise ValueError("release would exceed server capacity")
        self._free = released
