"""Pluggable scheduling policies.

A :class:`Policy` looks at an immutable :class:`SchedulingContext` --
the pending queue, the running set, the fleet state and the predicted
duration of every job -- and returns a :class:`SchedulingDecision`:
which queued jobs to start now (in order) and which running jobs to
evict first.  The engine (:mod:`repro.sched.engine`) applies the
decision and asks again until the policy has nothing more to do, so a
policy never mutates anything itself; trial placements are made on a
``fleet.clone()``.

Four disciplines are provided:

* :class:`FifoPolicy` -- strict arrival order with head-of-line
  blocking (the behavior of the legacy ``repro.sim.multijob``
  scheduler).
* :class:`SjfPolicy` -- shortest predicted job first; the prediction
  comes from the runtime model, so this is where model-predicted step
  times pay off operationally.
* :class:`BackfillPolicy` -- FIFO with EASY-style backfill: when the
  head is blocked, later jobs may jump ahead only if they both fit now
  and are predicted to finish before the head's reservation time.
* :class:`PriorityPolicy` -- highest priority first, optionally
  evicting strictly lower-priority running jobs (checkpoint/restore
  semantics: the victim's remaining work is conserved and it re-queues).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, List, Optional, Tuple

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object

    def runtime_checkable(cls):
        return cls


from ..trace.schema import JobRecord
from .fleet import Fleet, Placement

__all__ = [
    "BackfillPolicy",
    "FifoPolicy",
    "PendingJob",
    "Policy",
    "PriorityPolicy",
    "RunningJob",
    "SchedulingContext",
    "SchedulingDecision",
    "SjfPolicy",
    "default_priority",
]

#: Slack when comparing a backfill candidate's end against the head's
#: reservation, so float noise cannot leak capacity.
_BACKFILL_EPSILON = 1e-9


@dataclass(frozen=True)
class PendingJob:
    """A queued job, as shown to policies."""

    job: JobRecord
    arrival_hour: float
    remaining_hours: float

    @property
    def job_id(self) -> int:
        """The underlying trace job id."""
        return self.job.job_id


@dataclass(frozen=True)
class RunningJob:
    """A running job, as shown to policies."""

    job: JobRecord
    placement: Placement
    start_hour: float
    end_hour: float

    @property
    def job_id(self) -> int:
        """The underlying trace job id."""
        return self.job.job_id


@dataclass(frozen=True)
class SchedulingContext:
    """Everything a policy may look at when deciding."""

    now: float
    fleet: Fleet
    queue: Tuple[PendingJob, ...]
    running: Tuple[RunningJob, ...]

    def fifo_order(self) -> List[PendingJob]:
        """The queue in strict (arrival, job id) order."""
        return sorted(self.queue, key=lambda p: (p.arrival_hour, p.job_id))


@dataclass(frozen=True)
class SchedulingDecision:
    """What the engine should do right now.

    Attributes:
        starts: Queued job ids to place, in order.  The engine places
            them on the live fleet exactly as the policy planned them
            on its trial clone.
        preemptions: Running job ids to evict *before* placing the
            starts.  Victims re-queue with their remaining work.
    """

    starts: Tuple[int, ...] = ()
    preemptions: Tuple[int, ...] = ()

    @property
    def is_empty(self) -> bool:
        """Whether the decision changes nothing."""
        return not self.starts and not self.preemptions


@runtime_checkable
class Policy(Protocol):
    """The pluggable scheduling discipline interface.

    Policies may additionally expose a ``may_preempt`` attribute
    (``False`` = the policy only ever starts queued jobs that fit the
    live fleet).  The engine uses it to skip the policy call outright
    when no queued job can currently be placed; policies without the
    attribute are conservatively treated as preempting.
    """

    name: str

    def select(self, context: SchedulingContext) -> SchedulingDecision:
        """Decide which jobs to start (and evict) at ``context.now``."""
        ...


def _greedy_starts(
    ordered: Iterable[PendingJob], fleet: Fleet
) -> Tuple[List[int], Optional[PendingJob], Fleet]:
    """Place jobs in order on a trial clone until the first failure.

    Returns the started ids, the first blocked job (or ``None``) and
    the trial fleet reflecting the planned starts.
    """
    trial = fleet.clone()
    starts: List[int] = []
    for pending in ordered:
        job = pending.job
        if trial.try_place(job.workload_type, job.num_cnodes) is None:
            return starts, pending, trial
        starts.append(pending.job_id)
    return starts, None, trial


@dataclass(frozen=True)
class FifoPolicy:
    """Strict arrival order; a blocked head blocks everyone behind it."""

    name: str = "fifo"

    #: Never evicts: with no queued job placeable, the greedy prefix is
    #: empty and ``select`` provably returns an empty decision.
    may_preempt: ClassVar[bool] = False

    def select(self, context: SchedulingContext) -> SchedulingDecision:
        """Start the longest placeable prefix of the FIFO queue."""
        starts, _, _ = _greedy_starts(context.fifo_order(), context.fleet)
        return SchedulingDecision(starts=tuple(starts))


@dataclass(frozen=True)
class SjfPolicy:
    """Shortest predicted job first (model-predicted runtimes)."""

    name: str = "sjf"

    may_preempt: ClassVar[bool] = False

    def select(self, context: SchedulingContext) -> SchedulingDecision:
        """Start the shortest placeable prefix of the queue."""
        ordered = sorted(
            context.queue,
            key=lambda p: (p.remaining_hours, p.arrival_hour, p.job_id),
        )
        starts, _, _ = _greedy_starts(ordered, context.fleet)
        return SchedulingDecision(starts=tuple(starts))


@dataclass(frozen=True)
class BackfillPolicy:
    """FIFO with EASY backfill behind a single head reservation."""

    name: str = "backfill"

    #: Backfill candidates also need a successful trial placement, so
    #: an unplaceable queue still yields an empty decision.
    may_preempt: ClassVar[bool] = False

    def _reservation_hour(
        self, context: SchedulingContext, head: PendingJob, trial: Fleet
    ) -> float:
        """Earliest hour the blocked head could start, assuming the
        currently running jobs release in predicted end order."""
        shadow = trial.clone()
        job = head.job
        for running in sorted(
            context.running, key=lambda r: (r.end_hour, r.job_id)
        ):
            shadow.release(running.placement)
            if shadow.fits(job.workload_type, job.num_cnodes):
                return running.end_hour
        # Not placeable even on an empty fleet; nothing can be
        # reserved, so refuse to backfill past it.
        return context.now

    def select(self, context: SchedulingContext) -> SchedulingDecision:
        """FIFO prefix, then backfill jobs that cannot delay the head."""
        ordered = context.fifo_order()
        starts, head, trial = _greedy_starts(ordered, context.fleet)
        if head is None:
            return SchedulingDecision(starts=tuple(starts))
        reservation = self._reservation_hour(context, head, trial)
        horizon = reservation - context.now + _BACKFILL_EPSILON
        blocked_at = ordered.index(head)
        for pending in ordered[blocked_at + 1 :]:
            if pending.remaining_hours > horizon:
                continue
            job = pending.job
            if trial.try_place(job.workload_type, job.num_cnodes) is not None:
                starts.append(pending.job_id)
        return SchedulingDecision(starts=tuple(starts))


def default_priority(job: JobRecord) -> float:
    """Default priority: gang width (big distributed jobs first).

    Wide gangs suffer the most from fragmentation, so giving them
    priority (and letting them preempt) is the classic remedy.
    """
    return float(job.num_cnodes)


@dataclass(frozen=True)
class PriorityPolicy:
    """Highest priority first, optionally preempting lower priority.

    Attributes:
        priority: Maps a job to its priority (higher runs first).
        preempt: Whether a blocked high-priority job may evict strictly
            lower-priority running jobs.
    """

    priority: Callable[[JobRecord], float] = field(default=default_priority)
    preempt: bool = True
    name: str = "priority"

    @property
    def may_preempt(self) -> bool:
        """Eviction can free capacity, so a blocked queue is not final."""
        return self.preempt

    def _victims_for(
        self, pending: PendingJob, context: SchedulingContext, trial: Fleet
    ) -> Optional[List[int]]:
        """Lowest-priority victims whose eviction lets ``pending`` fit,
        or ``None`` if even evicting all of them is not enough."""
        threshold = self.priority(pending.job)
        candidates = sorted(
            (r for r in context.running if self.priority(r.job) < threshold),
            key=lambda r: (self.priority(r.job), -r.start_hour, r.job_id),
        )
        what_if = trial.clone()
        victims: List[int] = []
        job = pending.job
        for running in candidates:
            what_if.release(running.placement)
            victims.append(running.job_id)
            if what_if.fits(job.workload_type, job.num_cnodes):
                return victims
        return None

    def select(self, context: SchedulingContext) -> SchedulingDecision:
        """Start by priority; evict lower priority for a blocked job."""
        ordered = sorted(
            context.queue,
            key=lambda p: (-self.priority(p.job), p.arrival_hour, p.job_id),
        )
        starts, blocked, trial = _greedy_starts(ordered, context.fleet)
        if blocked is None or not self.preempt:
            return SchedulingDecision(starts=tuple(starts))
        victims = self._victims_for(blocked, context, trial)
        if victims is None:
            return SchedulingDecision(starts=tuple(starts))
        # Evict, start the blocked job, and let the engine ask again.
        return SchedulingDecision(
            starts=tuple(starts) + (blocked.job_id,),
            preemptions=tuple(victims),
        )
