"""The discrete-event gang-scheduling engine.

:func:`run_schedule` replays a trace of :class:`~repro.trace.schema.JobRecord`
arrivals (jobs arrive at ``submit_day * 24`` hours) against a
:class:`~repro.sched.fleet.Fleet` under a pluggable
:class:`~repro.sched.policies.Policy`.  The engine owns the mechanics
-- the event clock, placements, preemption bookkeeping and telemetry
sampling -- while the policy owns every ordering decision.

The loop is the textbook one: pop all events at the next timestamp
(completions release GPUs, arrivals join the queue), then repeatedly
ask the policy for a :class:`~repro.sched.policies.SchedulingDecision`
and apply it until the policy has nothing more to do.  Preempted jobs
re-queue with their remaining hours reduced by the time they ran, so
work is conserved; every run of a job is recorded as an
:class:`~repro.sched.outcomes.ExecutionSegment` and the per-job
history rolls up into :class:`~repro.sched.outcomes.JobOutcome`.

Determinism: given the same jobs, durations, fleet geometry and
policy, the engine produces the identical schedule -- every tie is
broken on (hour, sequence number) and policies are required to order
deterministically.

Two replay engines share that loop:

* ``engine="event"`` -- the reference implementation: every arrival is
  a heap event, durations are resolved for the whole trace up front.
* ``engine="day"`` (the default) -- arrivals are admitted one
  *submission day* at a time (:func:`repro.trace.schema.iter_day_groups`).
  A day's batch enqueues in one append pass, its model-predicted
  durations come from the vectorized columnar path
  (:meth:`~repro.sched.predictor.ModelRuntimePredictor.batch_duration_hours`),
  and for non-preempting policies a whole-queue feasibility screen
  against :meth:`~repro.sched.fleet.Fleet.feasibility_caps` skips the
  sort-and-trial-place round when nothing can start.  Each reduction is
  exact -- same floats, same event ordering, same policy calls observed
  -- so the two engines produce **byte-identical**
  :class:`~repro.sched.outcomes.ScheduleOutcome` values (pinned by
  regression tests across all bundled policies, with and without
  injected faults).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.architectures import Architecture
from ..obs import DEBUG, WARNING, get_obs
from ..trace.schema import JobRecord, iter_day_groups
from .faults import SchedFaults
from .fleet import Fleet, Placement
from .outcomes import (
    ExecutionSegment,
    FleetTelemetry,
    JobOutcome,
    ScheduleOutcome,
    TelemetrySample,
)
from .policies import (
    PendingJob,
    Policy,
    RunningJob,
    SchedulingContext,
    SchedulingDecision,
)
from .predictor import ModelRuntimePredictor, sample_durations

__all__ = ["run_schedule"]

_HOURS_PER_DAY = 24.0

#: Safety bound on policy invocations per event timestamp; a correct
#: policy converges in a handful of rounds.
_MAX_DECISION_ROUNDS = 10000


class _JobState:
    """Mutable per-job bookkeeping inside one engine run."""

    __slots__ = (
        "job",
        "arrival_hour",
        "service_hours",
        "remaining_hours",
        "segments",
        "placement",
        "segment_start",
        "incarnation",
        "retries",
    )

    def __init__(self, job: JobRecord, arrival_hour: float, service_hours: float):
        self.job = job
        self.arrival_hour = arrival_hour
        self.service_hours = service_hours
        self.remaining_hours = service_hours
        self.segments: List[ExecutionSegment] = []
        self.placement: Optional[Placement] = None
        self.segment_start = 0.0
        #: Bumped on every (re)start so stale completion events are
        #: recognizable after a preemption.
        self.incarnation = 0
        #: Failure/requeue cycles (injected worker crashes).
        self.retries = 0


def _resolve_durations(
    jobs: List[JobRecord],
    durations: Optional[Dict[int, float]],
    predictor: Optional[ModelRuntimePredictor],
) -> Dict[int, float]:
    if durations is not None:
        return durations
    if predictor is not None:
        return predictor.durations(jobs)
    return sample_durations(jobs)


def _any_fits(queue: List[PendingJob], caps: Tuple[int, int, int]) -> bool:
    """Whether any queued job could be placed, from the feasibility caps.

    Exact per architecture shape (see
    :meth:`~repro.sched.fleet.Fleet.feasibility_caps`): a local gang
    needs one server block at least as wide, PS/Worker needs one
    partially-free server per worker, and packed cluster shapes need
    only the free pool.  When this returns ``False`` every
    ``fleet.fits``/``try_place`` probe a non-preempting policy could
    make would fail, so its decision is provably empty and the engine
    may skip the policy call without changing the schedule.
    """
    largest_block, servers_with_free, free_gpus = caps
    for pending in queue:
        architecture = pending.job.workload_type
        width = pending.job.num_cnodes
        if architecture.is_local:
            if width <= largest_block:
                return True
        elif architecture is Architecture.PS_WORKER:
            if width <= servers_with_free:
                return True
        elif width <= free_gpus:
            return True
    return False


def run_schedule(
    jobs: Iterable[JobRecord],
    fleet: Fleet,
    policy: Policy,
    durations: Optional[Dict[int, float]] = None,
    predictor: Optional[ModelRuntimePredictor] = None,
    on_unplaceable: str = "reject",
    collect_telemetry: bool = True,
    faults: Optional[SchedFaults] = None,
    engine: str = "day",
) -> ScheduleOutcome:
    """Schedule a trace onto a fleet under a policy.

    Args:
        jobs: The trace; arrivals happen at ``submit_day * 24`` hours.
            Accepts :class:`~repro.trace.schema.JobRecord` objects or
            the lazy :class:`~repro.trace.schema.JobView` rows a
            columnar store streams.
        fleet: The cluster.  Mutated during the run; pass a fresh one.
        policy: The scheduling discipline.
        durations: Per-job service hours keyed by job id.  When absent,
            ``predictor`` supplies them; when that is absent too, the
            legacy log-normal :func:`~repro.sched.predictor.sample_durations`
            draw is used.
        predictor: Model-based runtime predictor (see
            :class:`~repro.sched.predictor.ModelRuntimePredictor`).
        on_unplaceable: What to do with a job that can never fit the
            fleet's geometry: ``"reject"`` records it as rejected,
            ``"raise"`` raises ``RuntimeError`` (the legacy
            ``repro.sim.multijob`` contract).  Jobs wider than the whole
            fleet are always rejected.
        collect_telemetry: Sample fleet state at every event timestamp.
        faults: Injected disruptions (worker crashes, preemption
            storms); ``None`` = failure-free replay.
        engine: ``"day"`` (default) admits arrivals one submission day
            at a time with vectorized batch durations and a queue
            feasibility screen; ``"event"`` is the reference per-event
            replay.  Both produce byte-identical outcomes (see the
            module docstring).

    Returns:
        The per-job outcomes, rejects and fleet telemetry.
    """
    if on_unplaceable not in ("reject", "raise"):
        raise ValueError("on_unplaceable must be 'reject' or 'raise'")
    if engine not in ("day", "event"):
        raise ValueError("engine must be 'day' or 'event'")
    if faults is None:
        faults = SchedFaults()
    obs = get_obs()
    day_mode = engine == "day"
    trace = sorted(jobs, key=lambda j: (j.submit_day, j.job_id))
    if day_mode and durations is None and predictor is not None:
        # Model-predicted durations resolve per admitted day through
        # the vectorized columnar path; everything else (explicit dicts,
        # the legacy per-job log-normal draw) resolves up front exactly
        # as in event mode.
        service: Optional[Dict[int, float]] = None
    else:
        service = _resolve_durations(trace, durations, predictor)

    rejected: List[JobRecord] = []
    admitted: List[JobRecord] = []
    #: Admission screen memo: geometry feasibility is a pure function
    #: of (architecture, width), so a million-job trace asks the fleet
    #: once per distinct shape instead of once per job.
    feasible: Dict[Tuple[Architecture, int], bool] = {}
    for job in trace:
        if job.num_cnodes > fleet.total_gpus:
            rejected.append(job)
            continue
        shape = (job.workload_type, job.num_cnodes)
        placeable = feasible.get(shape)
        if placeable is None:
            placeable = fleet.can_ever_place(*shape)
            feasible[shape] = placeable
        if not placeable:
            if on_unplaceable == "raise":
                raise RuntimeError(
                    "scheduler stuck: job cannot be placed on an empty cluster"
                )
            rejected.append(job)
            continue
        admitted.append(job)

    # Event heap: (hour, sequence, kind, key, incarnation); kind 0 =
    # completion, 1 = arrival, so completions at a timestamp release
    # GPUs before that timestamp's scheduling pass.  Injected faults
    # ride the same heap: kind 2 = worker crash (key = index into
    # ``faults.crashes``), kind 3 = storm wave (key = index into
    # ``faults.storms``), ordered after the timestamp's arrivals so a
    # crash can hit a job that just started.
    #
    # Day mode keeps initial arrivals *off* the heap -- each day's batch
    # is admitted directly when the clock reaches its hour -- but
    # reserves their sequence numbers (0..len(admitted)-1) so fault
    # events and every dynamically pushed completion/retry carry the
    # same sequence number in both modes, keeping tie-breaks identical.
    events: List[Tuple[float, int, int, int, int]] = []
    states: Dict[int, _JobState] = {}
    day_groups: List[Tuple[int, List[JobRecord]]] = []
    day_cursor = 0
    sequence = 0
    if day_mode:
        day_groups = list(iter_day_groups(admitted))
        sequence = len(admitted)
    else:
        for job in admitted:
            arrival = job.submit_day * _HOURS_PER_DAY
            events.append((arrival, sequence, 1, job.job_id, 0))
            states[job.job_id] = _JobState(job, arrival, service[job.job_id])
            sequence += 1
    for crash_index, crash in enumerate(faults.crashes):
        events.append((crash.hour, sequence, 2, crash_index, 0))
        sequence += 1
    for storm_index, storm in enumerate(faults.storms):
        for tick in storm.tick_hours():
            events.append((tick, sequence, 3, storm_index, 0))
            sequence += 1
    heapq.heapify(events)

    queue: List[PendingJob] = []
    running: Dict[int, RunningJob] = {}
    finished: List[JobOutcome] = []
    samples: List[TelemetrySample] = []
    active_gpu_hours = 0.0
    previous_hour = events[0][0] if events else 0.0
    if day_groups:
        first_day_hour = day_groups[0][0] * _HOURS_PER_DAY
        previous_hour = (
            first_day_hour if not events else min(previous_hour, first_day_hour)
        )
    #: Skip the policy round entirely when the queue provably cannot
    #: start anything -- exact only for policies that never preempt.
    screen_queue = day_mode and not getattr(policy, "may_preempt", True)
    #: Fault events whose hour has passed but which have not found a
    #: running victim yet (indices into ``faults.crashes`` /
    #: ``faults.storms``).
    pending_crashes: List[int] = []
    pending_storm_ticks: List[int] = []

    def start_job(state: _JobState, placement: Placement, now: float) -> None:
        nonlocal sequence
        state.placement = placement
        state.segment_start = now
        state.incarnation += 1
        end = now + state.remaining_hours
        sequence += 1
        heapq.heappush(
            events, (end, sequence, 0, state.job.job_id, state.incarnation)
        )
        running[state.job.job_id] = RunningJob(
            job=state.job, placement=placement, start_hour=now, end_hour=end
        )
        obs.metrics.counter("sched.starts").inc()

    def preempt_job(state: _JobState, now: float) -> None:
        obs.metrics.counter("sched.preemptions").inc()
        obs.event(
            "sched.preempted",
            level=DEBUG,
            job_id=state.job.job_id,
            hour=now,
            num_cnodes=state.job.num_cnodes,
        )
        state.segments.append(
            ExecutionSegment(
                start_hour=state.segment_start,
                end_hour=now,
                placement=state.placement,
            )
        )
        state.remaining_hours -= now - state.segment_start
        fleet.release(state.placement)
        state.placement = None
        state.incarnation += 1  # invalidate the in-flight completion
        del running[state.job.job_id]
        queue.append(
            PendingJob(
                job=state.job,
                arrival_hour=state.arrival_hour,
                remaining_hours=state.remaining_hours,
            )
        )

    def crash_job(state: _JobState, now: float, backoff_hours: float) -> None:
        """A worker of a running job dies: fail, back off, re-queue.

        Work is conserved (the retry resumes from the crashed segment's
        progress, as checkpoint-restore would); the operational symptom
        is the failure event, the retry counter and the backoff gap --
        not lost service hours.
        """
        nonlocal sequence
        state.segments.append(
            ExecutionSegment(
                start_hour=state.segment_start,
                end_hour=now,
                placement=state.placement,
            )
        )
        state.remaining_hours -= now - state.segment_start
        fleet.release(state.placement)
        state.placement = None
        state.incarnation += 1  # invalidate the in-flight completion
        state.retries += 1
        del running[state.job.job_id]
        obs.metrics.counter("sched.failures").inc()
        obs.event(
            "sched.job_failed",
            level=WARNING,
            job_id=state.job.job_id,
            hour=now,
            retries=state.retries,
            backoff_hours=backoff_hours,
        )
        # The retry is a fresh arrival after the backoff.
        sequence += 1
        heapq.heappush(
            events,
            (now + backoff_hours, sequence, 1, state.job.job_id, 0),
        )

    while events or day_cursor < len(day_groups):
        day_hour = (
            day_groups[day_cursor][0] * _HOURS_PER_DAY
            if day_cursor < len(day_groups)
            else None
        )
        if day_hour is not None and (not events or day_hour <= events[0][0]):
            now = day_hour
        else:
            now = events[0][0]
        # Integrate GPU activity over the idle gap just ended.
        active_gpu_hours += fleet.busy_gpus * (now - previous_hour)
        previous_hour = now
        if day_hour == now and day_hour is not None:
            # Admit the day's arrivals as one batch: durations in one
            # vectorized model evaluation, queue entries in one append
            # pass.  Initial arrivals carry the lowest sequence numbers
            # in event mode, so batch-before-heap matches its ordering
            # exactly; retries and completions pop right after, below.
            _, group = day_groups[day_cursor]
            day_cursor += 1
            day_service = (
                service
                if service is not None
                else predictor.batch_duration_hours(group)
            )
            for job in group:
                state = _JobState(job, now, day_service[job.job_id])
                states[job.job_id] = state
                queue.append(
                    PendingJob(
                        job=job,
                        arrival_hour=now,
                        remaining_hours=state.remaining_hours,
                    )
                )
        while events and events[0][0] == now:
            _, _, kind, job_id, incarnation = heapq.heappop(events)
            if kind == 2:
                # Crashes fire after this timestamp's scheduling pass
                # (below), when jobs started at this instant are
                # visible as running victims.
                pending_crashes.append(job_id)
                continue
            if kind == 3:
                pending_storm_ticks.append(job_id)
                continue
            state = states[job_id]
            if kind == 0:
                if incarnation != state.incarnation or state.placement is None:
                    continue  # stale completion of a preempted run
                state.segments.append(
                    ExecutionSegment(
                        start_hour=state.segment_start,
                        end_hour=now,
                        placement=state.placement,
                    )
                )
                state.remaining_hours = 0.0
                fleet.release(state.placement)
                state.placement = None
                del running[job_id]
                finished.append(
                    JobOutcome(
                        job=state.job,
                        arrival_hour=state.arrival_hour,
                        service_hours=state.service_hours,
                        segments=tuple(state.segments),
                        retries=state.retries,
                    )
                )
                obs.metrics.counter("sched.completions").inc()
            else:
                queue.append(
                    PendingJob(
                        job=state.job,
                        arrival_hour=state.arrival_hour,
                        remaining_hours=state.remaining_hours,
                    )
                )

        if queue and screen_queue and not _any_fits(
            queue, fleet.feasibility_caps()
        ):
            obs.metrics.counter("sched.screened_rounds").inc()
            rounds: range = range(0)  # provably-empty decision: skip
        else:
            rounds = range(_MAX_DECISION_ROUNDS)
        for _ in rounds:
            if not queue:
                break
            context = SchedulingContext(
                now=now,
                fleet=fleet,
                queue=tuple(queue),
                running=tuple(running.values()),
            )
            decision: SchedulingDecision = policy.select(context)
            if decision.is_empty:
                break
            applied = 0
            for job_id in decision.preemptions:
                state = states.get(job_id)
                if state is None or state.placement is None:
                    continue  # policy named a job that is not running
                preempt_job(state, now)
                applied += 1
            pending_by_id = {p.job_id: p for p in queue}
            for job_id in decision.starts:
                pending = pending_by_id.get(job_id)
                if pending is None:
                    continue  # policy named a job that is not queued
                state = states[job_id]
                placement = fleet.try_place(
                    state.job.workload_type, state.job.num_cnodes
                )
                if placement is None:
                    continue  # plan no longer fits the live fleet
                if pending is not queue[0]:
                    # Started past an older waiter: a backfill (or
                    # priority jump) by the policy's own choice.
                    obs.metrics.counter("sched.backfills").inc()
                queue.remove(pending)
                start_job(state, placement, now)
                applied += 1
            if applied == 0:
                break  # non-empty decision that changed nothing

        # Injected faults fire once the timestamp's scheduling settled:
        # storms evict whoever is running now; a crash kills its victim
        # (or waits armed until one exists).  Evicted/failed jobs sit
        # queued until the next event -- their freed GPUs are claimed
        # then, exactly as a monitoring-loop detection lag would.
        if pending_storm_ticks:
            for storm_index in pending_storm_ticks:
                storm = faults.storms[storm_index]
                for victim in sorted(running)[: storm.victims_per_tick]:
                    preempt_job(states[victim], now)
            pending_storm_ticks.clear()
        if pending_crashes:
            still_armed: List[int] = []
            for crash_index in pending_crashes:
                crash = faults.crashes[crash_index]
                victim: Optional[int] = None
                if running:
                    if crash.job_id is not None and crash.job_id in running:
                        victim = crash.job_id
                    else:
                        victim = min(running)
                if victim is None:
                    still_armed.append(crash_index)
                    continue
                crash_job(states[victim], now, crash.backoff_hours)
            pending_crashes[:] = still_armed

        if collect_telemetry:
            samples.append(
                TelemetrySample(
                    hour=now,
                    busy_gpus=fleet.busy_gpus,
                    free_gpus=fleet.free_gpus,
                    running_jobs=len(running),
                    queue_depth=len(queue),
                    fragmentation=fleet.fragmentation(),
                )
            )
            # Mirror the sample into the metric registry so fleet state
            # shows up in the obs summary alongside everything else.
            obs.metrics.gauge("sched.queue_depth").set(len(queue))
            obs.metrics.gauge("sched.busy_gpus").set(fleet.busy_gpus)
            obs.metrics.gauge("sched.fragmentation").set(fleet.fragmentation())
        if (
            not events
            and day_cursor >= len(day_groups)
            and queue
            and not running
        ):
            # Placeable jobs remain, nothing running, no future events:
            # the policy refuses to start them and never will.
            raise RuntimeError(
                "scheduler stuck: policy left placeable jobs queued on an "
                "idle cluster"
            )

    outcomes = sorted(
        finished, key=lambda o: (o.job.submit_day, o.job.job_id)
    )
    telemetry = FleetTelemetry(
        samples=tuple(samples),
        total_gpus=fleet.total_gpus,
        active_gpu_hours=active_gpu_hours,
    )
    if rejected:
        obs.metrics.counter("sched.rejections").inc(len(rejected))
    obs.metrics.gauge("sched.utilization").set(telemetry.average_utilization())
    obs.event(
        "sched.done",
        level=DEBUG,
        policy=getattr(policy, "name", type(policy).__name__),
        jobs=len(trace),
        finished=len(finished),
        rejected=len(rejected),
        utilization=telemetry.average_utilization(),
        active_gpu_hours=active_gpu_hours,
    )
    return ScheduleOutcome(
        policy=getattr(policy, "name", type(policy).__name__),
        outcomes=outcomes,
        total_gpus=fleet.total_gpus,
        rejected=rejected,
        telemetry=telemetry,
    )
