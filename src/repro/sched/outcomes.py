"""Per-job outcomes and fleet telemetry of one scheduling run.

A :class:`JobOutcome` records when one job waited, ran (possibly in
several segments, if preempted) and finished; a
:class:`ScheduleOutcome` aggregates a whole run into the operational
quantities a platform team watches -- queueing delay, job completion
time, slowdown, utilization -- plus a :class:`FleetTelemetry` time
series sampled at every scheduling event: busy GPUs, free-pool
fragmentation, queue depth, and an energy proxy integrated from active
GPU-hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.architectures import Architecture
from ..trace.schema import JobRecord
from .fleet import Placement

__all__ = [
    "ExecutionSegment",
    "FleetTelemetry",
    "JobOutcome",
    "ScheduleOutcome",
    "TelemetrySample",
]

#: Board power of one PAI-era accelerator (V100 SXM2), for the
#: telemetry energy proxy.
DEFAULT_GPU_WATTS = 300.0


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


@dataclass(frozen=True)
class ExecutionSegment:
    """One uninterrupted run of a job on a fixed placement."""

    start_hour: float
    end_hour: float
    placement: Placement

    @property
    def duration_hours(self) -> float:
        """Wall-clock length of the segment."""
        return self.end_hour - self.start_hour

    @property
    def gpu_hours(self) -> float:
        """GPU-hours the segment consumed."""
        return self.duration_hours * self.placement.total_gpus


@dataclass(frozen=True)
class JobOutcome:
    """One scheduled job: arrival, run segments, and derived metrics."""

    job: JobRecord
    arrival_hour: float
    service_hours: float
    segments: Tuple[ExecutionSegment, ...]
    #: Failure/requeue cycles (injected worker crashes); preemption
    #: resumes are counted separately via :attr:`preemptions`.
    retries: int = 0

    @property
    def first_start_hour(self) -> float:
        """When the job first got GPUs."""
        return self.segments[0].start_hour

    @property
    def end_hour(self) -> float:
        """When the job's last segment finished."""
        return self.segments[-1].end_hour

    @property
    def queueing_delay_hours(self) -> float:
        """Hours between submission and first start."""
        return self.first_start_hour - self.arrival_hour

    @property
    def completion_time_hours(self) -> float:
        """Job completion time (JCT): submission to finish."""
        return self.end_hour - self.arrival_hour

    @property
    def slowdown(self) -> float:
        """JCT over pure service time (>= 1 for work-conserving runs)."""
        if self.service_hours <= 0:
            return 1.0
        return self.completion_time_hours / self.service_hours

    @property
    def preemptions(self) -> int:
        """How many times the job was evicted and later resumed.

        Failure/requeue cycles split segments too but are accounted in
        :attr:`retries`, not here.
        """
        return max(0, len(self.segments) - 1 - self.retries)

    @property
    def executed_hours(self) -> float:
        """Wall-clock hours actually spent running (sum of segments)."""
        return sum(segment.duration_hours for segment in self.segments)

    @property
    def gpu_hours(self) -> float:
        """GPU-hours consumed across all segments."""
        return sum(segment.gpu_hours for segment in self.segments)


@dataclass(frozen=True)
class TelemetrySample:
    """Fleet state at one scheduling event."""

    hour: float
    busy_gpus: int
    free_gpus: int
    running_jobs: int
    queue_depth: int
    fragmentation: float


@dataclass(frozen=True)
class FleetTelemetry:
    """Event-sampled fleet time series plus integrated GPU activity."""

    samples: Tuple[TelemetrySample, ...]
    total_gpus: int
    active_gpu_hours: float

    @property
    def peak_queue_depth(self) -> int:
        """Deepest the pending queue ever got."""
        if not self.samples:
            return 0
        return max(sample.queue_depth for sample in self.samples)

    @property
    def peak_fragmentation(self) -> float:
        """Worst free-pool fragmentation observed."""
        if not self.samples:
            return 0.0
        return max(sample.fragmentation for sample in self.samples)

    @property
    def span_hours(self) -> float:
        """Hours between the first and last sample."""
        if len(self.samples) < 2:
            return 0.0
        return self.samples[-1].hour - self.samples[0].hour

    def average_utilization(self) -> float:
        """Time-weighted busy-GPU share over the sampled span."""
        span = self.span_hours
        if span <= 0:
            return 0.0
        return self.active_gpu_hours / (self.total_gpus * span)

    def energy_kwh(self, gpu_watts: float = DEFAULT_GPU_WATTS) -> float:
        """Energy proxy: active GPU-hours times per-GPU board power."""
        if gpu_watts < 0:
            raise ValueError("gpu_watts must be non-negative")
        return self.active_gpu_hours * gpu_watts / 1000.0


@dataclass
class ScheduleOutcome:
    """Everything one scheduling run produced."""

    policy: str
    outcomes: List[JobOutcome]
    total_gpus: int
    rejected: List[JobRecord] = field(default_factory=list)
    telemetry: FleetTelemetry = None

    @property
    def makespan_hours(self) -> float:
        """When the last job finished."""
        if not self.outcomes:
            return 0.0
        return max(outcome.end_hour for outcome in self.outcomes)

    @property
    def mean_queueing_delay_hours(self) -> float:
        """Average hours jobs waited before first start."""
        if not self.outcomes:
            return 0.0
        total = sum(o.queueing_delay_hours for o in self.outcomes)
        return total / len(self.outcomes)

    @property
    def p90_queueing_delay_hours(self) -> float:
        """90th-percentile queueing delay."""
        if not self.outcomes:
            return 0.0
        return _percentile([o.queueing_delay_hours for o in self.outcomes], 0.9)

    @property
    def mean_completion_time_hours(self) -> float:
        """Average job completion time."""
        if not self.outcomes:
            return 0.0
        total = sum(o.completion_time_hours for o in self.outcomes)
        return total / len(self.outcomes)

    @property
    def mean_slowdown(self) -> float:
        """Average JCT / service-time ratio."""
        if not self.outcomes:
            return 0.0
        return sum(o.slowdown for o in self.outcomes) / len(self.outcomes)

    def mean_bounded_slowdown(self, threshold_hours: float = 1.0) -> float:
        """Average bounded slowdown: JCT over max(service, threshold).

        The standard scheduling metric -- raw slowdown explodes for
        seconds-long jobs that wait hours, so service times are floored
        at ``threshold_hours``.
        """
        if threshold_hours <= 0:
            raise ValueError("threshold_hours must be positive")
        if not self.outcomes:
            return 0.0
        total = sum(
            max(
                o.completion_time_hours
                / max(o.service_hours, threshold_hours),
                1.0,
            )
            for o in self.outcomes
        )
        return total / len(self.outcomes)

    @property
    def total_preemptions(self) -> int:
        """Evictions across all jobs."""
        return sum(o.preemptions for o in self.outcomes)

    @property
    def total_retries(self) -> int:
        """Failure/requeue cycles across all jobs."""
        return sum(o.retries for o in self.outcomes)

    def gpu_hours_by_type(self) -> Dict[Architecture, float]:
        """GPU-hours consumed per Table II workload type."""
        by_type: Dict[Architecture, float] = {}
        for outcome in self.outcomes:
            arch = outcome.job.workload_type
            by_type[arch] = by_type.get(arch, 0.0) + outcome.gpu_hours
        return by_type

    def utilization(self) -> float:
        """GPU-hours used over GPU-hours available until the makespan."""
        span = self.makespan_hours
        if span == 0:
            return 0.0
        used = sum(o.gpu_hours for o in self.outcomes)
        return used / (self.total_gpus * span)
