"""Fault-injection hooks for the gang-scheduling engine.

The engine is failure-free by construction; production fleets are not.
:class:`SchedFaults` is the narrow waist between a fault *plan* (owned
by :mod:`repro.faults`, a higher layer) and the engine's event loop:
a frozen set of timed disruptions seeded into the event heap before
the replay starts.

Two fault surfaces map onto the operational behavior GPU-datacenter
studies report as dominant:

* **worker crashes** -- at a given hour one running job's worker dies
  (OOM, hardware fault); the job fails, releases its GPUs, and
  re-queues after a retry backoff, with the retry counted on its
  outcome;
* **preemption storms** -- a burst of evictions (quota enforcement, an
  urgent tenant) that preempts several running jobs per tick over a
  window, regardless of what the policy would have chosen.

Both surfaces emit *symptoms* only (``sched.job_failed`` /
``sched.preempted`` obs events, retry counters); nothing in the
telemetry names the injected cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["CrashSpec", "SchedFaults", "StormSpec"]


@dataclass(frozen=True)
class CrashSpec:
    """One worker death.

    Attributes:
        hour: When the worker dies.  If nothing is running at that
            instant the crash fires at the next event timestamp with a
            running victim (a dead machine kills the next job placed on
            it); it is dropped if the replay ends first.
        job_id: Preferred victim.  ``None`` (or a job that is not
            running at crash time) selects the running job with the
            lowest id, which is deterministic.
        backoff_hours: Retry backoff before the failed job re-queues.
    """

    hour: float
    job_id: Optional[int] = None
    backoff_hours: float = 2.0

    def __post_init__(self) -> None:
        if self.hour < 0:
            raise ValueError("hour must be non-negative")
        if self.backoff_hours <= 0:
            raise ValueError("backoff_hours must be positive")


@dataclass(frozen=True)
class StormSpec:
    """One preemption storm: periodic eviction waves.

    Attributes:
        start_hour: First wave.
        ticks: Number of waves.
        interval_hours: Hours between waves.
        victims_per_tick: Running jobs evicted per wave (lowest ids
            first, deterministically).
    """

    start_hour: float
    ticks: int = 3
    interval_hours: float = 1.0
    victims_per_tick: int = 2

    def __post_init__(self) -> None:
        if self.start_hour < 0:
            raise ValueError("start_hour must be non-negative")
        if self.ticks < 1:
            raise ValueError("ticks must be at least 1")
        if self.interval_hours <= 0:
            raise ValueError("interval_hours must be positive")
        if self.victims_per_tick < 1:
            raise ValueError("victims_per_tick must be at least 1")

    def tick_hours(self) -> Tuple[float, ...]:
        """The timestamps of every wave."""
        return tuple(
            self.start_hour + i * self.interval_hours
            for i in range(self.ticks)
        )


@dataclass(frozen=True)
class SchedFaults:
    """Every disruption injected into one engine run."""

    crashes: Tuple[CrashSpec, ...] = ()
    storms: Tuple[StormSpec, ...] = ()

    @property
    def is_healthy(self) -> bool:
        """Whether this record injects nothing at all."""
        return not self.crashes and not self.storms
