"""Cluster-scale gang scheduling with pluggable policies.

The paper characterizes jobs one at a time; this subsystem adds the
cluster dimension as a first-class simulator.  A calibrated trace of
:class:`~repro.trace.schema.JobRecord` arrivals is replayed against a
:class:`Fleet` of 8-GPU servers by a discrete-event engine
(:func:`run_schedule`) under a pluggable :class:`Policy`:

* :class:`FifoPolicy` -- strict arrival order (the legacy
  ``repro.sim.multijob`` behavior, which now delegates here);
* :class:`SjfPolicy` -- shortest *model-predicted* job first, where
  predictions couple the analytical step-time model with a per-job
  step budget (:class:`ModelRuntimePredictor`);
* :class:`BackfillPolicy` -- EASY backfill behind a head reservation;
* :class:`PriorityPolicy` -- priority order with work-conserving
  preemption.

Placement is architecture shaped (local gangs on one server, PS/Worker
spread one per server, packed cluster architectures fill greedily), so
fragmentation matters and is tracked in the per-event
:class:`FleetTelemetry` alongside utilization, queue depth and an
energy proxy.  :mod:`repro.sched.whatif` closes the loop with
Sec. III-C: it projects the trace's PS/Worker jobs to AllReduce-Local
and measures whether fleet-wide queueing delay shrinks.
"""

from .engine import run_schedule
from .faults import CrashSpec, SchedFaults, StormSpec
from .fleet import Fleet, Placement
from .outcomes import (
    ExecutionSegment,
    FleetTelemetry,
    JobOutcome,
    ScheduleOutcome,
    TelemetrySample,
)
from .policies import (
    BackfillPolicy,
    FifoPolicy,
    PendingJob,
    Policy,
    PriorityPolicy,
    RunningJob,
    SchedulingContext,
    SchedulingDecision,
    SjfPolicy,
    default_priority,
)
from .predictor import ModelRuntimePredictor, sample_durations
from .whatif import WhatIfReport, project_trace, run_projection_what_if

__all__ = [
    "BackfillPolicy",
    "CrashSpec",
    "ExecutionSegment",
    "FifoPolicy",
    "Fleet",
    "FleetTelemetry",
    "JobOutcome",
    "ModelRuntimePredictor",
    "PendingJob",
    "Placement",
    "Policy",
    "PriorityPolicy",
    "RunningJob",
    "SchedFaults",
    "ScheduleOutcome",
    "SchedulingContext",
    "SchedulingDecision",
    "SjfPolicy",
    "StormSpec",
    "TelemetrySample",
    "WhatIfReport",
    "default_priority",
    "project_trace",
    "run_projection_what_if",
    "run_schedule",
    "sample_durations",
]
