"""Trace query helpers: slice a job population the way analyses do.

Small composable predicates over :class:`~repro.trace.schema.JobRecord`
lists -- by workload type, model-size band, cNode band, submission
window and tenant -- so notebooks and experiments stop re-writing the
same comprehensions.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..core.architectures import Architecture
from .schema import JobRecord

__all__ = [
    "TracePredicate",
    "by_type",
    "by_weight_band",
    "by_cnode_band",
    "by_day_window",
    "by_tenant",
    "filter_jobs",
    "split_by",
]

#: A job filter.
TracePredicate = Callable[[JobRecord], bool]


def by_type(*architectures: Architecture) -> TracePredicate:
    """Keep jobs of the given workload types."""
    if not architectures:
        raise ValueError("at least one architecture is required")
    allowed = frozenset(architectures)

    def predicate(job: JobRecord) -> bool:
        return job.workload_type in allowed

    return predicate


def by_weight_band(
    min_bytes: float = 0.0, max_bytes: Optional[float] = None
) -> TracePredicate:
    """Keep jobs whose at-rest model size falls in ``[min, max)``."""
    if min_bytes < 0:
        raise ValueError("min_bytes must be non-negative")
    if max_bytes is not None and max_bytes <= min_bytes:
        raise ValueError("max_bytes must exceed min_bytes")

    def predicate(job: JobRecord) -> bool:
        weight = job.features.weight_bytes
        if weight < min_bytes:
            return False
        return max_bytes is None or weight < max_bytes

    return predicate


def by_cnode_band(
    min_cnodes: int = 1, max_cnodes: Optional[int] = None
) -> TracePredicate:
    """Keep jobs whose cNode count falls in ``[min, max]``."""
    if min_cnodes < 1:
        raise ValueError("min_cnodes must be at least 1")
    if max_cnodes is not None and max_cnodes < min_cnodes:
        raise ValueError("max_cnodes must not precede min_cnodes")

    def predicate(job: JobRecord) -> bool:
        if job.num_cnodes < min_cnodes:
            return False
        return max_cnodes is None or job.num_cnodes <= max_cnodes

    return predicate


def by_day_window(first_day: int, last_day: int) -> TracePredicate:
    """Keep jobs submitted within ``[first_day, last_day]`` inclusive."""
    if first_day < 0 or last_day < first_day:
        raise ValueError("need 0 <= first_day <= last_day")

    def predicate(job: JobRecord) -> bool:
        return first_day <= job.submit_day <= last_day

    return predicate


def by_tenant(*groups: str) -> TracePredicate:
    """Keep jobs from the given tenant groups."""
    if not groups:
        raise ValueError("at least one group is required")
    allowed = frozenset(groups)

    def predicate(job: JobRecord) -> bool:
        return job.user_group in allowed

    return predicate


def filter_jobs(
    jobs: Iterable[JobRecord], *predicates: TracePredicate
) -> List[JobRecord]:
    """Jobs satisfying every predicate (AND-composition)."""
    return [
        job for job in jobs if all(predicate(job) for predicate in predicates)
    ]


def split_by(
    jobs: Iterable[JobRecord], predicate: TracePredicate
) -> tuple:
    """Partition into ``(matching, rest)``."""
    matching: List[JobRecord] = []
    rest: List[JobRecord] = []
    for job in jobs:
        (matching if predicate(job) else rest).append(job)
    return matching, rest
