"""Trace persistence: JSONL export/import of job records.

A characterization library needs to consume traces it did not generate;
this module defines the on-disk format (one JSON object per job, schema
version tagged) and a loader that validates against the feature schema.
It round-trips the synthetic trace exactly and accepts hand-written or
externally produced traces with the same fields.

Because the format is line-oriented it also streams: :func:`iter_trace`
yields validated records one line at a time without materializing the
trace (the ``repro.serve`` replayer feeds from it), and
:func:`append_trace` extends an existing file in place, so a trace can
grow batch by batch the same way a live cluster log does.

Durability: :func:`save_trace` writes through a temporary sibling and
atomically renames it into place, so a crash mid-write can never leave
a truncated file under the target name; :func:`append_trace` flushes
and fsyncs before returning, so acknowledged batches survive a crash.
The only window left is a crash *inside* an append, which can tear the
final line -- :func:`iter_trace` can skip exactly that case with
``tolerate_torn_tail=True``.

For populations beyond a few hundred thousand jobs, prefer the
columnar sibling format (:mod:`repro.trace.columnar`), which loads via
memory mapping instead of line-at-a-time JSON parsing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from ..core.architectures import Architecture
from ..core.features import WorkloadFeatures
from ..obs import WARNING, get_obs
from .schema import JobRecord

__all__ = [
    "SCHEMA_VERSION",
    "job_to_dict",
    "job_from_dict",
    "save_trace",
    "load_trace",
    "iter_trace",
    "append_trace",
]

SCHEMA_VERSION = 1

_FEATURE_FIELDS = (
    "name",
    "num_cnodes",
    "batch_size",
    "flop_count",
    "memory_access_bytes",
    "input_bytes",
    "weight_traffic_bytes",
    "dense_weight_bytes",
    "embedding_weight_bytes",
    "embedding_traffic_bytes",
)


def job_to_dict(job: JobRecord) -> dict:
    """Serialize one job record to a plain dict."""
    features = job.features
    payload = {field: getattr(features, field) for field in _FEATURE_FIELDS}
    payload["architecture"] = features.architecture.value
    return {
        "schema_version": SCHEMA_VERSION,
        "job_id": job.job_id,
        "submit_day": job.submit_day,
        "user_group": job.user_group,
        "features": payload,
    }


def job_from_dict(payload: dict) -> JobRecord:
    """Deserialize one job record; validates through the schema types."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version: {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    raw = dict(payload["features"])
    architecture = Architecture.from_label(raw.pop("architecture"))
    features = WorkloadFeatures(architecture=architecture, **raw)
    return JobRecord(
        job_id=int(payload["job_id"]),
        features=features,
        submit_day=int(payload.get("submit_day", 0)),
        user_group=str(payload.get("user_group", "default")),
    )


def save_trace(jobs: Iterable[JobRecord], path: Union[str, Path]) -> int:
    """Write a trace as JSON lines; returns the job count.

    The write is atomic with respect to the target name: records go to
    a ``.tmp`` sibling which is fsynced and renamed over ``path`` only
    once every record is on disk.  A crash (or an exception raised by
    the ``jobs`` iterable) mid-write leaves any pre-existing trace at
    ``path`` untouched instead of a truncated, half-valid file.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    count = 0
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            for job in jobs:
                handle.write(json.dumps(job_to_dict(job), sort_keys=True))
                handle.write("\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return count


def append_trace(jobs: Iterable[JobRecord], path: Union[str, Path]) -> int:
    """Append records to a (possibly new) JSONL trace; returns the count.

    Appending is how a streamed trace grows on disk: batches written by
    successive calls read back, via :func:`iter_trace` or
    :func:`load_trace`, exactly as if :func:`save_trace` had written
    them all at once.  The handle is flushed and fsynced before the
    count is returned, so an acknowledged batch survives a crash; a
    crash *during* the append can tear at most the final line, which
    :func:`iter_trace` recovers from with ``tolerate_torn_tail=True``.
    """
    count = 0
    with Path(path).open("a", encoding="utf-8") as handle:
        for job in jobs:
            handle.write(json.dumps(job_to_dict(job), sort_keys=True))
            handle.write("\n")
            count += 1
        handle.flush()
        os.fsync(handle.fileno())
    return count


def iter_trace(
    path: Union[str, Path], tolerate_torn_tail: bool = False
) -> Iterator[JobRecord]:
    """Yield validated records from a JSONL trace, one line at a time.

    The streaming counterpart of :func:`load_trace`: memory use is one
    line regardless of trace size, so a replayer can feed a multi-GB
    trace without materializing it.  Malformed lines raise ``ValueError``
    tagged with the offending line number, exactly like the batch loader.

    With ``tolerate_torn_tail=True`` a malformed *final* line -- the
    signature of a writer killed mid-:func:`append_trace` (no trailing
    newline, truncated JSON) -- is skipped with an ``obs`` warning
    instead of poisoning the whole trace.  Corruption anywhere before
    the final line still raises: a torn tail is an expected crash
    artifact, a torn middle is not.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        pending_error: Optional[Exception] = None
        pending_line: int = 0
        for line_number, line in enumerate(handle, start=1):
            if pending_error is not None:
                # The malformed line was not the last one: real
                # mid-file corruption, never a torn tail.
                raise pending_error
            stripped = line.strip()
            if not stripped:
                continue
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as error:
                decorated = ValueError(
                    f"{path}:{line_number}: invalid JSON: {error}"
                )
                decorated.__cause__ = error
                if tolerate_torn_tail:
                    pending_error = decorated
                    pending_line = line_number
                    continue
                raise decorated
            try:
                record = job_from_dict(payload)
            except (KeyError, TypeError, ValueError) as error:
                # An undecodable *record* is valid JSON that fails the
                # schema -- a writer bug, not a torn write; a torn tail
                # can only produce truncated (invalid) JSON.
                raise ValueError(
                    f"{path}:{line_number}: invalid job record: {error}"
                ) from error
            yield record
        if pending_error is not None:
            get_obs().event(
                "trace.torn_tail",
                level=WARNING,
                path=str(path),
                line=pending_line,
                detail=str(pending_error),
            )


def load_trace(
    path: Union[str, Path], tolerate_torn_tail: bool = False
) -> List[JobRecord]:
    """Read a JSONL trace, validating every record."""
    return list(iter_trace(path, tolerate_torn_tail=tolerate_torn_tail))
