"""Trace persistence: JSONL export/import of job records.

A characterization library needs to consume traces it did not generate;
this module defines the on-disk format (one JSON object per job, schema
version tagged) and a loader that validates against the feature schema.
It round-trips the synthetic trace exactly and accepts hand-written or
externally produced traces with the same fields.

Because the format is line-oriented it also streams: :func:`iter_trace`
yields validated records one line at a time without materializing the
trace (the ``repro.serve`` replayer feeds from it), and
:func:`append_trace` extends an existing file in place, so a trace can
grow batch by batch the same way a live cluster log does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from ..core.architectures import Architecture
from ..core.features import WorkloadFeatures
from .schema import JobRecord

__all__ = [
    "SCHEMA_VERSION",
    "job_to_dict",
    "job_from_dict",
    "save_trace",
    "load_trace",
    "iter_trace",
    "append_trace",
]

SCHEMA_VERSION = 1

_FEATURE_FIELDS = (
    "name",
    "num_cnodes",
    "batch_size",
    "flop_count",
    "memory_access_bytes",
    "input_bytes",
    "weight_traffic_bytes",
    "dense_weight_bytes",
    "embedding_weight_bytes",
    "embedding_traffic_bytes",
)


def job_to_dict(job: JobRecord) -> dict:
    """Serialize one job record to a plain dict."""
    features = job.features
    payload = {field: getattr(features, field) for field in _FEATURE_FIELDS}
    payload["architecture"] = features.architecture.value
    return {
        "schema_version": SCHEMA_VERSION,
        "job_id": job.job_id,
        "submit_day": job.submit_day,
        "user_group": job.user_group,
        "features": payload,
    }


def job_from_dict(payload: dict) -> JobRecord:
    """Deserialize one job record; validates through the schema types."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version: {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    raw = dict(payload["features"])
    architecture = Architecture.from_label(raw.pop("architecture"))
    features = WorkloadFeatures(architecture=architecture, **raw)
    return JobRecord(
        job_id=int(payload["job_id"]),
        features=features,
        submit_day=int(payload.get("submit_day", 0)),
        user_group=str(payload.get("user_group", "default")),
    )


def _write_jobs(
    jobs: Iterable[JobRecord], path: Path, mode: str
) -> int:
    count = 0
    with path.open(mode, encoding="utf-8") as handle:
        for job in jobs:
            handle.write(json.dumps(job_to_dict(job), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def save_trace(jobs: Iterable[JobRecord], path: Union[str, Path]) -> int:
    """Write a trace as JSON lines; returns the job count."""
    return _write_jobs(jobs, Path(path), "w")


def append_trace(jobs: Iterable[JobRecord], path: Union[str, Path]) -> int:
    """Append records to a (possibly new) JSONL trace; returns the count.

    Appending is how a streamed trace grows on disk: batches written by
    successive calls read back, via :func:`iter_trace` or
    :func:`load_trace`, exactly as if :func:`save_trace` had written
    them all at once.
    """
    return _write_jobs(jobs, Path(path), "a")


def iter_trace(path: Union[str, Path]) -> Iterator[JobRecord]:
    """Yield validated records from a JSONL trace, one line at a time.

    The streaming counterpart of :func:`load_trace`: memory use is one
    line regardless of trace size, so a replayer can feed a multi-GB
    trace without materializing it.  Malformed lines raise ``ValueError``
    tagged with the offending line number, exactly like the batch loader.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {error}"
                ) from error
            try:
                yield job_from_dict(payload)
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid job record: {error}"
                ) from error


def load_trace(path: Union[str, Path]) -> List[JobRecord]:
    """Read a JSONL trace, validating every record."""
    return list(iter_trace(path))
