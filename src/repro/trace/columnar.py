"""Sharded columnar trace store: million-job traces without Python loops.

The JSONL format (:mod:`repro.trace.serialization`) parses one JSON
object per job, which caps practical populations around the tens of
thousands.  This module stores the same records as *columns*: a store
is a directory of ``.npz`` shards (one NumPy array per feature column)
plus a ``manifest.json`` carrying the schema version, per-shard row
counts and per-shard SHA-256 content digests.  The two formats convert
losslessly in both directions.

Layout::

    trace.columnar/
        manifest.json        <- commit point, written last
        shard-00000.npz
        shard-00001.npz
        ...

Numeric columns load via ``np.memmap`` straight out of the shard files
(``np.savez`` stores members uncompressed, so each ``.npy`` member sits
at a fixed offset inside the zip); the OS pages data in on demand, so
opening a million-job store costs milliseconds and reads only the
columns an analysis touches.  When mapping is not possible (compressed
members, object dtypes) the loader falls back to an eager read.

Strings are dictionary-encoded: ``architecture`` and ``user_group``
hold integer codes into label tables kept in the manifest, and ``name``
is a fixed-width bytes column.  The integer architecture codes are what
:meth:`repro.core.population.FeatureArrays.from_columnar` consumes to
build the vectorized analysis population without materializing a single
``JobRecord``.

Durability mirrors the JSONL path: every shard is written to a ``.tmp``
sibling, fsynced and renamed, and the manifest -- the only file that
makes shards reachable -- is written the same way *last*, so a crash
mid-conversion can never leave a store that opens but lies.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.lib import format as npy_format

from ..core.architectures import Architecture
from ..core.features import WorkloadFeatures
from ..core.population import FeatureArrays
from ..obs import get_obs
from .schema import JobRecord, JobView
from .serialization import SCHEMA_VERSION, iter_trace, save_trace

__all__ = [
    "COLUMNAR_FORMAT",
    "COLUMNAR_VERSION",
    "DEFAULT_SHARD_ROWS",
    "MANIFEST_NAME",
    "INT_COLUMNS",
    "FLOAT_COLUMNS",
    "ColumnarTrace",
    "ShardInfo",
    "write_columnar",
    "jsonl_to_columnar",
    "columnar_to_jsonl",
    "is_columnar_store",
]

#: Manifest ``format`` marker; also what :func:`is_columnar_store` sniffs.
COLUMNAR_FORMAT = "pai-repro-columnar"

#: Version of the columnar layout itself (manifest keys, encodings).
#: Version 2 terminates every encoded name with a ``0x01`` sentinel
#: byte: NumPy's fixed-width ``S`` dtype strips *trailing NUL bytes* on
#: element access, so version-1 stores silently corrupted any job name
#: whose UTF-8 encoding ended in ``\x00``.  The sentinel is never
#: NUL, so nothing after the real name bytes can be stripped.
COLUMNAR_VERSION = 2

#: Rows per shard.  Large enough that a 1M-job store is a handful of
#: files, small enough that converting bounds its buffering memory.
DEFAULT_SHARD_ROWS = 262_144

MANIFEST_NAME = "manifest.json"

#: Integer feature columns, in manifest order.  ``user_group`` and
#: ``architecture`` are dictionary codes into the manifest label tables.
INT_COLUMNS: Tuple[str, ...] = (
    "job_id",
    "submit_day",
    "user_group",
    "architecture",
    "num_cnodes",
    "batch_size",
)

#: Float feature columns (all byte/FLOP volumes of the Fig. 4 schema).
FLOAT_COLUMNS: Tuple[str, ...] = (
    "flop_count",
    "memory_access_bytes",
    "input_bytes",
    "weight_traffic_bytes",
    "dense_weight_bytes",
    "embedding_weight_bytes",
    "embedding_traffic_bytes",
)

#: The fixed-width bytes column (UTF-8 job names).
NAME_COLUMN = "name"

_ALL_COLUMNS: Tuple[str, ...] = INT_COLUMNS + FLOAT_COLUMNS + (NAME_COLUMN,)

#: Architecture labels in enum order; the store's code space.
_ARCH_LABELS: Tuple[str, ...] = tuple(arch.value for arch in Architecture)

# Zip local-file-header layout (PKZIP appnote 4.3.7): signature,
# then the name/extra lengths at byte offsets 26 and 28.
_ZIP_LOCAL_HEADER_SIGNATURE = 0x04034B50
_ZIP_LOCAL_HEADER_SIZE = 30
_ZIP_NAME_EXTRA_STRUCT = struct.Struct("<HH")


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` through a fsynced ``.tmp`` sibling."""
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


class _MmapUnavailable(Exception):
    """Shard member cannot be memory-mapped; fall back to eager load."""


def _mapped_members(path: Path) -> Dict[str, np.ndarray]:
    """Memory-map every ``.npy`` member of an uncompressed ``.npz``.

    ``np.savez`` writes members with ``ZIP_STORED`` (no compression), so
    each member's array data lives at a computable byte offset inside
    the zip: local file header, then the npy header, then the raw
    buffer.  ``np.load(mmap_mode=...)`` does not map into zips, so this
    does the offset arithmetic itself and hands each member to
    ``np.memmap``.
    """
    arrays: Dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, path.open("rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise _MmapUnavailable(f"{info.filename} is compressed")
            raw.seek(info.header_offset)
            header = raw.read(_ZIP_LOCAL_HEADER_SIZE)
            if (
                len(header) < _ZIP_LOCAL_HEADER_SIZE
                or struct.unpack("<I", header[:4])[0]
                != _ZIP_LOCAL_HEADER_SIGNATURE
            ):
                raise _MmapUnavailable(f"{info.filename}: bad local header")
            name_len, extra_len = _ZIP_NAME_EXTRA_STRUCT.unpack(header[26:30])
            member_start = (
                info.header_offset
                + _ZIP_LOCAL_HEADER_SIZE
                + name_len
                + extra_len
            )
            raw.seek(member_start)
            version = npy_format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = npy_format.read_array_header_1_0(raw)
            elif version == (2, 0):
                shape, fortran, dtype = npy_format.read_array_header_2_0(raw)
            else:
                raise _MmapUnavailable(
                    f"{info.filename}: unsupported npy version {version}"
                )
            if dtype.hasobject:
                raise _MmapUnavailable(f"{info.filename}: object dtype")
            column = info.filename
            if column.endswith(".npy"):
                column = column[: -len(".npy")]
            arrays[column] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=raw.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return arrays


def _eager_members(path: Path) -> Dict[str, np.ndarray]:
    with np.load(path) as data:
        return {name: data[name] for name in data.files}


def _load_shard(path: Path, mmap: bool) -> Dict[str, np.ndarray]:
    if mmap:
        try:
            return _mapped_members(path)
        except _MmapUnavailable as reason:
            get_obs().event(
                "trace.columnar.mmap_fallback",
                path=str(path),
                reason=str(reason),
            )
    return _eager_members(path)


@dataclass(frozen=True)
class ShardInfo:
    """One shard as recorded by the manifest."""

    file: str
    rows: int
    sha256: str


class _ShardWriter:
    """Accumulates records column-wise and flushes fixed-size shards."""

    def __init__(self, directory: Path, shard_rows: int) -> None:
        if shard_rows < 1:
            raise ValueError("shard_rows must be at least 1")
        self._directory = directory
        self._shard_rows = shard_rows
        self._group_codes: Dict[str, int] = {}
        self.user_groups: List[str] = []
        self.shards: List[ShardInfo] = []
        self._reset_buffers()

    def _reset_buffers(self) -> None:
        self._ints: Dict[str, List[int]] = {name: [] for name in INT_COLUMNS}
        self._floats: Dict[str, List[float]] = {
            name: [] for name in FLOAT_COLUMNS
        }
        self._names: List[bytes] = []

    def _group_code(self, label: str) -> int:
        code = self._group_codes.get(label)
        if code is None:
            code = len(self.user_groups)
            self._group_codes[label] = code
            self.user_groups.append(label)
        return code

    def add(self, job: JobRecord) -> None:
        features = job.features
        ints = self._ints
        ints["job_id"].append(job.job_id)
        ints["submit_day"].append(job.submit_day)
        ints["user_group"].append(self._group_code(job.user_group))
        ints["architecture"].append(
            _ARCH_LABELS.index(features.architecture.value)
        )
        ints["num_cnodes"].append(features.num_cnodes)
        ints["batch_size"].append(features.batch_size)
        floats = self._floats
        for column in FLOAT_COLUMNS:
            floats[column].append(float(getattr(features, column)))
        # Sentinel-terminated (see COLUMNAR_VERSION): guards trailing
        # NUL bytes against the S-dtype's trailing-NUL stripping.
        self._names.append(features.name.encode("utf-8") + b"\x01")
        if len(self._names) >= self._shard_rows:
            self.flush()

    def flush(self) -> None:
        rows = len(self._names)
        if rows == 0:
            return
        columns: Dict[str, np.ndarray] = {}
        for name, values in self._ints.items():
            columns[name] = np.asarray(values, dtype=np.int64)
        for name, values in self._floats.items():
            columns[name] = np.asarray(values, dtype=np.float64)
        width = max(max((len(n) for n in self._names), default=0), 1)
        columns[NAME_COLUMN] = np.asarray(
            self._names, dtype=np.dtype(f"S{width}")
        )
        filename = f"shard-{len(self.shards):05d}.npz"
        path = self._directory / filename
        tmp = path.with_name(path.name + ".tmp")
        try:
            with tmp.open("wb") as handle:
                np.savez(handle, **columns)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.shards.append(
            ShardInfo(file=filename, rows=rows, sha256=_sha256_file(path))
        )
        self._reset_buffers()


def write_columnar(
    jobs: Iterable[JobRecord],
    path: Union[str, Path],
    shard_rows: int = DEFAULT_SHARD_ROWS,
) -> int:
    """Write a trace as a columnar store directory; returns the job count.

    Streams ``jobs`` into ``shard_rows``-sized ``.npz`` shards, then
    commits the store by writing ``manifest.json`` (schema version,
    label tables, per-shard row counts and SHA-256 digests).  Shards
    and manifest each go through a fsynced ``.tmp`` rename, and because
    the manifest is written last, an interrupted write leaves either
    the previous manifest or none -- never a store describing shards
    that were not fully written.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    writer = _ShardWriter(directory, shard_rows)
    count = 0
    for job in jobs:
        writer.add(job)
        count += 1
    writer.flush()
    manifest = {
        "format": COLUMNAR_FORMAT,
        "columnar_version": COLUMNAR_VERSION,
        "schema_version": SCHEMA_VERSION,
        "jobs": count,
        "columns": list(_ALL_COLUMNS),
        "architectures": list(_ARCH_LABELS),
        "user_groups": writer.user_groups,
        "shards": [
            {"file": s.file, "rows": s.rows, "sha256": s.sha256}
            for s in writer.shards
        ],
    }
    payload = json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    _atomic_write_bytes(directory / MANIFEST_NAME, payload.encode("utf-8"))
    get_obs().event(
        "trace.columnar.write",
        path=str(directory),
        jobs=count,
        shards=len(writer.shards),
    )
    return count


def is_columnar_store(path: Union[str, Path]) -> bool:
    """Whether ``path`` is a committed columnar store directory."""
    manifest = Path(path) / MANIFEST_NAME
    if not manifest.is_file():
        return False
    try:
        payload = json.loads(manifest.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return False
    return isinstance(payload, dict) and payload.get("format") == COLUMNAR_FORMAT


class ColumnarTrace:
    """A committed columnar store, opened for reading.

    Columns come back as NumPy arrays memory-mapped straight out of the
    shard files (single-shard stores are zero-copy; multi-shard stores
    concatenate per column on first touch).  :meth:`feature_arrays`
    yields the vectorized analysis population without building a single
    per-job object, and :meth:`iter_records` decodes back to
    :class:`JobRecord` streams for lossless JSONL conversion.
    """

    def __init__(
        self,
        path: Path,
        manifest: dict,
        shards: Sequence[ShardInfo],
        mmap: bool,
    ) -> None:
        self._path = path
        self._manifest = manifest
        self._shards = tuple(shards)
        self._mmap = mmap
        self._columns: Dict[str, np.ndarray] = {}
        self.user_groups: Tuple[str, ...] = tuple(manifest["user_groups"])
        self.architectures: Tuple[Architecture, ...] = tuple(
            Architecture.from_label(label)
            for label in manifest["architectures"]
        )

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        mmap: bool = True,
        verify: bool = False,
    ) -> "ColumnarTrace":
        """Open a store directory; optionally re-hash shards first.

        ``verify=True`` recomputes every shard's SHA-256 and raises
        ``ValueError`` on any mismatch with the manifest, catching
        silent corruption before it becomes wrong statistics.
        """
        directory = Path(path)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.is_file():
            raise FileNotFoundError(
                f"not a columnar store (no {MANIFEST_NAME}): {directory}"
            )
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") != COLUMNAR_FORMAT:
            raise ValueError(
                f"{manifest_path}: unrecognized format marker "
                f"{manifest.get('format')!r}"
            )
        if manifest.get("columnar_version") != COLUMNAR_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported columnar version "
                f"{manifest.get('columnar_version')!r} "
                f"(expected {COLUMNAR_VERSION}); re-convert the trace "
                "from JSONL (older stores can silently corrupt job "
                "names ending in NUL bytes)"
            )
        if manifest.get("schema_version") != SCHEMA_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported trace schema version "
                f"{manifest.get('schema_version')!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        shards = tuple(
            ShardInfo(
                file=entry["file"],
                rows=int(entry["rows"]),
                sha256=entry["sha256"],
            )
            for entry in manifest["shards"]
        )
        store = cls(directory, manifest, shards, mmap)
        if verify:
            store.verify()
        return store

    # ---- identity ----------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_jobs(self) -> int:
        return int(self._manifest["jobs"])

    def __len__(self) -> int:
        return self.num_jobs

    @property
    def shards(self) -> Tuple[ShardInfo, ...]:
        return self._shards

    def digest(self) -> str:
        """A single content digest of the whole store.

        Hashes the manifest-recorded shard digests (plus schema and
        label tables), so it identifies the trace *contents* regardless
        of where the directory lives.  Result caches key on it.
        """
        digest = hashlib.sha256()
        digest.update(
            json.dumps(
                {
                    "schema_version": self._manifest["schema_version"],
                    "architectures": list(self._manifest["architectures"]),
                    "user_groups": list(self._manifest["user_groups"]),
                    "shards": [s.sha256 for s in self._shards],
                },
                sort_keys=True,
            ).encode("utf-8")
        )
        return digest.hexdigest()

    def verify(self) -> None:
        """Re-hash every shard against the manifest digests."""
        for shard in self._shards:
            actual = _sha256_file(self._path / shard.file)
            if actual != shard.sha256:
                raise ValueError(
                    f"{self._path / shard.file}: content digest mismatch "
                    f"(manifest {shard.sha256}, actual {actual})"
                )

    # ---- column access -------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """One column over the whole store (cached after first touch)."""
        if name not in _ALL_COLUMNS:
            raise KeyError(f"unknown column: {name!r}")
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        parts = [
            _load_shard(self._path / shard.file, self._mmap)[name]
            for shard in self._shards
        ]
        for shard, part in zip(self._shards, parts):
            if part.shape[0] != shard.rows:
                raise ValueError(
                    f"{self._path / shard.file}: column {name!r} has "
                    f"{part.shape[0]} rows, manifest says {shard.rows}"
                )
        if not parts:
            column = np.empty(0, dtype=np.int64)
        elif len(parts) == 1:
            column = parts[0]
        else:
            column = np.concatenate(parts)
        self._columns[name] = column
        return column

    def columns(self, names: Optional[Sequence[str]] = None) -> Dict[str, np.ndarray]:
        """Several columns at once, as a name -> array mapping."""
        if names is None:
            names = _ALL_COLUMNS
        return {name: self.column(name) for name in names}

    # ---- population / record views --------------------------------------

    def feature_arrays(
        self, architecture: Optional[Architecture] = None
    ) -> FeatureArrays:
        """The vectorized analysis population, straight from the columns.

        No ``JobRecord`` or ``WorkloadFeatures`` objects are built; the
        columns (optionally filtered to one architecture) feed
        :meth:`FeatureArrays.from_columnar` directly.  The name column
        rides along so individual rows can be materialized lazily via
        :meth:`FeatureArrays.view` / :meth:`FeatureArrays.iter_views`.
        """
        needed = (
            "architecture",
            "num_cnodes",
            "batch_size",
            NAME_COLUMN,
        ) + FLOAT_COLUMNS
        columns = self.columns(needed)
        if architecture is not None:
            store_code = self.architectures.index(architecture)
            mask = columns["architecture"] == store_code
            columns = {name: col[mask] for name, col in columns.items()}
        return FeatureArrays.from_columnar(
            columns, architectures=self.architectures
        )

    def iter_views(self) -> Iterator[JobView]:
        """Stream the store as lazy :class:`JobView` rows, in order.

        The columns-first counterpart of :meth:`iter_records`: schema
        invariants are enforced once, vectorized, by
        :meth:`FeatureArrays.from_columnar`, and each row is a thin
        view over the shared columns instead of a validated record --
        about two orders of magnitude cheaper per job, which is what
        makes million-job scheduling replays practical.
        """
        arrays = self.feature_arrays()
        job_ids = self.column("job_id")
        submit_days = self.column("submit_day")
        group_codes = self.column("user_group")
        groups = self.user_groups
        for i, view in enumerate(arrays.iter_views()):
            yield JobView(
                job_id=int(job_ids[i]),
                features=view,
                submit_day=int(submit_days[i]),
                user_group=groups[int(group_codes[i])],
            )

    def iter_records(self) -> Iterator[JobRecord]:
        """Decode the store back into validated job records, in order.

        The lossless inverse of :func:`write_columnar`: every field --
        including the dictionary-encoded architecture and user-group
        labels -- round-trips exactly, shard by shard so memory use is
        bounded by one shard.
        """
        for shard in self._shards:
            columns = _load_shard(self._path / shard.file, self._mmap)
            names = columns[NAME_COLUMN]
            for i in range(shard.rows):
                features = WorkloadFeatures(
                    # Drop the 0x01 sentinel (see COLUMNAR_VERSION).
                    name=bytes(names[i])[:-1].decode("utf-8"),
                    architecture=self.architectures[
                        int(columns["architecture"][i])
                    ],
                    num_cnodes=int(columns["num_cnodes"][i]),
                    batch_size=int(columns["batch_size"][i]),
                    flop_count=float(columns["flop_count"][i]),
                    memory_access_bytes=float(
                        columns["memory_access_bytes"][i]
                    ),
                    input_bytes=float(columns["input_bytes"][i]),
                    weight_traffic_bytes=float(
                        columns["weight_traffic_bytes"][i]
                    ),
                    dense_weight_bytes=float(
                        columns["dense_weight_bytes"][i]
                    ),
                    embedding_weight_bytes=float(
                        columns["embedding_weight_bytes"][i]
                    ),
                    embedding_traffic_bytes=float(
                        columns["embedding_traffic_bytes"][i]
                    ),
                )
                yield JobRecord(
                    job_id=int(columns["job_id"][i]),
                    features=features,
                    submit_day=int(columns["submit_day"][i]),
                    user_group=self.user_groups[
                        int(columns["user_group"][i])
                    ],
                )


def jsonl_to_columnar(
    jsonl_path: Union[str, Path],
    store_path: Union[str, Path],
    shard_rows: int = DEFAULT_SHARD_ROWS,
    tolerate_torn_tail: bool = False,
) -> int:
    """Convert a JSONL trace into a columnar store; returns the count.

    Streams through :func:`repro.trace.serialization.iter_trace`, so
    memory stays bounded by one shard regardless of trace size.
    """
    return write_columnar(
        iter_trace(jsonl_path, tolerate_torn_tail=tolerate_torn_tail),
        store_path,
        shard_rows=shard_rows,
    )


def columnar_to_jsonl(
    store_path: Union[str, Path], jsonl_path: Union[str, Path]
) -> int:
    """Convert a columnar store back to a JSONL trace; returns the count.

    The write inherits :func:`save_trace`'s atomicity (tmp + rename).
    """
    store = ColumnarTrace.open(store_path)
    return save_trace(store.iter_records(), jsonl_path)
